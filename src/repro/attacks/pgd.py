"""PGD (Madry et al.) and Momentum PGD (Dong et al.) — the paper's
primary and secondary baselines.

The baseline configuration follows §5.1: the PGD attack targets *the
adapted model* (the attacker wants the edge device to mispredict);
evasiveness against the original model is whatever transfer happens to
give — which Fig 1 shows is poor, motivating DIVA.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.module import Module
from .base import (Attack, DEFAULT_ALPHA, DEFAULT_EPS, DEFAULT_STEPS,
                   input_gradient)


class PGD(Attack):
    """Projected gradient descent on cross-entropy of the target model."""

    def __init__(self, model: Module, eps: float = DEFAULT_EPS,
                 alpha: float = DEFAULT_ALPHA, steps: int = DEFAULT_STEPS,
                 random_start: bool = False, keep_best: bool = True,
                 seed: int = 0):
        super().__init__(eps, alpha, steps, random_start, keep_best, seed)
        self.model = model
        self.model.eval()

    def gradient(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        return input_gradient(
            lambda xt: F.cross_entropy(self.model(xt), y, reduction="sum"),
            x_adv)

    def is_success(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        """PGD's own goal: the target model mispredicts."""
        from ..training.evaluate import predict_labels
        return predict_labels(self.model, x_adv, batch_size=len(x_adv)) != y


class MomentumPGD(PGD):
    """PGD with gradient momentum (MI-FGSM).

    Accumulates an L1-normalized gradient moving average; §5.4 evaluates
    it with ``mu = 0.5``.
    """

    def __init__(self, model: Module, eps: float = DEFAULT_EPS,
                 alpha: float = DEFAULT_ALPHA, steps: int = DEFAULT_STEPS,
                 mu: float = 0.5, random_start: bool = False,
                 keep_best: bool = True, seed: int = 0):
        super().__init__(model, eps, alpha, steps, random_start, keep_best, seed)
        self.mu = float(mu)
        self._velocity = None

    def _init(self, x: np.ndarray) -> np.ndarray:
        self._velocity = np.zeros_like(x)   # reset per batch
        return super()._init(x)

    def gradient(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        g = super().gradient(x_adv, y)
        norm = np.abs(g).reshape(len(g), -1).mean(axis=1)
        norm = np.maximum(norm, 1e-12).reshape(-1, *([1] * (g.ndim - 1)))
        self._velocity = self.mu * self._velocity + g / norm
        return self._velocity
