"""``repro.edge`` — integer-only inference engine (the TFLite stand-in
for the paper's §6 edge deployment)."""

from .compile import compile_edge
from .engine import (Dequantize, EdgeLogits, EdgeModel, EdgeOp, QConv2d,
                     QFlatten, QLinear, QMaxPool2d, QReLU, QuantizeInput)
from .program import EdgeLoweringError, EdgeProgram
from .serialization import load_edge_model, save_edge_model

__all__ = [
    "compile_edge", "EdgeModel", "EdgeOp", "EdgeLogits",
    "EdgeProgram", "EdgeLoweringError",
    "QuantizeInput", "QConv2d", "QLinear", "QReLU", "QMaxPool2d",
    "QFlatten", "Dequantize",
    "save_edge_model", "load_edge_model",
]
