"""Figure 10 + §6: the face-recognition case study.

Paper: VGGFace finetuned on PubFig (150 identities), quantized via QAT,
converted with TFLite and evaluated on an ARM device.  Accuracy 99.4%
(fp32) vs 99.0% (int8); whitebox DIVA reaches ~98% top-1 evasive success,
far above PGD, with a smaller top-5 gap than ImageNet due to the smaller
label space.  Attacks use QAT gradients; evaluation runs on the deployed
integer artifact.

Here: VGGFaceNet on the parametric face dataset, attacked through QAT
gradients, *scored on the compiled integer edge model* — the same
gradient/runtime split.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..attacks import DIVA, PGD
from ..data import select_attack_set
from ..metrics import evaluate_attack, natural_confidence_delta
from ..training import evaluate_accuracy
from .config import ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results


def run(cfg: Optional[ExperimentConfig] = None,
        pipeline: Optional[Pipeline] = None, verbose: bool = True) -> Dict:
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    orig = pipe.face_original()
    qat = pipe.face_quantized()
    edge = pipe.face_edge()          # deployed integer artifact
    _, val = pipe.face_datasets()

    acc_orig = evaluate_accuracy(orig, val.x, val.y)
    acc_edge = float((edge.predict(val.x).argmax(1) == val.y).mean())

    atk_set = select_attack_set(
        val, [orig, qat, edge], cfg.face_attack_per_identity,
        rng=np.random.default_rng(cfg.seed + 900))

    kw = dict(eps=cfg.eps, alpha=cfg.alpha, steps=cfg.steps)
    # attacks are built on QAT gradients (TFLite exposes none)...
    x_pgd = PGD(qat, **kw).generate(atk_set.x, atk_set.y)
    x_diva = DIVA(orig, qat, c=cfg.c, **kw).generate(atk_set.x, atk_set.y)
    # ...but scored against the deployed integer model.
    rep_pgd = evaluate_attack(orig, edge, x_pgd, atk_set.y, topk=cfg.face_topk)
    rep_diva = evaluate_attack(orig, edge, x_diva, atk_set.y, topk=cfg.face_topk)
    nat_delta = natural_confidence_delta(orig, qat, atk_set.x, atk_set.y)

    results: Dict = {
        "original_accuracy": acc_orig,
        "edge_accuracy": acc_edge,
        "n_attack": len(atk_set),
        "natural_confidence_delta": nat_delta,
        "pgd": {"top1": rep_pgd.top1_success_rate,
                "topk": rep_pgd.top5_success_rate,
                "confidence_delta": rep_pgd.confidence_delta,
                "attack_only": rep_pgd.attack_only_success_rate},
        "diva": {"top1": rep_diva.top1_success_rate,
                 "topk": rep_diva.top5_success_rate,
                 "confidence_delta": rep_diva.confidence_delta,
                 "attack_only": rep_diva.attack_only_success_rate},
    }
    rows = [
        ["accuracy (orig / edge int8)", f"{acc_orig:.1%}", f"{acc_edge:.1%}"],
        ["top-1 evasive success", f"{rep_pgd.top1_success_rate:.1%}",
         f"{rep_diva.top1_success_rate:.1%}"],
        [f"top-{cfg.face_topk} evasive success",
         f"{rep_pgd.top5_success_rate:.1%}", f"{rep_diva.top5_success_rate:.1%}"],
        ["confidence delta", f"{rep_pgd.confidence_delta:.1%}",
         f"{rep_diva.confidence_delta:.1%}"],
        ["confidence delta (natural)", f"{nat_delta:.1%}", f"{nat_delta:.1%}"],
    ]
    table = format_table(["metric", "PGD", "DIVA"], rows,
                         title="Figure 10 — face recognition case study")
    results["table"] = table
    if verbose:
        print(table)
    save_results("fig10", results)
    return results
