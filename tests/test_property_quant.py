"""Property-based tests for quantization invariants."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.quantization import (choose_qparams, dequantize,
                                fake_quantize_array, int_range, quantize,
                                quantize_multiplier, requantize)

SETTINGS = dict(max_examples=40, deadline=None)

values = hnp.arrays(
    dtype=np.float64, shape=st.integers(1, 200),
    elements=st.floats(-100, 100, allow_nan=False, width=64))


@given(values, st.integers(2, 8), st.booleans())
@settings(**SETTINGS)
def test_roundtrip_error_bounded_in_range(x, bits, symmetric):
    qmin, qmax = int_range(bits, signed=True)
    qp = choose_qparams(x.min(), x.max(), qmin, qmax, symmetric=symmetric)
    err = np.abs(x - fake_quantize_array(x, qp))
    # symmetric: error <= scale/2 everywhere in range; asymmetric adds
    # up to scale/2 of zero-point rounding at the boundary
    bound = float(np.max(qp.scale)) * (0.5 if symmetric else 1.0)
    assert err.max() <= bound + 1e-9


@given(values, st.integers(2, 8))
@settings(**SETTINGS)
def test_quantize_within_integer_bounds(x, bits):
    qmin, qmax = int_range(bits, signed=True)
    qp = choose_qparams(x.min(), x.max(), qmin, qmax)
    q = quantize(x * 10, qp)     # even out-of-range reals stay clamped
    assert q.min() >= qmin and q.max() <= qmax


@given(values)
@settings(**SETTINGS)
def test_zero_is_exact(x):
    qp = choose_qparams(x.min(), x.max(), -128, 127)
    assert fake_quantize_array(np.zeros(1), qp)[0] == 0.0


@given(values)
@settings(**SETTINGS)
def test_fake_quant_idempotent(x):
    qp = choose_qparams(x.min(), x.max(), -128, 127)
    once = fake_quantize_array(x, qp)
    twice = fake_quantize_array(once, qp)
    assert np.allclose(once, twice)


@given(values)
@settings(**SETTINGS)
def test_quantize_monotone(x):
    assume(len(x) >= 2)
    qp = choose_qparams(x.min(), x.max(), -128, 127)
    order = np.argsort(x)
    q = quantize(x, qp)[order]
    assert (np.diff(q) >= 0).all()


@given(st.floats(1e-6, 1e4, allow_nan=False))
@settings(**SETTINGS)
def test_multiplier_roundtrip(m):
    m0, shift = quantize_multiplier(m)
    approx = m0 / (1 << 31) * 2.0 ** (-shift)
    assert np.isclose(approx, m, rtol=1e-6)


@given(hnp.arrays(dtype=np.int64, shape=st.integers(1, 100),
                  elements=st.integers(-10 ** 6, 10 ** 6)),
       st.floats(1e-4, 10.0, allow_nan=False))
@settings(**SETTINGS)
def test_requantize_within_one_of_float(acc, mult):
    m0, shift = quantize_multiplier(mult)
    got = requantize(acc, m0, shift)
    want = np.round(acc.astype(np.float64) * mult)
    assert np.abs(got - want).max() <= 1
