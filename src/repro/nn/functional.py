"""Stateless differentiable operations: convolution, pooling, losses.

Convolution uses im2col (stride-tricks window extraction + one matmul),
which is the standard way to keep numpy convs fast; the col2im backward is
a small loop over kernel taps only (kh*kw iterations), never over pixels.
All tensors follow the NCHW layout.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from . import tensor as _tensor
from .tensor import Tensor, _unbroadcast

IntPair = Union[int, Tuple[int, int]]


def _pair(v: IntPair) -> Tuple[int, int]:
    return (v, v) if isinstance(v, int) else (int(v[0]), int(v[1]))


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling along one axis."""
    return (size + 2 * pad - kernel) // stride + 1


def _im2col(x: np.ndarray, kh: int, kw: int, sh: int, sw: int,
            ph: int, pw: int) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Extract sliding windows from NCHW ``x``.

    Returns ``cols`` of shape (N, C, kh, kw, OH, OW) (a view when possible)
    and the output spatial size.
    """
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    N, C, H, W = x.shape
    oh = (H - kh) // sh + 1
    ow = (W - kw) // sw + 1
    s0, s1, s2, s3 = x.strides
    cols = np.lib.stride_tricks.as_strided(
        x,
        shape=(N, C, kh, kw, oh, ow),
        strides=(s0, s1, s2, s3, s2 * sh, s3 * sw),
        writeable=False,
    )
    return cols, (oh, ow)


def _col2im(dcols: np.ndarray, x_shape: Tuple[int, ...], kh: int, kw: int,
            sh: int, sw: int, ph: int, pw: int) -> np.ndarray:
    """Scatter-add window gradients back to input layout (inverse of im2col)."""
    N, C, H, W = x_shape
    Hp, Wp = H + 2 * ph, W + 2 * pw
    oh = (Hp - kh) // sh + 1
    ow = (Wp - kw) // sw + 1
    dx = np.zeros((N, C, Hp, Wp), dtype=dcols.dtype)
    for i in range(kh):
        i_max = i + sh * oh
        for j in range(kw):
            j_max = j + sw * ow
            dx[:, :, i:i_max:sh, j:j_max:sw] += dcols[:, :, i, j]
    if ph or pw:
        dx = dx[:, :, ph:Hp - ph if ph else Hp, pw:Wp - pw if pw else Wp]
    return dx


def _col2im_flat(dcolsp: np.ndarray, x_shape: Tuple[int, ...], kh: int,
                 kw: int, ph: int, pw: int, oh: int, ow: int,
                 out: Optional[np.ndarray] = None) -> np.ndarray:
    """Stride-1 col2im from X-padded tap-major window gradients.

    ``dcolsp`` has shape (N, C, kh, kw, OH * XP) with ``XP = OW + kw - 1``
    (== the padded input width for stride 1), where columns beyond OW of
    each window row are exact zeros (they come from zero-padded logits in
    the producing matmul).  Because every tap row then has the padded
    input's own row pitch, each tap lands with ONE contiguous
    shifted-slice add over the flattened padded image instead of the
    classic per-tap strided scatter — same additions, same (i, j) order,
    plus interleaved exact ``+0.0`` terms, so values match
    :func:`_col2im` bit-for-bit (modulo the sign of negative zeros).

    ``out`` is an optional (N, C, Hp * Wp) scratch; a fresh one is
    allocated when omitted.  Returns the (N, C, H, W) crop (a view).
    """
    N, C, H, W = x_shape
    Hp, Wp = H + 2 * ph, W + 2 * pw
    flat = Hp * Wp
    full = (oh - 1) * Wp + (ow + kw - 1)
    if out is None:
        out = np.zeros((N, C, flat), dtype=dcolsp.dtype)
    else:
        out.fill(0.0)
    for i in range(kh):
        for j in range(kw):
            off = i * Wp + j
            span = min(full, flat - off)
            dst = out[:, :, off:off + span]
            np.add(dst, dcolsp[:, :, i, j, :span], out=dst)
    dx = out.reshape(N, C, Hp, Wp)
    if ph or pw:
        dx = dx[:, :, ph:ph + H, pw:pw + W]
    return dx


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: IntPair = 1, padding: IntPair = 0, groups: int = 1) -> Tensor:
    """2D convolution.

    Parameters
    ----------
    x: (N, C_in, H, W)
    weight: (C_out, C_in // groups, kh, kw)
    bias: (C_out,) or None
    groups: 1 for dense conv, C_in for depthwise.
    """
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    N, C, H, W = x.shape
    F, Cg, kh, kw = weight.shape
    if C % groups or F % groups:
        raise ValueError(f"channels {C}/{F} not divisible by groups={groups}")
    if Cg != C // groups:
        raise ValueError(f"weight expects {Cg} in-channels/group, input has {C // groups}")

    cols, (oh, ow) = _im2col(x.data, kh, kw, sh, sw, ph, pw)

    if groups == 1:
        # Tap-major layout: the im2col window view is already
        # (N, C, kh, kw, OH, OW), so a straight copy is cheap (long
        # contiguous runs), and (F, K) @ (N, K, P) produces NCHW output
        # directly — no transposes on either side of the matmul.
        K = C * kh * kw
        colsK = np.ascontiguousarray(cols).reshape(N, K, oh * ow)
        w2 = weight.data.reshape(F, K)
        out_data = np.matmul(w2, colsK).reshape(N, F, oh, ow)
        cols2 = colsK                                    # closure capture
    else:
        G = groups
        Fg = F // G
        # (N, G, Cg, kh, kw, OH, OW) -> (N, G, OH, OW, Cg*kh*kw)
        colsg = cols.reshape(N, G, Cg, kh, kw, oh, ow)
        cols2 = np.ascontiguousarray(colsg.transpose(0, 1, 5, 6, 2, 3, 4)).reshape(N, G, oh, ow, Cg * kh * kw)
        wmat = weight.data.reshape(G, Fg, Cg * kh * kw)  # (G, Fg, K)
        out_data = np.einsum("ngxyk,gfk->ngfxy", cols2, wmat, optimize=True)
        out_data = out_data.reshape(N, F, oh, ow)

    if bias is not None:
        out_data += bias.data.reshape(1, F, 1, 1)

    parents = (x, weight) + ((bias,) if bias is not None else ())
    req = any(p.requires_grad for p in parents)
    out = Tensor(out_data, requires_grad=req, _parents=parents if req else ())
    if req:
        x_shape = x.shape

        def _bw(g, x=x, weight=weight, bias=bias, cols2=cols2):
            # g: (N, F, OH, OW)
            if bias is not None and bias.requires_grad:
                bias._accumulate(g.sum(axis=(0, 2, 3)))
            if groups == 1:
                K = C * kh * kw
                g2 = np.ascontiguousarray(g).reshape(N, F, oh * ow)
                if weight.requires_grad:
                    dw = np.tensordot(g2, cols2, axes=([0, 2], [0, 2]))  # (F, K)
                    weight._accumulate(dw.reshape(weight.shape), owned=True)
                if x.requires_grad:
                    w2T = np.ascontiguousarray(weight.data.reshape(F, K).T)
                    if sh == 1 and sw == 1:
                        # X-padded logits make every col2im tap a single
                        # contiguous shifted-slice add (see _col2im_flat)
                        Xp = ow + kw - 1
                        g2p = np.zeros((N, F, oh, Xp), dtype=g.dtype)
                        g2p[..., :ow] = g
                        dcolsp = np.matmul(w2T, g2p.reshape(N, F, oh * Xp))
                        dx = _col2im_flat(
                            dcolsp.reshape(N, C, kh, kw, oh * Xp),
                            x_shape, kh, kw, ph, pw, oh, ow)
                        x._accumulate(dx, owned=True)
                    else:
                        dcols = np.matmul(w2T, g2).reshape(N, C, kh, kw, oh, ow)
                        x._accumulate(_col2im(dcols, x_shape, kh, kw, sh, sw,
                                              ph, pw), owned=True)
            else:
                G = groups
                Fg = F // G
                gg = g.reshape(N, G, Fg, oh, ow)
                if weight.requires_grad:
                    dw = np.einsum("ngfxy,ngxyk->gfk", gg, cols2, optimize=True)
                    weight._accumulate(dw.reshape(weight.shape), owned=True)
                if x.requires_grad:
                    wmat = weight.data.reshape(G, Fg, Cg * kh * kw)
                    dcols2 = np.einsum("ngfxy,gfk->ngxyk", gg, wmat, optimize=True)
                    dcols = dcols2.reshape(N, G, oh, ow, Cg, kh, kw)
                    dcols = dcols.transpose(0, 1, 4, 5, 6, 2, 3).reshape(N, C, kh, kw, oh, ow)
                    x._accumulate(_col2im(dcols, x_shape, kh, kw, sh, sw, ph, pw),
                                  owned=True)
        out._backward = _bw
    if _tensor._GRAPH_TRACER is not None:
        inputs = (x, weight) + ((bias,) if bias is not None else ())
        _tensor._GRAPH_TRACER.emit("conv2d", inputs, out,
                                   {"stride": (sh, sw), "padding": (ph, pw),
                                    "groups": groups,
                                    "has_bias": bias is not None})
    return out


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with weight of shape (out, in)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def max_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None,
               padding: IntPair = 0) -> Tensor:
    """Max pooling over NCHW windows."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride if stride is not None else kernel)
    ph, pw = _pair(padding)
    xd = x.data
    if ph or pw:
        xd = np.pad(xd, ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                    constant_values=-np.inf)
    cols, (oh, ow) = _im2col(xd, kh, kw, sh, sw, 0, 0)
    N, C = x.shape[:2]
    flat = cols.transpose(0, 1, 4, 5, 2, 3).reshape(N, C, oh, ow, kh * kw)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    out = Tensor(out_data, requires_grad=x.requires_grad,
                 _parents=(x,) if x.requires_grad else ())
    if x.requires_grad:
        x_shape = x.shape

        def _bw(g, x=x, arg=arg):
            dflat = np.zeros((N, C, oh, ow, kh * kw), dtype=g.dtype)
            np.put_along_axis(dflat, arg[..., None], g[..., None], axis=-1)
            dcols = dflat.reshape(N, C, oh, ow, kh, kw).transpose(0, 1, 4, 5, 2, 3)
            x._accumulate(_col2im(dcols, x_shape, kh, kw, sh, sw, ph, pw), owned=True)
        out._backward = _bw
    if _tensor._GRAPH_TRACER is not None:
        _tensor._GRAPH_TRACER.emit("max_pool2d", (x,), out,
                                   {"kernel": (kh, kw), "stride": (sh, sw),
                                    "padding": (ph, pw)})
    return out


def avg_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None,
               padding: IntPair = 0) -> Tensor:
    """Average pooling over NCHW windows."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride if stride is not None else kernel)
    ph, pw = _pair(padding)
    cols, (oh, ow) = _im2col(x.data, kh, kw, sh, sw, ph, pw)
    out_data = cols.mean(axis=(2, 3))
    out = Tensor(out_data, requires_grad=x.requires_grad,
                 _parents=(x,) if x.requires_grad else ())
    if x.requires_grad:
        N, C = x.shape[:2]
        x_shape = x.shape

        def _bw(g, x=x):
            dcols = np.broadcast_to(
                g[:, :, None, None, :, :] / (kh * kw), (N, C, kh, kw, oh, ow)
            ).astype(g.dtype)
            x._accumulate(_col2im(dcols, x_shape, kh, kw, sh, sw, ph, pw), owned=True)
        out._backward = _bw
    if _tensor._GRAPH_TRACER is not None:
        _tensor._GRAPH_TRACER.emit("avg_pool2d", (x,), out,
                                   {"kernel": (kh, kw), "stride": (sh, sw),
                                    "padding": (ph, pw)})
    return out


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over spatial dims: (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    m = Tensor(x.data.max(axis=axis, keepdims=True))
    shifted = x - m
    lse = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - lse


def cross_entropy(logits: Tensor, labels: np.ndarray,
                  reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy against integer labels.

    ``labels`` is an int array of shape (N,).
    """
    labels = np.asarray(labels)
    logp = log_softmax(logits, axis=-1)
    nll = -logp.gather_rows(labels)
    if reduction == "mean":
        return nll.mean()
    if reduction == "sum":
        return nll.sum()
    if reduction == "none":
        return nll
    raise ValueError(f"unknown reduction: {reduction}")


def nll_loss(logp: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood given log-probabilities."""
    nll = -logp.gather_rows(np.asarray(labels))
    if reduction == "mean":
        return nll.mean()
    if reduction == "sum":
        return nll.sum()
    return nll


def mse_loss(pred: Tensor, target: Union[Tensor, np.ndarray],
             reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    d = pred - target
    sq = d * d
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    return sq


def kl_div(logp: Tensor, q: Union[Tensor, np.ndarray],
           reduction: str = "batchmean") -> Tensor:
    """KL(q || p) given log-probabilities ``logp`` and target probs ``q``.

    Matches the convention of distillation losses: target distribution ``q``
    is treated as constant.
    """
    q_data = q.data if isinstance(q, Tensor) else np.asarray(q)
    q_const = Tensor(q_data)
    eps = 1e-12
    terms = q_const * (Tensor(np.log(q_data + eps)) - logp)
    if reduction == "batchmean":
        return terms.sum() * (1.0 / logp.shape[0])
    if reduction == "sum":
        return terms.sum()
    return terms


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    return x * Tensor(mask)
