"""Figure 1 — outcome quadrants, PGD vs DIVA on quantized ResNet.

Paper shape: PGD puts a large mass in "both incorrect" (transfer), DIVA
concentrates mass in "original correct & quantized incorrect".
"""

from .conftest import run_once


def test_fig1(benchmark, cfg, pipeline):
    from repro.experiments import exp_fig1
    res = run_once(benchmark, lambda: exp_fig1.run(cfg, pipeline=pipeline))
    pgd = res["quadrants"]["PGD"]
    diva = res["quadrants"]["DIVA"]
    assert diva["orig_correct_quant_incorrect"] > pgd["orig_correct_quant_incorrect"]
    assert diva["both_incorrect"] < pgd["both_incorrect"]
