"""Penultimate-layer representation extraction (Fig 4's raw material)."""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from ..nn.tensor import Tensor


def extract_features(model: Module, x: np.ndarray,
                     batch_size: int = 128) -> np.ndarray:
    """Penultimate activations of ``model`` for a batch of images.

    Requires the model (or its QAT wrapper) to expose ``features``; every
    architecture in :mod:`repro.models` does.
    """
    if not hasattr(model, "features"):
        raise TypeError(f"{type(model).__name__} exposes no features() method")
    model.eval()
    outs = []
    for start in range(0, len(x), batch_size):
        outs.append(model.features(Tensor(x[start:start + batch_size])).data.copy())
    return np.concatenate(outs, axis=0)
