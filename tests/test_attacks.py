"""The attack family: budgets respected, objectives achieved, DIVA's
evasive property."""

import numpy as np
import pytest

from repro.attacks import (CWLinf, DIVA, MomentumPGD, PGD, AttackTrace,
                           TargetedDIVA, cw_margin_loss, diva_loss, fgsm,
                           input_gradient, linf_distance, project_linf, r_fgsm)
from repro.metrics import evaluate_attack
from repro.nn import Tensor
from repro.training import evaluate_accuracy, predict_labels


EPS = 32.0 / 255.0
ALPHA = 4.0 / 255.0


@pytest.fixture(scope="module")
def attack_setup(request):
    """(original, adapted, attack set) for a tiny trained pair."""
    tiny_model = request.getfixturevalue("tiny_model")
    tiny_quantized = request.getfixturevalue("tiny_quantized")
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    from repro.data import select_attack_set
    _, val = tiny_dataset
    atk = select_attack_set(val, [tiny_model, tiny_quantized], per_class=4)
    return tiny_model, tiny_quantized, atk


class TestProjection:
    def test_within_eps_ball(self, rng):
        x = rng.random((4, 3, 8, 8))
        adv = x + rng.normal(0, 1.0, size=x.shape)
        proj = project_linf(adv, x, 0.1)
        assert linf_distance(proj, x).max() <= 0.1 + 1e-9

    def test_pixel_range_clamped(self, rng):
        x = np.zeros((1, 1, 2, 2))
        proj = project_linf(x - 1.0, x, 5.0)
        assert proj.min() >= 0.0
        proj = project_linf(x + 9.0, x, 5.0)
        assert proj.max() <= 1.0

    def test_identity_inside_ball(self, rng):
        x = rng.random((2, 1, 3, 3)) * 0.5 + 0.25
        adv = x + 0.01
        assert np.allclose(project_linf(adv, x, 0.1), adv)


class TestInputGradient:
    def test_matches_manual(self, tiny_model, tiny_dataset):
        from repro.nn import functional as F
        _, val = tiny_dataset
        x = val.x[:2]
        y = val.y[:2]
        g = input_gradient(
            lambda xt: F.cross_entropy(tiny_model(xt), y, reduction="sum"), x)
        assert g.shape == x.shape
        assert np.abs(g).max() > 0


class TestBaselineAttacks:
    def test_fgsm_damages_accuracy(self, attack_setup):
        orig, quant, atk = attack_setup
        x_adv = fgsm(quant, atk.x, atk.y, eps=EPS)
        assert evaluate_accuracy(quant, x_adv, atk.y) < 1.0
        assert linf_distance(x_adv, atk.x).max() <= EPS + 1e-6

    def test_r_fgsm_budget(self, attack_setup):
        orig, quant, atk = attack_setup
        x_adv = r_fgsm(quant, atk.x, atk.y, eps=EPS)
        assert linf_distance(x_adv, atk.x).max() <= EPS + 1e-6

    def test_r_fgsm_alpha_validation(self, attack_setup):
        orig, quant, atk = attack_setup
        with pytest.raises(ValueError):
            r_fgsm(quant, atk.x, atk.y, eps=EPS, alpha=EPS * 2)

    def test_pgd_beats_fgsm(self, attack_setup):
        orig, quant, atk = attack_setup
        x_f = fgsm(quant, atk.x, atk.y, eps=EPS)
        x_p = PGD(quant, eps=EPS, alpha=ALPHA, steps=10).generate(atk.x, atk.y)
        acc_f = evaluate_accuracy(quant, x_f, atk.y)
        acc_p = evaluate_accuracy(quant, x_p, atk.y)
        assert acc_p <= acc_f + 0.05

    def test_pgd_respects_budget(self, attack_setup):
        orig, quant, atk = attack_setup
        x_p = PGD(quant, eps=EPS, alpha=ALPHA, steps=10).generate(atk.x, atk.y)
        assert linf_distance(x_p, atk.x).max() <= EPS + 1e-6
        assert x_p.min() >= 0 and x_p.max() <= 1

    def test_pgd_flips_most(self, attack_setup):
        orig, quant, atk = attack_setup
        x_p = PGD(quant, eps=EPS, alpha=ALPHA, steps=15).generate(atk.x, atk.y)
        flipped = (predict_labels(quant, x_p) != atk.y).mean()
        assert flipped > 0.5

    def test_momentum_pgd_runs(self, attack_setup):
        orig, quant, atk = attack_setup
        x_m = MomentumPGD(quant, eps=EPS, alpha=ALPHA, steps=10,
                          mu=0.5).generate(atk.x, atk.y)
        assert linf_distance(x_m, atk.x).max() <= EPS + 1e-6
        assert (predict_labels(quant, x_m) != atk.y).any()

    def test_cw_margin_loss_sign(self, fixed_logit_model):
        logits = Tensor(np.array([[5.0, 1.0, 0.0], [0.0, 6.0, 7.0]]))
        loss = cw_margin_loss(logits, np.array([0, 1]))
        # first sample margin +4; second margin -1 floored at -kappa=0
        assert np.isclose(float(loss.data), 4.0)
        loss_k = cw_margin_loss(logits, np.array([0, 1]), kappa=5.0)
        assert np.isclose(float(loss_k.data), 4.0 - 1.0)

    def test_cw_kappa_floor(self):
        logits = Tensor(np.array([[0.0, 10.0]]))
        loss = cw_margin_loss(logits, np.array([0]), kappa=3.0)
        assert np.isclose(float(loss.data), -3.0)

    def test_cw_attack_flips(self, attack_setup):
        orig, quant, atk = attack_setup
        x_c = CWLinf(quant, eps=EPS, alpha=ALPHA, steps=10).generate(atk.x, atk.y)
        assert (predict_labels(quant, x_c) != atk.y).any()
        assert linf_distance(x_c, atk.x).max() <= EPS + 1e-6

    def test_random_start_stays_in_ball(self, attack_setup):
        orig, quant, atk = attack_setup
        x_p = PGD(quant, eps=EPS, alpha=ALPHA, steps=3,
                  random_start=True).generate(atk.x, atk.y)
        assert linf_distance(x_p, atk.x).max() <= EPS + 1e-6

    def test_invalid_budget_rejected(self, attack_setup):
        orig, quant, _ = attack_setup
        with pytest.raises(ValueError):
            PGD(quant, eps=-1.0)
        with pytest.raises(ValueError):
            PGD(quant, steps=0)


class TestDIVA:
    def test_diva_loss_value(self):
        po = Tensor(np.array([[0.8, 0.2], [0.6, 0.4]]))
        pa = Tensor(np.array([[0.5, 0.5], [0.1, 0.9]]))
        y = np.array([0, 1])
        val = float(diva_loss(po, pa, y, c=1.0).data)
        assert np.isclose(val, (0.8 - 0.5) + (0.4 - 0.9))

    def test_diva_budget_and_range(self, attack_setup):
        orig, quant, atk = attack_setup
        x_d = DIVA(orig, quant, eps=EPS, alpha=ALPHA, steps=10).generate(
            atk.x, atk.y)
        assert linf_distance(x_d, atk.x).max() <= EPS + 1e-6
        assert x_d.min() >= 0 and x_d.max() <= 1

    def test_diva_more_evasive_than_pgd(self, attack_setup):
        """The paper's core claim at miniature scale."""
        orig, quant, atk = attack_setup
        x_d = DIVA(orig, quant, c=1.0, eps=EPS, alpha=ALPHA,
                   steps=15).generate(atk.x, atk.y)
        x_p = PGD(quant, eps=EPS, alpha=ALPHA, steps=15).generate(atk.x, atk.y)
        rd = evaluate_attack(orig, quant, x_d, atk.y)
        rp = evaluate_attack(orig, quant, x_p, atk.y)
        assert rd.top1_success_rate >= rp.top1_success_rate
        # DIVA must keep the original model mostly correct
        assert rd.quadrant_both_incorrect <= rp.quadrant_both_incorrect

    def test_diva_keeps_original_correct(self, attack_setup):
        orig, quant, atk = attack_setup
        x_d = DIVA(orig, quant, c=1.0, eps=EPS, alpha=ALPHA,
                   steps=15).generate(atk.x, atk.y)
        orig_acc = evaluate_accuracy(orig, x_d, atk.y)
        assert orig_acc >= 0.6

    def test_c_zero_never_attacks(self, attack_setup):
        orig, quant, atk = attack_setup
        x_d = DIVA(orig, quant, c=0.0, eps=EPS, alpha=ALPHA,
                   steps=5).generate(atk.x, atk.y)
        rep = evaluate_attack(orig, quant, x_d, atk.y)
        # pure-evasion objective barely flips the adapted model
        assert rep.attack_only_success_rate <= 0.3

    def test_large_c_attacks_harder(self, attack_setup):
        orig, quant, atk = attack_setup
        r = {}
        for c in (0.5, 5.0):
            x = DIVA(orig, quant, c=c, eps=EPS, alpha=ALPHA,
                     steps=10, keep_best=False).generate(atk.x, atk.y)
            r[c] = evaluate_attack(orig, quant, x, atk.y).attack_only_success_rate
        assert r[5.0] >= r[0.5]

    def test_trace_has_step_snapshots(self, attack_setup):
        orig, quant, atk = attack_setup
        trace = AttackTrace()
        DIVA(orig, quant, eps=EPS, alpha=ALPHA, steps=4).generate(
            atk.x[:6], atk.y[:6], trace=trace)
        assert len(trace.snapshots) == 4
        for snap in trace.snapshots:
            assert snap.shape == atk.x[:6].shape
            assert linf_distance(snap, atk.x[:6]).max() <= EPS + 1e-6

    def test_keep_best_monotone_success(self, attack_setup):
        """With keep_best, success-vs-steps must be non-decreasing
        (the Fig 6d shape)."""
        orig, quant, atk = attack_setup
        trace = AttackTrace()
        DIVA(orig, quant, eps=EPS, alpha=ALPHA, steps=8).generate(
            atk.x, atk.y, trace=trace)
        rates = [evaluate_attack(orig, quant, s, atk.y).top1_success_rate
                 for s in trace.snapshots]
        assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))

    def test_keep_best_at_least_as_good(self, attack_setup):
        orig, quant, atk = attack_setup
        kw = dict(eps=EPS, alpha=ALPHA, steps=10)
        x_kb = DIVA(orig, quant, keep_best=True, **kw).generate(atk.x, atk.y)
        x_nk = DIVA(orig, quant, keep_best=False, **kw).generate(atk.x, atk.y)
        r_kb = evaluate_attack(orig, quant, x_kb, atk.y).top1_success_rate
        r_nk = evaluate_attack(orig, quant, x_nk, atk.y).top1_success_rate
        assert r_kb >= r_nk - 1e-9


class TestTargetedDIVA:
    def test_targeted_hits_target_sometimes(self, attack_setup):
        orig, quant, atk = attack_setup
        target = int((atk.y[0] + 1) % 6)
        keep = atk.y != target
        x, y = atk.x[keep], atk.y[keep]
        attack = TargetedDIVA(orig, quant, target_class=target, c=1.0,
                              eps=EPS, alpha=ALPHA, steps=15)
        x_adv = attack.generate(x, y)
        pred = predict_labels(quant, x_adv)
        assert linf_distance(x_adv, x).max() <= EPS + 1e-6
        # shape check only: at least runs and produces some movement
        assert (pred != y).any()

    def test_success_mask_semantics(self, attack_setup):
        orig, quant, atk = attack_setup
        target = 0
        attack = TargetedDIVA(orig, quant, target_class=target,
                              eps=EPS, alpha=ALPHA, steps=2)
        mask = attack.is_success(atk.x, atk.y)
        # on clean inputs both models are correct, so no sample can
        # already satisfy "adapted says target but label differs"
        assert not mask[atk.y != target].any()
