"""Post-training quantization (PTQ): calibrate, no finetuning.

PTQ is the cheaper alternative to QAT — instrument, run calibration data
through the observers, freeze.  The paper's main pipeline is QAT, but PTQ
is included because production edge fleets mix both, and DIVA applies to
either (the divergence mechanism is identical).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.module import Module
from .qat import QATModel, prepare_qat


def post_training_quantize(model: Module, calib_inputs: np.ndarray,
                           weight_bits: int = 8, act_bits: int = 8,
                           batch_size: int = 64,
                           per_channel: bool = True,
                           freeze: bool = True) -> QATModel:
    """Quantize ``model`` using only a calibration set.

    Returns a :class:`QATModel` whose grids are frozen — functionally the
    deployed int8 artifact, still differentiable through the STE.
    """
    q = prepare_qat(model, weight_bits=weight_bits, act_bits=act_bits,
                    per_channel=per_channel)
    q.train()
    for start in range(0, len(calib_inputs), batch_size):
        from ..nn.tensor import Tensor
        q(Tensor(calib_inputs[start:start + batch_size]))
    q.eval()
    if freeze:
        q.freeze()
    return q
