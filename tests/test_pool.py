"""Worker-pool suite: pooled dispatch must change wall-time, never bytes.

The pool's whole contract (``docs/ARCHITECTURE.md``, "Worker pool and
shard topology"): ``ServeSession(workers=N)`` partitions the queue into
exactly the groups sequential dispatch would form, serializes groups
that share plan owners, runs the rest concurrently against sharded
caches/breakers, and publishes records, outcome counters and future
resolutions through a single-writer reap — so per-job results are
**bit-identical** to sequential dispatch at every worker count, clean
and under seeded chaos.  These tests are the acceptance gate behind
``make serve-pool``.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings

from repro.edge import compile_edge
from repro.models import build_model
from repro.quantization import calibrate, prepare_qat
from repro.serve import (DeadlineError, FaultInjector, FaultSpec,
                         ManualClock, OffsetClock, PoolScheduler,
                         ServeSession, ShardedCircuitBreaker,
                         ShardedPlanCache, build_workload, chaos_replay,
                         default_chaos_specs, inject, mixed_workload_spec,
                         replay_sequential, replay_serve)
from repro.serve.pool import _PlannedGroup
from repro.serve.scheduler import Job, JobFuture
from repro.training import predict_labels

from .conftest import mixed_job_menus, submit_job_menu

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))
WORKER_COUNTS = (1, 2, 4)


def _result_bytes(out):
    """Per-job results as raw bytes (None for refused/failed jobs)."""
    return [None if r is None else (r.dtype.str, r.shape, r.tobytes())
            for r in out["results"]]


@pytest.fixture(scope="module")
def workload():
    spec = mixed_workload_spec(scale=1)
    spec["steps"] = 3
    return build_workload(spec)


@pytest.fixture(scope="module")
def pair():
    """Untrained resnet + frozen 8-bit adaptation with self-labels."""
    rng = np.random.default_rng(0)
    x = rng.random((16, 3, 12, 12)).astype(np.float32)
    orig = build_model("resnet", num_classes=6, width=4, seed=0)
    orig.eval()
    quant = prepare_qat(orig, weight_bits=8)
    calibrate(quant, x)
    quant.freeze()
    quant.eval()
    y = predict_labels(orig, x)
    return orig, quant, x, y


@pytest.fixture(scope="module")
def edge_pair():
    rng = np.random.default_rng(1)
    x = rng.random((16, 1, 12, 12)).astype(np.float32)
    lenet = build_model("lenet", num_classes=6, in_channels=1,
                        image_size=12, width=4, seed=3)
    lenet.eval()
    q = prepare_qat(lenet, weight_bits=8, act_bits=8, per_channel=True)
    calibrate(q, x)
    q.freeze()
    return compile_edge(q, 6), x


def _fake_job(seq, rows, model):
    return Job(kind="predict", seq=seq, x=np.zeros((rows, 1)),
               future=JobFuture(lambda: None), model=model)


def _fake_plan(row_costs, shared=()):
    """A synthetic wave: one single-job group per cost; ``shared``
    lists index pairs forced into one conflict component (same model)."""
    models = [object() for _ in row_costs]
    for a, b in shared:
        models[b] = models[a]
    return [_PlannedGroup(i, "predict", [_fake_job(i, rows, models[i])],
                         ("predict", i))
            for i, rows in enumerate(row_costs)]


class TestPoolParity:
    def test_results_bit_identical_at_every_worker_count(self, workload):
        """The headline gate: every recorded-workload replay at
        ``workers=N`` is byte-identical to the sequential baseline."""
        ref = replay_sequential(workload)
        ref_bytes = [(r.dtype.str, r.shape, r.tobytes())
                     for r in ref["results"]]
        for w in WORKER_COUNTS:
            out = replay_serve(workload, workers=w)
            assert all(o == "ok" for o in out["outcomes"])
            assert _result_bytes(out) == ref_bytes, \
                f"workers={w} diverged from the sequential baseline"

    def test_pooled_records_match_legacy_scheduler(self, workload):
        """Same groups, same order, same rungs: the pooled dispatch log
        is the sequential log plus worker attribution."""
        legacy = ServeSession(capacity=64)
        replay_serve(workload, session=legacy)
        pooled = ServeSession(capacity=64, workers=2)
        replay_serve(workload, session=pooled)
        strip = lambda log: [(r.key, r.seqs, r.rows, r.level, r.retry)
                             for r in log]
        assert strip(pooled.dispatch_log) == strip(legacy.dispatch_log)
        assert all(r.worker is None for r in legacy.dispatch_log)
        assert all(r.worker in range(2) for r in pooled.dispatch_log)
        assert pooled.stats["outcome_counts"] == \
            legacy.stats["outcome_counts"]

    def test_chaos_replay_identical_at_every_worker_count(self, workload):
        """Seeded chaos on the manual clock: per-group fault streams
        make the whole run — outcomes, fault fires, simulated time — a
        function of the workload, not of worker count."""
        runs = [chaos_replay(workload, capacity=32, seed=FAULT_SEED,
                             deadline_s=0.4, workers=w)
                for w in WORKER_COUNTS]
        for out in runs[1:]:
            assert out["outcome_counts"] == runs[0]["outcome_counts"]
            assert out["faults_fired"] == runs[0]["faults_fired"]
            assert out["clock_s"] == runs[0]["clock_s"]
        assert runs[0]["faults_fired"]          # chaos actually ran

    def test_chaos_result_bytes_identical_across_worker_counts(self):
        """Beyond outcome counts: the raw result bytes of a chaos
        replay match at every worker count."""
        spec = mixed_workload_spec(scale=1)
        spec["steps"] = 2
        seen = []
        for w in WORKER_COUNTS:
            clock = ManualClock()
            session = ServeSession(capacity=32, clock=clock, workers=w,
                                   quarantine_cooldown_s=0.5,
                                   failure_cooldown_s=0.5)
            injector = FaultInjector(default_chaos_specs(),
                                     seed=FAULT_SEED, clock=clock)
            with inject(injector):
                out = replay_serve(build_workload(spec), session=session)
            seen.append((_result_bytes(out), out["outcomes"],
                         injector.stats, clock.now()))
        assert seen[1] == seen[0] and seen[2] == seen[0]

    def test_single_worker_pool_never_spawns_threads(self, workload,
                                                     monkeypatch):
        """``workers=1`` is deterministic by construction: the full
        plan/steal/reap pipeline runs inline, no threads at all."""
        import repro.serve.pool as pool_mod

        def boom(*a, **k):
            raise AssertionError("workers=1 must not spawn threads")

        monkeypatch.setattr(pool_mod.threading, "Thread", boom)
        out = replay_serve(workload, workers=1)
        assert all(o == "ok" for o in out["outcomes"])


class TestPartitionProperty:
    @given(menu=mixed_job_menus())
    @settings(max_examples=8, deadline=None)
    def test_pool_partitions_exactly_like_sequential(self, menu, pair,
                                                     edge_pair):
        """Property: for any mixed job set, the pool's planned waves
        form exactly the groups sequential ``_pop_group`` forms — every
        job dispatched exactly once, no silent serialization, no
        double-dispatch."""
        edge, x_edge = edge_pair
        legacy = ServeSession(capacity=16)
        submit_job_menu(legacy, menu, pair, edge, x_edge)
        legacy.drain()
        pooled = ServeSession(capacity=16, workers=2)
        submit_job_menu(pooled, menu, pair, edge, x_edge)
        pooled.drain()
        seq_partition = [r.seqs for r in legacy.dispatch_log]
        pool_partition = [seqs for wave in pooled.scheduler.wave_log
                          for seqs, _key in wave["groups"]]
        assert pool_partition == seq_partition
        covered = sorted(s for seqs in pool_partition for s in seqs)
        assert covered == list(range(len(menu)))   # once each, none lost
        for fut_log in (legacy.dispatch_log, pooled.dispatch_log):
            solo = [r for r in fut_log if len(r.seqs) == 1
                    and r.key[0] == "solo"]
            assert all(r.reason for r in solo)     # solo ⇒ attributed


class TestStealing:
    def test_shared_owner_groups_serialize_on_one_lane(self):
        """Groups sharing a model land in one conflict component: same
        worker, contiguous, in plan order."""
        sched = PoolScheduler(workers=2)
        plan = _fake_plan([2, 2, 2, 2], shared=[(0, 2)])
        comps = sched._components(plan)
        assert sorted(comps) == [0, 1, 3]
        assert [pg.order for pg in comps[0]] == [0, 2]
        lanes = sched._assign(plan, comps)
        placed = [pg.order for lane in lanes for pg in lane]
        assert sorted(placed) == [0, 1, 2, 3]      # exactly once each
        lane_of = {pg.order: w for w, lane in enumerate(lanes)
                   for pg in lane}
        assert lane_of[0] == lane_of[2]
        i0, i2 = lanes[lane_of[0]].index(plan[0]), \
            lanes[lane_of[0]].index(plan[2])
        assert i0 < i2                             # plan order preserved

    def test_steal_pass_rebalances_skewed_components(self):
        """One heavy + three light components on two workers: the
        steal pass moves light components off the loaded lane and logs
        every move."""
        sched = PoolScheduler(workers=2)
        plan = _fake_plan([10, 1, 1, 1])
        lanes = sched._assign(plan, sched._components(plan))
        loads = [sum(pg.rows for pg in lane) for lane in lanes]
        assert sched.steal_log                     # it actually stole
        assert max(loads) == 10                    # heavy comp alone
        for rec in sched.steal_log:
            assert rec.from_worker != rec.to_worker
            assert rec.rows > 0

    def test_steal_plan_is_a_function_of_the_seed(self):
        """Same (plan shape, workers, steal_seed) → identical steal
        log, wave after wave."""
        def steal_trace(seed):
            sched = PoolScheduler(workers=2, steal_seed=seed)
            plan = _fake_plan([5, 1, 1, 1, 1, 1])
            sched._assign(plan, sched._components(plan))
            return [(r.component, r.seqs, r.rows, r.from_worker,
                     r.to_worker) for r in sched.steal_log]

        assert steal_trace(7) == steal_trace(7)

    def test_results_are_placement_independent(self, workload):
        """Different steal seeds place components differently; per-job
        bytes must not notice."""
        outs = []
        for seed in (0, 1234):
            session = ServeSession(capacity=64, workers=2,
                                   steal_seed=seed)
            outs.append(_result_bytes(
                replay_serve(workload, session=session)))
        assert outs[0] == outs[1]


class TestShards:
    def test_shard_routing_survives_object_identity(self):
        """Keys embed ``id(model)``; the sharded cache canonicalizes
        registered owners to adoption-order indices, so two processes'
        worth of object identities route identically."""
        a, b = ShardedPlanCache(nshards=4), ShardedPlanCache(nshards=4)
        ma, mb = object(), object()
        a.register_owner(ma)
        b.register_owner(mb)
        key_a = ("predict", id(ma), (3, 12, 12), "<f4")
        key_b = ("predict", id(mb), (3, 12, 12), "<f4")
        assert a.shard_index(key_a) == b.shard_index(key_b)
        assert a.shard_index(key_a) == a.shard_index(key_a)

    def test_shard_eviction_midflight_rebuilds_bit_identical(self,
                                                             workload):
        """A starved shard budget forces mid-replay evictions; evicted
        plans rebuild and revalidate, and parity still holds."""
        ref = replay_sequential(workload)
        ref_bytes = [(r.dtype.str, r.shape, r.tobytes())
                     for r in ref["results"]]
        session = ServeSession(capacity=64, workers=2,
                               budget_bytes=20_000)
        out = replay_serve(workload, session=session)
        assert _result_bytes(out) == ref_bytes
        stats = session.stats["plan_cache"]
        assert stats["evictions"] >= 1             # starvation happened
        assert stats["nshards"] == 2
        assert len(stats["per_shard"]) == 2

    def test_per_shard_breaker_quarantines_heal_independently(self):
        """A trip on one shard's key neither quarantines nor heals
        through the other shard."""
        clock = ManualClock()
        br = ShardedCircuitBreaker(nshards=2, cooldown_s=1.0,
                                   clock=clock, route=lambda k: k)
        br.record_failure(0, 0)
        assert br.level(0) == 1 and br.level(2) == 0   # shard 0 only
        assert [s["trips"] for s in br.stats["per_shard"]] == [1, 0]
        br.record_failure(1, 0)                        # shard 1 trips too
        clock.advance(1.5)
        assert br.level(0) == 0                        # probe one rung up
        br.record_success(0, 0)                        # heal shard 0
        assert [s["heals"] for s in br.stats["per_shard"]] == [1, 0]
        assert br.stats["quarantined_keys"] == 0       # probes pending
        assert br.level(1) == 0 and br.shards[1].heals == 0

    def test_breaker_shard_agrees_with_cache_shard(self):
        """The session routes breaker keys through the cache's router,
        so a key's plan shard and breaker shard always coincide."""
        session = ServeSession(workers=3)
        key = ("attack", ("pgd", 2), (3, 12, 12), "<f4")
        assert session.breaker.shard_index(key) == \
            session.plan_cache.shard_index(key)


class TestResultPlane:
    def test_completion_wins_ties_at_the_deadline_boundary(self, pair):
        """Regression: an injected queue latency pushes the clock past
        the drain budget in the same tick the head group was planned.
        The planned group still executes and reaps — its future
        resolves instead of raising with a completed-but-unreaped job —
        while the unplanned job stays cleanly pending."""
        orig, _quant, x, _y = pair
        other = build_model("resnet", num_classes=6, width=4, seed=9)
        other.eval()
        clock = ManualClock()
        session = ServeSession(capacity=8, clock=clock, workers=1)
        f1 = session.submit_predict(orig, x[:2])
        f2 = session.submit_predict(other, x[:2])
        injector = FaultInjector(
            [FaultSpec("queue.tick", "latency", rate=1.0, delay_s=1.0)],
            seed=FAULT_SEED, clock=clock)
        with inject(injector):
            value = f1.result(timeout=0.5)     # budget < first tick
        assert value is not None and f1.done and f1.outcome == "ok"
        assert not f2.done                     # never planned: pending
        assert len(session.scheduler.pending) == 1
        assert f2.result() is not None         # a later drain serves it
        assert f2.outcome == "ok"

    def test_zero_timeout_stays_pending_under_pool(self, pair):
        """The legacy bounded-wait pin, on the pool: ``timeout=0.0``
        raises a structured DeadlineError before any wave is planned
        and the job remains serveable."""
        orig, _quant, x, _y = pair
        session = ServeSession(capacity=8, clock=ManualClock(), workers=2)
        fut = session.submit_predict(orig, x[:2])
        with pytest.raises(DeadlineError):
            fut.result(timeout=0.0)
        assert not fut.done
        assert len(session.scheduler.pending) == 1
        assert session.dispatch_log == []      # nothing was dispatched
        assert fut.result() is not None        # a later drain serves it

    def test_offset_clock_views_do_not_move_the_shared_clock(self):
        base = ManualClock()
        base.advance(3.0)
        view = OffsetClock(base.now() + 0.5)
        view.advance(2.0)
        assert view.now() == 5.5
        assert view.elapsed == 2.0
        assert base.now() == 3.0               # untouched by the view

    def test_pool_stats_surface(self, workload):
        session = ServeSession(capacity=64, workers=2)
        replay_serve(workload, session=session)
        pool = session.stats["pool"]
        assert pool["workers"] == 2 and pool["backend"] == "thread"
        assert pool["waves"] >= 1
        assert pool["steals"] == len(session.scheduler.steal_log)
        legacy = ServeSession(capacity=64)
        assert "pool" not in legacy.stats


class TestBackendSeam:
    def test_process_backend_is_a_designed_seam(self):
        with pytest.raises(NotImplementedError, match="shared memory"):
            PoolScheduler(workers=2, backend="process")
        with pytest.raises(NotImplementedError, match="seam"):
            ServeSession(workers=2, pool_backend="process")

    def test_backend_and_worker_validation(self):
        with pytest.raises(ValueError, match="backend"):
            PoolScheduler(workers=2, backend="fiber")
        with pytest.raises(ValueError, match="workers"):
            PoolScheduler(workers=0)
        with pytest.raises(ValueError, match="workers"):
            ServeSession(workers=0)
