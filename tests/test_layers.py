"""Layer behaviours: conv/linear hooks, batch norm, pooling wrappers."""

import numpy as np
import pytest

from repro.nn import (AvgPool2d, BatchNorm1d, BatchNorm2d, Conv2d, Dropout,
                      Flatten, GlobalAvgPool2d, Identity, Linear, MaxPool2d,
                      ReLU, Tensor)
from repro.quantization import FakeQuantize


class TestLinear:
    def test_forward_shape(self, rng):
        lin = Linear(5, 3, rng=rng)
        assert lin(Tensor(np.ones((4, 5)))).shape == (4, 3)

    def test_no_bias(self, rng):
        lin = Linear(5, 3, rng=rng, bias=False)
        assert lin.bias is None
        zero_out = lin(Tensor(np.zeros((1, 5))))
        assert np.allclose(zero_out.data, 0)

    def test_weight_mask_zeroes_columns(self, rng):
        lin = Linear(4, 2, rng=rng, bias=False)
        mask = np.zeros_like(lin.weight.data)
        lin.set_weight_mask(mask)
        assert np.allclose(lin(Tensor(np.ones((2, 4)))).data, 0)

    def test_mask_shape_validated(self, rng):
        lin = Linear(4, 2, rng=rng)
        with pytest.raises(ValueError):
            lin.set_weight_mask(np.ones((3, 3)))

    def test_mask_removable(self, rng):
        lin = Linear(4, 2, rng=rng)
        lin.set_weight_mask(np.zeros_like(lin.weight.data))
        lin.set_weight_mask(None)
        assert lin.weight_mask is None


class TestConv2d:
    def test_forward_shape(self, rng):
        conv = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        assert conv(Tensor(np.ones((2, 3, 8, 8)))).shape == (2, 8, 4, 4)

    def test_depthwise_shape(self, rng):
        conv = Conv2d(4, 4, 3, padding=1, groups=4, rng=rng)
        assert conv(Tensor(np.ones((1, 4, 6, 6)))).shape == (1, 4, 6, 6)
        assert conv.weight.shape == (4, 1, 3, 3)

    def test_weight_fake_quant_hook_applied(self, rng):
        conv = Conv2d(2, 2, 3, padding=1, rng=rng, bias=False)
        x = Tensor(rng.normal(size=(1, 2, 5, 5)))
        before = conv(x).data.copy()
        conv.weight_fake_quant = FakeQuantize.for_weights(bits=2)
        conv.train()
        after = conv(x).data
        assert not np.allclose(before, after)   # 2-bit grid is very coarse

    def test_activation_post_process_hook(self, rng):
        conv = Conv2d(2, 2, 3, padding=1, rng=rng)
        conv.activation_post_process = FakeQuantize.for_activations(bits=3)
        conv.train()
        out = conv(Tensor(rng.normal(size=(1, 2, 5, 5))))
        # 3-bit activations: at most 8 distinct values
        assert len(np.unique(out.data)) <= 8


class TestBatchNorm:
    def test_train_normalizes_batch(self, rng):
        bn = BatchNorm2d(3)
        bn.train()
        out = bn(Tensor(rng.normal(2.0, 3.0, size=(16, 3, 6, 6))))
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0, atol=1e-6)
        assert np.allclose(out.data.std(axis=(0, 2, 3)), 1, atol=1e-2)

    def test_running_stats_update(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        bn.train()
        x = rng.normal(5.0, 1.0, size=(8, 2, 4, 4))
        bn(Tensor(x))
        assert (bn.running_mean > 1.0).all()   # moved toward batch mean 5

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        bn.train()
        for _ in range(50):
            bn(Tensor(rng.normal(1.0, 2.0, size=(16, 2, 4, 4))))
        bn.eval()
        out = bn(Tensor(rng.normal(1.0, 2.0, size=(64, 2, 4, 4))))
        assert abs(out.data.mean()) < 0.15

    def test_eval_deterministic(self, rng):
        bn = BatchNorm2d(2)
        bn.train()
        bn(Tensor(rng.normal(size=(4, 2, 3, 3))))
        bn.eval()
        x = Tensor(rng.normal(size=(2, 2, 3, 3)))
        assert np.allclose(bn(x).data, bn(x).data)

    def test_batchnorm1d(self, rng):
        bn = BatchNorm1d(4)
        bn.train()
        out = bn(Tensor(rng.normal(3.0, 2.0, size=(32, 4))))
        assert np.allclose(out.data.mean(axis=0), 0, atol=1e-6)

    def test_gradients_flow(self, rng):
        bn = BatchNorm2d(2)
        bn.train()
        x = Tensor(rng.normal(size=(4, 2, 3, 3)), requires_grad=True)
        bn(x).sum().backward()
        assert x.grad is not None
        assert bn.weight.grad is not None and bn.bias.grad is not None


class TestMisc:
    def test_relu_layer(self):
        assert np.allclose(ReLU()(Tensor(np.array([-1.0, 2.0]))).data, [0, 2])

    def test_flatten(self, rng):
        assert Flatten()(Tensor(rng.normal(size=(2, 3, 4, 5)))).shape == (2, 60)

    def test_pool_wrappers(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 6)))
        assert MaxPool2d(2)(x).shape == (1, 2, 3, 3)
        assert AvgPool2d(3, stride=3)(x).shape == (1, 2, 2, 2)
        assert GlobalAvgPool2d()(x).shape == (1, 2)

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(2, 2)))
        assert Identity()(x) is x

    def test_dropout_modes(self):
        d = Dropout(0.5, seed=0)
        x = Tensor(np.ones((50, 50)))
        d.train()
        assert (d(x).data == 0).any()
        d.eval()
        assert np.allclose(d(x).data, 1.0)
