"""Row-reproducible float GEMMs: per-row bits vs batch composition.

The contract under test (repro.nn.rowrep): with the mode on, every
row of a float matmul/conv/linear result — forward and input-gradient,
eager and compiled — is bit-identical whether the row runs alone, in a
shuffled batch, in a ragged batch, or coalesced with strangers' rows.
That bit-independence is what licenses the serving layer to merge float
inference jobs (and mix them into attack dispatch rounds) without
changing a single byte of any tenant's result.
"""

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import rowrep, set_default_dtype
from repro.nn.graph import compile_forward, compile_forward_cached
from repro.nn.tensor import Tensor
from repro.serve import ServeSession
from repro.serve.workload import (build_workload, mixed_workload_spec,
                                  replay_sequential, replay_serve,
                                  verify_parity)
from repro.training import predict_logits


def _rows_match(run, x, rng):
    """Full-batch vs solo-row vs shuffled vs ragged-prefix, bitwise."""
    full = np.asarray(run(x))
    for i in (0, len(x) // 2, len(x) - 1):
        if not np.array_equal(full[i], np.asarray(run(x[i:i + 1]))[0]):
            return False
    perm = rng.permutation(len(x))
    if not np.array_equal(np.asarray(run(x[perm])), full[perm]):
        return False
    cut = max(1, len(x) - 3)
    return np.array_equal(np.asarray(run(x[:cut])), full[:cut])


# --------------------------------------------------------------------- #
# the kernel itself
# --------------------------------------------------------------------- #

class TestRRMatmul:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_composition_independent(self, dtype, rng):
        # rows span several full blocks plus a ragged tail
        a = rng.standard_normal((rowrep.ROW_BLOCK + 67, 37)).astype(dtype)
        b = rng.standard_normal((37, 11)).astype(dtype)
        full = rowrep.rr_matmul(a, b)
        for i in (0, 1, rowrep.ROW_BLOCK - 1, rowrep.ROW_BLOCK, len(a) - 1):
            assert np.array_equal(full[i], rowrep.rr_matmul(a[i:i + 1], b)[0])
        perm = rng.permutation(len(a))
        assert np.array_equal(rowrep.rr_matmul(a[perm], b), full[perm])
        for cut in (1, 96, rowrep.ROW_BLOCK, len(a) - 1):
            assert np.array_equal(rowrep.rr_matmul(a[:cut], b), full[:cut])

    def test_value_close_to_blas_and_out_param(self, rng):
        a = rng.standard_normal((300, 48)).astype(np.float32)
        b = rng.standard_normal((48, 10)).astype(np.float32)
        got = rowrep.rr_matmul(a, b)
        np.testing.assert_allclose(got, a @ b, rtol=1e-5, atol=1e-5)
        out = np.empty((300, 10), dtype=np.float32)
        assert rowrep.rr_matmul(a, b, out=out) is out
        assert np.array_equal(out, got)

    def test_dispatch_seam_respects_mode(self, rng):
        a = rng.standard_normal((64, 16)).astype(np.float32)
        b = rng.standard_normal((16, 4)).astype(np.float32)
        assert not rowrep.enabled()
        assert np.array_equal(rowrep.matmul(a, b), np.matmul(a, b))
        with rowrep.row_reproducible():
            assert rowrep.enabled()
            assert rowrep.mode_key() == ("rr", rowrep.ROW_BLOCK)
            assert np.array_equal(rowrep.matmul(a, b), rowrep.rr_matmul(a, b))
        assert not rowrep.enabled()
        assert rowrep.mode_key() == ("rr", 0)

    def test_integer_and_nd_inputs_stay_raw(self, rng):
        # the seam only rewrites 2D float GEMMs; exact integer matmuls
        # and batched 3D matmuls keep BLAS verbatim
        ai = rng.integers(-50, 50, (8, 6)).astype(np.int64)
        bi = rng.integers(-50, 50, (6, 3)).astype(np.int64)
        a3 = rng.standard_normal((2, 5, 4)).astype(np.float32)
        b3 = rng.standard_normal((2, 4, 3)).astype(np.float32)
        with rowrep.row_reproducible():
            assert np.array_equal(rowrep.matmul(ai, bi), np.matmul(ai, bi))
            assert np.array_equal(rowrep.matmul(a3, b3), np.matmul(a3, b3))


# --------------------------------------------------------------------- #
# eager + compiled model passes (conv2d, linear, matmul in one net)
# --------------------------------------------------------------------- #

class TestModelRowParity:
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    @pytest.mark.parametrize("arch", ["resnet", "lenet"])
    def test_forward_eager_and_compiled(self, arch, dtype, rng):
        set_default_dtype(dtype)
        kw = ({"in_channels": 1, "image_size": 12} if arch == "lenet"
              else {})
        m = build_model(arch, num_classes=6, width=4, seed=0, **kw)
        m.eval()
        ch = kw.get("in_channels", 3)
        x = rng.random((13, ch, 12, 12)).astype(dtype)
        with rowrep.row_reproducible():
            def eager(xb):
                return m(Tensor(xb)).data.copy()
            assert _rows_match(eager, x, rng)
            prog = compile_forward(m, x[:8])
            assert _rows_match(prog.replay, x, rng)
            # the degradation ladder's byte-neutrality in one line:
            # compiled == eager bitwise under the mode
            assert np.array_equal(prog.replay(x), eager(x))

    def test_input_gradient_eager_and_compiled(self, rng):
        set_default_dtype("float32")
        m = build_model("resnet", num_classes=6, width=4, seed=0)
        m.eval()
        x = rng.random((12, 3, 12, 12)).astype(np.float32)
        with rowrep.row_reproducible():
            prog = compile_forward(m, x[:8])

            def cgrad(xb):
                _, g = prog.value_and_input_grad(
                    xb, lambda o: np.ones_like(o))
                return g

            def egrad(xb):
                xt = Tensor(xb, requires_grad=True)
                m(xt).backward(np.ones((len(xb), 6), dtype=xb.dtype))
                return xt.grad.copy()

            assert _rows_match(cgrad, x, rng)
            assert _rows_match(egrad, x, rng)
            assert np.array_equal(cgrad(x), egrad(x))

    def test_mode_off_is_bitwise_unchanged(self, rng):
        # with the mode off nothing in the forward path may differ from
        # plain BLAS — the seam must cost nothing when unused
        set_default_dtype("float32")
        m = build_model("resnet", num_classes=6, width=4, seed=0)
        m.eval()
        x = rng.random((9, 3, 12, 12)).astype(np.float32)
        before = m(Tensor(x)).data.copy()
        with rowrep.row_reproducible():
            pass
        assert np.array_equal(m(Tensor(x)).data, before)


# --------------------------------------------------------------------- #
# plan caching: the mode is part of every float plan's identity
# --------------------------------------------------------------------- #

def test_compiled_plans_are_mode_keyed(rng):
    set_default_dtype("float32")
    m = build_model("resnet", num_classes=6, width=4, seed=0)
    m.eval()
    x = rng.random((8, 3, 12, 12)).astype(np.float32)
    plain = compile_forward_cached(m, x)
    with rowrep.row_reproducible():
        rr_plan = compile_forward_cached(m, x)
        assert compile_forward_cached(m, x) is rr_plan
    assert plain is not None and rr_plan is not None
    # distinct plans: the rr plan bakes fixed-order GEMM closures at
    # build time, so sharing one entry across modes would serve wrong
    # bits to whichever mode compiled second
    assert plain is not rr_plan
    assert compile_forward_cached(m, x) is plain


# --------------------------------------------------------------------- #
# serving: coalesced float dispatches are byte-neutral, solo is loud
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def float_model():
    # module-scoped fixtures run before the function-scoped autouse
    # dtype guard, so restore the policy here rather than leak float32
    from repro.nn import get_default_dtype
    before = get_default_dtype()
    set_default_dtype("float32")
    try:
        m = build_model("resnet", num_classes=6, width=4, seed=0)
        m.eval()
    finally:
        set_default_dtype(before)
    return m


class TestServeFloatCoalescing:
    def _reference(self, model, batches):
        out = []
        for x in batches:
            with rowrep.row_reproducible():
                out.append(predict_logits(model, x))
        return out

    def test_coalesced_matches_solo_and_sequential(self, float_model, rng):
        set_default_dtype("float32")
        batches = [rng.random((n, 3, 12, 12)).astype(np.float32)
                   for n in (7, 33, 16)]
        ref = self._reference(float_model, batches)
        on = ServeSession(capacity=32)
        got_on = [f.result() for f in
                  [on.submit_predict(float_model, x) for x in batches]]
        off = ServeSession(capacity=32, float_coalesce=False)
        got_off = [f.result() for f in
                   [off.submit_predict(float_model, x) for x in batches]]
        for r, a, b in zip(ref, got_on, got_off):
            assert np.array_equal(r, a)
            assert np.array_equal(r, b)
        [rec] = on.dispatch_log
        assert rec.key[0] == "predict_float" and rec.coalesced
        assert rec.key[-1] == ("rr", rowrep.ROW_BLOCK)

    def test_uncoalesced_float_jobs_are_attributed(self, float_model, rng):
        set_default_dtype("float32")
        x = rng.random((5, 3, 12, 12)).astype(np.float32)
        session = ServeSession(capacity=32, float_coalesce=False)
        futures = [session.submit_predict(float_model, x) for _ in range(2)]
        [f.result() for f in futures]
        recs = session.dispatch_log
        assert len(recs) == 2
        for rec in recs:
            # solo is explicit, never silent: key says solo, record says why
            assert rec.key[0] == "solo" and not rec.coalesced
            assert rec.reason == "float-coalesce-disabled"

    def test_mixed_attack_and_float_share_a_round(self, rng):
        set_default_dtype("float32")
        from repro.attacks import DIVA
        from repro.quantization import calibrate, prepare_qat
        orig = build_model("resnet", num_classes=6, width=4, seed=0)
        orig.eval()
        calib = rng.random((16, 3, 12, 12)).astype(np.float32)
        adapted = prepare_qat(orig, weight_bits=8)
        calibrate(adapted, calib)
        adapted.freeze()
        adapted.eval()
        xa = rng.random((6, 3, 12, 12)).astype(np.float32)
        from repro.training import predict_labels
        ya = predict_labels(orig, xa)
        xf = rng.random((10, 3, 12, 12)).astype(np.float32)
        make = lambda: DIVA(orig, adapted, c=1.0, eps=8 / 255, steps=4)
        ref_adv = make().generate(xa, ya)
        with rowrep.row_reproducible():
            ref_logits = predict_logits(adapted, xf)

        session = ServeSession(capacity=32)
        fa = session.submit_attack(make(), xa, ya)
        ff = session.submit_predict(adapted, xf)
        adv, logits = fa.result(), ff.result()
        assert np.array_equal(adv, ref_adv)
        assert np.array_equal(logits, ref_logits)
        # one mixed round: the float rider joined the attack head's group
        [rec] = session.dispatch_log
        assert rec.key[0] == "attack" and rec.coalesced
        assert len(rec.seqs) == 2


def test_workload_parity_covers_float_jobs(rng):
    set_default_dtype("float32")
    spec = mixed_workload_spec(scale=1)
    assert any(j["kind"] == "predict_float" for j in spec["jobs"])
    wl = build_workload(spec)
    rep = verify_parity(wl, capacity=32)
    assert rep["outcome_counts"] == {"ok": len(wl.jobs)}
    # the gate must hold with coalescing off too (solo path parity)
    rep_off = verify_parity(wl, capacity=32, float_coalesce=False)
    assert rep_off["outcome_counts"] == {"ok": len(wl.jobs)}
    assert rep_off["dispatches"] > rep["dispatches"]


def test_serve_results_do_not_depend_on_coalescing(rng):
    # same workload served twice, coalescing on/off: identical bytes
    set_default_dtype("float32")
    wl = build_workload(mixed_workload_spec(scale=1))
    a = replay_serve(wl, capacity=32)
    b = replay_serve(wl, capacity=32, float_coalesce=False)
    seq = replay_sequential(wl)
    for ra, rb, rs in zip(a["results"], b["results"], seq["results"]):
        assert np.array_equal(ra, rb) and np.array_equal(ra, rs)
