"""Figure 6: the quantization headline results.

- 6a: top-1 evasive success — PGD vs blackbox / semi-blackbox / whitebox
  DIVA across the three architectures (paper: whitebox 92.3-97%,
  semi-blackbox 71.1-96.2%, blackbox 30.3-77.2%, PGD 30.2-50.9%);
- 6b: top-k success for the same grid (2.6-4.2x PGD for whitebox);
- 6c: confidence delta — natural images vs PGD vs DIVA (paper: ~7.9%
  natural, 18.6-25% PGD, 56.6-72.4% DIVA);
- 6d: top-1 success vs number of attack steps, DIVA vs PGD on ResNet
  (paper: PGD plateaus ~40.8% by step 7, DIVA reaches 96.9% by step 11).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..attacks import DIVA, PGD, AttackTrace
from ..metrics import evaluate_attack, natural_confidence_delta
from .config import ARCHITECTURES, ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results


def run(cfg: Optional[ExperimentConfig] = None,
        pipeline: Optional[Pipeline] = None, verbose: bool = True) -> Dict:
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)

    results: Dict = {"per_arch": {}}
    rows = []
    for arch in ARCHITECTURES:
        orig = pipe.original(arch)
        quant = pipe.quantized(arch)
        surr_orig = pipe.surrogate_original(arch)
        bb_orig = pipe.blackbox_surrogate_original(arch)
        bb_adapted = pipe.surrogate_adapted(arch)
        atk_set = pipe.attack_set([orig, quant], f"fig6-{arch}")

        kw = dict(eps=cfg.eps, alpha=cfg.alpha, steps=cfg.steps)
        attacks = {
            "pgd": PGD(quant, **kw),
            "diva": DIVA(orig, quant, c=cfg.c, **kw),
            "semi_blackbox_diva": DIVA(surr_orig, quant, c=cfg.c, **kw),
            "blackbox_diva": DIVA(bb_orig, bb_adapted, c=cfg.c, **kw),
        }
        arch_res: Dict = {
            "natural_confidence_delta":
                natural_confidence_delta(orig, quant, atk_set.x, atk_set.y),
        }
        for name, attack in attacks.items():
            x_adv = attack.generate(atk_set.x, atk_set.y)
            rep = evaluate_attack(orig, quant, x_adv, atk_set.y, topk=cfg.topk)
            arch_res[name] = {
                "top1_success": rep.top1_success_rate,
                "topk_success": rep.top5_success_rate,
                "confidence_delta": rep.confidence_delta,
                "attack_only_success": rep.attack_only_success_rate,
            }
        results["per_arch"][arch] = arch_res
        rows.append([arch,
                     f"{arch_res['pgd']['top1_success']:.1%}",
                     f"{arch_res['blackbox_diva']['top1_success']:.1%}",
                     f"{arch_res['semi_blackbox_diva']['top1_success']:.1%}",
                     f"{arch_res['diva']['top1_success']:.1%}"])

    table_a = format_table(
        ["Architecture", "PGD", "Blackbox DIVA", "Semi-BB DIVA", "DIVA"],
        rows, title="Figure 6a — top-1 evasive success rate")
    results["table_6a"] = table_a

    rows_c = []
    for arch in ARCHITECTURES:
        r = results["per_arch"][arch]
        rows_c.append([arch, f"{r['natural_confidence_delta']:.1%}",
                       f"{r['pgd']['confidence_delta']:.1%}",
                       f"{r['diva']['confidence_delta']:.1%}"])
    table_c = format_table(
        ["Architecture", "Natural image", "PGD", "DIVA"],
        rows_c, title="Figure 6c — confidence delta (p_orig[y] - p_quant[y])")
    results["table_6c"] = table_c

    if verbose:
        print(table_a)
        rows_b = []
        for arch in ARCHITECTURES:
            r = results["per_arch"][arch]
            rows_b.append([arch, f"{r['pgd']['topk_success']:.1%}",
                           f"{r['blackbox_diva']['topk_success']:.1%}",
                           f"{r['semi_blackbox_diva']['topk_success']:.1%}",
                           f"{r['diva']['topk_success']:.1%}"])
        print(format_table(
            ["Architecture", "PGD", "Blackbox DIVA", "Semi-BB DIVA", "DIVA"],
            rows_b, title=f"Figure 6b — top-{cfg.topk} evasive success rate"))
        print(table_c)
    save_results("fig6", results)
    return results


def run_steps(cfg: Optional[ExperimentConfig] = None,
              pipeline: Optional[Pipeline] = None, arch: str = "resnet",
              verbose: bool = True) -> Dict:
    """Figure 6d: top-1 evasive success at every step count 1..t."""
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    orig = pipe.original(arch)
    quant = pipe.quantized(arch)
    atk_set = pipe.attack_set([orig, quant], f"fig6d-{arch}")

    curves: Dict[str, List[float]] = {}
    for name, attack in [
        ("pgd", PGD(quant, eps=cfg.eps, alpha=cfg.alpha, steps=cfg.steps)),
        ("diva", DIVA(orig, quant, c=cfg.c, eps=cfg.eps, alpha=cfg.alpha,
                      steps=cfg.steps)),
    ]:
        trace = AttackTrace()
        attack.generate(atk_set.x, atk_set.y, trace=trace)
        curve = []
        for snap in trace.snapshots:
            rep = evaluate_attack(orig, quant, snap, atk_set.y, topk=cfg.topk)
            curve.append(rep.top1_success_rate)
        curves[name] = curve

    results = {"arch": arch, "steps": list(range(1, cfg.steps + 1)),
               "curves": curves}
    if verbose:
        rows = [[t + 1, f"{curves['pgd'][t]:.1%}", f"{curves['diva'][t]:.1%}"]
                for t in range(cfg.steps)]
        print(format_table(["Step", "PGD", "DIVA"], rows,
                           title=f"Figure 6d — top-1 success vs steps ({arch})"))
    save_results("fig6d", results)
    return results
