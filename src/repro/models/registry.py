"""Model registry: build any evaluated architecture by name.

The paper's experiment grid is (architecture x adaptation x attack); a
string-keyed registry lets the experiment harness sweep architectures the
same way the paper's scripts sweep TF Keras applications.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..nn.module import Module
from .densenet import DenseNet
from .lenet import LeNet
from .mobilenet import MobileNet
from .resnet import ResNet
from .vggface import VGGFaceNet

_BUILDERS: Dict[str, Callable[..., Module]] = {}


def register_model(name: str, builder: Callable[..., Module]) -> None:
    """Register a model builder under ``name`` (lowercased)."""
    key = name.lower()
    if key in _BUILDERS:
        raise ValueError(f"model {name!r} already registered")
    _BUILDERS[key] = builder


def build_model(name: str, **kwargs) -> Module:
    """Instantiate a registered architecture.

    Examples
    --------
    >>> m = build_model("resnet", num_classes=10, width=8, seed=0)
    """
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return _BUILDERS[key](**kwargs)


def available_models() -> List[str]:
    return sorted(_BUILDERS)


register_model("resnet", ResNet)
register_model("mobilenet", MobileNet)
register_model("densenet", DenseNet)
register_model("lenet", LeNet)
register_model("vggface", VGGFaceNet)
