"""Optimizers (SGD with momentum/Nesterov, Adam) and LR schedules."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer over a flat list of parameters."""

    def __init__(self, params: Sequence[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def apply_gradients(self, pairs) -> None:
        """Apply externally computed gradients (compiled training steps).

        ``pairs`` is a sequence of ``(parameter, gradient-or-None)``.
        The base implementation adopts the gradients and runs
        :meth:`step`, then clears them; SGD/Adam override with fused
        in-place updates whose arithmetic is element-for-element
        identical to ``step()`` (bit-identical parameters), just without
        the per-step grad adoption and state reallocation.
        """
        for p, g in pairs:
            p.grad = g
        self.step()
        for p, _ in pairs:
            p.grad = None


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, weight decay, Nesterov."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(id(p))
                v = self.momentum * v + g if v is not None else g.copy()
                self._velocity[id(p)] = v
                g = g + self.momentum * v if self.nesterov else v
            p.data -= self.lr * g

    def apply_gradients(self, pairs) -> None:
        """Fused update: ``v *= m; v += g`` evaluates ``fl(fl(m*v) + g)``
        per element exactly as ``m*v + g`` does, so the velocity — and
        therefore every parameter — matches :meth:`step` bit-for-bit
        while reusing the velocity buffers in place."""
        lr, mom, wd = self.lr, self.momentum, self.weight_decay
        vel = self._velocity
        for p, g in pairs:
            if g is None:
                continue
            if wd:
                g = g + wd * p.data
            if mom:
                v = vel.get(id(p))
                if v is None:
                    v = g.copy()
                    vel[id(p)] = v
                else:
                    v *= mom
                    v += g
                g = g + mom * v if self.nesterov else v
            p.data -= lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with optional decoupled weight decay (AdamW)."""

    def __init__(self, params: Sequence[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, decoupled: bool = True):
        super().__init__(params, lr)
        self.b1, self.b2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled = decoupled
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.b1 ** self._t
        b2t = 1.0 - self.b2 ** self._t
        for p in self.params:
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay and not self.decoupled:
                g = g + self.weight_decay * p.data
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            m = self.b1 * m + (1 - self.b1) * g if m is not None else (1 - self.b1) * g
            v = self.b2 * v + (1 - self.b2) * g * g if v is not None else (1 - self.b2) * g * g
            self._m[id(p)], self._v[id(p)] = m, v
            update = (m / b1t) / (np.sqrt(v / b2t) + self.eps)
            if self.weight_decay and self.decoupled:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update

    def apply_gradients(self, pairs) -> None:
        """Fused update: the moment recurrences run in place
        (``m *= b1; m += (1-b1)*g`` is element-wise ``fl(fl(b1*m) +
        fl((1-b1)*g))``, identical to :meth:`step`'s fresh-array form),
        so parameters stay bit-identical while the per-step moment
        reallocation disappears."""
        self._t += 1
        b1t = 1.0 - self.b1 ** self._t
        b2t = 1.0 - self.b2 ** self._t
        for p, g in pairs:
            if g is None:
                continue
            if self.weight_decay and not self.decoupled:
                g = g + self.weight_decay * p.data
            gm = (1 - self.b1) * g
            gv = (1 - self.b2) * g * g
            m = self._m.get(id(p))
            if m is None:
                self._m[id(p)], self._v[id(p)] = gm, gv
                m, v = gm, gv
            else:
                v = self._v[id(p)]
                m *= self.b1
                m += gm
                v *= self.b2
                v += gv
            update = (m / b1t) / (np.sqrt(v / b2t) + self.eps)
            if self.weight_decay and self.decoupled:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update


class LRScheduler:
    """Base learning-rate schedule wrapping an optimizer."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()

    def get_lr(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class StepLR(LRScheduler):
    """Multiply LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.epoch // self.step_size))


class CosineLR(LRScheduler):
    """Cosine annealing from base LR to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        self.t_max = max(1, t_max)
        self.min_lr = min_lr

    def get_lr(self) -> float:
        t = min(self.epoch, self.t_max)
        cos = 0.5 * (1 + np.cos(np.pi * t / self.t_max))
        return self.min_lr + (self.base_lr - self.min_lr) * cos
