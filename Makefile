PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-all

test:
	$(PYTHON) -m pytest -q

bench:
	$(PYTHON) -m repro.benchrunner

bench-all:
	$(PYTHON) -m repro.benchrunner --all
