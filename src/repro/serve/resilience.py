"""Resilience primitives for the serving control plane.

The serving layer's fault story has four moving parts, all defined
here so every module (scheduler, session, cache, workload) shares one
vocabulary:

- **the ServeError taxonomy** — every way a submitted job can fail to
  return a normal result is a :class:`ServeError` subclass, so a tenant
  can switch on the class instead of parsing messages: admission
  rejects (:class:`AdmissionError` / :class:`ShedError` /
  :class:`QuotaError`), dispatch failures (:class:`JobError`, chained
  to the root cause), and injected chaos faults
  (:class:`~repro.serve.faults.InjectedFault`).
- **clocks** — all deadline, quarantine-cooldown and failure-re-probe
  arithmetic reads a :class:`Clock` object instead of ``time``
  directly, so the fault-injection harness can drive a
  :class:`ManualClock` deterministically (latency faults *advance* the
  clock; nothing ever sleeps in tests).
- **deadline tokens** — a :class:`DeadlineToken` carries per-row
  absolute deadlines into the attack step loop
  (:func:`~repro.attacks.engine.run_scheduled` and the legacy
  full-batch loop).  Rows whose deadline passes retire *between*
  compiled steps with their best-so-far iterate; the token records
  which rows expired and after how many steps, and the scheduler flags
  the job's future ``deadline-degraded`` instead of failing it.
- **the circuit breaker** — per-dispatch-key quarantine with cool-down
  re-probe, implementing the degradation ladder
  (coalesced-compiled → solo-compiled → eager).  A key that fails at
  rung *L* is quarantined at rung *L + 1* for ``cooldown_s``; after the
  cool-down the next dispatch probes one rung back up, so transient
  faults heal and permanent ones settle at the eager floor.

:class:`AdmissionController` rounds the set out: a bounded queue with
an explicit reject/shed policy and per-tenant quotas, consulted by
:meth:`ServeSession.submit_attack <repro.serve.session.ServeSession.
submit_attack>` before anything touches the scheduler.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

# --------------------------------------------------------------------- #
# error taxonomy
# --------------------------------------------------------------------- #


class ServeError(RuntimeError):
    """Base class of every structured serving-layer failure.

    ``JobFuture.result()`` only ever raises ServeError subclasses: a
    tenant that catches this class has seen every failure mode the
    control plane can produce.
    """


class JobError(ServeError):
    """A job's dispatch failed at every rung of the degradation ladder.

    Raised by :meth:`JobFuture.result <repro.serve.scheduler.JobFuture.
    result>` with the root cause chained (``raise ... from exc``), and
    — when a coalesced dispatch failed first — the coalesced failure
    chained behind the solo retry's own error, so the whole ladder is
    attributable post-hoc from ``__cause__`` links.
    """


class AdmissionError(ServeError):
    """The job was refused at submit: the queue is full (reject policy)."""


class ShedError(AdmissionError):
    """The job was admitted, then shed from the queue to make room for a
    later arrival (shed policy drops the oldest pending work first)."""


class QuotaError(AdmissionError):
    """The submitting tenant exceeded its pending-rows quota."""


class DeadlineError(ServeError):
    """A bounded wait ran out before the job resolved.

    Raised by :meth:`JobFuture.result(timeout=...) <repro.serve.
    scheduler.JobFuture.result>` when the drain budget elapses with the
    job still pending, and by the networked client when a per-request
    deadline passes before a response lands.  Distinct from the
    ``deadline-degraded`` *outcome*: that one returns a best-so-far
    batch; this one means the caller stopped waiting."""


# --------------------------------------------------------------------- #
# clocks
# --------------------------------------------------------------------- #


class Clock:
    """Monotonic time source for deadlines, cool-downs and re-probes."""

    def now(self) -> float:
        return time.monotonic()


class ManualClock(Clock):
    """Deterministic clock for the fault-injection harness.

    Time only moves when something calls :meth:`advance` — the
    injector's latency faults do, which is how "a slow dispatch blew
    the deadline" is reproduced bit-for-bit from a seed.

    >>> c = ManualClock()
    >>> c.advance(1.5); c.now()
    1.5
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("clocks only move forward")
        self._now += float(dt)


class OffsetClock(Clock):
    """A worker-local clock view: frozen base plus locally-advanced time.

    The pool executes one wave's groups concurrently, but latency
    faults and deadline polls must read *deterministic* time — a shared
    ``ManualClock`` advanced from N threads would make deadline
    expiries depend on thread interleaving.  Each planned group instead
    gets an OffsetClock based at the wave's start time (plus the time
    its worker already spent on earlier groups this wave); latency
    faults advance only the local offset.  At reap, the single writer
    advances the real clock by the *maximum* per-worker elapsed time —
    wave wall-time is the slowest worker, exactly as real parallel
    hardware would bill it.

    >>> c = OffsetClock(10.0)
    >>> c.advance(0.5); c.now()
    10.5
    >>> c.elapsed
    0.5
    """

    def __init__(self, base: float):
        self._base = float(base)
        self._local = 0.0

    def now(self) -> float:
        return self._base + self._local

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("clocks only move forward")
        self._local += float(dt)

    @property
    def elapsed(self) -> float:
        return self._local


# --------------------------------------------------------------------- #
# deadlines
# --------------------------------------------------------------------- #


class DeadlineToken:
    """Per-row absolute deadlines threaded through the attack step loop.

    The step loops call :meth:`poll` once per pass with the active row
    indices and retire the rows whose deadline has passed, then report
    them via :meth:`expire`; retired rows keep their current (best-so-
    far) iterate.  ``expired``/``steps_done`` let the scheduler flag
    the owning job ``deadline-degraded`` and say how far it got.

    :meth:`poll` is also the harness's per-step injection point
    (``attack.step``): latency faults advance the clock *between
    compiled steps*, which is exactly when a real slow kernel would
    burn deadline budget.
    """

    def __init__(self, deadlines: np.ndarray, clock: Clock):
        self.deadlines = np.asarray(deadlines, dtype=np.float64)
        self.clock = clock
        n = len(self.deadlines)
        self.expired = np.zeros(n, dtype=bool)
        self.steps_done = np.zeros(n, dtype=np.intp)

    @classmethod
    def for_rows(cls, row_deadlines: Iterable[Optional[float]],
                 clock: Clock) -> "DeadlineToken":
        """Token over per-row deadlines; None rows never expire."""
        arr = np.array([np.inf if d is None else float(d)
                        for d in row_deadlines], dtype=np.float64)
        return cls(arr, clock)

    def poll(self, rows: np.ndarray) -> np.ndarray:
        """Expired-now mask for ``rows`` (does not record — the loop
        decides which rows actually retire and calls :meth:`expire`)."""
        from . import faults
        faults.fire("attack.step")
        return self.deadlines[rows] <= self.clock.now()

    def expire(self, rows: np.ndarray, steps_done) -> None:
        """Record that ``rows`` retired early after ``steps_done`` steps."""
        self.expired[rows] = True
        self.steps_done[rows] = steps_done

    def job_slice_expired(self, lo: int, hi: int) -> bool:
        return bool(self.expired[lo:hi].any())


# --------------------------------------------------------------------- #
# quarantine / degradation ladder
# --------------------------------------------------------------------- #

#: the degradation ladder, in rung order; rung index == breaker level
LADDER = ("coalesced-compiled", "solo-compiled", "eager")
EAGER_LEVEL = len(LADDER) - 1


class CircuitBreaker:
    """Per-key quarantine with cool-down re-probe.

    Keys are the scheduler's dispatch-group keys (serve signature +
    shape/dtype for attacks, model identity for inference), so one
    faulty plan family degrades only its own traffic.  State per key is
    ``(level, until)``: dispatches run at ``level`` while quarantined;
    once ``until`` passes, :meth:`level` returns one rung *up* the
    ladder as a probe, and a successful probe (:meth:`record_success`)
    moves the resting level up one rung — repeated healthy cool-downs
    walk a key all the way back to coalesced-compiled, while a failed
    probe re-quarantines it where it was.  Keys at level 0 carry no
    state at all.

    >>> clk = ManualClock()
    >>> br = CircuitBreaker(cooldown_s=10.0, clock=clk)
    >>> br.level("k")
    0
    >>> br.record_failure("k", 0); br.level("k")     # quarantined: solo
    1
    >>> clk.advance(11); br.level("k")               # cool-down: re-probe
    0
    >>> br.record_success("k", 0); br.level("k")     # healed
    0
    """

    def __init__(self, cooldown_s: float = 5.0, clock: Optional[Clock] = None,
                 max_keys: int = 1024):
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.cooldown_s = float(cooldown_s)
        self.clock = clock if clock is not None else Clock()
        self.max_keys = int(max_keys)
        # key -> [resting_level, quarantined_until]
        self._state: "OrderedDict[Any, List[float]]" = OrderedDict()
        self.trips = 0
        self.heals = 0

    def level(self, key) -> int:
        """Ladder rung to dispatch ``key`` at right now (0 = healthy)."""
        st = self._state.get(key)
        if st is None:
            return 0
        lvl, until = int(st[0]), st[1]
        if self.clock.now() >= until:
            return max(lvl - 1, 0)      # cool-down elapsed: probe one rung up
        return lvl

    def record_failure(self, key, level: int) -> None:
        """Dispatch at ``level`` failed: quarantine one rung further down."""
        new_level = min(int(level) + 1, EAGER_LEVEL)
        self._state[key] = [new_level, self.clock.now() + self.cooldown_s]
        self._state.move_to_end(key)
        self.trips += 1
        while len(self._state) > self.max_keys:
            self._state.popitem(last=False)

    def record_success(self, key, level: int) -> None:
        """Dispatch at ``level`` succeeded: heal one rung if it was a probe."""
        st = self._state.get(key)
        if st is None or level >= st[0]:
            return
        if level <= 0:
            del self._state[key]
            self.heals += 1
        else:
            # healed one rung; leave `until` in the past so the next
            # dispatch probes the rung above immediately
            self._state[key] = [int(level), self.clock.now()]

    def quarantined(self, key) -> bool:
        return self.level(key) > 0

    @property
    def stats(self) -> Dict[str, int]:
        return {"trips": self.trips, "heals": self.heals,
                "quarantined_keys": sum(
                    1 for k in list(self._state) if self.level(k) > 0)}


class ShardedCircuitBreaker:
    """N per-shard :class:`CircuitBreaker`\\ s behind one key router.

    The worker pool gives each PlanCache shard its own breaker so a
    quarantine on one shard's keys never serializes (or heals) through
    another shard's state, and so concurrent workers touching different
    shards never contend on one ``_state`` dict.  The flat
    :class:`CircuitBreaker` interface (``level`` / ``record_failure`` /
    ``record_success`` / ``quarantined``) is preserved — each call
    routes its key to the owning shard under that shard's lock — so the
    scheduler's dispatch code cannot tell the difference.

    ``route`` maps a dispatch key to a shard index; the session passes
    the sharded PlanCache's router so a key's breaker shard and its
    plan shard always agree (that is what "ladder and circuit breakers
    become per-shard" means).  The default router hashes ``repr(key)``,
    which is stable within a process.

    >>> clk = ManualClock()
    >>> br = ShardedCircuitBreaker(nshards=2, cooldown_s=10.0, clock=clk)
    >>> br.record_failure("k", 0); br.level("k")
    1
    >>> sum(s["trips"] for s in br.stats["per_shard"])
    1
    """

    def __init__(self, nshards: int = 1, cooldown_s: float = 5.0,
                 clock: Optional[Clock] = None, max_keys: int = 1024,
                 route=None):
        if nshards < 1:
            raise ValueError("nshards must be >= 1")
        self.nshards = int(nshards)
        self.clock = clock if clock is not None else Clock()
        self._route = route
        self.shards = [CircuitBreaker(cooldown_s=cooldown_s,
                                      clock=self.clock, max_keys=max_keys)
                       for _ in range(self.nshards)]
        self._locks = [threading.RLock() for _ in range(self.nshards)]

    def shard_index(self, key) -> int:
        if self._route is not None:
            return int(self._route(key)) % self.nshards
        return zlib.crc32(repr(key).encode()) % self.nshards

    def level(self, key) -> int:
        i = self.shard_index(key)
        with self._locks[i]:
            return self.shards[i].level(key)

    def record_failure(self, key, level: int) -> None:
        i = self.shard_index(key)
        with self._locks[i]:
            self.shards[i].record_failure(key, level)

    def record_success(self, key, level: int) -> None:
        i = self.shard_index(key)
        with self._locks[i]:
            self.shards[i].record_success(key, level)

    def quarantined(self, key) -> bool:
        return self.level(key) > 0

    @property
    def trips(self) -> int:
        return sum(s.trips for s in self.shards)

    @property
    def heals(self) -> int:
        return sum(s.heals for s in self.shards)

    @property
    def stats(self) -> Dict[str, Any]:
        per_shard = [s.stats for s in self.shards]
        return {
            "trips": sum(s["trips"] for s in per_shard),
            "heals": sum(s["heals"] for s in per_shard),
            "quarantined_keys": sum(
                s["quarantined_keys"] for s in per_shard),
            "nshards": self.nshards,
            "per_shard": per_shard,
        }


# --------------------------------------------------------------------- #
# admission control
# --------------------------------------------------------------------- #


class AdmissionController:
    """Bounded-queue admission with reject/shed policy and tenant quotas.

    Consulted on every submit *before* the job touches the scheduler.
    Bounds are over the pending queue (jobs and/or summed rows); the
    policy decides what happens when a submit would exceed them:

    - ``"reject"`` — the new job is refused
      (:class:`AdmissionError`; its future resolves ``rejected``);
    - ``"shed"`` — the *oldest pending* jobs are dropped
      (:class:`ShedError`) until the new arrival fits, favouring fresh
      traffic under overload.  A job too large to ever fit is rejected.

    Per-tenant quotas bound each tenant's pending rows independently
    (``tenant_quota_rows``: one int for every tenant, or a dict with a
    ``None`` key as the default).  Quota violations always reject the
    *submitting* tenant's job — one tenant's burst can never shed
    another tenant's queued work.
    """

    def __init__(self, max_pending_jobs: Optional[int] = None,
                 max_pending_rows: Optional[int] = None,
                 policy: str = "reject",
                 tenant_quota_rows=None):
        if policy not in ("reject", "shed"):
            raise ValueError(f"unknown admission policy {policy!r}")
        if (max_pending_jobs is not None and max_pending_jobs < 1) or \
                (max_pending_rows is not None and max_pending_rows < 1):
            raise ValueError("admission bounds must be >= 1")
        self.max_pending_jobs = max_pending_jobs
        self.max_pending_rows = max_pending_rows
        self.policy = policy
        if tenant_quota_rows is None or isinstance(tenant_quota_rows, dict):
            self.tenant_quota_rows = tenant_quota_rows
        else:
            self.tenant_quota_rows = {None: int(tenant_quota_rows)}
        self.accepted = 0
        self.rejected = 0
        self.shed = 0
        self.quota_rejected = 0

    def _quota_for(self, tenant) -> Optional[int]:
        quotas = self.tenant_quota_rows
        if quotas is None:
            return None
        if tenant in quotas:
            return quotas[tenant]
        return quotas.get(None)

    def decide(self, pending, new_rows: int, tenant
               ) -> Tuple[str, List[Any]]:
        """(decision, victims): decision in accept/reject/quota/shed.

        ``pending`` is the scheduler's queue (iterated, not mutated);
        ``victims`` is the list of pending jobs to shed (only ever
        non-empty for ``"shed"``).  Counters are the caller's to bump —
        this method is a pure decision so it can be unit-tested alone.
        """
        quota = self._quota_for(tenant)
        if quota is not None:
            tenant_rows = sum(j.rows for j in pending if j.tenant == tenant)
            if tenant_rows + new_rows > quota:
                return "quota", []
        n_jobs = 0
        n_rows = 0
        for j in pending:
            n_jobs += 1
            n_rows += j.rows
        fits = (
            (self.max_pending_jobs is None
             or n_jobs + 1 <= self.max_pending_jobs)
            and (self.max_pending_rows is None
                 or n_rows + new_rows <= self.max_pending_rows))
        if fits:
            return "accept", []
        if self.policy == "reject":
            return "reject", []
        victims: List[Any] = []
        for j in pending:                      # oldest first
            n_jobs -= 1
            n_rows -= j.rows
            victims.append(j)
            if ((self.max_pending_jobs is None
                 or n_jobs + 1 <= self.max_pending_jobs)
                    and (self.max_pending_rows is None
                         or n_rows + new_rows <= self.max_pending_rows)):
                return "shed", victims
        return "reject", []      # the new job alone exceeds the bounds

    @property
    def stats(self) -> Dict[str, Any]:
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed": self.shed,
            "quota_rejected": self.quota_rejected,
            "policy": self.policy,
            "max_pending_jobs": self.max_pending_jobs,
            "max_pending_rows": self.max_pending_rows,
        }
