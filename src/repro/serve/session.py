"""ServeSession — the attack-serving layer's front door.

One session owns the shared resources of the serving story: a single
budgeted :class:`~repro.serve.cache.PlanCache` (every submitted attack
and edge model is rebound to it, so compiled programs are shared across
requests and bounded in memory), one
:class:`~repro.serve.scheduler.Scheduler` (arrival-order dispatch with
compatible-request coalescing), the
:class:`~repro.serve.resilience.CircuitBreaker` quarantining faulty
plan families, the :class:`~repro.serve.resilience.AdmissionController`
bounding the queue, and the futures that hand each caller its own
result back out of a merged pass.

Usage::

    session = ServeSession(capacity=64)
    f1 = session.submit_attack(diva_a, x_a, y_a)     # user A's probe
    f2 = session.submit_attack(diva_b, x_b, y_b)     # user B, same pair
    f3 = session.submit_predict(edge_model, pixels)  # plain inference
    adv_a = f1.result()          # drives the scheduler; bit-identical
    adv_b = f2.result()          # to diva_b.generate(x_b, y_b) alone

``result()`` on any future drains the whole queue (single-threaded,
synchronous); ``drain()`` does so explicitly.  Everything the scheduler
does is value-neutral — see :mod:`repro.serve.scheduler` for the
coalescing rules and the bit-identity argument — so a healthy session's
only observable effects are wall-time and cache warmth.  Under faults
or overload the session *degrades explicitly*: jobs are rejected or
shed at submit (:class:`~repro.serve.resilience.AdmissionError`
subclasses), retried down the degradation ladder, or resolved
``deadline-degraded`` with best-so-far results — never silently
dropped, never silently wrong.
"""

from __future__ import annotations

import gc
from typing import Any, Dict, List, Optional

import numpy as np

from ..attacks.base import Attack
from .cache import PlanCache, ShardedPlanCache
from .pool import PoolScheduler
from .resilience import (AdmissionController, AdmissionError, CircuitBreaker,
                         Clock, QuotaError, ShardedCircuitBreaker, ShedError)
from .scheduler import DispatchRecord, Job, JobFuture, Scheduler

#: default shared-cache budget: generous for the bench/serve models in
#: this repo while still exercising eviction under adversarial churn
DEFAULT_BUDGET_BYTES = 512 << 20


class ServeSession:
    """Accept heterogeneous jobs, serve them over shared compiled state.

    Parameters
    ----------
    capacity:
        Slot capacity per scheduled attack pass (and the work-stealing
        width), as in ``Attack.generate``'s ``batch_size``.
    plan_cache:
        Shared compiled-program store; a budgeted one is built when not
        given.  Submitted attacks and edge models are rebound to it on
        first submit, so all requests draw from (and fill) one cache.
    max_batch_rows / predict_batch:
        Scheduler coalescing bounds (see
        :class:`~repro.serve.scheduler.Scheduler`).
    max_pending_jobs / max_pending_rows / admission_policy /
    tenant_quota_rows:
        Admission bounds over the pending queue (None = unbounded, the
        historic behaviour); see
        :class:`~repro.serve.resilience.AdmissionController`.
    default_deadline_s:
        Relative deadline applied to attack jobs submitted without one
        (None = attack jobs run to completion unless the submit says
        otherwise).
    quarantine_cooldown_s / failure_cooldown_s:
        Circuit-breaker and pinned-plan-failure cool-downs (transient
        faults heal after these elapse).
    clock:
        Shared time source for deadlines and every cool-down; pass a
        :class:`~repro.serve.resilience.ManualClock` for deterministic
        chaos tests.
    float_coalesce:
        Whether float-model inference jobs may coalesce (and ride along
        with attack groups) under the row-reproducible GEMM mode; off,
        they dispatch solo with the reason on their
        :class:`~repro.serve.scheduler.DispatchRecord` (see
        :class:`~repro.serve.scheduler.Scheduler`).
    workers:
        None (default) keeps the historic single-threaded
        :class:`~repro.serve.scheduler.Scheduler`.  An int builds the
        worker-pool stack instead — a
        :class:`~repro.serve.pool.PoolScheduler` over a
        :class:`~repro.serve.cache.ShardedPlanCache` and a
        :class:`~repro.serve.resilience.ShardedCircuitBreaker` (one
        shard per worker unless ``shards`` says otherwise, breaker
        shards routed by the cache's key router).  ``workers=1`` is the
        deterministic single-worker pool: the full
        plan/assign/steal/reap pipeline, no threads.  Per-job results
        are bit-identical across all of these — see
        :mod:`repro.serve.pool`.
    shards / steal_seed / pool_backend:
        Pool tuning (ignored when ``workers`` is None): PlanCache/
        breaker shard count (default ``workers``), the seed for the
        steal pass, and the executor backend (``"thread"`` today;
        ``"process"`` is the documented scale-out seam).
    """

    def __init__(self, capacity: int = 64,
                 plan_cache: Optional[PlanCache] = None,
                 max_batch_rows: int = 512, predict_batch: int = 256,
                 budget_bytes: Optional[int] = DEFAULT_BUDGET_BYTES,
                 max_pending_jobs: Optional[int] = None,
                 max_pending_rows: Optional[int] = None,
                 admission_policy: str = "reject",
                 tenant_quota_rows=None,
                 default_deadline_s: Optional[float] = None,
                 quarantine_cooldown_s: float = 5.0,
                 failure_cooldown_s: Optional[float] = None,
                 clock: Optional[Clock] = None,
                 float_coalesce: bool = True,
                 workers: Optional[int] = None,
                 shards: Optional[int] = None,
                 steal_seed: int = 0,
                 pool_backend: str = "thread"):
        self.clock = clock if clock is not None else Clock()
        self.workers = None if workers is None else int(workers)
        if self.workers is None:
            self.plan_cache = (
                plan_cache if plan_cache is not None
                else PlanCache(budget_bytes=budget_bytes,
                               failure_cooldown_s=failure_cooldown_s,
                               clock=self.clock))
            self.breaker = CircuitBreaker(cooldown_s=quarantine_cooldown_s,
                                          clock=self.clock)
            self.scheduler = Scheduler(capacity=capacity,
                                       max_batch_rows=max_batch_rows,
                                       predict_batch=predict_batch,
                                       clock=self.clock,
                                       breaker=self.breaker,
                                       float_coalesce=float_coalesce)
        else:
            if self.workers < 1:
                raise ValueError("workers must be >= 1 (or None for the "
                                 "single-threaded scheduler)")
            nshards = int(shards) if shards is not None else self.workers
            if plan_cache is None:
                plan_cache = ShardedPlanCache(
                    nshards=nshards, budget_bytes=budget_bytes,
                    failure_cooldown_s=failure_cooldown_s,
                    clock=self.clock)
            self.plan_cache = plan_cache
            route = getattr(plan_cache, "shard_index", None)
            self.breaker = ShardedCircuitBreaker(
                nshards=nshards, cooldown_s=quarantine_cooldown_s,
                clock=self.clock, route=route)
            self.scheduler = PoolScheduler(capacity=capacity,
                                           max_batch_rows=max_batch_rows,
                                           predict_batch=predict_batch,
                                           clock=self.clock,
                                           breaker=self.breaker,
                                           float_coalesce=float_coalesce,
                                           workers=self.workers,
                                           steal_seed=steal_seed,
                                           backend=pool_backend)
        self.admission = AdmissionController(
            max_pending_jobs=max_pending_jobs,
            max_pending_rows=max_pending_rows,
            policy=admission_policy,
            tenant_quota_rows=tenant_quota_rows)
        self.default_deadline_s = default_deadline_s

    # -- submission ------------------------------------------------------ #
    def _adopt(self, obj: Any) -> None:
        """Point ``obj`` (attack or edge model) at the shared cache.

        Idempotent by identity check — no bookkeeping of seen objects
        (a raw ``id()`` registry would mistake a recycled address for
        an already-adopted object).  Programs compiled into a private
        cache before adoption are dropped with it — they recompile into
        the shared store on first use, after which every compatible
        request hits.

        Under a sharded cache, adoption also registers the object (and
        an attack's plan-owner models) with the cache's owner registry:
        shard routing canonicalizes the raw ``id()``\\ s inside plan
        keys to stable adoption-order indices, which is what makes a
        key's shard — and hence per-shard stats, breaker state and
        steal decisions — reproducible across runs.
        """
        register = getattr(self.plan_cache, "register_owner", None)
        if register is not None:
            register(obj)
            if isinstance(obj, Attack):
                for owner in obj._plan_owners():
                    register(owner)
        if getattr(obj, "plan_cache", None) is not self.plan_cache:
            obj.plan_cache = self.plan_cache

    def _admit(self, job: Job) -> JobFuture:
        """Run admission control, then enqueue or reject/shed.

        Every path returns the job's future: a refused job's future is
        already resolved with the matching
        :class:`~repro.serve.resilience.AdmissionError` subclass and
        outcome ``rejected`` — refusal is explicit, never an exception
        at submit time (the tenant holds a future either way).
        """
        decision, victims = self.admission.decide(
            self.scheduler.pending, job.rows, job.tenant)
        if decision == "quota":
            self.admission.quota_rejected += 1
            self.scheduler.settle(
                job, error=QuotaError(
                    f"tenant {job.tenant!r} exceeded its pending-rows "
                    "quota"), outcome="rejected")
            return job.future
        if decision == "reject":
            self.admission.rejected += 1
            self.scheduler.settle(
                job, error=AdmissionError(
                    "queue full: job rejected at admission"),
                outcome="rejected")
            return job.future
        if decision == "shed":
            for victim in victims:
                self.scheduler.pending.remove(victim)
                self.admission.shed += 1
                self.scheduler.settle(
                    victim, error=ShedError(
                        "job shed from the queue to admit newer work"),
                    outcome="rejected")
        self.admission.accepted += 1
        self.scheduler.enqueue(job)
        return job.future

    def _absolute_deadline(self, deadline_s: Optional[float]
                           ) -> Optional[float]:
        rel = deadline_s if deadline_s is not None else self.default_deadline_s
        return None if rel is None else self.clock.now() + float(rel)

    def submit_attack(self, attack: Attack, x: np.ndarray,
                      y: np.ndarray, tenant: Any = None,
                      deadline_s: Optional[float] = None) -> JobFuture:
        """Queue one attack job (DIVA/PGD/CW/NES/...; any ``Attack``).

        The result future resolves to exactly what
        ``attack.generate(x, y)`` would return — coalescing with other
        compatible jobs changes scheduling, never bytes.  ``deadline_s``
        (relative; falls back to the session default) bounds the job:
        rows still iterating when it passes stop between compiled steps
        and the future resolves ``deadline-degraded`` with the
        best-so-far adversarial batch.
        """
        x = np.asarray(x)
        y = np.asarray(y)
        if len(x) == 0:
            raise ValueError("attack job needs at least one row")
        if len(y) != len(x):
            raise ValueError(f"labels have {len(y)} rows for {len(x)} "
                             "inputs — rejected at submit so one bad "
                             "request cannot poison a coalesced batch")
        self._adopt(attack)
        future = JobFuture(self.drain)
        return self._admit(Job(kind="attack", seq=-1, x=x, future=future,
                               y=y, attack=attack, tenant=tenant,
                               deadline=self._absolute_deadline(deadline_s)))

    def submit_predict(self, model, x: np.ndarray, tenant: Any = None
                       ) -> JobFuture:
        """Queue one inference job (edge or float model).

        ``model`` is either an :class:`~repro.edge.engine.EdgeModel`
        (anything with a ``predict`` method — exact integer path,
        coalesces freely) or a float :class:`~repro.nn.module.Module`
        scored by forward logits.  Float jobs resolve to exactly what
        ``predict_logits(model, x)`` under
        :func:`repro.nn.rowrep.row_reproducible` returns — the mode is
        what makes their per-row bits independent of how the scheduler
        batches them.

        Inference takes no deadline: it is a single pass with no
        intermediate iterate, so there is no meaningful partial result
        to degrade to (admission control is the overload defense here).
        """
        x = np.asarray(x)
        if len(x) == 0:
            raise ValueError("predict job needs at least one row")
        self._adopt(model)
        kind = "predict" if hasattr(model, "predict") else "predict_float"
        future = JobFuture(self.drain)
        return self._admit(Job(kind=kind, seq=-1, x=x, future=future,
                               model=model, tenant=tenant))

    # -- execution ------------------------------------------------------- #
    def drain(self, timeout: Optional[float] = None) -> int:
        """Serve every pending job; returns the number of dispatches.

        ``timeout`` (relative seconds on the session clock) bounds the
        drain for :meth:`JobFuture.result(timeout=...)
        <repro.serve.scheduler.JobFuture.result>`: dispatch rounds stop
        once the budget elapses and the remaining queue stays pending.
        A completed drain ends with a cycle collection: compiled
        programs are self-referential (their op closures capture the
        program), so retired plans are *only* reclaimable by the cyclic
        GC — and the compiled replay path allocates so few Python
        objects (by design) that the generational thresholds may not
        trip for many bursts, accumulating dead programs' buffers.  One
        explicit collect (~15 ms) per drained burst bounds that;
        long-lived experiment processes never noticed because their
        programs live for the whole run.
        """
        if not self.scheduler.pending:
            return 0
        until = (None if timeout is None
                 else self.clock.now() + float(timeout))
        rounds = self.scheduler.run_pending(until=until)
        gc.collect()
        return rounds

    def __enter__(self) -> "ServeSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.drain()

    # -- introspection --------------------------------------------------- #
    @property
    def dispatch_log(self) -> List[DispatchRecord]:
        return self.scheduler.dispatch_log

    @property
    def stats(self) -> Dict[str, Any]:
        log = self.scheduler.dispatch_log
        out = {
            "dispatches": len(log),
            "jobs_served": sum(len(r.seqs) for r in log),
            "rows_served": sum(r.rows for r in log),
            "coalesced_dispatches": sum(1 for r in log if r.coalesced),
            "retry_dispatches": sum(1 for r in log if r.retry),
            "degraded_dispatches": sum(1 for r in log if r.level > 0),
            "outcome_counts": dict(self.scheduler.outcomes),
            "admission": self.admission.stats,
            "quarantine": self.breaker.stats,
            "plan_cache": self.plan_cache.stats,
        }
        if self.workers is not None:
            sched = self.scheduler
            out["pool"] = {
                "workers": self.workers,
                "backend": sched.backend,
                "waves": len(sched.wave_log),
                "steals": len(sched.steal_log),
                "stolen_rows": sum(s.rows for s in sched.steal_log),
            }
        return out
