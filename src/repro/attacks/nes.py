"""Gradient-free DIVA via NES gradient estimation (extension).

The paper's blackbox variant (§4.4) assumes the attacker can *train
surrogates*.  A stricter threat model allows only prediction-probability
queries to the two models (e.g., a scoring API plus a captured device
with no extractable weights).  Natural Evolution Strategies (Ilyas et
al. 2018) estimates the DIVA gradient from antithetic query pairs:

    g ~= 1/(2 n sigma) * sum_i  [L(x + sigma u_i) - L(x - sigma u_i)] u_i

and plugs straight into the same sign-step PGD loop, so the only change
versus whitebox DIVA is where the gradient comes from.  Query cost is
``2 * n_samples`` model-pair evaluations per step.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from ..nn.module import Module
from ..training.evaluate import predict_probs
from .base import (Attack, DEFAULT_ALPHA, DEFAULT_EPS, DEFAULT_STEPS,
                   softmax_np)


class NESDiva(Attack):
    """Query-only DIVA: NES-estimated gradients of Eq. 5.

    Parameters
    ----------
    original, adapted:
        Models reachable only through probability queries.
    n_samples:
        Antithetic direction pairs per step (queries/step = 2x this).
    sigma:
        Smoothing radius of the NES estimator.
    """

    # the estimator draws noise shaped like the whole batch; shrinking
    # the batch as samples succeed would change the RNG stream and break
    # seeded reproducibility, so NES always steps the full batch
    shrink_done = False

    def __init__(self, original: Module, adapted: Module, c: float = 1.0,
                 n_samples: int = 32, sigma: float = 2.0 / 255.0,
                 eps: float = DEFAULT_EPS, alpha: float = DEFAULT_ALPHA,
                 steps: int = DEFAULT_STEPS, random_start: bool = False,
                 keep_best: bool = True, seed: int = 0):
        super().__init__(eps, alpha, steps, random_start, keep_best, seed)
        self.original = original
        self.adapted = adapted
        self.c = float(c)
        self.n_samples = int(n_samples)
        self.sigma = float(sigma)
        self._rng = np.random.default_rng(seed)
        self.queries = 0          # running query counter (pairs of models)

    def _query_probs(self, model, x: np.ndarray) -> np.ndarray:
        """One probability query; replayed through the compiled forward
        when the queried model is traceable (same numbers, no tape)."""
        ex = self._compiled(model, x)
        if ex is not None:
            return softmax_np(ex.replay(x, copy=False))
        return predict_probs(model, x, batch_size=len(x))

    def _loss(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-sample Eq. 5 values from probability queries."""
        rows = np.arange(len(x))
        po = self._query_probs(self.original, x)[rows, y]
        pa = self._query_probs(self.adapted, x)[rows, y]
        self.queries += len(x)
        return po - self.c * pa

    def gradient(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        n, shape = len(x_adv), x_adv.shape[1:]
        grad = np.zeros_like(x_adv, dtype=np.float64)
        for _ in range(self.n_samples):
            u = self._rng.standard_normal((n,) + shape).astype(x_adv.dtype)
            plus = np.clip(x_adv + self.sigma * u, 0, 1)
            minus = np.clip(x_adv - self.sigma * u, 0, 1)
            delta = self._loss(plus, y) - self._loss(minus, y)
            grad += delta.reshape(-1, *([1] * len(shape))) * u
        return (grad / (2 * self.n_samples * self.sigma)).astype(x_adv.dtype)

    def success_logits(self, x_adv: np.ndarray, y: np.ndarray) -> Any:
        ex_o = self._compiled(self.original, x_adv)
        ex_a = self._compiled(self.adapted, x_adv)
        if ex_o is not None and ex_a is not None:
            return ex_o.replay(x_adv, copy=False), ex_a.replay(x_adv, copy=False)
        return None

    def success_from_logits(self, aux: Any, y: np.ndarray) -> Optional[np.ndarray]:
        if aux is None:
            return None
        zo, za = aux
        y = np.asarray(y)
        return (zo.argmax(axis=1) == y) & (za.argmax(axis=1) != y)

    def is_success(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        from ..training.evaluate import predict_labels
        po = predict_labels(self.original, x_adv, batch_size=len(x_adv))
        pa = predict_labels(self.adapted, x_adv, batch_size=len(x_adv))
        return (po == y) & (pa != y)
