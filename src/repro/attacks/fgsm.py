"""Single-step attacks: FGSM (Goodfellow et al.) and R+FGSM (Tramer et al.).

Included as the historical baselines the paper's background (§2.2) builds
from; PGD (the paper's main baseline) is their iterated form — literally,
here: both functions run as single-step PGD configurations on the
scheduled engine, so they ride the compiled executor and the recorded
whole-loop path (:mod:`repro.attacks.loop`) when the model traces, and
fall back to the eager tape (bit-identical to the historic per-batch
implementation) when it does not.  A single-step keep-best-off run pays
exactly one gradient pass per row either way — the engine's done-mask
semantics for rows succeeding on step 0 match ``generate``'s
(no trailing success forward; see ``Attack._run_keep_best``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.module import Module
from .base import DEFAULT_EPS, project_linf
from .engine import run_scheduled
from .pgd import PGD


def fgsm(model: Module, x: np.ndarray, y: np.ndarray,
         eps: float = DEFAULT_EPS, batch_size: int = 128) -> np.ndarray:
    """Fast Gradient Sign Method: one eps-sized sign step (Eq. 2).

    Equivalent to ``PGD(model, eps=eps, alpha=eps, steps=1,
    keep_best=False)`` — the step of size ``eps`` saturates the budget,
    and the projection clamps to ``[x ± eps] ∩ [0, 1]`` exactly as
    Eq. 2's clip does.
    """
    atk = PGD(model, eps=eps, alpha=eps, steps=1, keep_best=False)
    return atk.generate(x, np.asarray(y), batch_size=batch_size)


def r_fgsm(model: Module, x: np.ndarray, y: np.ndarray,
           eps: float = DEFAULT_EPS, alpha: Optional[float] = None,
           seed: int = 0, batch_size: int = 128) -> np.ndarray:
    """R+FGSM: random step of size ``alpha`` then an FGSM step of the
    remaining budget ``eps - alpha``.

    The random start is drawn per ``batch_size`` chunk (the historic
    rng stream, so results are reproducible across batch sizes); the
    gradient step then runs as a scheduled single-step PGD with the
    random iterates as the starting point and the *full* ``eps`` ball
    around the natural samples as the projection target.
    """
    alpha = eps / 2 if alpha is None else alpha
    if not 0 < alpha < eps:
        raise ValueError("alpha must satisfy 0 < alpha < eps")
    rng = np.random.default_rng(seed)
    y = np.asarray(y)
    x0 = np.empty_like(x)
    for start in range(0, len(x), batch_size):
        xb = x[start:start + batch_size]
        x0[start:start + len(xb)] = project_linf(
            xb + alpha * np.sign(rng.normal(size=xb.shape)), xb, eps
        ).astype(xb.dtype)
    atk = PGD(model, eps=eps, alpha=eps - alpha, steps=1, keep_best=False)
    n = len(x)
    eps_v = np.full(n, eps, dtype=x.dtype)
    alpha_v = np.full(n, eps - alpha, dtype=x.dtype)
    check = np.zeros(n, dtype=bool)
    return run_scheduled(atk, x, y, x0, eps_v, alpha_v, check, None,
                         capacity=batch_size)
