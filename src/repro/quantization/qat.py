"""Quantization-aware training (QAT).

``prepare_qat`` clones a float model and instruments it the way tfmot's
``quantize_model`` does:

- every Conv2d / Linear gets a symmetric per-channel weight fake-quant;
- every Conv2d / Linear / ReLU output gets an asymmetric per-tensor
  activation fake-quant;
- the network input is quantized by the wrapper's input quantizer.

Training the prepared model with the usual loop *is* QAT: forward passes
see quantization error, backward passes flow through the straight-through
estimator, so the float weights adapt to the grid (§2.1 of the paper).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.layers import Conv2d, Linear, ReLU
from ..nn.module import Module
from ..nn.optim import Optimizer, SGD
from ..nn.tensor import Tensor
from .fake_quant import FakeQuantize


class QATModel(Module):
    """A float model instrumented with fake quantization.

    The wrapped model is reachable as ``.model``; its class is unchanged,
    so architecture-specific helpers (feature extractors etc.) still work.
    """

    def __init__(self, model: Module, weight_bits: int = 8, act_bits: int = 8,
                 quantize_input: bool = True, per_channel: bool = True):
        super().__init__()
        self.weight_bits = weight_bits
        self.act_bits = act_bits
        self.input_fake_quant = (FakeQuantize.for_activations(bits=act_bits)
                                 if quantize_input else None)
        self.model = model
        self._instrument(per_channel)

    def _instrument(self, per_channel: bool) -> None:
        for _, mod in self.model.named_modules():
            if isinstance(mod, (Conv2d, Linear)):
                mod.weight_fake_quant = FakeQuantize.for_weights(
                    bits=self.weight_bits, per_channel=per_channel)
                mod.activation_post_process = FakeQuantize.for_activations(
                    bits=self.act_bits)
            elif isinstance(mod, ReLU):
                mod.activation_post_process = FakeQuantize.for_activations(
                    bits=self.act_bits)

    def fake_quant_modules(self) -> Iterable[Tuple[str, FakeQuantize]]:
        for name, mod in self.named_modules():
            if isinstance(mod, FakeQuantize):
                yield name, mod

    def freeze(self) -> "QATModel":
        """Pin every quantization grid (deployment conversion)."""
        for _, fq in self.fake_quant_modules():
            if fq.observer.initialized:
                fq.freeze()
        return self

    def forward(self, x: Tensor) -> Tensor:
        if self.input_fake_quant is not None:
            x = self.input_fake_quant(x)
        return self.model(x)

    # convenience passthroughs used by analysis / attacks
    def features(self, x: Tensor) -> Tensor:
        """Penultimate-layer representation, if the inner model exposes one."""
        if self.input_fake_quant is not None:
            x = self.input_fake_quant(x)
        return self.model.features(x)


def prepare_qat(model: Module, weight_bits: int = 8, act_bits: int = 8,
                quantize_input: bool = True, per_channel: bool = True) -> QATModel:
    """Clone ``model`` and wrap it for quantization-aware training.

    The original float model is left untouched — the paper's threat model
    requires *both* the original and adapted models to exist side by side.
    """
    clone = model.copy_structure()
    return QATModel(clone, weight_bits=weight_bits, act_bits=act_bits,
                    quantize_input=quantize_input, per_channel=per_channel)


def calibrate(qat_model: QATModel, inputs: np.ndarray, batch_size: int = 64) -> QATModel:
    """Run forward passes in train mode so observers see the data ranges."""
    qat_model.train()
    n = len(inputs)
    for start in range(0, n, batch_size):
        qat_model(Tensor(inputs[start:start + batch_size]))
    qat_model.eval()
    return qat_model


def qat_finetune(qat_model: QATModel, x_train: np.ndarray, y_train: np.ndarray,
                 epochs: int = 2, batch_size: int = 64, lr: float = 0.005,
                 momentum: float = 0.9, weight_decay: float = 0.0,
                 optimizer: Optional[Optimizer] = None,
                 rng: Optional[np.random.Generator] = None,
                 log_fn: Optional[Callable[[str], None]] = None,
                 use_compiled: bool = True) -> QATModel:
    """Finetune with fake quantization in the loop (QAT proper).

    Mirrors the paper's recipe (§5.1): a couple of epochs of QAT after
    instrumenting the pretrained float model; more epochs stop helping
    accuracy but increase instability.

    Full-size batches run through a compiled train-step program whose
    replays re-read the moving quantization grids and replay the
    observer updates, so compiled QAT is bit-identical to eager QAT
    (validated at compile time; the eager tape serves the tail batch
    and any fallback).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    opt = optimizer if optimizer is not None else SGD(
        qat_model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
    n = len(x_train)
    qat_model.train()
    step = None
    if use_compiled:
        from ..nn.train_graph import compile_train_step_or_none
        nb = min(batch_size, n)
        step = compile_train_step_or_none(qat_model, F.cross_entropy,
                                          x_train[:nb], y_train[:nb], opt)
        if step is None and log_fn:
            log_fn("train-step compilation unavailable; using the eager tape")
    for epoch in range(epochs):
        order = rng.permutation(n)
        total_loss = 0.0
        for start in range(0, n, batch_size):
            idx = order[start:start + batch_size]
            yb = y_train[idx]
            if step is not None and step.accepts(x_train[idx]):
                batch_loss = step.step(x_train[idx], yb)
            else:
                logits = qat_model(Tensor(x_train[idx]))
                loss = F.cross_entropy(logits, yb)
                opt.zero_grad()
                loss.backward()
                opt.step()
                batch_loss = float(loss.data)
            total_loss += batch_loss * len(idx)
        if log_fn:
            log_fn(f"qat epoch {epoch}: loss={total_loss / n:.4f}")
    qat_model.eval()
    return qat_model
