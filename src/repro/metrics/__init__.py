"""``repro.metrics`` — the paper's evaluation metrics (§5.1)."""

from .image_quality import batch_dssim, dssim, psnr, ssim
from .instability import (InstabilityReport, instability_report,
                          prediction_agreement)
from .success import (SuccessReport, evaluate_attack,
                      natural_confidence_delta, targeted_reach)

__all__ = [
    "InstabilityReport", "instability_report", "prediction_agreement",
    "SuccessReport", "evaluate_attack", "natural_confidence_delta",
    "targeted_reach",
    "ssim", "dssim", "batch_dssim", "psnr",
]
