"""Figure 1: outcome quadrants of PGD vs DIVA on ResNet (quantized).

Paper's claim: PGD applied to the quantized model transfers — a large
fraction of its adversarial images flip *both* models ("both incorrect"),
so validation on the original model catches them.  DIVA concentrates its
mass in "original correct & quantized incorrect", the undetectable
quadrant.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..attacks import DIVA, PGD
from ..metrics import evaluate_attack
from .config import ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results


def run(cfg: Optional[ExperimentConfig] = None,
        pipeline: Optional[Pipeline] = None, arch: str = "resnet",
        verbose: bool = True) -> Dict:
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    orig = pipe.original(arch)
    quant = pipe.quantized(arch)
    atk_set = pipe.attack_set([orig, quant], f"fig1-{arch}")

    x_pgd = PGD(quant, eps=cfg.eps, alpha=cfg.alpha,
                steps=cfg.steps).generate(atk_set.x, atk_set.y)
    x_diva = DIVA(orig, quant, c=cfg.c, eps=cfg.eps, alpha=cfg.alpha,
                  steps=cfg.steps).generate(atk_set.x, atk_set.y)

    rep_pgd = evaluate_attack(orig, quant, x_pgd, atk_set.y, topk=cfg.topk)
    rep_diva = evaluate_attack(orig, quant, x_diva, atk_set.y, topk=cfg.topk)

    results: Dict = {"arch": arch, "n": rep_pgd.n, "quadrants": {}}
    rows = []
    for name, rep in [("PGD", rep_pgd), ("DIVA", rep_diva)]:
        results["quadrants"][name] = {
            "both_correct": rep.quadrant_both_correct,
            "orig_correct_quant_incorrect":
                rep.quadrant_orig_correct_adapted_incorrect,
            "both_incorrect": rep.quadrant_both_incorrect,
            "orig_incorrect_quant_correct":
                rep.quadrant_orig_incorrect_adapted_correct,
        }
        rows.append([name, f"{rep.quadrant_both_correct:.1%}",
                     f"{rep.quadrant_orig_correct_adapted_incorrect:.1%}",
                     f"{rep.quadrant_both_incorrect:.1%}",
                     f"{rep.quadrant_orig_incorrect_adapted_correct:.1%}"])
    table = format_table(
        ["Attack", "Both correct", "Orig OK / Quant X (evasive)",
         "Both incorrect", "Orig X / Quant OK"],
        rows, title=f"Figure 1 — outcome quadrants on {arch} (quantized)")
    results["table"] = table
    if verbose:
        print(table)
    save_results("fig1", results)
    return results
