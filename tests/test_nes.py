"""Gradient-free (NES) DIVA."""

import numpy as np
import pytest

from repro.attacks import DIVA, NESDiva, linf_distance
from repro.metrics import evaluate_attack


EPS = 32.0 / 255.0
ALPHA = 4.0 / 255.0


@pytest.fixture(scope="module")
def setup(request):
    tiny_model = request.getfixturevalue("tiny_model")
    tiny_quantized = request.getfixturevalue("tiny_quantized")
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    from repro.data import select_attack_set
    _, val = tiny_dataset
    atk = select_attack_set(val, [tiny_model, tiny_quantized], per_class=2)
    return tiny_model, tiny_quantized, atk


class TestNESDiva:
    def test_budget_respected(self, setup):
        orig, quant, atk = setup
        attack = NESDiva(orig, quant, n_samples=8, steps=4,
                         eps=EPS, alpha=ALPHA)
        x_adv = attack.generate(atk.x, atk.y)
        assert linf_distance(x_adv, atk.x).max() <= EPS + 1e-6
        assert x_adv.min() >= 0 and x_adv.max() <= 1

    def test_query_counter_advances(self, setup):
        orig, quant, atk = setup
        attack = NESDiva(orig, quant, n_samples=4, steps=2,
                         eps=EPS, alpha=ALPHA)
        attack.generate(atk.x[:4], atk.y[:4])
        # 2 antithetic evals per sample-pair per step (+ success checks
        # don't go through _loss)
        assert attack.queries >= 2 * 4 * 4 * 2

    def test_gradient_correlates_with_true_gradient(self, setup):
        """NES estimate should point in a similar direction to autograd."""
        orig, quant, atk = setup
        x, y = atk.x[:4], atk.y[:4]
        true_g = DIVA(orig, quant, steps=1, eps=EPS,
                      alpha=ALPHA).gradient(x, y)
        # 128 antithetic samples keep the estimate's variance low enough
        # that the 0.1 floor is robust to bit-level retraining of the
        # fixture model (64 samples sat within noise of it)
        nes_g = NESDiva(orig, quant, n_samples=128, sigma=1 / 255,
                        steps=1, eps=EPS, alpha=ALPHA, seed=3).gradient(x, y)
        tg = true_g.reshape(len(x), -1)
        ng = nes_g.reshape(len(x), -1)
        cos = (tg * ng).sum(1) / (np.linalg.norm(tg, axis=1)
                                  * np.linalg.norm(ng, axis=1) + 1e-12)
        assert cos.mean() > 0.1

    def test_achieves_some_evasive_success(self, setup):
        orig, quant, atk = setup
        attack = NESDiva(orig, quant, n_samples=24, steps=12,
                         eps=EPS, alpha=ALPHA, seed=1)
        x_adv = attack.generate(atk.x, atk.y)
        rep = evaluate_attack(orig, quant, x_adv, atk.y)
        # strictly weaker than whitebox, but not inert
        assert rep.top1_success_rate > 0.0

    def test_deterministic_per_seed(self, setup):
        orig, quant, atk = setup
        a = NESDiva(orig, quant, n_samples=4, steps=2, eps=EPS,
                    alpha=ALPHA, seed=9).generate(atk.x[:3], atk.y[:3])
        b = NESDiva(orig, quant, n_samples=4, steps=2, eps=EPS,
                    alpha=ALPHA, seed=9).generate(atk.x[:3], atk.y[:3])
        assert np.array_equal(a, b)
