"""Figure 8: DIVA against pruning adaptation (§5.6).

Paper: on pruned models (a, b) and pruned+quantized models (c, d), DIVA's
top-1/top-5 evasive success is 97.8%+ and always beats PGD; PGD gets much
closer than in the quantization setting because pruning perturbs weights
more intrusively (instability 17.1-33.5%), giving even an oblivious
attack room to diverge the two models.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..attacks import DIVA, PGD, generate_grid
from ..metrics import evaluate_attack, instability_report
from .config import ARCHITECTURES, ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results


def run(cfg: Optional[ExperimentConfig] = None,
        pipeline: Optional[Pipeline] = None, verbose: bool = True) -> Dict:
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    _, val, _ = pipe.datasets()

    results: Dict = {"pruned": {}, "pruned_quantized": {}}
    rows = []
    for track, getter in [("pruned", pipe.pruned),
                          ("pruned_quantized", pipe.pruned_quantized)]:
        for arch in ARCHITECTURES:
            orig = pipe.original(arch)
            adapted = getter(arch)
            inst = instability_report(orig, adapted, val.x, val.y)
            atk_set = pipe.attack_set([orig, adapted], f"fig8-{track}-{arch}")
            kw = dict(eps=cfg.eps, alpha=cfg.alpha, steps=cfg.steps)
            advs = generate_grid({"pgd": PGD(adapted, **kw),
                                  "diva": DIVA(orig, adapted, c=cfg.c, **kw)},
                                 atk_set.x, atk_set.y)
            rp = evaluate_attack(orig, adapted, advs["pgd"], atk_set.y, topk=cfg.topk)
            rd = evaluate_attack(orig, adapted, advs["diva"], atk_set.y, topk=cfg.topk)
            results[track][arch] = {
                "instability": inst.deviation_instability,
                "pruned_accuracy": inst.adapted_accuracy,
                "pgd": {"top1": rp.top1_success_rate,
                        "topk": rp.top5_success_rate,
                        "confidence_delta": rp.confidence_delta},
                "diva": {"top1": rd.top1_success_rate,
                         "topk": rd.top5_success_rate,
                         "confidence_delta": rd.confidence_delta},
            }
            rows.append([track, arch, f"{inst.deviation_instability:.1%}",
                         f"{rp.top1_success_rate:.1%}", f"{rd.top1_success_rate:.1%}",
                         f"{rp.top5_success_rate:.1%}", f"{rd.top5_success_rate:.1%}"])

    table = format_table(
        ["Adaptation", "Architecture", "Instability",
         "PGD top-1", "DIVA top-1", f"PGD top-{cfg.topk}", f"DIVA top-{cfg.topk}"],
        rows, title="Figure 8 — attacks on pruned / pruned+quantized models")
    results["table"] = table
    if verbose:
        print(table)
    save_results("fig8", results)
    return results
