"""Additional activation functions and their layer wrappers.

ReLU lives on the Tensor itself (hot path); the rest live here.  All are
implemented as compositions of differentiable primitives, so no bespoke
backward code is needed (and gradient checks come for free).
"""

from __future__ import annotations

import numpy as np

from .module import Module
from .tensor import Tensor, where


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """max(x, slope * x) for 0 < slope < 1."""
    return x.maximum(x * negative_slope)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """x for x > 0; alpha * (exp(x) - 1) otherwise."""
    neg = (x.minimum(0.0).exp() - 1.0) * alpha
    return where(x.data > 0, x, neg)


def softplus(x: Tensor, beta: float = 1.0) -> Tensor:
    """log(1 + exp(beta x)) / beta, numerically stabilized."""
    bx = x * beta
    # softplus(t) = max(t, 0) + log1p(exp(-|t|))
    stable = bx.maximum(0.0) + (-(bx.abs())).exp().__add__(1.0).log()
    return stable * (1.0 / beta)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    inner = (x + x * x * x * 0.044715) * np.sqrt(2.0 / np.pi)
    return x * 0.5 * (inner.tanh() + 1.0)


def swish(x: Tensor) -> Tensor:
    """x * sigmoid(x) (SiLU)."""
    return x * x.sigmoid()


def hard_sigmoid(x: Tensor) -> Tensor:
    """Piecewise-linear sigmoid: clip(x/6 + 0.5, 0, 1) — the MobileNetV3
    edge-friendly variant (no transcendental ops)."""
    return (x * (1.0 / 6.0) + 0.5).clip(0.0, 1.0)


def hard_swish(x: Tensor) -> Tensor:
    """x * hard_sigmoid(x)."""
    return x * hard_sigmoid(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return leaky_relu(x, self.negative_slope)

    def __repr__(self):
        return f"LeakyReLU({self.negative_slope})"


class ELU(Module):
    def __init__(self, alpha: float = 1.0):
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return elu(x, self.alpha)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return gelu(x)


class Swish(Module):
    def forward(self, x: Tensor) -> Tensor:
        return swish(x)


class HardSwish(Module):
    def forward(self, x: Tensor) -> Tensor:
        return hard_swish(x)
