"""ResNet (He et al.) scaled for small-image experiments.

Stands in for the paper's ResNet50: same family (residual basic blocks,
BN, stage-wise downsampling, global average pooling), with width/depth
scaled to the CPU budget of this reproduction.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import functional as F
from ..nn.layers import (BatchNorm2d, Conv2d, GlobalAvgPool2d, Identity,
                         Linear, ReLU)
from ..nn.module import Module, ModuleList
from ..nn.tensor import Tensor


class BasicBlock(Module):
    """Two 3x3 convs with a residual connection; 1x1 projection shortcut
    when shape changes."""

    def __init__(self, in_ch: int, out_ch: int, stride: int,
                 rng: np.random.Generator):
        super().__init__()
        self.conv1 = Conv2d(in_ch, out_ch, 3, stride=stride, padding=1,
                            rng=rng, bias=False)
        self.bn1 = BatchNorm2d(out_ch)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_ch, out_ch, 3, stride=1, padding=1,
                            rng=rng, bias=False)
        self.bn2 = BatchNorm2d(out_ch)
        self.relu2 = ReLU()
        if stride != 1 or in_ch != out_ch:
            self.short_conv = Conv2d(in_ch, out_ch, 1, stride=stride,
                                     rng=rng, bias=False)
            self.short_bn = BatchNorm2d(out_ch)
        else:
            self.short_conv = None
            self.short_bn = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        if self.short_conv is not None:
            shortcut = self.short_bn(self.short_conv(x))
        else:
            shortcut = x
        return self.relu2(out + shortcut)


class ResNet(Module):
    """Small-image ResNet: stem conv, three stages, GAP, linear head.

    Parameters
    ----------
    num_classes: output classes.
    width: channels of the first stage (doubles per stage).
    blocks: number of BasicBlocks per stage.
    in_channels: input channels (3 for RGB).
    seed: weight-init seed (models are fully deterministic per seed).
    """

    def __init__(self, num_classes: int = 10, width: int = 8,
                 blocks: Optional[List[int]] = None, in_channels: int = 3,
                 seed: int = 0):
        super().__init__()
        blocks = blocks if blocks is not None else [1, 1, 1]
        rng = np.random.default_rng(seed)
        self.num_classes = num_classes
        self.width = width
        self.blocks_cfg = list(blocks)
        self.stem = Conv2d(in_channels, width, 3, stride=1, padding=1,
                           rng=rng, bias=False)
        self.stem_bn = BatchNorm2d(width)
        self.stem_relu = ReLU()
        stages = []
        in_ch = width
        for stage_idx, n_blocks in enumerate(blocks):
            out_ch = width * (2 ** stage_idx)
            for b in range(n_blocks):
                stride = 2 if (stage_idx > 0 and b == 0) else 1
                stages.append(BasicBlock(in_ch, out_ch, stride, rng))
                in_ch = out_ch
        self.stages = ModuleList(stages)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(in_ch, num_classes, rng=rng)
        self.feature_dim = in_ch

    def features(self, x: Tensor) -> Tensor:
        """Penultimate representation (post-GAP), used for PCA analysis."""
        out = self.stem_relu(self.stem_bn(self.stem(x)))
        for block in self.stages:
            out = block(out)
        return self.pool(out)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(self.features(x))
