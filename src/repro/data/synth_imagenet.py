"""Procedural image-classification dataset — the ImageNet stand-in.

The paper's main dataset is 50k ImageNet validation images over 1000
classes.  Offline and CPU-bound, we substitute a procedural generator
with the properties the experiments actually depend on:

- many visually-structured classes (textures + blob layouts + color);
- instance variation (jitter, lighting, noise) that puts model accuracy
  in the paper's regime (roughly 70-90% rather than saturated), so both
  honest mistakes and fp32-vs-int8 prediction instability exist;
- smooth pixel intensities so gradient-based attacks behave as on
  natural images.

Each class draws a prototype (sinusoidal texture + 3 Gaussian blobs +
base color) from a class-seeded generator; each image perturbs the
prototype.  Difficulty is controlled by ``noise`` and ``jitter``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .datasets import ArrayDataset


@dataclass(frozen=True)
class SynthImageNetConfig:
    """Generation parameters for the procedural dataset."""

    num_classes: int = 10
    image_size: int = 16
    noise: float = 0.18          # additive Gaussian pixel noise (difficulty)
    jitter: float = 0.10         # geometric/texture instance jitter
    color_jitter: float = 0.15
    seed: int = 7


def _class_prototype(cls: int, cfg: SynthImageNetConfig) -> dict:
    """Deterministic per-class appearance parameters."""
    rng = np.random.default_rng((cfg.seed, cls, 0xC1A55))
    return {
        "freq": rng.uniform(1.0, 4.0, size=2),          # texture frequency
        "orient": rng.uniform(0, np.pi),                # texture orientation
        "tex_amp": rng.uniform(0.10, 0.25),
        "base_color": rng.uniform(0.25, 0.75, size=3),
        "blob_pos": rng.uniform(0.2, 0.8, size=(3, 2)),
        "blob_sigma": rng.uniform(0.08, 0.22, size=3),
        "blob_amp": rng.uniform(0.3, 0.6, size=3) * rng.choice([-1, 1], size=3),
        "blob_color": rng.uniform(-0.4, 0.4, size=(3, 3)),
    }


def _render(proto: dict, rng: np.random.Generator,
            cfg: SynthImageNetConfig, n: int) -> np.ndarray:
    """Render ``n`` instances of a class prototype, vectorized over n."""
    s = cfg.image_size
    yy, xx = np.meshgrid(np.linspace(0, 1, s), np.linspace(0, 1, s), indexing="ij")
    yy = yy[None, :, :]
    xx = xx[None, :, :]

    # texture: oriented sinusoid with jittered phase/orientation per image
    orient = proto["orient"] + rng.normal(0, cfg.jitter, size=(n, 1, 1))
    phase = rng.uniform(0, 2 * np.pi, size=(n, 1, 1))
    fx, fy = proto["freq"]
    u = np.cos(orient) * xx + np.sin(orient) * yy
    v = -np.sin(orient) * xx + np.cos(orient) * yy
    tex = np.sin(2 * np.pi * (fx * u + fy * v) + phase) * proto["tex_amp"]

    img = np.zeros((n, 3, s, s))
    base = proto["base_color"] * (1.0 + rng.normal(0, cfg.color_jitter, size=(n, 3)))
    img += base[:, :, None, None]
    img += tex[:, None, :, :]

    for b in range(3):
        pos = proto["blob_pos"][b] + rng.normal(0, cfg.jitter, size=(n, 2))
        sig = proto["blob_sigma"][b] * (1.0 + rng.normal(0, cfg.jitter, size=(n,)))
        sig = np.clip(sig, 0.04, 0.5)
        d2 = (xx - pos[:, 0, None, None]) ** 2 + (yy - pos[:, 1, None, None]) ** 2
        bump = np.exp(-d2 / (2 * sig[:, None, None] ** 2)) * proto["blob_amp"][b]
        color = 1.0 + proto["blob_color"][b]
        img += bump[:, None, :, :] * color[None, :, None, None]

    # lighting gradient: random direction, mild strength
    gdir = rng.uniform(0, 2 * np.pi, size=(n, 1, 1))
    gstr = rng.uniform(0.0, 0.15, size=(n, 1, 1))
    light = gstr * (np.cos(gdir) * (xx - 0.5) + np.sin(gdir) * (yy - 0.5))
    img += light[:, None, :, :]

    img += rng.normal(0, cfg.noise, size=img.shape)
    return np.clip(img, 0.0, 1.0)


def generate_synth_imagenet(n_per_class: int,
                            cfg: Optional[SynthImageNetConfig] = None,
                            split_seed: int = 0) -> ArrayDataset:
    """Generate a balanced dataset of ``n_per_class`` images per class.

    ``split_seed`` decorrelates draws so train/val/surrogate sets share
    class prototypes (the population) but never an instance — mirroring
    the paper's disjoint ImageNet splits (§5.1).
    """
    cfg = cfg if cfg is not None else SynthImageNetConfig()
    xs, ys = [], []
    for cls in range(cfg.num_classes):
        proto = _class_prototype(cls, cfg)
        rng = np.random.default_rng((cfg.seed, cls, split_seed, 0xDA7A))
        xs.append(_render(proto, rng, cfg, n_per_class))
        ys.append(np.full(n_per_class, cls, dtype=np.int64))
    x = np.concatenate(xs).astype(np.float32)
    y = np.concatenate(ys)
    order = np.random.default_rng((cfg.seed, split_seed, 0x5F)).permutation(len(x))
    return ArrayDataset(x[order], y[order], cfg.num_classes)


def standard_splits(cfg: Optional[SynthImageNetConfig] = None,
                    train_per_class: int = 200, val_per_class: int = 60,
                    surrogate_per_class: int = 60
                    ) -> Tuple[ArrayDataset, ArrayDataset, ArrayDataset]:
    """(train, val, surrogate) with disjoint instances, shared classes.

    The surrogate split plays the role of the paper's 12,811 extra
    ImageNet-train images used to distill surrogate models — disjoint
    from both the operator's train set and the attack evaluation set.
    """
    cfg = cfg if cfg is not None else SynthImageNetConfig()
    train = generate_synth_imagenet(train_per_class, cfg, split_seed=1)
    val = generate_synth_imagenet(val_per_class, cfg, split_seed=2)
    surrogate = generate_synth_imagenet(surrogate_per_class, cfg, split_seed=3)
    return train, val, surrogate
