"""Multi-seed statistical runs.

The paper reports single-run numbers on fixed splits; at this
reproduction's (small) scale, run-to-run variance is non-trivial, so the
harness can repeat any experiment across seeds and report mean and
standard deviation for every scalar metric in the result payload.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .config import ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results


def _flatten(prefix: str, payload, out: Dict[str, float]) -> None:
    """Collect scalar leaves of a nested results dict as dotted keys."""
    if isinstance(payload, dict):
        for k, v in payload.items():
            _flatten(f"{prefix}.{k}" if prefix else str(k), v, out)
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        out[prefix] = float(payload)


@dataclasses.dataclass
class SeedSweepResult:
    """Aggregated metrics across seeds."""

    seeds: List[int]
    mean: Dict[str, float]
    std: Dict[str, float]
    per_seed: List[Dict[str, float]]

    def table(self, keys: Optional[Sequence[str]] = None,
              title: str = "multi-seed sweep") -> str:
        keys = list(keys) if keys is not None else sorted(self.mean)
        rows = [[k, f"{self.mean[k]:.3f}", f"{self.std[k]:.3f}"]
                for k in keys if k in self.mean]
        return format_table(["metric", "mean", "std"], rows, title=title)


def run_across_seeds(experiment: Callable[..., Dict],
                     base_cfg: Optional[ExperimentConfig] = None,
                     seeds: Sequence[int] = (0, 1, 2),
                     store=None, name: Optional[str] = None,
                     **experiment_kwargs) -> SeedSweepResult:
    """Run ``experiment(cfg, pipeline=...)`` once per seed and aggregate.

    Each seed gets its own config (hence its own cached model grid), so
    the sweep measures genuine training + data variance, not attack
    stochasticity alone.
    """
    base_cfg = base_cfg if base_cfg is not None else \
        ExperimentConfig.paper_scale()
    per_seed: List[Dict[str, float]] = []
    for seed in seeds:
        cfg = dataclasses.replace(base_cfg, seed=int(seed))
        pipe = Pipeline(cfg, store=store) if store is not None else Pipeline(cfg)
        payload = experiment(cfg, pipeline=pipe, verbose=False,
                             **experiment_kwargs)
        flat: Dict[str, float] = {}
        _flatten("", {k: v for k, v in payload.items() if k != "table"}, flat)
        per_seed.append(flat)

    keys = set(per_seed[0])
    for f in per_seed[1:]:
        keys &= set(f)
    mean = {k: float(np.mean([f[k] for f in per_seed])) for k in keys}
    std = {k: float(np.std([f[k] for f in per_seed])) for k in keys}
    result = SeedSweepResult(list(seeds), mean, std, per_seed)
    if name:
        save_results(f"multiseed_{name}", {
            "seeds": list(seeds), "mean": mean, "std": std})
    return result
