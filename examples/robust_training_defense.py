"""Robust training as a defense against DIVA (§5.5).

Trains a PGD-minimax hardened original model (Eq. 4), derives its
quantized edge version, and measures how much of both attacks' success
survives — the paper finds robust training shrinks the exploitable
divergence ("the non-overlapping area between the decision boundaries
... becomes smaller") but DIVA keeps an edge over PGD at a suitable c.

Run:  python examples/robust_training_defense.py
"""

from repro.attacks import DIVA, PGD
from repro.data import SynthImageNetConfig, select_attack_set, standard_splits
from repro.defense import adversarial_fit, robust_accuracy
from repro.metrics import evaluate_attack
from repro.models import build_model
from repro.nn import set_default_dtype
from repro.quantization import prepare_qat, qat_finetune
from repro.training import evaluate_accuracy, fit


def main() -> None:
    set_default_dtype("float32")
    eps, alpha, steps = 32 / 255, 4 / 255, 20

    cfg = SynthImageNetConfig(num_classes=20, image_size=16,
                              noise=0.40, jitter=0.20)
    train, val, _ = standard_splits(cfg, train_per_class=120,
                                    val_per_class=40, surrogate_per_class=10)

    print("== standard vs robust original model ==")
    standard = build_model("resnet", num_classes=20, width=8, seed=0)
    fit(standard, train.x, train.y, epochs=8, batch_size=64, lr=0.02, seed=1)
    robust = build_model("resnet", num_classes=20, width=8, seed=0)
    fit(robust, train.x, train.y, epochs=4, batch_size=64, lr=0.02, seed=1)
    adversarial_fit(robust, train.x, train.y, epochs=4, batch_size=64,
                    eps=eps, attack_steps=5,
                    log_fn=lambda s: print("  " + s))
    print(f"  clean acc: standard {evaluate_accuracy(standard, val.x, val.y):.1%}"
          f" | robust {evaluate_accuracy(robust, val.x, val.y):.1%}")
    print(f"  robust acc (PGD-20): standard "
          f"{robust_accuracy(standard, val.x[:120], val.y[:120], eps=eps, alpha=alpha, steps=steps):.1%}"
          f" | robust "
          f"{robust_accuracy(robust, val.x[:120], val.y[:120], eps=eps, alpha=alpha, steps=steps):.1%}")

    print("== quantize both, attack both pairs ==")
    for label, orig in [("standard", standard), ("robust", robust)]:
        adapted = prepare_qat(orig, weight_bits=4, act_bits=8,
                              per_channel=False)
        qat_finetune(adapted, train.x, train.y, epochs=1, batch_size=64,
                     lr=0.002)
        adapted.freeze()
        atk_set = select_attack_set(val, [orig, adapted], per_class=6)
        x_pgd = PGD(adapted, eps=eps, alpha=alpha, steps=steps).generate(
            atk_set.x, atk_set.y)
        rp = evaluate_attack(orig, adapted, x_pgd, atk_set.y, topk=2)
        print(f"  [{label}] PGD      : evasive={rp.top1_success_rate:6.1%} "
              f"attack-only={rp.attack_only_success_rate:6.1%}")
        for c in (1.0, 1.5, 5.0):
            x_diva = DIVA(orig, adapted, c=c, eps=eps, alpha=alpha,
                          steps=steps).generate(atk_set.x, atk_set.y)
            rd = evaluate_attack(orig, adapted, x_diva, atk_set.y, topk=2)
            print(f"  [{label}] DIVA c={c:<3}: "
                  f"evasive={rd.top1_success_rate:6.1%} "
                  f"attack-only={rd.attack_only_success_rate:6.1%}")


if __name__ == "__main__":
    main()
