"""Rendered hand-written-style digits — the MNIST stand-in (Fig 4).

Digits 0-9 are rasterized from a 5x7 seven-segment-style bitmap font,
upsampled, then per-instance distorted: sub-pixel shift, small rotation,
stroke-thickness variation (Gaussian blur + gain) and pixel noise.  Models
reach high accuracy on it, matching MNIST's role in the paper: an easy
task where fp32/int8 disagreement is rare pre-attack, making DIVA's
representation shift (PCA figure) clean to visualize.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import ndimage

from .datasets import ArrayDataset

# 5x7 bitmap font, rows top->bottom, '#' = ink.
_FONT = {
    0: ["#####", "#...#", "#...#", "#...#", "#...#", "#...#", "#####"],
    1: ["..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."],
    2: ["#####", "....#", "....#", "#####", "#....", "#....", "#####"],
    3: ["#####", "....#", "....#", ".####", "....#", "....#", "#####"],
    4: ["#...#", "#...#", "#...#", "#####", "....#", "....#", "....#"],
    5: ["#####", "#....", "#....", "#####", "....#", "....#", "#####"],
    6: ["#####", "#....", "#....", "#####", "#...#", "#...#", "#####"],
    7: ["#####", "....#", "...#.", "..#..", "..#..", ".#...", ".#..."],
    8: ["#####", "#...#", "#...#", "#####", "#...#", "#...#", "#####"],
    9: ["#####", "#...#", "#...#", "#####", "....#", "....#", "#####"],
}


def _glyph(digit: int) -> np.ndarray:
    rows = _FONT[digit]
    return np.array([[1.0 if ch == "#" else 0.0 for ch in row] for row in rows])


def render_digit(digit: int, rng: np.random.Generator,
                 image_size: int = 28, noise: float = 0.12) -> np.ndarray:
    """Render one distorted instance of ``digit`` as (1, S, S) in [0,1]."""
    glyph = _glyph(digit)
    scale = (image_size * 0.6) / max(glyph.shape)
    img = ndimage.zoom(glyph, scale, order=1, mode="constant")
    canvas = np.zeros((image_size, image_size))
    oy = (image_size - img.shape[0]) // 2
    ox = (image_size - img.shape[1]) // 2
    canvas[oy:oy + img.shape[0], ox:ox + img.shape[1]] = img

    angle = rng.normal(0, 8.0)
    canvas = ndimage.rotate(canvas, angle, reshape=False, order=1, mode="constant")
    shift = rng.normal(0, 1.2, size=2)
    canvas = ndimage.shift(canvas, shift, order=1, mode="constant")
    sigma = rng.uniform(0.5, 1.1)          # stroke thickness / softness
    canvas = ndimage.gaussian_filter(canvas, sigma)
    gain = rng.uniform(1.4, 2.2)
    canvas = np.clip(canvas * gain, 0, 1)
    canvas += rng.normal(0, noise, size=canvas.shape)
    return np.clip(canvas, 0, 1)[None, :, :]


def generate_synth_digits(n_per_class: int, image_size: int = 28,
                          noise: float = 0.12, seed: int = 11,
                          split_seed: int = 0) -> ArrayDataset:
    """Balanced digit dataset: ``n_per_class`` instances of each of 0-9."""
    xs, ys = [], []
    for digit in range(10):
        rng = np.random.default_rng((seed, digit, split_seed))
        for _ in range(n_per_class):
            xs.append(render_digit(digit, rng, image_size, noise))
        ys.append(np.full(n_per_class, digit, dtype=np.int64))
    x = np.stack(xs).astype(np.float32)
    y = np.concatenate(ys)
    order = np.random.default_rng((seed, split_seed, 0x9D)).permutation(len(x))
    return ArrayDataset(x[order], y[order], 10)
