"""Shared attack machinery: L-inf projection, input gradients, batching.

All attacks operate on pixel arrays in [0, 1] (NCHW) and return perturbed
arrays of the same shape.  The attack budget follows the paper: L-inf
bound ``eps`` (default 8/255), per-step size ``alpha`` (default 1/255),
``steps`` iterations (default 20), natural-sample initialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..nn.module import Module
from ..nn.tensor import Tensor

PIXEL_MIN = 0.0
PIXEL_MAX = 1.0
DEFAULT_EPS = 8.0 / 255.0
DEFAULT_ALPHA = 1.0 / 255.0
DEFAULT_STEPS = 20


def project_linf(x_adv: np.ndarray, x_orig: np.ndarray, eps: float) -> np.ndarray:
    """Project onto the L-inf ball of radius ``eps`` around ``x_orig``,
    then clamp to the valid pixel range."""
    out = np.clip(x_adv, x_orig - eps, x_orig + eps)
    return np.clip(out, PIXEL_MIN, PIXEL_MAX)


def linf_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-sample L-inf distance of (N, ...) batches."""
    return np.abs(a - b).reshape(len(a), -1).max(axis=1)


def input_gradient(loss_builder: Callable[[Tensor], Tensor],
                   x: np.ndarray) -> np.ndarray:
    """Gradient of a scalar loss w.r.t. the input pixels.

    ``loss_builder`` maps the input tensor to a scalar loss; per-sample
    losses must be summed (samples are independent, so the summed
    gradient equals stacked per-sample gradients).
    """
    xt = Tensor(x, requires_grad=True)
    loss = loss_builder(xt)
    loss.backward()
    return xt.grad.copy()


@dataclass
class AttackTrace:
    """Optional per-step snapshots for step-sweep figures (Fig 6d).

    ``snapshots[t]`` holds the adversarial batch after ``t + 1`` steps.
    """

    snapshots: List[np.ndarray] = field(default_factory=list)

    def record(self, x_adv: np.ndarray) -> None:
        self.snapshots.append(x_adv.copy())


class Attack:
    """Base class: iterate sign-gradient steps under an L-inf budget.

    With ``keep_best`` (default), each sample's *first iterate satisfying
    the attack's own success criterion* is kept and returned even if later
    steps overshoot — standard strong-attack practice, and consistent with
    the paper's monotone success-vs-steps curves (Fig 6d).  Attacks define
    success via :meth:`is_success`; the base class has no criterion, so it
    falls back to returning the final iterate.
    """

    def __init__(self, eps: float = DEFAULT_EPS, alpha: float = DEFAULT_ALPHA,
                 steps: int = DEFAULT_STEPS, random_start: bool = False,
                 keep_best: bool = True, seed: int = 0):
        if eps <= 0 or alpha <= 0 or steps < 1:
            raise ValueError("eps/alpha must be positive and steps >= 1")
        self.eps = float(eps)
        self.alpha = float(alpha)
        self.steps = int(steps)
        self.random_start = bool(random_start)
        self.keep_best = bool(keep_best)
        self.seed = seed

    # subclasses implement the per-batch gradient of the objective
    def gradient(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - abstract

    def is_success(self, x_adv: np.ndarray, y: np.ndarray) -> Optional[np.ndarray]:
        """Per-sample success mask under this attack's own objective, or
        None when the attack defines no early-success criterion."""
        return None

    def _init(self, x: np.ndarray) -> np.ndarray:
        """Starting point: natural sample, or uniform noise in the ball.

        The paper initializes from the natural sample — "random start is
        less effective in a single run" (§5.1).
        """
        if not self.random_start:
            return x.copy()
        rng = np.random.default_rng(self.seed)
        noise = rng.uniform(-self.eps, self.eps, size=x.shape).astype(x.dtype)
        return project_linf(x + noise, x, self.eps)

    def generate(self, x: np.ndarray, y: np.ndarray,
                 trace: Optional[AttackTrace] = None,
                 batch_size: int = 64) -> np.ndarray:
        """Craft adversarial examples for the whole batch.

        Ascends the subclass objective with sign steps, projecting back
        into the eps-ball each iteration (Eq. 3 of the paper).
        """
        y = np.asarray(y)
        outs = []
        step_snaps: List[List[np.ndarray]] = [[] for _ in range(self.steps)]
        for start in range(0, len(x), batch_size):
            xb = x[start:start + batch_size]
            yb = y[start:start + batch_size]
            adv = self._init(xb)
            held = adv.copy()                      # best-so-far iterates
            done = np.zeros(len(xb), dtype=bool)
            for t in range(self.steps):
                g = self.gradient(adv, yb)
                adv = adv + self.alpha * np.sign(g)
                adv = project_linf(adv, xb, self.eps).astype(xb.dtype)
                if self.keep_best:
                    mask = self.is_success(adv, yb)
                    if mask is not None:
                        newly = mask & ~done
                        held[newly] = adv[newly]
                        done |= newly
                if trace is not None:
                    merged = np.where(done[:, None, None, None], held, adv)
                    step_snaps[t].append(merged)
            final = np.where(done[:, None, None, None], held, adv)
            outs.append(final)
        if trace is not None:
            for t in range(self.steps):
                trace.record(np.concatenate(step_snaps[t], axis=0))
        return np.concatenate(outs, axis=0)
