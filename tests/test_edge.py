"""Integer edge engine: ops, compilation, parity with the QAT path."""

import numpy as np
import pytest

from repro.data import generate_synth_digits
from repro.edge import EdgeModel, compile_edge
from repro.models import build_model
from repro.nn import Tensor
from repro.quantization import prepare_qat, qat_finetune
from repro.quantization.affine import QuantParams, choose_qparams
from repro.training import fit, predict_labels


@pytest.fixture(scope="module")
def lenet_pair():
    """(float LeNet, frozen QAT LeNet, train set, val set) on digits."""
    train = generate_synth_digits(40, image_size=16, split_seed=1)
    val = generate_synth_digits(15, image_size=16, split_seed=2)
    model = build_model("lenet", num_classes=10, image_size=16, seed=0)
    fit(model, train.x, train.y, epochs=6, batch_size=32, lr=0.03, seed=1)
    q = prepare_qat(model, weight_bits=8, act_bits=8, per_channel=True)
    qat_finetune(q, train.x, train.y, epochs=1, batch_size=32, lr=0.002)
    q.freeze()
    return model, q, train, val


class TestCompile:
    def test_compiles_lenet(self, lenet_pair):
        _, q, _, val = lenet_pair
        edge = compile_edge(q, 10)
        assert isinstance(edge, EdgeModel)
        logits = edge.predict(val.x[:4])
        assert logits.shape == (4, 10)

    def test_rejects_unfrozen(self, lenet_pair):
        model, _, train, _ = lenet_pair
        q2 = prepare_qat(model)
        from repro.quantization import calibrate
        calibrate(q2, train.x[:32])
        with pytest.raises(ValueError):
            compile_edge(q2, 10)

    def test_rejects_non_feedforward(self, tiny_quantized):
        with pytest.raises(TypeError):
            compile_edge(tiny_quantized, 6)   # ResNet has no edge_layers

    def test_rejects_uninstrumented(self, lenet_pair):
        from repro.quantization.qat import QATModel
        model, _, _, _ = lenet_pair
        bare = QATModel(model.copy_structure(), quantize_input=False)
        with pytest.raises(ValueError):
            compile_edge(bare, 10)


class TestParity:
    def test_high_agreement_with_qat(self, lenet_pair):
        """The integer path must match the fake-quant path (TFLite-vs-QAT
        parity) on essentially all inputs."""
        _, q, _, val = lenet_pair
        edge = compile_edge(q, 10)
        pe = edge.predict(val.x).argmax(1)
        pq = predict_labels(q, val.x)
        assert (pe == pq).mean() >= 0.97

    def test_logits_close_to_qat(self, lenet_pair):
        _, q, _, val = lenet_pair
        edge = compile_edge(q, 10)
        le = edge.predict(val.x[:16])
        lq = q(Tensor(val.x[:16])).data
        # logits live on the final dequant grid; allow a few LSBs of the
        # final scale for accumulated fixed-point rounding
        final_scale = float(edge.ops[-1].qp.scale)
        assert np.abs(le - lq).max() <= 3 * final_scale + 1e-7

    def test_accuracy_close_to_qat(self, lenet_pair):
        _, q, _, val = lenet_pair
        edge = compile_edge(q, 10)
        acc_e = (edge.predict(val.x).argmax(1) == val.y).mean()
        from repro.training import evaluate_accuracy
        acc_q = evaluate_accuracy(q, val.x, val.y)
        assert abs(acc_e - acc_q) <= 0.05


class TestEngineOps:
    def test_quantize_input_grid(self):
        from repro.edge.engine import QuantizeInput
        qp = choose_qparams(np.float64(0), np.float64(1), -128, 127)
        op = QuantizeInput(qp)
        q = op(np.array([[[[0.0, 0.5, 1.0]]]]))
        assert q.dtype == np.int32
        assert q.min() >= -128 and q.max() <= 127

    def test_quantize_input_native_dtype_grid(self):
        """PR 2 dtype policy: float32 pixels quantize in float32 (no
        float64 round trip) and land on the unchanged integer grid."""
        from repro.edge.engine import QuantizeInput
        qp = choose_qparams(np.float64(-1), np.float64(1), -128, 127)
        op = QuantizeInput(qp)
        s, z = float(qp.scale), float(qp.zero_point)
        rng = np.random.default_rng(0)
        # grid-centered samples stay well away from rounding ties, so
        # the float32 and float64 paths must agree bit for bit
        k = rng.integers(qp.qmin, qp.qmax + 1, size=(4, 3, 8, 8))
        x64 = (k - z + rng.uniform(-0.45, 0.45, size=k.shape)) * s
        q64 = op(x64)
        q32 = op(x64.astype(np.float32))
        assert q64.dtype == np.int32 and q32.dtype == np.int32
        np.testing.assert_array_equal(q32, q64)
        # the pre-policy float64-upcast formula, for the grid pin
        ref = np.clip(np.round(x64.astype(np.float64) / s) + z,
                      qp.qmin, qp.qmax).astype(np.int32)
        np.testing.assert_array_equal(q64, ref)
        # non-float inputs still promote to float64
        np.testing.assert_array_equal(op(k * 0), op((k * 0).astype(np.float64)))

    def test_qrelu_zeroes_negatives(self):
        from repro.edge.engine import QReLU
        in_qp = QuantParams(scale=np.float64(0.1), zero_point=np.float64(10),
                            qmin=-128, qmax=127)
        out_qp = QuantParams(scale=np.float64(0.1), zero_point=np.float64(-128),
                             qmin=-128, qmax=127)
        op = QReLU(in_qp, out_qp)
        # q=10 is real 0.0; q=0 is real -1.0; q=20 is real +1.0
        out = op(np.array([10, 0, 20], dtype=np.int32))
        real = (out.astype(float) - (-128)) * 0.1
        assert np.allclose(real, [0.0, 0.0, 1.0], atol=0.05)

    def test_qmaxpool_is_integer_max(self):
        from repro.edge.engine import QMaxPool2d
        q = np.arange(16, dtype=np.int32).reshape(1, 1, 4, 4)
        out = QMaxPool2d(2)(q)
        assert out[0, 0].tolist() == [[5, 7], [13, 15]]

    def test_footprint_smaller_than_float(self, lenet_pair):
        model, q, _, _ = lenet_pair
        edge = compile_edge(q, 10)
        from repro.quantization import model_size_bytes
        assert edge.footprint_bytes() < model_size_bytes(model) / 2

    def test_edge_model_tensor_protocol(self, lenet_pair):
        _, q, _, val = lenet_pair
        edge = compile_edge(q, 10)
        out = edge(Tensor(val.x[:2]))
        assert out.data.shape == (2, 10)
        labels = predict_labels(edge, val.x[:4])
        assert labels.shape == (4,)
