"""Networked serving front end: a socket boundary in front of ServeSession.

The paper's threat model is many users querying a deployed artifact
over a real service boundary; until now ``ServeSession`` was an
in-process object, so the failure modes that matter at that boundary —
lost connections, duplicated requests, overloaded queues, crashed
servers — could not exist.  This module adds them, and the machinery
that survives them, without moving a single bit of any result:

- **frame protocol** — length-prefixed, CRC-checked frames carrying a
  JSON header plus raw array segments (:func:`encode_frame` /
  :class:`FrameParser`).  The CRC plus the length prefix make
  truncation and corruption *detectable*, which turns every wire fault
  into either a clean frame or a clean connection error — never a
  silently wrong array.
- **ServeServer** — a ``selectors``-driven event loop mapping ``submit``
  frames onto the existing session submit/drain/admission machinery.
  Backpressure propagates as structured error responses (the
  :class:`~repro.serve.resilience.ServeError` class name rides the
  header, so clients re-raise the same taxonomy), health/readiness
  probes answer even mid-drain, and shutdown drains gracefully:
  accepted work completes, new work is refused with an explicit
  ``rejected`` outcome.  A bounded idempotency window (plus the
  :mod:`~repro.serve.journal` write-ahead log when configured) makes
  retried requests serve the *recorded* response bytes instead of
  re-executing.
- **ServeClient** — per-request deadlines, timeout + exponential-
  backoff-with-jitter retries, and client-generated idempotency keys.
  A retried request re-sends the same key, so the server's dedup
  window guarantees at-most-once execution under at-least-once
  delivery — the classic idempotent-retry contract.
- **deterministic wire chaos** — every frame the client sends or
  receives passes through the PR 6 fault harness
  (:func:`repro.serve.faults.frame` at ``net.client.send`` /
  ``net.client.recv``): seeded drop / duplicate / delay / truncate
  faults, with latency advancing a
  :class:`~repro.serve.resilience.ManualClock` so chaos replays
  bit-for-bit without a single real sleep.
- **load generation** — :func:`replay_net` replays a recorded workload
  through a client honoring per-job ``arrival_offset_s`` at an
  accelerated rate (10-100x), and :func:`verify_net_parity` closes the
  loop with the existing parity gate: every client-visible ``ok``
  result bit-identical to the in-process solo run.

Doctest — frames round-trip exactly, and the parser refuses torn ones::

    >>> import numpy as np
    >>> raw = encode_frame({"op": "submit", "key": "k0"},
    ...                    {"x": np.ones((2, 3), dtype=np.float32)})
    >>> p = FrameParser(); p.feed(raw)
    >>> [(h["key"], sorted(a)) for h, a, _ in p.frames()]
    [('k0', ['x'])]
    >>> p.feed(raw[:len(raw) - 3])          # truncated: parser just waits
    >>> list(p.frames())
    []
    >>> p.partial                            # ...holding a torn frame
    True
"""

from __future__ import annotations

import itertools
import json
import os
import selectors
import socket
import struct
import time
import zlib
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from . import faults
from .journal import Journal
from .resilience import (AdmissionError, Clock, DeadlineError, JobError,
                         ManualClock, QuotaError, ServeError, ShedError)
from .scheduler import JobFuture
from .session import ServeSession

# --------------------------------------------------------------------- #
# errors
# --------------------------------------------------------------------- #


class NetError(ServeError):
    """Base class of transport-level serving failures (client side)."""


class ProtocolError(NetError):
    """The byte stream violated the frame protocol (bad magic/version,
    CRC mismatch, oversized frame) — the connection cannot be trusted
    past this point and is torn down."""


class RetryError(NetError):
    """Every retry attempt was spent without a response; the last
    transport failure (if any) is chained via ``__cause__``."""


#: ServeError classes that may cross the wire by name; anything else
#: (including injected faults) comes back as a JobError with the
#: original class name in the message
_WIRE_ERRORS = {cls.__name__: cls for cls in
                (AdmissionError, ShedError, QuotaError, JobError,
                 DeadlineError)}


def _error_from_wire(name: str, message: str) -> ServeError:
    cls = _WIRE_ERRORS.get(name)
    if cls is None:
        return JobError(f"{name}: {message}")
    return cls(message)


# --------------------------------------------------------------------- #
# frame codec
# --------------------------------------------------------------------- #

MAGIC = b"RV"
VERSION = 1
#: magic, version, flags, payload length, payload crc32
_PREFIX = struct.Struct(">2sBBII")
#: refuse absurd lengths before allocating (a corrupted length prefix
#: must not become an OOM)
MAX_FRAME_BYTES = 1 << 28


def encode_frame(header: Dict[str, Any],
                 arrays: Optional[Dict[str, np.ndarray]] = None) -> bytes:
    """One wire frame: prefix + (json header || raw array segments).

    Array metadata (name/dtype/shape, in segment order) is folded into
    the header under ``"arrays"``; the segments themselves ride as raw
    bytes after the JSON, so numeric payloads cross the wire without
    base64 inflation or precision laundering.
    """
    arrays = arrays or {}
    meta = []
    segments = []
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        meta.append({"name": name, "dtype": arr.dtype.str,
                     "shape": list(arr.shape)})
        segments.append(arr.tobytes())
    hdr = dict(header)
    hdr["arrays"] = meta
    hjson = json.dumps(hdr, sort_keys=True).encode("utf-8")
    payload = struct.pack(">I", len(hjson)) + hjson + b"".join(segments)
    prefix = _PREFIX.pack(MAGIC, VERSION, 0, len(payload),
                          zlib.crc32(payload))
    return prefix + payload


def _decode_payload(payload: bytes
                    ) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    if len(payload) < 4:
        raise ProtocolError("payload too short for a header length")
    (hlen,) = struct.unpack_from(">I", payload)
    if hlen > len(payload) - 4:
        raise ProtocolError("header length exceeds payload")
    try:
        header = json.loads(payload[4:4 + hlen].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame header: {exc}") from exc
    arrays: Dict[str, np.ndarray] = {}
    offset = 4 + hlen
    for meta in header.pop("arrays", []):
        dtype = np.dtype(meta["dtype"])
        shape = tuple(int(d) for d in meta["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if offset + nbytes > len(payload):
            raise ProtocolError("array segment exceeds payload")
        arrays[meta["name"]] = np.frombuffer(
            payload, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)),
            offset=offset).reshape(shape).copy()
        offset += nbytes
    return header, arrays


class FrameParser:
    """Incremental frame parser over an untrusted byte stream.

    ``feed`` bytes as they arrive; ``frames()`` yields every complete
    ``(header, arrays, raw_frame_bytes)`` and leaves a trailing partial
    frame buffered (``partial``) — a connection that dies mid-frame
    simply abandons it.  Violations (bad magic, CRC mismatch, bogus
    lengths) raise :class:`ProtocolError`: the stream is beyond resync
    and the owner must close it.
    """

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf += data

    @property
    def partial(self) -> bool:
        return len(self._buf) > 0

    def frames(self):
        while True:
            if len(self._buf) < _PREFIX.size:
                return
            magic, version, _flags, length, crc = _PREFIX.unpack_from(
                self._buf)
            if magic != MAGIC or version != VERSION:
                raise ProtocolError(
                    f"bad frame prefix (magic {magic!r}, version {version})")
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(f"frame length {length} exceeds cap")
            total = _PREFIX.size + length
            if len(self._buf) < total:
                return
            raw = bytes(self._buf[:total])
            payload = raw[_PREFIX.size:]
            del self._buf[:total]
            if zlib.crc32(payload) != crc:
                raise ProtocolError("frame CRC mismatch")
            header, arrays = _decode_payload(payload)
            yield header, arrays, raw

    def reset(self) -> None:
        self._buf.clear()


# --------------------------------------------------------------------- #
# server
# --------------------------------------------------------------------- #


class _Conn:
    """Per-connection state: its socket, parser, and outbound buffer."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.parser = FrameParser()
        self.out = bytearray()
        self.open = True

    def close(self) -> None:
        if self.open:
            self.open = False
            try:
                self.sock.close()
            except OSError:
                pass


class ServeServer:
    """Socket front end over one :class:`~repro.serve.session.ServeSession`.

    Parameters
    ----------
    session:
        The session every accepted job is submitted to.  Admission
        control, coalescing, the degradation ladder and deadline
        handling all stay the session's business — the server only maps
        frames onto submits and futures onto response frames.
    spec / models:
        Server-side model state: either a workload spec dict (models
        built via :func:`~repro.serve.workload.build_models`) or a
        prebuilt ``(original, adapted, edge)`` triple.  Attack jobs are
        materialized per request from their resolved spec record via
        :func:`~repro.serve.workload.attack_factory`.
    host / port:
        Listen address; port 0 picks a free port (``server.port`` holds
        the bound one).
    journal_path:
        Write-ahead journal location.  When given, accepted requests
        are journaled before submission and completed responses after;
        an existing journal is recovered on construction — completed
        responses reload the dedup window *verbatim* and interrupted
        accepts are re-submitted (see :mod:`repro.serve.journal`).
    dedup_window:
        Bound on the idempotency window (completed responses kept for
        retried keys).  A retry arriving after its entry was evicted
        re-executes — bit-identical by the serving stack's determinism,
        but the window is what makes the common case free.
    """

    def __init__(self, session: ServeSession, spec: Optional[Dict] = None,
                 models: Optional[Tuple[Any, Any, Any]] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 journal_path: Optional[str] = None,
                 journal_sync: bool = False,
                 dedup_window: int = 256):
        if models is None:
            if spec is None:
                raise ValueError("ServeServer needs a workload spec or a "
                                 "prebuilt (original, adapted, edge) triple")
            from .workload import build_models
            models = build_models(spec)
        self.session = session
        self.original, self.adapted, self.edge = models
        self.default_steps = int((spec or {}).get("steps", 10))
        self.dedup_window = int(dedup_window)

        self._dedup: "OrderedDict[str, bytes]" = OrderedDict()
        #: key -> (future, waiter conns, request header)
        self._inflight: "OrderedDict[str, Tuple[JobFuture, List[_Conn], Dict]]" = OrderedDict()
        self._draining = False
        self._closed = False
        self._shutdown_requested = False
        self.deduped = 0
        self.accepted = 0
        self.rejected_draining = 0
        self.recovered_completed = 0
        self.recovered_incomplete = 0

        self.journal: Optional[Journal] = None
        if journal_path is not None:
            incomplete, completed = Journal.scan(journal_path)
            for key, (outcome, hdr, arrs) in completed.items():
                self._remember(key, encode_frame(hdr, arrs))
            self.recovered_completed = len(completed)
            self.journal = Journal(journal_path, sync=journal_sync)
            for key, (hdr, arrs) in incomplete.items():
                future = self._submit(hdr, arrs)
                self._inflight[key] = (future, [], hdr)
            self.recovered_incomplete = len(incomplete)

        self._listener = socket.create_server((host, port), backlog=64)
        self._listener.setblocking(False)
        self.host, self.port = self._listener.getsockname()[:2]
        self._sel = selectors.DefaultSelector()
        self._sel.register(self._listener, selectors.EVENT_READ, None)
        self._conns: List[_Conn] = []

    # -- submission plumbing --------------------------------------------- #
    def _submit(self, header: Dict[str, Any],
                arrays: Dict[str, np.ndarray]) -> JobFuture:
        """Map one submit header onto the session's own submit calls."""
        from .workload import attack_factory

        rec = header["job"]
        kind = rec["kind"]
        tenant = header.get("tenant")
        deadline_s = header.get("deadline_s")
        if kind == "predict":
            return self.session.submit_predict(self.edge, arrays["x"],
                                               tenant=tenant)
        if kind == "predict_float":
            return self.session.submit_predict(self.adapted, arrays["x"],
                                               tenant=tenant)
        make = attack_factory(self.original, self.adapted, rec,
                              default_steps=self.default_steps)
        return self.session.submit_attack(make(), arrays["x"], arrays["y"],
                                          tenant=tenant,
                                          deadline_s=deadline_s)

    def _remember(self, key: str, frame_bytes: bytes) -> None:
        self._dedup[key] = frame_bytes
        self._dedup.move_to_end(key)
        while len(self._dedup) > self.dedup_window:
            self._dedup.popitem(last=False)

    def _handle_submit(self, conn: Optional[_Conn],
                       header: Dict[str, Any],
                       arrays: Dict[str, np.ndarray]) -> None:
        key = header["key"]
        if key in self._dedup:
            # the idempotent-retry fast path: the recorded response
            # bytes, never a second execution
            self.deduped += 1
            if conn is not None:
                conn.out += self._dedup[key]
            return
        if key in self._inflight:
            self.deduped += 1
            if conn is not None:
                future, waiters, hdr = self._inflight[key]
                if conn not in waiters:
                    waiters.append(conn)
            return
        if self._draining:
            self.rejected_draining += 1
            resp = encode_frame({
                "op": "result", "key": key, "outcome": "rejected",
                "error": "ShedError",
                "message": "server draining: request refused at the "
                           "boundary, resubmit after failover"})
            if conn is not None:
                conn.out += resp
            return
        if self.journal is not None:
            self.journal.accept(key, header, arrays)
        self.accepted += 1
        try:
            future = self._submit(header, arrays)
        except Exception as exc:      # noqa: BLE001 - malformed request
            # submit-time validation failures (bad rows, unknown kind)
            # are the requester's own; answer structurally and move on
            future = JobFuture(lambda timeout=None: None)
            future._fail(JobError(f"{type(exc).__name__}: {exc}"),
                         outcome="rejected")
        self._inflight[key] = (future, [conn] if conn is not None else [],
                               header)

    def _handle_frame(self, conn: _Conn, header: Dict[str, Any],
                      arrays: Dict[str, np.ndarray]) -> None:
        op = header.get("op")
        key = header.get("key")
        if op == "submit":
            self._handle_submit(conn, header, arrays)
        elif op == "health":
            conn.out += encode_frame({"op": "health", "key": key,
                                      "ok": True})
        elif op == "ready":
            conn.out += encode_frame({
                "op": "ready", "key": key,
                "ready": not self._draining and not self._closed})
        elif op == "stats":
            conn.out += encode_frame({"op": "stats", "key": key,
                                      "stats": self.stats})
        elif op == "shutdown":
            self._shutdown_requested = True
            conn.out += encode_frame({"op": "shutdown", "key": key,
                                      "ok": True})
        else:
            conn.out += encode_frame({
                "op": "result", "key": key, "outcome": "rejected",
                "error": "JobError", "message": f"unknown op {op!r}"})

    def _response_for(self, key: str, future: JobFuture
                      ) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        if future._error is not None:
            return ({"op": "result", "key": key, "outcome": future.outcome,
                     "error": type(future._error).__name__,
                     "message": str(future._error)}, {})
        info = {}
        for name, val in (future.info or {}).items():
            info[name] = (np.asarray(val).tolist()
                          if isinstance(val, np.ndarray) else val)
        header = {"op": "result", "key": key, "outcome": future.outcome,
                  "info": info}
        value = future._value
        if isinstance(value, np.ndarray):
            return header, {"result": value}
        return header, {}

    def _settle_inflight(self) -> int:
        """Turn every resolved inflight future into a response frame,
        journal it, remember it in the dedup window, and queue it to
        every waiter connection."""
        settled = 0
        for key in list(self._inflight):
            future, waiters, _header = self._inflight[key]
            if not future.done:
                continue
            resp_header, resp_arrays = self._response_for(key, future)
            frame_bytes = encode_frame(resp_header, resp_arrays)
            if self.journal is not None:
                self.journal.complete(key, future.outcome or "failed",
                                      resp_header, resp_arrays)
            self._remember(key, frame_bytes)
            del self._inflight[key]
            for conn in waiters:
                if conn.open:
                    conn.out += frame_bytes
            settled += 1
        return settled

    # -- event loop ------------------------------------------------------- #
    def _accept_ready(self) -> List[_Conn]:
        accepted: List[_Conn] = []
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return accepted
            sock.setblocking(False)
            conn = _Conn(sock)
            self._conns.append(conn)
            self._sel.register(sock, selectors.EVENT_READ, conn)
            accepted.append(conn)

    def _drop_conn(self, conn: _Conn) -> None:
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        conn.close()
        if conn in self._conns:
            self._conns.remove(conn)

    def _read_conn(self, conn: _Conn) -> List[Tuple[_Conn, Dict, Dict]]:
        """Drain one readable connection into parsed frames; a protocol
        violation or EOF mid-frame discards the partial and closes."""
        frames: List[Tuple[_Conn, Dict, Dict]] = []
        while True:
            try:
                data = conn.sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._drop_conn(conn)
                return frames
            if not data:
                # peer closed; a buffered partial frame is a truncated
                # request — refused by construction (never half-parsed)
                self._drop_conn(conn)
                return frames
            conn.parser.feed(data)
            try:
                for header, arrays, _raw in conn.parser.frames():
                    frames.append((conn, header, arrays))
            except ProtocolError:
                self._drop_conn(conn)
                return frames
        return frames

    def _flush(self, conn: _Conn) -> None:
        while conn.out and conn.open:
            try:
                sent = conn.sock.send(conn.out)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._drop_conn(conn)
                return
            if sent <= 0:
                return
            del conn.out[:sent]

    def poll(self, io_timeout: float = 0.0, drain: bool = True) -> int:
        """One event-loop round: accept, read, submit, drain, respond.

        Every complete frame available *now* is read before the session
        drains, so concurrent submits coalesce exactly as in-process
        ones do.  Returns the number of frames handled plus futures
        settled — the client's loopback pump uses this as its progress
        signal.  ``drain=False`` accepts and journals without serving
        (the crash-window tests' hook: an accepted-not-completed job is
        exactly what a mid-drain kill leaves behind).
        """
        if self._closed:
            return 0
        activity = 0
        readable: List[_Conn] = []
        for sel_key, _events in self._sel.select(timeout=io_timeout):
            if sel_key.data is None:
                # frames riding the connect are readable immediately —
                # read fresh conns this round, not next poll's
                readable.extend(self._accept_ready())
            else:
                readable.append(sel_key.data)
        for ready in readable:
            for conn, header, arrays in self._read_conn(ready):
                self._handle_frame(conn, header, arrays)
                activity += 1
        if drain and self.session.scheduler.pending:
            self.session.drain()
        activity += self._settle_inflight()
        for conn in list(self._conns):
            self._flush(conn)
        return activity

    def serve_forever(self, poll_interval: float = 0.05) -> None:
        """Blocking loop for a standalone server process
        (``repro-exp serve --listen``); exits after a ``shutdown`` op
        or :meth:`shutdown` from a signal handler, draining first."""
        while not self._closed and not self._shutdown_requested:
            self.poll(io_timeout=poll_interval)
        if not self._closed:
            self.shutdown(drain=True)

    # -- lifecycle -------------------------------------------------------- #
    def begin_drain(self) -> None:
        """Stop accepting new work; inflight jobs keep their promise."""
        self._draining = True

    def shutdown(self, drain: bool = True) -> None:
        """Graceful stop: refuse new work, serve accepted work, flush
        every response, then close.  With ``drain=False`` accepted jobs
        are abandoned (their journal accepts survive for recovery) —
        prefer :meth:`kill` to model a crash."""
        if self._closed:
            return
        self.begin_drain()
        if drain:
            self.session.drain()
            self._settle_inflight()
            deadline = time.monotonic() + 5.0
            while (any(c.out for c in self._conns)
                   and time.monotonic() < deadline):
                for conn in list(self._conns):
                    self._flush(conn)
        self._close_everything()
        if self.journal is not None:
            self.journal.close()

    def kill(self) -> None:
        """Abrupt crash: connections die mid-whatever, nothing drains,
        nothing settles.  The journal file (appends are flushed per
        record) is exactly what a restarted server recovers from."""
        self._close_everything()
        if self.journal is not None:
            self.journal.close()

    def _close_everything(self) -> None:
        for conn in list(self._conns):
            self._drop_conn(conn)
        try:
            self._sel.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._sel.close()
        self._closed = True

    @property
    def stats(self) -> Dict[str, Any]:
        out = {
            "accepted": self.accepted,
            "deduped": self.deduped,
            "rejected_draining": self.rejected_draining,
            "inflight": len(self._inflight),
            "dedup_entries": len(self._dedup),
            "draining": self._draining,
            "recovered_completed": self.recovered_completed,
            "recovered_incomplete": self.recovered_incomplete,
            "outcome_counts": dict(self.session.scheduler.outcomes),
        }
        if self.journal is not None:
            out["journal"] = {"accepts": self.journal.accepts,
                              "completes": self.journal.completes}
        return out

    def __enter__(self) -> "ServeServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self._closed:
            self.shutdown(drain=True)
        elif not self._closed:
            self.kill()


# --------------------------------------------------------------------- #
# client
# --------------------------------------------------------------------- #

_CLIENT_IDS = itertools.count()


class ServeClient:
    """Retrying, idempotent client for :class:`ServeServer`.

    Every logical request gets a client-unique idempotency key and a
    canonical frame; :meth:`submit` returns a
    :class:`~repro.serve.scheduler.JobFuture` whose ``result(timeout=
    ...)`` drives the wait/retry loop:

    - wait up to ``attempt_timeout_s`` for the response frame;
    - on timeout, connection loss or a protocol violation, back off
      (exponential with seeded jitter, capped) and re-send the *same*
      frame — the server's idempotency window turns the retry into a
      replayed response, never a second execution;
    - after ``max_retries`` spent attempts raise :class:`RetryError`
      (the last transport error chained), and on an expired
      per-request deadline raise
      :class:`~repro.serve.resilience.DeadlineError`.

    All waiting reads ``clock`` — pass the session's
    :class:`~repro.serve.resilience.ManualClock` plus a ``pump``
    callable (the loopback server's ``poll``) and the whole
    request/retry/backoff dance runs deterministically with no real
    sleeps: chaos replays are bit-for-bit repeatable from the fault
    seed.  Without a pump the client blocks on the socket with real
    timeouts, which is the ``--connect`` / separate-process mode.
    """

    def __init__(self, host: str, port: int,
                 clock: Optional[Clock] = None,
                 attempt_timeout_s: float = 1.0,
                 max_retries: int = 5,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0,
                 retry_seed: int = 0,
                 pump: Optional[Callable[[], int]] = None,
                 client_id: Optional[str] = None):
        self.host, self.port = host, int(port)
        self.clock = clock if clock is not None else Clock()
        self.attempt_timeout_s = float(attempt_timeout_s)
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.pump = pump
        self.client_id = (client_id if client_id is not None
                          else f"c{os.getpid():x}-{next(_CLIENT_IDS)}")
        self._rng = np.random.default_rng(retry_seed)
        self._counter = itertools.count()
        self._sock: Optional[socket.socket] = None
        self._parser = FrameParser()
        self._futures: Dict[str, JobFuture] = {}
        self._requests: Dict[str, bytes] = {}
        self.retries = 0
        self.timeouts = 0
        self.reconnects = 0
        self.protocol_errors = 0
        self.frames_sent = 0
        self.stale_frames = 0

    # -- transport -------------------------------------------------------- #
    def _ensure_conn(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=5.0)
            self._sock = sock
            self._parser.reset()
            self.reconnects += 1
        return self._sock

    def _teardown(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._parser.reset()

    def _transmit(self, payload: bytes) -> None:
        """Put one frame on the wire, through the fault harness.  Frame
        faults rewrite the delivery plan (drop / duplicate / truncate),
        and transport errors are swallowed here — the await/retry loop
        is the recovery path, not the send."""
        for action, data in faults.frame("net.client.send", payload):
            try:
                sock = self._ensure_conn()
                sock.settimeout(2.0)
                sock.sendall(data)
                self.frames_sent += 1
            except OSError:
                self._teardown()
                return
            if action == "truncate":
                # a cut frame is only a *fault* if the stream dies with
                # it — otherwise the peer would just wait forever
                self._teardown()
                return

    # -- receive ---------------------------------------------------------- #
    def _handle_response(self, header: Dict[str, Any],
                         arrays: Dict[str, np.ndarray]) -> None:
        key = header.get("key")
        future = self._futures.get(key)
        if future is None or future.done:
            self.stale_frames += 1
            return
        if header.get("op") != "result":
            future._resolve(header)
            return
        outcome = header.get("outcome") or "failed"
        if "error" in header:
            future._fail(_error_from_wire(header["error"],
                                          header.get("message", "")),
                         outcome=outcome)
        else:
            info = dict(header.get("info") or {})
            if "steps_done" in info:
                info["steps_done"] = np.asarray(info["steps_done"])
            future._resolve(arrays.get("result"), outcome=outcome,
                            info=info)

    def _recv_frames(self, slice_s: float) -> Tuple[int, int]:
        """Read whatever the wire has within ``slice_s``; returns
        ``(frames_processed, bytes_read)`` — bytes count as progress
        even when they end mid-frame (the parser holds the partial),
        so a response split across reads never burns a retry attempt.
        Recv-side frame faults may drop or duplicate frames first."""
        try:
            sock = self._ensure_conn()
        except OSError:
            return 0, 0
        try:
            sock.settimeout(slice_s if slice_s > 0 else 0.000001)
            data = sock.recv(1 << 16)
        except socket.timeout:
            return 0, 0
        except OSError:
            self._teardown()
            return 0, 0
        if not data:
            self._teardown()
            return 0, 0
        self._parser.feed(data)
        processed = 0
        try:
            parsed = list(self._parser.frames())
        except ProtocolError:
            self.protocol_errors += 1
            self._teardown()
            return processed, len(data)
        for header, arrays, raw in parsed:
            for action, _data in faults.frame("net.client.recv", raw):
                if action == "truncate":
                    # a response cut mid-frame: the stream is unusable
                    self.protocol_errors += 1
                    self._teardown()
                    return processed, len(data)
                self._handle_response(header, arrays)
                processed += 1
        return processed, len(data)

    # -- the wait/retry loop ---------------------------------------------- #
    def _sleep(self, dt: float) -> None:
        if isinstance(self.clock, ManualClock):
            self.clock.advance(dt)
        else:
            time.sleep(dt)

    def _backoff_s(self, attempt: int) -> float:
        base = min(self.backoff_cap_s,
                   self.backoff_base_s * (2.0 ** (attempt - 1)))
        return base * (0.5 + 0.5 * float(self._rng.random()))

    def _await(self, key: str, timeout: Optional[float]) -> None:
        future = self._futures[key]
        overall = (None if timeout is None
                   else self.clock.now() + float(timeout))
        attempt = 0
        last_exc: Optional[BaseException] = None
        while not future.done:
            if overall is not None and self.clock.now() >= overall:
                raise DeadlineError(
                    f"no response for {key!r} within the {timeout}s wait")
            attempt_deadline = self.clock.now() + self.attempt_timeout_s
            while not future.done:
                if self.pump is not None:
                    self.pump()
                processed, got = self._recv_frames(
                    0.05 if self.pump is None else 0.02)
                if future.done:
                    break
                if processed == 0 and got == 0:
                    if self.pump is not None:
                        # deterministic loopback: the server settled
                        # everything it will without a re-send — burn
                        # the attempt budget on the manual clock
                        self._sleep(max(
                            0.0, attempt_deadline - self.clock.now()))
                    if self.clock.now() >= attempt_deadline:
                        break
                if (overall is not None
                        and self.clock.now() >= overall):
                    break
            if future.done:
                break
            attempt += 1
            self.timeouts += 1
            if attempt > self.max_retries:
                err = RetryError(
                    f"no response for {key!r} after {attempt} attempts")
                if last_exc is not None:
                    raise err from last_exc
                raise err
            self.retries += 1
            self._sleep(self._backoff_s(attempt))
            self._transmit(self._requests[key])

    # -- public API -------------------------------------------------------- #
    def submit(self, record: Dict[str, Any], x: np.ndarray,
               y: Optional[np.ndarray] = None, tenant: Any = None,
               deadline_s: Optional[float] = None) -> JobFuture:
        """Send one job (a resolved workload record plus its arrays);
        returns a future whose ``result(timeout=...)`` runs the retry
        loop.  The idempotency key is assigned here and reused by every
        retry of this request."""
        key = f"{self.client_id}-{next(self._counter)}"
        header: Dict[str, Any] = {"op": "submit", "key": key,
                                  "job": dict(record)}
        if tenant is not None:
            header["tenant"] = tenant
        if deadline_s is not None:
            header["deadline_s"] = float(deadline_s)
        arrays: Dict[str, np.ndarray] = {"x": np.asarray(x)}
        if y is not None:
            arrays["y"] = np.asarray(y)
        payload = encode_frame(header, arrays)
        future = JobFuture(lambda timeout=None, k=key: self._await(k, timeout))
        self._futures[key] = future
        self._requests[key] = payload
        self._transmit(payload)
        return future

    def _op(self, op: str, timeout: Optional[float] = None
            ) -> Dict[str, Any]:
        key = f"{self.client_id}-{next(self._counter)}"
        payload = encode_frame({"op": op, "key": key})
        future = JobFuture(lambda timeout=timeout, k=key: self._await(k, timeout))
        self._futures[key] = future
        self._requests[key] = payload
        self._transmit(payload)
        return future.result()

    def health(self) -> bool:
        return bool(self._op("health").get("ok"))

    def ready(self) -> bool:
        return bool(self._op("ready").get("ready"))

    def server_stats(self) -> Dict[str, Any]:
        return dict(self._op("stats").get("stats") or {})

    def shutdown_server(self) -> bool:
        return bool(self._op("shutdown").get("ok"))

    @property
    def stats(self) -> Dict[str, int]:
        return {"retries": self.retries, "timeouts": self.timeouts,
                "reconnects": self.reconnects,
                "protocol_errors": self.protocol_errors,
                "frames_sent": self.frames_sent,
                "stale_frames": self.stale_frames}

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# --------------------------------------------------------------------- #
# load generation + the parity gate
# --------------------------------------------------------------------- #


def replay_net(workload, client: ServeClient, rate: float = 10.0,
               result_timeout_s: Optional[float] = None) -> Dict[str, Any]:
    """Replay a recorded workload through a client as an open-loop
    arrival process.

    Jobs are submitted in ``arrival_offset_s`` order with the offsets
    compressed by ``rate`` (10 = a 10x-accelerated replay of the
    recorded trace); under a :class:`~repro.serve.resilience.
    ManualClock` the inter-arrival gaps advance the clock instead of
    sleeping, so a 100x replay takes exactly as long as the compute it
    schedules.  Results/outcomes/errors come back in *original job
    order*, shaped like :func:`~repro.serve.workload.replay_serve`'s
    record so the same parity checks apply.
    """
    order = sorted(range(len(workload.jobs)),
                   key=lambda i: (workload.jobs[i].arrival_offset_s, i))
    futures: List[Optional[JobFuture]] = [None] * len(workload.jobs)
    t0 = time.perf_counter()
    epoch = client.clock.now()
    for i in order:
        job = workload.jobs[i]
        if job.record is None:
            raise ValueError("networked replay needs materialized spec "
                             "records (rebuild the workload with "
                             "build_workload)")
        if rate and job.arrival_offset_s:
            # open-loop arrivals at `rate`x the recorded trace; on a
            # manual clock the inter-arrival gap is an advance, not a
            # sleep, so accelerated replays cost no wall time
            gap = (epoch + job.arrival_offset_s / float(rate)
                   - client.clock.now())
            if gap > 0:
                if isinstance(client.clock, ManualClock):
                    client.clock.advance(gap)
                else:
                    time.sleep(gap)
        futures[i] = client.submit(job.record, job.x, job.y,
                                   tenant=job.tenant,
                                   deadline_s=job.deadline_s)
    results: List[Optional[np.ndarray]] = []
    errors: List[Optional[BaseException]] = []
    outcomes: List[Optional[str]] = []
    for future in futures:
        try:
            value = future.result(timeout=result_timeout_s)
            results.append(value)
            errors.append(None)
        except ServeError as exc:
            results.append(None)
            errors.append(exc)
        outcomes.append(future.outcome or "lost")
    counts: Dict[str, int] = {}
    for o in outcomes:
        counts[o] = counts.get(o, 0) + 1
    return {"results": results, "errors": errors, "outcomes": outcomes,
            "outcome_counts": counts,
            "shed": sum(1 for e in errors if isinstance(e, ShedError)),
            "seconds": time.perf_counter() - t0,
            "rows": workload.rows, "jobs": len(workload.jobs),
            "client": dict(client.stats)}


def verify_net_parity(workload, fault_specs=None, seed: int = 0,
                      rate: float = 10.0, capacity: int = 64,
                      journal_path: Optional[str] = None,
                      deadline_s: Optional[float] = None,
                      reference: Optional[List] = None,
                      workers: Optional[int] = None) -> Dict[str, Any]:
    """The networked acceptance gate: loopback server + retrying client
    (optionally under seeded frame chaos), every client-visible ``ok``
    result bit-identical to the solo in-process run.

    Builds a :class:`~repro.serve.resilience.ManualClock` world: the
    session, server, client and fault injector all share it, so the
    entire replay — arrivals, retries, backoff, latency faults — is
    deterministic from ``(workload, fault_specs, seed)``.  Returns the
    outcome breakdown plus client/server stats (``retried`` /
    ``deduped`` land in the CLI's per-outcome line).

    ``workers`` routes the server's session through the
    :class:`~repro.serve.pool.PoolScheduler` — the server's ``poll``
    loop (driven here as the client's ``pump``) drains the session
    exactly as before, so pooled dispatch sits entirely behind the
    wire boundary and the client-visible bytes must not change.
    """
    if reference is None:
        from .workload import replay_sequential
        reference = replay_sequential(workload)["results"]
    clock = ManualClock()
    session = ServeSession(capacity=capacity, clock=clock,
                           default_deadline_s=deadline_s,
                           quarantine_cooldown_s=0.5,
                           failure_cooldown_s=0.5,
                           workers=workers)
    server = ServeServer(session, spec=workload.spec,
                         models=(workload.original, workload.adapted,
                                 workload.edge),
                         journal_path=journal_path)
    client = ServeClient(server.host, server.port, clock=clock,
                         attempt_timeout_s=0.25, retry_seed=seed,
                         pump=server.poll)
    injector = None
    try:
        if fault_specs is not None:
            injector = faults.FaultInjector(fault_specs, seed=seed,
                                            clock=clock)
            with faults.inject(injector):
                srv = replay_net(workload, client, rate=rate)
        else:
            srv = replay_net(workload, client, rate=rate)
        server_stats = server.stats
    finally:
        client.close()
        server.shutdown(drain=True)
    for i, outcome in enumerate(srv["outcomes"]):
        kind = workload.jobs[i].kind
        if outcome == "ok":
            a, b = reference[i], srv["results"][i]
            if not (a.shape == b.shape and a.dtype == b.dtype
                    and np.array_equal(a, b)):
                raise AssertionError(
                    f"job {i} ({kind}) completed ok over the wire but "
                    "diverged from its solo in-process run")
        elif outcome == "deadline-degraded":
            b = srv["results"][i]
            if b is None or b.shape != reference[i].shape:
                raise AssertionError(
                    f"job {i} ({kind}) is deadline-degraded without a "
                    "best-so-far batch")
        elif srv["errors"][i] is None or not isinstance(
                srv["errors"][i], ServeError):
            raise AssertionError(
                f"job {i} ({kind}) ended {outcome!r} without a "
                "structured ServeError")
    out = {
        "jobs": len(workload.jobs),
        "rows": workload.rows,
        "outcome_counts": srv["outcome_counts"],
        "shed": srv["shed"],
        "seconds": srv["seconds"],
        "retried": srv["client"]["retries"],
        "deduped": server_stats["deduped"],
        "client": srv["client"],
        "server": server_stats,
        "clock_s": clock.now(),
    }
    if injector is not None:
        out["faults_fired"] = injector.stats
    return out
