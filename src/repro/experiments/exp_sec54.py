"""§5.4: other baseline attacks — CW (L-inf) and Momentum PGD.

Paper (quantization setting, top-1 evasive success averaged over the
three architectures): CW 25.5%, Momentum PGD 39.4%, PGD 40.6% — both
alternatives do no better than plain PGD, justifying PGD as the primary
baseline.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..attacks import CWLinf, MomentumPGD, PGD
from ..metrics import evaluate_attack
from .config import ARCHITECTURES, ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results


def run(cfg: Optional[ExperimentConfig] = None,
        pipeline: Optional[Pipeline] = None, verbose: bool = True) -> Dict:
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)

    results: Dict = {"per_arch": {}}
    rows = []
    for arch in ARCHITECTURES:
        orig = pipe.original(arch)
        quant = pipe.quantized(arch)
        atk_set = pipe.attack_set([orig, quant], f"sec54-{arch}")
        kw = dict(eps=cfg.eps, alpha=cfg.alpha, steps=cfg.steps)
        attacks = {
            "pgd": PGD(quant, **kw),
            "momentum_pgd": MomentumPGD(quant, mu=0.5, **kw),
            "cw": CWLinf(quant, **kw),
        }
        arch_res = {}
        for name, attack in attacks.items():
            x_adv = attack.generate(atk_set.x, atk_set.y)
            rep = evaluate_attack(orig, quant, x_adv, atk_set.y, topk=cfg.topk)
            arch_res[name] = {
                "top1_success": rep.top1_success_rate,
                "attack_only_success": rep.attack_only_success_rate,
            }
        results["per_arch"][arch] = arch_res
        rows.append([arch] + [f"{arch_res[a]['top1_success']:.1%}"
                              for a in ("pgd", "momentum_pgd", "cw")])

    means = {a: float(np.mean([results["per_arch"][arch][a]["top1_success"]
                               for arch in ARCHITECTURES]))
             for a in ("pgd", "momentum_pgd", "cw")}
    results["mean_top1"] = means
    rows.append(["(mean)"] + [f"{means[a]:.1%}"
                              for a in ("pgd", "momentum_pgd", "cw")])
    table = format_table(["Architecture", "PGD", "Momentum PGD", "CW"],
                         rows, title="§5.4 — baseline attacks, top-1 evasive success")
    results["table"] = table
    if verbose:
        print(table)
    save_results("sec54", results)
    return results
