"""Perceptual image-quality metrics: SSIM / DSSIM / PSNR.

The paper reports DSSIM below 0.0092 for all adversarial images,
certifying imperceptibility; we reproduce the check with a standard
Gaussian-window SSIM (Wang et al. 2004) and DSSIM = (1 - SSIM) / 2.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage


def _ssim_single(a: np.ndarray, b: np.ndarray, data_range: float,
                 sigma: float = 1.5) -> float:
    """SSIM of two 2D images via Gaussian-weighted local statistics."""
    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    a = a.astype(np.float64)
    b = b.astype(np.float64)
    mu_a = ndimage.gaussian_filter(a, sigma)
    mu_b = ndimage.gaussian_filter(b, sigma)
    mu_aa = ndimage.gaussian_filter(a * a, sigma)
    mu_bb = ndimage.gaussian_filter(b * b, sigma)
    mu_ab = ndimage.gaussian_filter(a * b, sigma)
    var_a = np.maximum(mu_aa - mu_a ** 2, 0.0)
    var_b = np.maximum(mu_bb - mu_b ** 2, 0.0)
    cov = mu_ab - mu_a * mu_b
    num = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
    den = (mu_a ** 2 + mu_b ** 2 + c1) * (var_a + var_b + c2)
    return float((num / den).mean())


def ssim(a: np.ndarray, b: np.ndarray, data_range: float = 1.0) -> float:
    """Mean SSIM over channels for (C, H, W) or (H, W) images."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim == 2:
        return _ssim_single(a, b, data_range)
    if a.ndim == 3:
        return float(np.mean([_ssim_single(a[c], b[c], data_range)
                              for c in range(a.shape[0])]))
    raise ValueError(f"expected (H, W) or (C, H, W), got {a.shape}")


def dssim(a: np.ndarray, b: np.ndarray, data_range: float = 1.0) -> float:
    """Structural dissimilarity: (1 - SSIM) / 2; 0 for identical images."""
    return (1.0 - ssim(a, b, data_range)) / 2.0


def batch_dssim(batch_a: np.ndarray, batch_b: np.ndarray,
                data_range: float = 1.0) -> np.ndarray:
    """Per-sample DSSIM for (N, C, H, W) batches."""
    if batch_a.shape != batch_b.shape:
        raise ValueError(f"shape mismatch: {batch_a.shape} vs {batch_b.shape}")
    return np.array([dssim(a, b, data_range) for a, b in zip(batch_a, batch_b)])


def psnr(a: np.ndarray, b: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (inf for identical images)."""
    mse = float(np.mean((np.asarray(a, dtype=np.float64)
                         - np.asarray(b, dtype=np.float64)) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(data_range ** 2 / mse)
