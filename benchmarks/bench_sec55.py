"""§5.5 — robust training as a defense.

Paper: robust training collapses both attacks' evasive success (PGD
10.5%, DIVA 12.8% at c=5); DIVA retains an edge at a suitable c.
"""

from .conftest import run_once


def test_sec55(benchmark, cfg, pipeline):
    from repro.experiments import exp_sec55
    res = run_once(benchmark, lambda: exp_sec55.run(cfg, pipeline=pipeline))
    pgd = res["attacks"]["pgd"]
    divas = {k: v for k, v in res["attacks"].items() if k.startswith("diva")}
    # DIVA retains an edge over PGD for at least one c
    assert max(v["top1_success"] for v in divas.values()) >= \
        pgd["top1_success"] - 1e-9
