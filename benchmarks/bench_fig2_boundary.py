"""Figure 2 (quantified) — boundary-divergence maps.

The conceptual claim made measurable: planes through DIVA's perturbation
direction intersect more fp32-vs-int8 disagreement area than random
planes around the same images.
"""

from .conftest import run_once


def test_fig2(benchmark, cfg, pipeline):
    from repro.experiments import exp_fig2
    res = run_once(benchmark, lambda: exp_fig2.run(cfg, pipeline=pipeline))
    assert res["diva_plane_disagreement"] >= res["random_plane_disagreement"]
