"""``repro.quantization`` — int8/int4 model adaptation (the paper's §2.1).

Implements affine quantization math, range observers, fake-quant with
straight-through estimators, QAT and PTQ pipelines, and the layer
extraction API the semi-blackbox attack (§4.3) relies on.
"""

from .affine import (QuantParams, choose_qparams, dequantize,
                     fake_quantize_array, int_range, quantization_error,
                     quantize, quantize_multiplier, requantize)
from .extract import (ExtractedLayer, export_float_state,
                      export_quantized_layers, extract_deployed_model,
                      model_size_bytes, reconstruct_float_model)
from .fake_quant import FakeQuantize, fake_quant_ste
from .observers import (HistogramObserver, MinMaxObserver,
                        MovingAverageMinMaxObserver, Observer,
                        PerChannelMinMaxObserver)
from .ptq import post_training_quantize
from .qat import QATModel, calibrate, prepare_qat, qat_finetune
from .serialization import load_qat, save_qat

__all__ = [
    "QuantParams", "choose_qparams", "quantize", "dequantize",
    "fake_quantize_array", "quantization_error", "int_range",
    "quantize_multiplier", "requantize",
    "Observer", "MinMaxObserver", "MovingAverageMinMaxObserver",
    "PerChannelMinMaxObserver", "HistogramObserver",
    "FakeQuantize", "fake_quant_ste",
    "QATModel", "prepare_qat", "calibrate", "qat_finetune",
    "post_training_quantize", "save_qat", "load_qat",
    "ExtractedLayer", "export_quantized_layers", "export_float_state",
    "reconstruct_float_model", "extract_deployed_model", "model_size_bytes",
]
