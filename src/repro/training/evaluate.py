"""Batched inference and accuracy evaluation.

All predictors accept an optional pre-compiled executor
(:func:`repro.nn.graph.compile_forward`) so repeated evaluation of a
frozen model can skip tape construction entirely; :func:`compile_inference`
builds one best-effort.  Without an executor, behaviour is unchanged.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.module import Module
from ..nn.tensor import Tensor


def compile_inference(model: Module, example: np.ndarray):
    """Best-effort compiled forward for repeated inference.

    Returns None when the model cannot be compiled (unsupported ops,
    train-mode statistics, validation mismatch); callers then use the
    eager path.  The executor snapshots parameters — recompile or call
    ``.refresh()`` after training the model further.
    """
    from ..nn.graph import compile_forward_or_none
    return compile_forward_or_none(model, example)


#: minimum batches of work before ``predict_logits`` self-compiles: the
#: compile (trace + parity validation) costs roughly five batch passes
#: and a warm replay saves ~0.4 of one, so break-even sits near a dozen
#: batches — below that, small evaluations stay on the eager tape
_AUTO_COMPILE_MIN_BATCHES = 12


def predict_logits(model: Module, x: np.ndarray, batch_size: int = 128,
                   executor=None) -> np.ndarray:
    """Forward the whole array in eval mode; returns (N, classes) logits.

    When no ``executor`` is given and the workload is large enough to
    amortize compilation (distillation teacher queries, big evaluation
    sets), a compiled forward replay is built best-effort and used for
    every batch; the eager tape remains the fallback.  Auto-compiled
    replays are memoized in the process-wide
    :func:`repro.nn.graph.default_plan_cache` (refreshed on every hit,
    so mutated parameters are re-folded), which turns repeated large
    evaluations of the same frozen model into pure replays.
    """
    was_training = getattr(model, "training", False)
    model.eval()
    if executor is None and isinstance(model, Module) \
            and len(x) >= _AUTO_COMPILE_MIN_BATCHES * batch_size:
        from ..nn.graph import compile_forward_cached
        executor = compile_forward_cached(model, x[:batch_size])
    outs = []
    for start in range(0, len(x), batch_size):
        xb = x[start:start + batch_size]
        if executor is not None:
            outs.append(executor.replay(xb))
        else:
            outs.append(model(Tensor(xb)).data.copy())
    if was_training:
        model.train()
    return np.concatenate(outs, axis=0)


def predict_probs(model: Module, x: np.ndarray, batch_size: int = 128,
                  executor=None) -> np.ndarray:
    """Softmax probabilities, batched."""
    logits = predict_logits(model, x, batch_size, executor=executor)
    shifted = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


def predict_labels(model: Module, x: np.ndarray, batch_size: int = 128,
                   executor=None) -> np.ndarray:
    return predict_logits(model, x, batch_size, executor=executor).argmax(axis=1)


def evaluate_accuracy(model: Module, x: np.ndarray, y: np.ndarray,
                      batch_size: int = 128, executor=None) -> float:
    """Top-1 accuracy in [0, 1]."""
    return float((predict_labels(model, x, batch_size, executor=executor)
                  == np.asarray(y)).mean())


def evaluate_topk_accuracy(model: Module, x: np.ndarray, y: np.ndarray, k: int = 5,
                           batch_size: int = 128, executor=None) -> float:
    """Top-k accuracy in [0, 1]."""
    logits = predict_logits(model, x, batch_size, executor=executor)
    topk = np.argsort(-logits, axis=1)[:, :k]
    return float((topk == np.asarray(y)[:, None]).any(axis=1).mean())


def evaluate_loss(model: Module, x: np.ndarray, y: np.ndarray,
                  batch_size: int = 128) -> float:
    """Mean cross-entropy loss."""
    total = 0.0
    model.eval()
    for start in range(0, len(x), batch_size):
        xb = Tensor(x[start:start + batch_size])
        loss = F.cross_entropy(model(xb), y[start:start + batch_size], reduction="sum")
        total += float(loss.data)
    return total / len(x)
