"""``repro.nn`` — a compact reverse-mode autodiff deep-learning framework.

Built from scratch on vectorized numpy because the evaluation environment
ships no deep-learning framework; every other subsystem (models, QAT,
pruning, the attack family) composes these primitives.
"""

from . import functional, losses
from .activations import (ELU, GELU, HardSwish, LeakyReLU, Swish, elu, gelu,
                          hard_sigmoid, hard_swish, leaky_relu, softplus,
                          swish)
from .graph import (CompiledForward, GraphUnsupported, compile_forward,
                    compile_forward_or_none)
from .train_graph import (CompiledTrainStep, compile_train_step,
                          compile_train_step_or_none)
from .init import kaiming_normal, kaiming_uniform, xavier_uniform
from .layers import (AvgPool2d, BatchNorm1d, BatchNorm2d, Conv2d, Dropout,
                     Flatten, GlobalAvgPool2d, Identity, Linear, MaxPool2d,
                     ReLU)
from .module import Module, ModuleList, Parameter, Sequential
from .norm import GroupNorm, InstanceNorm2d, LayerNorm
from .optim import Adam, CosineLR, LRScheduler, SGD, StepLR
from .serialization import load_state, save_state
from .tensor import (Tensor, concat, get_default_dtype, set_default_dtype,
                     stack, where)

__all__ = [
    "Tensor", "concat", "stack", "where",
    "set_default_dtype", "get_default_dtype",
    "CompiledForward", "GraphUnsupported", "compile_forward",
    "compile_forward_or_none",
    "CompiledTrainStep", "compile_train_step", "compile_train_step_or_none",
    "Module", "ModuleList", "Parameter", "Sequential",
    "Linear", "Conv2d", "BatchNorm1d", "BatchNorm2d", "ReLU", "Flatten",
    "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "Dropout", "Identity",
    "LayerNorm", "GroupNorm", "InstanceNorm2d",
    "LeakyReLU", "ELU", "GELU", "Swish", "HardSwish",
    "leaky_relu", "elu", "gelu", "swish", "softplus", "hard_sigmoid",
    "hard_swish",
    "SGD", "Adam", "LRScheduler", "StepLR", "CosineLR",
    "save_state", "load_state",
    "kaiming_normal", "kaiming_uniform", "xavier_uniform",
    "functional", "losses",
]
