"""Face-recognition network for the §6 case study.

The paper finetunes VGGFace (ResNet50 trunk) on PubFig and deploys a
TFLite int8 build on an ARM device.  Our substitute keeps the pipeline:
a VGG-style convolutional trunk producing an identity embedding, a
classifier head over the identity set, and — because the trunk is a plain
feed-forward stack with biased convs and no batch norm — full
compilability to the integer edge engine (:mod:`repro.edge`), our stand-in
for the TFLite runtime.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from ..nn.module import Module
from ..nn.tensor import Tensor


class VGGFaceNet(Module):
    """VGG-style face embedder + identity classifier.

    Parameters
    ----------
    num_identities: size of the identity label set (PubFig: 150).
    image_size: square input side (must be divisible by 8).
    width: trunk base width.
    embed_dim: identity embedding dimension (the ``features`` output).
    """

    def __init__(self, num_identities: int = 150, image_size: int = 32,
                 width: int = 8, embed_dim: int = 32, in_channels: int = 3,
                 seed: int = 0):
        super().__init__()
        if image_size % 8:
            raise ValueError("image_size must be divisible by 8")
        rng = np.random.default_rng(seed)
        self.num_identities = num_identities
        self.embed_dim = embed_dim
        self.conv1 = Conv2d(in_channels, width, 3, padding=1, rng=rng)
        self.relu1 = ReLU()
        self.pool1 = MaxPool2d(2)
        self.conv2 = Conv2d(width, width * 2, 3, padding=1, rng=rng)
        self.relu2 = ReLU()
        self.pool2 = MaxPool2d(2)
        self.conv3 = Conv2d(width * 2, width * 4, 3, padding=1, rng=rng)
        self.relu3 = ReLU()
        self.pool3 = MaxPool2d(2)
        self.flat = Flatten()
        side = image_size // 8
        self.fc_embed = Linear(width * 4 * side * side, embed_dim, rng=rng)
        self.relu4 = ReLU()
        self.fc_id = Linear(embed_dim, num_identities, rng=rng)
        self.feature_dim = embed_dim

    def features(self, x: Tensor) -> Tensor:
        """Identity embedding (penultimate representation)."""
        out = self.pool1(self.relu1(self.conv1(x)))
        out = self.pool2(self.relu2(self.conv2(out)))
        out = self.pool3(self.relu3(self.conv3(out)))
        return self.relu4(self.fc_embed(self.flat(out)))

    def forward(self, x: Tensor) -> Tensor:
        return self.fc_id(self.features(x))

    def edge_layers(self):
        """Ordered layer sequence for edge compilation (feed-forward)."""
        return [self.conv1, self.relu1, self.pool1,
                self.conv2, self.relu2, self.pool2,
                self.conv3, self.relu3, self.pool3,
                self.flat, self.fc_embed, self.relu4, self.fc_id]
