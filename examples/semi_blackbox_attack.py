"""Semi-blackbox and blackbox DIVA (§4.3, §4.4): attacking without the
original model.

Threat model walk-through:

- the operator trains an original model and ships a quantized version to
  edge devices — here compiled all the way down to the int8 integer
  engine (:mod:`repro.edge`), the artifact a real device would run;
- the attacker buys one device and extracts the adapted model (integer
  weights + scales + zero points -> a differentiable reconstruction);
- semi-blackbox: a full-precision surrogate of the *original* model is
  distilled from the adapted model on the attacker's own (disjoint)
  images; DIVA runs on (surrogate, true adapted);
- blackbox: the attacker only has prediction access — both models are
  surrogated; the attack must transfer to the true pair.

Attacks take gradients through the QAT (fake-quant) model — the paper's
methodology — but are *scored* against the deployed integer artifact via
its compiled per-shape programs, which are asserted bit-identical to the
eager integer op loop before any number is reported.

Run:  python examples/semi_blackbox_attack.py
"""

import numpy as np

from repro.attacks import DIVA, PGD, blackbox_diva, semi_blackbox_diva
from repro.data import SynthImageNetConfig, select_attack_set, standard_splits
from repro.distillation import agreement
from repro.edge import compile_edge
from repro.metrics import evaluate_attack
from repro.models import build_model
from repro.nn import set_default_dtype
from repro.quantization import (export_quantized_layers, prepare_qat,
                                qat_finetune)
from repro.training import fit


def main() -> None:
    set_default_dtype("float32")

    print("== operator side: original + deployed adapted model ==")
    cfg = SynthImageNetConfig(num_classes=20, image_size=16,
                              noise=0.40, jitter=0.20)
    train, val, attacker_pool = standard_splits(
        cfg, train_per_class=120, val_per_class=40, surrogate_per_class=40)
    # feed-forward (edge-compilable) architecture: the deployed artifact
    # must lower to the integer engine, as on a real device
    original = build_model("lenet", num_classes=20, in_channels=3,
                           image_size=16, width=8, seed=0)
    fit(original, train.x, train.y, epochs=8, batch_size=64, lr=0.02, seed=1)
    adapted = prepare_qat(original, weight_bits=8, act_bits=8,
                          per_channel=True)
    qat_finetune(adapted, train.x, train.y, epochs=1, batch_size=64, lr=0.002)
    adapted.freeze()
    edge = compile_edge(adapted, 20)     # the shipped int8 artifact

    print("== attacker side: extract the deployed model ==")
    layers = export_quantized_layers(adapted)
    n_int_params = sum(l.q_weight.size for l in layers)
    print(f"  extracted {len(layers)} quantized layers, "
          f"{n_int_params:,} integer weights with scales/zero-points")

    eps, alpha, steps = 32 / 255, 4 / 255, 20
    atk_set = select_attack_set(val, [original, adapted], per_class=6)
    template = build_model("lenet", num_classes=20, in_channels=3,
                           image_size=16, width=8, seed=50)

    print("== semi-blackbox: distill a surrogate original (§4.3) ==")
    sb = semi_blackbox_diva(adapted, template, attacker_pool.x,
                            c=1.0, eps=eps, alpha=alpha, steps=steps,
                            distill_epochs=10,
                            log_fn=lambda s: print("  " + s))
    fidelity = agreement(sb.surrogate_original, original, val.x)
    print(f"  surrogate-vs-true-original agreement: {fidelity:.1%}")

    print("== blackbox: surrogate both models (§4.4) ==")
    bb = blackbox_diva(adapted, template, attacker_pool.x,
                       c=1.0, eps=eps, alpha=alpha, steps=steps,
                       distill_epochs=10, qat_epochs=1)

    print("== evaluation against the TRUE pair (deployed int8 artifact) ==")
    # the compiled edge programs must not change a single logit bit
    # relative to the reference integer op loop before we score anything
    np.testing.assert_array_equal(edge.predict(atk_set.x),
                                  edge.predict(atk_set.x, compiled=False))
    print("  compiled edge programs bit-match the eager integer op loop")
    attacks = {
        "PGD (whitebox baseline)": PGD(adapted, eps=eps, alpha=alpha,
                                       steps=steps),
        "DIVA whitebox": DIVA(original, adapted, eps=eps, alpha=alpha,
                              steps=steps),
        "DIVA semi-blackbox": sb.attack,
        "DIVA blackbox": bb.attack,
    }
    for name, attack in attacks.items():
        x_adv = attack.generate(atk_set.x, atk_set.y)
        r = evaluate_attack(original, edge, x_adv, atk_set.y, topk=2)
        print(f"  {name:24s}: evasive={r.top1_success_rate:6.1%}  "
              f"attack-only={r.attack_only_success_rate:6.1%}")


if __name__ == "__main__":
    main()
