"""``repro.data`` — datasets and attack-set selection.

Synthetic substitutes for the paper's ImageNet / MNIST / PubFig (see
DESIGN.md) plus batching, transforms and the §5.1 validation protocol.
"""

from .datasets import ArrayDataset, iterate_batches, stratified_sample
from .synth_digits import generate_synth_digits, render_digit
from .synth_faces import SynthFacesConfig, generate_synth_faces, render_face
from .synth_imagenet import (SynthImageNetConfig, generate_synth_imagenet,
                             standard_splits)
from .transforms import (additive_noise, augment_batch, channel_stats,
                         denormalize, normalize, random_horizontal_flip,
                         random_shift)
from .validation import correctly_classified_mask, select_attack_set

__all__ = [
    "ArrayDataset", "iterate_batches", "stratified_sample",
    "SynthImageNetConfig", "generate_synth_imagenet", "standard_splits",
    "generate_synth_digits", "render_digit",
    "SynthFacesConfig", "generate_synth_faces", "render_face",
    "normalize", "denormalize", "channel_stats", "random_horizontal_flip",
    "random_shift", "additive_noise", "augment_batch",
    "correctly_classified_mask", "select_attack_set",
]
