"""Model-extraction utilities for the semi-blackbox attack (§4.3).

The paper assumes the attacker "can obtain the adapted model from an edge
device and recover the differentiable quantization model by extracting the
zero points, scales and weights for each layer".  This module implements
both sides of that story:

- :func:`export_quantized_layers` is the *deployment* view: per-layer
  integer weights + quantization parameters (what ships to the device);
- :func:`reconstruct_float_model` is the *attacker* view: rebuild a
  differentiable model from those extracted integers, with accuracy
  retained and no finetuning, exactly as §4.3 claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..nn.layers import Conv2d, Linear
from ..nn.module import Module
from .affine import QuantParams, dequantize, quantize
from .qat import QATModel

__all__ = ["ExtractedLayer", "export_quantized_layers", "export_float_state",
           "reconstruct_float_model", "extract_deployed_model",
           "model_size_bytes"]


@dataclass
class ExtractedLayer:
    """What an attacker reads out of a deployed layer."""

    name: str
    kind: str                      # "conv2d" | "linear"
    q_weight: np.ndarray           # int32 array on the integer grid
    weight_qparams: QuantParams
    bias: Optional[np.ndarray]     # float bias (TFLite stores int32 bias; the
                                   # float view is scale-exact either way)


def export_quantized_layers(qat_model: QATModel) -> List[ExtractedLayer]:
    """Serialize every quantized layer of an adapted model."""
    out: List[ExtractedLayer] = []
    for name, mod in qat_model.model.named_modules():
        if isinstance(mod, (Conv2d, Linear)) and mod.weight_fake_quant is not None:
            fq = mod.weight_fake_quant
            qp = fq.qparams()
            w = mod.weight.data
            if mod.weight_mask is not None:
                w = w * mod.weight_mask
            out.append(ExtractedLayer(
                name=name,
                kind="conv2d" if isinstance(mod, Conv2d) else "linear",
                q_weight=quantize(w, qp),
                weight_qparams=qp,
                bias=None if mod.bias is None else mod.bias.data.copy(),
            ))
    return out


def export_float_state(qat_model: QATModel) -> Dict[str, np.ndarray]:
    """Non-quantized state of the deployed model (BN params/statistics,
    etc.).  A deployed artifact carries these in the clear (or folded);
    either way the attacker reads them out alongside the int8 weights."""
    quantized_weights = set()
    for name, mod in qat_model.model.named_modules():
        if isinstance(mod, (Conv2d, Linear)) and mod.weight_fake_quant is not None:
            quantized_weights.add(f"{name}.weight" if name else "weight")
    state = qat_model.model.state_dict()
    return {k: v for k, v in state.items() if k not in quantized_weights}


def reconstruct_float_model(template: Module,
                            layers: List[ExtractedLayer],
                            float_state: Optional[Dict[str, np.ndarray]] = None
                            ) -> Module:
    """Load extracted integer weights into a float model of matching
    architecture.

    ``template`` supplies the architecture (the attacker knows it — model
    families on edge devices are standard); weights become
    ``dequantize(q, qparams)``, which lands exactly on the adapted model's
    effective weights.  ``float_state`` (from :func:`export_float_state`)
    restores the deployed model's non-quantized tensors — batch-norm
    parameters and running statistics in particular, without which the
    reconstruction cannot retain accuracy.
    """
    clone = template.copy_structure()
    if float_state is not None:
        clone.load_state_dict(dict(float_state), strict=False)
    by_name: Dict[str, ExtractedLayer] = {l.name: l for l in layers}
    matched = 0
    for name, mod in clone.named_modules():
        if isinstance(mod, (Conv2d, Linear)) and name in by_name:
            rec = by_name[name]
            w = dequantize(rec.q_weight, rec.weight_qparams)
            if w.shape != mod.weight.data.shape:
                raise ValueError(f"{name}: extracted weight shape {w.shape} "
                                 f"!= template {mod.weight.data.shape}")
            mod.weight.data = w.astype(mod.weight.data.dtype)
            if rec.bias is not None and mod.bias is not None:
                mod.bias.data = rec.bias.astype(mod.bias.data.dtype)
            matched += 1
    if matched != len(layers):
        raise ValueError(f"only matched {matched}/{len(layers)} extracted layers")
    return clone


def extract_deployed_model(qat_model: QATModel, template: Module) -> Module:
    """The §4.3 extraction step end to end: read the deployed artifact's
    integer weights + quantization params + float state, and rebuild a
    differentiable full-precision model that "retains its accuracy
    without any fine-tuning" (paper's wording)."""
    layers = export_quantized_layers(qat_model)
    float_state = export_float_state(qat_model)
    return reconstruct_float_model(template, layers, float_state)


def model_size_bytes(model: Module, quantized_bits: Optional[int] = None) -> int:
    """Parameter storage footprint (the metric quantization improves).

    With ``quantized_bits`` set, weights of quantizable layers count at
    that width while biases stay at 32-bit — the TFLite layout.
    """
    total_bits = 0
    for name, mod in model.named_modules():
        for pname, p in mod._parameters.items():
            if quantized_bits is not None and pname == "weight" and \
                    isinstance(mod, (Conv2d, Linear)):
                total_bits += p.size * quantized_bits
            else:
                total_bits += p.size * 32
    return total_bits // 8
