"""Integer-only inference engine — the reproduction's TFLite runtime.

The paper's face-recognition case study (§6) converts the QAT model with
TFLite and runs int8 inference on an ARM edge device; attacks are built
with QAT gradients but *evaluated* on the deployed integer artifact.
This engine reproduces that split: it executes feed-forward networks
using int8 weights/activations, int64 accumulation and TFLite-style
fixed-point requantization (multiplier + right shift), with no float
arithmetic anywhere on the data path.

Numerical relationship to the fake-quant (QAT) path: identical up to the
31-bit quantization of the requantization multiplier, i.e. results on the
integer grid match within 1 LSB (asserted by the test suite).  The ops in
this module are the *reference semantics*: :meth:`EdgeModel.predict`
routes batches through per-shape compiled programs
(:mod:`repro.edge.program` — zero-point folding, fused/LUT activations,
planned buffers) that are bit-validated against this eager op loop at
build time and fall back to it, loudly, whenever lowering or validation
fails.  ``predict(..., compiled=False)`` forces the eager loop.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..quantization.affine import QuantParams, quantize_multiplier


def _prep_requant(m0, shift, ndim: Optional[int] = None,
                  axis: Optional[int] = None):
    """Broadcast-shaped ``(m0, rounding, total_shift)`` int64 triple.

    Built once per op/program instead of reshaped on every call; the
    rounding constant ``1 << (total - 1)`` is precomputed alongside.
    """
    m0 = np.atleast_1d(np.asarray(m0, dtype=np.int64))
    shift = np.atleast_1d(np.asarray(shift, dtype=np.int64))
    if ndim is not None and axis is not None:
        shape = [1] * ndim
        shape[axis] = m0.size
        m0 = m0.reshape(shape)
        shift = shift.reshape(shape)
    total = 31 + shift
    rounding = np.int64(1) << (total - 1)
    return m0, rounding, total


def _requantize_prepped(acc: np.ndarray, m0: np.ndarray, rounding: np.ndarray,
                        total: np.ndarray) -> np.ndarray:
    """Multiply-round-shift with precomputed broadcast operands.

    Allocates one int64 product buffer and runs the rounding add and the
    arithmetic right shift in place on it (round half away from zero:
    ``prod + rounding - (prod < 0)``, bit-equal to the historical
    ``where(prod >= 0, r, r - 1)`` formulation).
    """
    prod = np.multiply(acc, m0, dtype=np.int64)
    neg = prod < 0
    prod += rounding
    np.subtract(prod, neg, out=prod)
    np.right_shift(prod, total, out=prod)
    return prod


class EdgeOp:
    """Base class for integer ops; maps int tensors to int tensors."""

    def __call__(self, q: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


@dataclass
class QuantizeInput(EdgeOp):
    """Float pixels -> integer grid (the only non-integer boundary op).

    Quantization runs in the input's *native* float dtype (the PR 2
    dtype policy: float64 experiments, float32 benches) — python-float
    scale/zero-point scalars do not upcast the array — so benches never
    pay a float64 round trip on the pixel tensor.  Non-float inputs are
    promoted to float64.
    """

    qp: QuantParams

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if not np.issubdtype(x.dtype, np.floating):
            x = x.astype(np.float64)
        s = float(self.qp.scale)
        z = float(self.qp.zero_point)
        q = np.round(x / s) + z
        return np.clip(q, self.qp.qmin, self.qp.qmax).astype(np.int32)


class QConv2d(EdgeOp):
    """Integer convolution: int8 weights, int64 accumulate, requantize.

    The input zero-point is subtracted before the convolution (weights
    are symmetric, so no weight zero-point), making zero padding exact.
    """

    def __init__(self, q_weight: np.ndarray, bias_q: np.ndarray,
                 in_qp: QuantParams, w_qp: QuantParams, out_qp: QuantParams,
                 stride: int = 1, padding: int = 0, groups: int = 1):
        self.q_weight = q_weight.astype(np.int64)
        self.bias_q = bias_q.astype(np.int64)
        self.in_qp = in_qp
        self.w_qp = w_qp
        self.out_qp = out_qp
        self.stride = stride
        self.padding = padding
        self.groups = groups
        w_scales = np.atleast_1d(np.asarray(w_qp.scale, dtype=np.float64))
        real_mult = (float(in_qp.scale) * w_scales) / float(out_qp.scale)
        pairs = [quantize_multiplier(m) for m in real_mult]
        self.m0 = np.array([p[0] for p in pairs], dtype=np.int64)
        self.shift = np.array([p[1] for p in pairs], dtype=np.int64)
        self.per_channel = w_qp.axis is not None
        self._m0_b, self._round_b, self._total_b = _prep_requant(
            self.m0, self.shift, 4, 1 if self.per_channel else None)

    def __call__(self, q: np.ndarray) -> np.ndarray:
        from ..nn.functional import _im2col
        centered = q.astype(np.int64) - int(self.in_qp.zero_point)
        kh, kw = self.q_weight.shape[2], self.q_weight.shape[3]
        cols, (oh, ow) = _im2col(centered, kh, kw, self.stride, self.stride,
                                 self.padding, self.padding)
        N, C = q.shape[0], q.shape[1]
        F_out = self.q_weight.shape[0]
        if self.groups == 1:
            cols2 = np.ascontiguousarray(
                cols.transpose(0, 4, 5, 1, 2, 3)).reshape(N, oh, ow, C * kh * kw)
            wmat = self.q_weight.reshape(F_out, -1).T
            acc = cols2 @ wmat                      # int64 matmul
            acc = acc.transpose(0, 3, 1, 2)
        else:
            G = self.groups
            Cg = C // G
            Fg = F_out // G
            colsg = cols.reshape(N, G, Cg, kh, kw, oh, ow)
            cols2 = np.ascontiguousarray(
                colsg.transpose(0, 1, 5, 6, 2, 3, 4)).reshape(N, G, oh, ow, -1)
            wmat = self.q_weight.reshape(G, Fg, -1)
            acc = np.einsum("ngxyk,gfk->ngfxy", cols2, wmat)
            acc = acc.reshape(N, F_out, oh, ow)
        acc = acc + self.bias_q.reshape(1, F_out, 1, 1)
        out = _requantize_prepped(acc, self._m0_b, self._round_b, self._total_b)
        out = out + int(self.out_qp.zero_point)
        return np.clip(out, self.out_qp.qmin, self.out_qp.qmax).astype(np.int32)


class QLinear(EdgeOp):
    """Integer fully-connected layer (same scheme as QConv2d)."""

    def __init__(self, q_weight: np.ndarray, bias_q: np.ndarray,
                 in_qp: QuantParams, w_qp: QuantParams, out_qp: QuantParams):
        self.q_weight = q_weight.astype(np.int64)
        self.bias_q = bias_q.astype(np.int64)
        self.in_qp = in_qp
        self.w_qp = w_qp
        self.out_qp = out_qp
        w_scales = np.atleast_1d(np.asarray(w_qp.scale, dtype=np.float64))
        real_mult = (float(in_qp.scale) * w_scales) / float(out_qp.scale)
        pairs = [quantize_multiplier(m) for m in real_mult]
        self.m0 = np.array([p[0] for p in pairs], dtype=np.int64)
        self.shift = np.array([p[1] for p in pairs], dtype=np.int64)
        self.per_channel = w_qp.axis is not None
        self._m0_b, self._round_b, self._total_b = _prep_requant(
            self.m0, self.shift, 2, 1 if self.per_channel else None)

    def __call__(self, q: np.ndarray) -> np.ndarray:
        centered = q.astype(np.int64) - int(self.in_qp.zero_point)
        acc = centered @ self.q_weight.T + self.bias_q
        out = _requantize_prepped(acc, self._m0_b, self._round_b, self._total_b)
        out = out + int(self.out_qp.zero_point)
        return np.clip(out, self.out_qp.qmin, self.out_qp.qmax).astype(np.int32)


class QReLU(EdgeOp):
    """Integer ReLU with rescale between input and output grids."""

    def __init__(self, in_qp: QuantParams, out_qp: QuantParams):
        self.in_qp = in_qp
        self.out_qp = out_qp
        m0, shift = quantize_multiplier(float(in_qp.scale) / float(out_qp.scale))
        self.m0, self.shift = m0, shift
        self._m0_b, self._round_b, self._total_b = _prep_requant(m0, shift)

    def __call__(self, q: np.ndarray) -> np.ndarray:
        centered = np.maximum(q.astype(np.int64) - int(self.in_qp.zero_point), 0)
        out = _requantize_prepped(centered, self._m0_b, self._round_b,
                                  self._total_b)
        out = out + int(self.out_qp.zero_point)
        return np.clip(out, self.out_qp.qmin, self.out_qp.qmax).astype(np.int32)


@dataclass
class QMaxPool2d(EdgeOp):
    """Max pooling commutes with monotone quantization: pool the ints."""

    kernel: int
    stride: Optional[int] = None
    padding: int = 0

    def __call__(self, q: np.ndarray) -> np.ndarray:
        from ..nn.functional import _im2col
        stride = self.stride if self.stride is not None else self.kernel
        qq = q
        if self.padding:
            qq = np.pad(q, ((0, 0), (0, 0), (self.padding,) * 2,
                            (self.padding,) * 2),
                        constant_values=np.iinfo(np.int32).min)
        cols, (oh, ow) = _im2col(qq, self.kernel, self.kernel, stride, stride, 0, 0)
        return cols.max(axis=(2, 3)).astype(np.int32)


class QFlatten(EdgeOp):
    def __call__(self, q: np.ndarray) -> np.ndarray:
        return q.reshape(len(q), -1)


@dataclass
class Dequantize(EdgeOp):
    """Integer grid -> float (applied once, to the logits)."""

    qp: QuantParams

    def __call__(self, q: np.ndarray) -> np.ndarray:
        return (q.astype(np.float64) - float(self.qp.zero_point)) * float(self.qp.scale)


class EdgeModel:
    """A compiled, inference-only integer network.

    Behaves like a model for evaluation purposes (``__call__`` on float
    pixel arrays returning float logits) but executes entirely on the
    integer path in between.  Batches route through per-(shape, dtype)
    cached :class:`~repro.edge.program.EdgeProgram` plans that are
    bit-validated against the eager op loop when first built; lowering
    or validation failure warns and pins the eager loop for that shape.
    """

    def __init__(self, ops: Sequence[EdgeOp], num_classes: int,
                 plan_cache=None):
        self.ops = list(ops)
        self.num_classes = num_classes
        self.training = False
        #: compiled per-shape program store; private by default, rebound
        #: to a shared budgeted :class:`repro.serve.PlanCache` when the
        #: model is served through a ``ServeSession``
        if plan_cache is None:
            from ..serve.cache import PlanCache
            plan_cache = PlanCache()
        self.plan_cache = plan_cache
        self._pool = None

    def eval(self) -> "EdgeModel":
        return self

    @property
    def _programs(self) -> Dict[tuple, object]:
        """Introspection view of this model's cached plans, keyed by
        ``(shape, dtype.str)`` — the shape the historic per-model dict
        had (kept for tests and debugging)."""
        return {key[2:]: entry.plan
                for key, entry in self.plan_cache.items(scope=self)}

    def _eager_forward(self, q: np.ndarray) -> np.ndarray:
        """The reference per-op loop (also the compiled path's oracle)."""
        for op in self.ops:
            q = op(q)
        return np.asarray(q)

    def _build_program(self, q: np.ndarray):
        """One compile + eager-validation attempt; None pins the eager
        loop for this shape (loud, once)."""
        from ..nn.graph import ScratchPool
        from .program import EdgeProgram
        if self._pool is None:
            self._pool = ScratchPool()
        try:
            return EdgeProgram(self, q, pool=self._pool)
        except Exception as exc:       # lowering/validation failure -> eager
            warnings.warn(
                f"edge program lowering failed for input {q.shape} "
                f"{q.dtype}: {exc}; running the eager integer op loop",
                RuntimeWarning, stacklevel=5)
            return None

    def _program_for(self, q: np.ndarray):
        """Cached per-shape program, or None when this shape fell back.

        Each new (shape, dtype) pays one compile + eager-validation
        pass, which only amortizes on repeated shapes — callers scoring
        many distinct batch sizes should bucket them (as ``predict``
        batching does) or pass ``compiled=False``.  Under a budgeted
        cache, cold shapes age out LRU and rebuild (re-validating) on
        their next use.
        """
        key = ("edge", id(self), q.shape, q.dtype.str)
        return self.plan_cache.get(key, (self,),
                                   lambda: self._build_program(q),
                                   scope=self)

    def predict(self, x: np.ndarray, batch_size: int = 256,
                compiled: bool = True) -> np.ndarray:
        """Float pixels in, float logits out (integer path inside)."""
        x = np.asarray(x)
        outs = []
        for start in range(0, len(x), batch_size):
            chunk = x[start:start + batch_size]
            prog = self._program_for(chunk) if compiled else None
            if prog is not None:
                outs.append(prog.run(chunk))
            else:
                outs.append(self._eager_forward(chunk))
        return np.concatenate(outs, axis=0)

    def __call__(self, x) -> "EdgeLogits":
        data = x.data if hasattr(x, "data") else np.asarray(x)
        return EdgeLogits(self.predict(data))

    def footprint_bytes(self) -> int:
        """int8-weight + int32-bias storage (the deployed artifact size)."""
        total = 0
        for op in self.ops:
            if isinstance(op, (QConv2d, QLinear)):
                total += op.q_weight.size            # 1 byte per int8 weight
                total += op.bias_q.size * 4
        return total


@dataclass
class EdgeLogits:
    """Minimal Tensor-like wrapper so evaluation helpers work unchanged."""

    data: np.ndarray
