"""Reverse-mode automatic differentiation on numpy arrays.

This is the substrate every other subsystem (models, quantization-aware
training, the attack family) is built on.  The design is a classic tape:
each :class:`Tensor` produced by an operation stores a closure that, given
the upstream gradient, accumulates gradients into its parents.  ``backward``
runs the closures in reverse topological order.

All operations are vectorized numpy; there are no per-element Python loops
anywhere on the hot path (conv uses stride tricks + matmul, pooling uses
window views).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from . import rowrep

ArrayLike = Union[np.ndarray, float, int, "Tensor"]

_DEFAULT_DTYPE = np.float64


def set_default_dtype(dtype) -> None:
    """Set the dtype new tensors are created with (float32 or float64)."""
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"unsupported default dtype: {dtype}")
    _DEFAULT_DTYPE = dtype.type


def get_default_dtype():
    return _DEFAULT_DTYPE


# --------------------------------------------------------------------- #
# graph-tracing hook (see repro.nn.graph)
#
# While a tracer is installed, every instrumented op reports
# (kind, input tensors, output tensor, attrs) right after executing, in
# execution order — which is already a valid topological order of the
# tape.  The guard is a single global ``is not None`` check, so the
# eager hot path pays (almost) nothing when not tracing.
# --------------------------------------------------------------------- #
_GRAPH_TRACER = None


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    When an operand of shape ``shape`` was broadcast up to ``grad.shape``
    during the forward pass, the chain rule requires summing the gradient
    over every broadcast dimension.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dims added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dims that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy ndarray plus an autograd tape node.

    Parameters
    ----------
    data:
        Array-like payload; converted to the default float dtype unless it
        is already a float array.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        name: Optional[str] = None,
    ):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype != _DEFAULT_DTYPE:
            # Single-dtype policy: every tensor lives in the global default
            # dtype, which prevents accidental float64 upcasts from numpy
            # scalar promotion when running experiments in float32.
            arr = arr.astype(_DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = _parents
        self.name = name

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        head = f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}"
        if self.name:
            head += f", name={self.name!r}"
        return head + ")"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(
                f"item() called on tensor of size {self.data.size}; only "
                "single-element tensors can be converted to a Python scalar")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph machinery
    # ------------------------------------------------------------------ #
    def _make(self, data: np.ndarray, parents: Sequence["Tensor"]) -> "Tensor":
        """Create an op output tensor whose ``requires_grad`` is inherited."""
        req = any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=req, _parents=tuple(parents) if req else ())

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Add ``grad`` into ``self.grad``.

        ``owned=True`` promises the caller holds the only reference to
        ``grad``'s storage (a freshly allocated array), so it can be
        adopted directly instead of defensively copied — a measurable
        allocation win on deep backward passes.  Views of upstream
        gradients must be passed with ``owned=False``.
        """
        if self.grad is None:
            if owned and grad.dtype == self.data.dtype:
                self.grad = grad
            else:
                self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(f"grad shape {grad.shape} != tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:  # iterative DFS; deep graphs must not hit recursion limits
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited and p.requires_grad:
                    stack.append((p, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(x: ArrayLike) -> "Tensor":
        return x if isinstance(x, Tensor) else Tensor(x)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = self._make(self.data + other.data, (self, other))
        if out.requires_grad:
            def _bw(g, a=self, b=other):
                if a.requires_grad:
                    ga = _unbroadcast(g, a.shape)
                    a._accumulate(ga, owned=ga is not g)
                if b.requires_grad:
                    gb = _unbroadcast(g, b.shape)
                    b._accumulate(gb, owned=gb is not g)
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("add", (self, other), out, None)
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make(-self.data, (self,))
        if out.requires_grad:
            def _bw(g, a=self):
                if a.requires_grad:
                    a._accumulate(-g, owned=True)
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("neg", (self,), out, None)
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = self._make(self.data - other.data, (self, other))
        if out.requires_grad:
            def _bw(g, a=self, b=other):
                if a.requires_grad:
                    ga = _unbroadcast(g, a.shape)
                    a._accumulate(ga, owned=ga is not g)
                if b.requires_grad:
                    b._accumulate(_unbroadcast(-g, b.shape), owned=True)
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("sub", (self, other), out, None)
        return out

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = self._make(self.data * other.data, (self, other))
        if out.requires_grad:
            def _bw(g, a=self, b=other):
                if a.requires_grad:
                    a._accumulate(_unbroadcast(g * b.data, a.shape), owned=True)
                if b.requires_grad:
                    b._accumulate(_unbroadcast(g * a.data, b.shape), owned=True)
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("mul", (self, other), out, None)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = self._make(self.data / other.data, (self, other))
        if out.requires_grad:
            def _bw(g, a=self, b=other):
                if a.requires_grad:
                    a._accumulate(_unbroadcast(g / b.data, a.shape), owned=True)
                if b.requires_grad:
                    b._accumulate(_unbroadcast(-g * a.data / (b.data ** 2), b.shape),
                                  owned=True)
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("div", (self, other), out, None)
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out = self._make(self.data ** exponent, (self,))
        if out.requires_grad:
            def _bw(g, a=self, e=exponent):
                if a.requires_grad:
                    a._accumulate(g * e * (a.data ** (e - 1)), owned=True)
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("pow", (self,), out, {"exponent": exponent})
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        # rowrep.matmul is the row-reproducible kernel seam: a plain
        # `@` when the mode is off, the fixed-order blocked GEMM when
        # on (per-row bits then independent of the batch composition)
        out = self._make(rowrep.matmul(self.data, other.data), (self, other))
        if out.requires_grad:
            def _bw(g, a=self, b=other):
                if a.requires_grad:
                    if b.data.ndim == 1:
                        ga = np.outer(g, b.data) if a.data.ndim == 2 else g * b.data
                    else:
                        # the input-gradient leg is per-row too (rows of
                        # g against a fixed weight), so it rides the
                        # same seam; the weight-gradient leg below
                        # reduces over the batch and stays raw
                        ga = rowrep.matmul(g, np.swapaxes(b.data, -1, -2))
                    a._accumulate(_unbroadcast(ga, a.shape), owned=True)
                if b.requires_grad:
                    if a.data.ndim == 1:
                        gb = np.outer(a.data, g) if b.data.ndim == 2 else g * a.data
                    else:
                        gb = np.swapaxes(a.data, -1, -2) @ g
                    b._accumulate(_unbroadcast(gb, b.shape), owned=True)
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("matmul", (self, other), out, None)
        return out

    # ------------------------------------------------------------------ #
    # elementwise math
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        val = np.exp(self.data)
        out = self._make(val, (self,))
        if out.requires_grad:
            def _bw(g, a=self, v=val):
                if a.requires_grad:
                    a._accumulate(g * v, owned=True)
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("exp", (self,), out, None)
        return out

    def log(self) -> "Tensor":
        out = self._make(np.log(self.data), (self,))
        if out.requires_grad:
            def _bw(g, a=self):
                if a.requires_grad:
                    a._accumulate(g / a.data, owned=True)
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("log", (self,), out, None)
        return out

    def sqrt(self) -> "Tensor":
        val = np.sqrt(self.data)
        out = self._make(val, (self,))
        if out.requires_grad:
            def _bw(g, a=self, v=val):
                if a.requires_grad:
                    a._accumulate(g * 0.5 / v, owned=True)
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("sqrt", (self,), out, None)
        return out

    def abs(self) -> "Tensor":
        out = self._make(np.abs(self.data), (self,))
        if out.requires_grad:
            def _bw(g, a=self):
                if a.requires_grad:
                    a._accumulate(g * np.sign(a.data), owned=True)
            out._backward = _bw
        return out

    def tanh(self) -> "Tensor":
        val = np.tanh(self.data)
        out = self._make(val, (self,))
        if out.requires_grad:
            def _bw(g, a=self, v=val):
                if a.requires_grad:
                    a._accumulate(g * (1.0 - v * v), owned=True)
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("tanh", (self,), out, None)
        return out

    def sigmoid(self) -> "Tensor":
        val = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make(val, (self,))
        if out.requires_grad:
            def _bw(g, a=self, v=val):
                if a.requires_grad:
                    a._accumulate(g * v * (1.0 - v), owned=True)
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("sigmoid", (self,), out, None)
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self._make(np.where(mask, self.data, 0.0), (self,))
        if out.requires_grad:
            def _bw(g, a=self, m=mask):
                if a.requires_grad:
                    a._accumulate(g * m, owned=True)
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("relu", (self,), out, None)
        return out

    def maximum(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = self._make(np.maximum(self.data, other.data), (self, other))
        if out.requires_grad:
            mask = self.data >= other.data
            def _bw(g, a=self, b=other, m=mask):
                if a.requires_grad:
                    a._accumulate(_unbroadcast(g * m, a.shape), owned=True)
                if b.requires_grad:
                    b._accumulate(_unbroadcast(g * (~m), b.shape), owned=True)
            out._backward = _bw
        return out

    def minimum(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = self._make(np.minimum(self.data, other.data), (self, other))
        if out.requires_grad:
            mask = self.data <= other.data
            def _bw(g, a=self, b=other, m=mask):
                if a.requires_grad:
                    a._accumulate(_unbroadcast(g * m, a.shape), owned=True)
                if b.requires_grad:
                    b._accumulate(_unbroadcast(g * (~m), b.shape), owned=True)
            out._backward = _bw
        return out

    def clip(self, lo: float, hi: float) -> "Tensor":
        """Clamp with true (zero-outside) gradients."""
        val = np.clip(self.data, lo, hi)
        out = self._make(val, (self,))
        if out.requires_grad:
            mask = (self.data >= lo) & (self.data <= hi)
            def _bw(g, a=self, m=mask):
                if a.requires_grad:
                    a._accumulate(g * m, owned=True)
            out._backward = _bw
        return out

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            def _bw(g, a=self, ax=axis, kd=keepdims):
                if not a.requires_grad:
                    return
                if ax is None:
                    a._accumulate(np.broadcast_to(g, a.shape).copy()
                                  if np.ndim(g) else np.full(a.shape, g, dtype=a.dtype),
                                  owned=True)
                else:
                    if not kd:
                        g = np.expand_dims(g, ax)
                    a._accumulate(np.broadcast_to(g, a.shape).copy(), owned=True)
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("sum", (self,), out,
                               {"axis": axis, "keepdims": keepdims})
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            n = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            n = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        val = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make(val, (self,))
        if out.requires_grad:
            def _bw(g, a=self, ax=axis, kd=keepdims, v=val):
                if not a.requires_grad:
                    return
                vv, gg = v, g
                if ax is not None and not kd:
                    vv = np.expand_dims(vv, ax)
                    gg = np.expand_dims(gg, ax)
                mask = a.data == vv
                # Ties split the gradient evenly (matches subgradient choice).
                counts = mask.sum(axis=ax, keepdims=True) if ax is not None else mask.sum()
                a._accumulate(np.where(mask, gg / counts, 0.0), owned=True)
            out._backward = _bw
        return out

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # shape ops
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make(self.data.reshape(shape), (self,))
        if out.requires_grad:
            def _bw(g, a=self):
                if a.requires_grad:
                    a._accumulate(g.reshape(a.shape))
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("reshape", (self,), out, None)
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out = self._make(self.data.transpose(axes), (self,))
        if out.requires_grad:
            inv = np.argsort(axes)
            def _bw(g, a=self, iv=tuple(inv)):
                if a.requires_grad:
                    a._accumulate(g.transpose(iv))
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("transpose", (self,), out, {"axes": axes})
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def flatten(self, start_dim: int = 1) -> "Tensor":
        lead = self.shape[:start_dim]
        return self.reshape(lead + (-1,))

    def pad2d(self, pad: Tuple[int, int, int, int]) -> "Tensor":
        """Zero-pad an NCHW tensor: pad = (top, bottom, left, right)."""
        t, b, l, r = pad
        widths = ((0, 0), (0, 0), (t, b), (l, r))
        out = self._make(np.pad(self.data, widths), (self,))
        if out.requires_grad:
            H, W = self.shape[2], self.shape[3]
            def _bw(g, a=self, t=t, l=l, H=H, W=W):
                if a.requires_grad:
                    a._accumulate(g[:, :, t:t + H, l:l + W])
            out._backward = _bw
        if _GRAPH_TRACER is not None:
            _GRAPH_TRACER.emit("pad2d", (self,), out,
                               {"pad": (int(t), int(b), int(l), int(r))})
        return out

    def __getitem__(self, idx) -> "Tensor":
        out = self._make(self.data[idx], (self,))
        if out.requires_grad:
            def _bw(g, a=self, ix=idx):
                if a.requires_grad:
                    full = np.zeros_like(a.data)
                    np.add.at(full, ix, g)
                    a._accumulate(full, owned=True)
            out._backward = _bw
        return out

    def gather_rows(self, index: np.ndarray) -> "Tensor":
        """Select one column per row: ``out[i] = self[i, index[i]]``."""
        idx = np.asarray(index)
        rows = np.arange(self.shape[0])
        out = self._make(self.data[rows, idx], (self,))
        if out.requires_grad:
            def _bw(g, a=self, r=rows, c=idx):
                if a.requires_grad:
                    full = np.zeros_like(a.data)
                    np.add.at(full, (r, c), g)
                    a._accumulate(full, owned=True)
            out._backward = _bw
        return out


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    req = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=req, _parents=tuple(tensors) if req else ())
    if req:
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)
        def _bw(g, ts=tensors, off=offsets, ax=axis):
            for t, s, e in zip(ts, off[:-1], off[1:]):
                if t.requires_grad:
                    sl = [slice(None)] * g.ndim
                    sl[ax] = slice(int(s), int(e))
                    t._accumulate(g[tuple(sl)])
        out._backward = _bw
    if _GRAPH_TRACER is not None:
        _GRAPH_TRACER.emit("concat", tuple(tensors), out, {"axis": axis})
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    req = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=req, _parents=tuple(tensors) if req else ())
    if req:
        def _bw(g, ts=tensors, ax=axis):
            for i, t in enumerate(ts):
                if t.requires_grad:
                    t._accumulate(np.take(g, i, axis=ax))
        out._backward = _bw
    if _GRAPH_TRACER is not None:
        _GRAPH_TRACER.emit("stack", tuple(tensors), out, {"axis": axis})
    return out


def where(cond: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Differentiable select: gradient flows to the chosen branch only."""
    cond = np.asarray(cond, dtype=bool)
    a = Tensor._coerce(a)
    b = Tensor._coerce(b)
    data = np.where(cond, a.data, b.data)
    req = a.requires_grad or b.requires_grad
    out = Tensor(data, requires_grad=req, _parents=(a, b) if req else ())
    if req:
        def _bw(g, a=a, b=b, c=cond):
            if a.requires_grad:
                a._accumulate(_unbroadcast(np.where(c, g, 0.0), a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(np.where(c, 0.0, g), b.shape))
        out._backward = _bw
    if _GRAPH_TRACER is not None:
        _GRAPH_TRACER.emit("where", (a, b), out, {"cond": cond})
    return out


def no_grad_tensor(data: ArrayLike) -> Tensor:
    """Convenience constructor for constant tensors."""
    return Tensor(data, requires_grad=False)
