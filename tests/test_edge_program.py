"""Compiled edge programs: bit-exactness vs the eager integer op loop,
fusion rules, planned-buffer routing and fallback purity."""

import warnings

import numpy as np
import pytest

from repro.edge import (Dequantize, EdgeLoweringError, EdgeModel, EdgeOp,
                        EdgeProgram, QConv2d, QFlatten, QLinear, QMaxPool2d,
                        QReLU, QuantizeInput, compile_edge, load_edge_model,
                        save_edge_model)
from repro.edge.program import _ConvStep, _ReLUStep
from repro.models import build_model
from repro.quantization import calibrate, prepare_qat
from repro.quantization.affine import QuantParams, choose_qparams


def _edge_from_model(name, x, **kwargs):
    """Calibration-only QAT -> frozen -> edge (fast; no training)."""
    model = build_model(name, **kwargs)
    model.eval()
    q = prepare_qat(model, weight_bits=8, act_bits=8, per_channel=True)
    calibrate(q, x[: min(32, len(x))])
    q.freeze()
    return compile_edge(q, kwargs.get("num_classes",
                                      kwargs.get("num_identities")))


@pytest.fixture(scope="module")
def lenet_edge():
    rng = np.random.default_rng(0)
    x = rng.random((36, 1, 16, 16))
    return _edge_from_model("lenet", x, num_classes=10, in_channels=1,
                            image_size=16, seed=0), x


@pytest.fixture(scope="module")
def vggface_edge():
    rng = np.random.default_rng(1)
    x = rng.random((20, 3, 16, 16)).astype(np.float32)
    return _edge_from_model("vggface", x, num_identities=12, image_size=16,
                            width=4, seed=0), x


def _strict_predict(edge, x, **kw):
    """Compiled predict that fails the test on any fallback warning."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        return edge.predict(x, **kw)


class TestBitExactness:
    def test_lenet_float64(self, lenet_edge):
        edge, x = lenet_edge
        got = _strict_predict(edge, x)
        np.testing.assert_array_equal(got, edge.predict(x, compiled=False))
        assert got.dtype == np.float64

    def test_vggface_float32_pixels(self, vggface_edge):
        edge, x = vggface_edge
        got = _strict_predict(edge, x)
        np.testing.assert_array_equal(got, edge.predict(x, compiled=False))

    def test_ragged_tail_batches(self, lenet_edge):
        """Full chunks and the ragged tail each get their own program."""
        edge, x = lenet_edge
        got = _strict_predict(edge, x, batch_size=16)   # 16 + 16 + 4
        np.testing.assert_array_equal(
            got, edge.predict(x, batch_size=16, compiled=False))
        shapes = {k[0][0] for k, p in edge._programs.items() if p is not None}
        assert {16, 4} <= shapes

    def test_serialization_roundtrip_into_compiled_path(
            self, vggface_edge, tmp_path):
        edge, x = vggface_edge
        path = str(tmp_path / "edge.npz")
        save_edge_model(edge, path)
        loaded = load_edge_model(path)
        got = _strict_predict(loaded, x)
        assert any(p is not None for p in loaded._programs.values())
        np.testing.assert_array_equal(got, edge.predict(x, compiled=False))


def _per_tensor(lo, hi, qmin, qmax):
    return choose_qparams(np.float64(lo), np.float64(hi), qmin, qmax)


def _rand_conv(rng, f, c, k, in_qp, out_qp, **kw):
    w = rng.integers(-127, 128, size=(f, c, k, k)).astype(np.int64)
    w_qp = QuantParams(scale=np.full(f, 0.01), zero_point=np.zeros(f),
                       qmin=-127, qmax=127, axis=0)
    bias = rng.integers(-400, 400, size=f).astype(np.int64)
    return QConv2d(w, bias, in_qp, w_qp, out_qp, **kw)


class TestHandBuiltOps:
    """Geometry coverage beyond what the QAT models exercise."""

    @pytest.mark.parametrize("stride,padding,groups", [
        (1, 0, 1), (2, 1, 1), (1, 2, 1), (2, 1, 2), (3, 0, 4),
    ])
    def test_conv_geometries(self, stride, padding, groups):
        rng = np.random.default_rng(stride * 7 + padding * 3 + groups)
        in_qp = _per_tensor(-1, 1, 0, 255)
        out_qp = _per_tensor(-2, 3, 0, 255)
        conv = _rand_conv(rng, 8, 4 // groups, 3, in_qp, out_qp,
                          stride=stride, padding=padding, groups=groups)
        em = EdgeModel([QuantizeInput(in_qp), conv, Dequantize(out_qp)], 8)
        x = rng.random((5, 4, 13, 13))
        np.testing.assert_array_equal(_strict_predict(em, x),
                                      em.predict(x, compiled=False))

    def test_per_tensor_weight_grid(self):
        rng = np.random.default_rng(9)
        in_qp = _per_tensor(-1, 1, 0, 255)
        out_qp = _per_tensor(-1, 1, 0, 255)
        w = rng.integers(-127, 128, size=(3, 2, 3, 3)).astype(np.int64)
        w_qp = _per_tensor(-1.27, 1.27, -127, 127)
        conv = QConv2d(w, np.zeros(3, dtype=np.int64), in_qp, w_qp, out_qp,
                       padding=1)
        em = EdgeModel([QuantizeInput(in_qp), conv, Dequantize(out_qp)], 3)
        x = rng.random((4, 2, 6, 6))
        np.testing.assert_array_equal(_strict_predict(em, x),
                                      em.predict(x, compiled=False))

    def test_padded_maxpool(self):
        rng = np.random.default_rng(11)
        in_qp = _per_tensor(-1, 1, -128, 127)
        ops = [QuantizeInput(in_qp), QMaxPool2d(3, stride=2, padding=1),
               Dequantize(in_qp)]
        em = EdgeModel(ops, 1)
        x = rng.random((6, 2, 9, 9)) * 2 - 1
        np.testing.assert_array_equal(_strict_predict(em, x),
                                      em.predict(x, compiled=False))

    def test_same_padded_shape_different_padding_no_alias(self):
        """Two padded convs whose *padded* images coincide but whose
        border widths differ must not share a plan-time-filled pad
        buffer (regression: stale borders after the second conv's
        interior writes)."""
        rng = np.random.default_rng(17)
        in_qp = QuantParams(scale=np.float64(0.01), zero_point=np.float64(128),
                            qmin=0, qmax=255)
        mid_qp = QuantParams(scale=np.float64(0.02), zero_point=np.float64(128),
                             qmin=0, qmax=255)
        out_qp = _per_tensor(-4, 4, 0, 255)
        conv_a = _rand_conv(rng, 4, 4, 3, in_qp, mid_qp, padding=2)   # 10->12
        conv_b = _rand_conv(rng, 4, 4, 3, mid_qp, out_qp, padding=1)  # 12->12
        em = EdgeModel([QuantizeInput(in_qp), conv_a, conv_b,
                        Dequantize(out_qp)], 4)
        x = rng.random((3, 4, 10, 10))
        ref = em.predict(x, compiled=False)
        for _ in range(2):   # second run hits the already-planned buffers
            np.testing.assert_array_equal(_strict_predict(em, x), ref)

    def test_multi_chunk_predict_without_dequantize(self):
        """Programs whose op list does not end in Dequantize must hand
        back owned arrays, or earlier chunks alias the pooled buffer the
        next chunk overwrites."""
        in_qp = _per_tensor(-1, 1, 0, 255)
        em = EdgeModel([QuantizeInput(in_qp), QFlatten()], 1)
        x = np.random.default_rng(19).random((8, 2, 3, 3))
        got = _strict_predict(em, x, batch_size=4)
        np.testing.assert_array_equal(
            got, em.predict(x, batch_size=4, compiled=False))

    def test_linear_chain(self):
        rng = np.random.default_rng(13)
        in_qp = _per_tensor(-1, 1, 0, 255)
        mid_qp = _per_tensor(-4, 4, 0, 255)
        out_qp = _per_tensor(-6, 6, 0, 255)
        w1 = rng.integers(-127, 128, size=(7, 12)).astype(np.int64)
        w2 = rng.integers(-127, 128, size=(4, 7)).astype(np.int64)
        w_qp = QuantParams(scale=np.full(7, 0.02), zero_point=np.zeros(7),
                           qmin=-127, qmax=127, axis=0)
        w_qp2 = _per_tensor(-1.27, 1.27, -127, 127)
        ops = [QuantizeInput(in_qp), QFlatten(),
               QLinear(w1, rng.integers(-100, 100, 7).astype(np.int64),
                       in_qp, w_qp, mid_qp),
               QReLU(mid_qp, _per_tensor(0, 4, 0, 255)),
               QLinear(w2, np.zeros(4, dtype=np.int64),
                       _per_tensor(0, 4, 0, 255), w_qp2, out_qp),
               Dequantize(out_qp)]
        em = EdgeModel(ops, 4)
        x = rng.random((10, 3, 2, 2))
        np.testing.assert_array_equal(_strict_predict(em, x),
                                      em.predict(x, compiled=False))


def _conv_relu_model(rng, conv_out, relu_out):
    in_qp = _per_tensor(-1, 1, 0, 255)
    conv = _rand_conv(rng, 6, 3, 3, in_qp, conv_out, padding=1)
    ops = [QuantizeInput(in_qp), conv, QReLU(conv_out, relu_out),
           QFlatten(), Dequantize(relu_out)]
    return EdgeModel(ops, 6)


class TestReLULowering:
    def test_fused_when_scales_match(self):
        """Shared-scale grids: the relu folds into the conv's clamp."""
        rng = np.random.default_rng(21)
        s = 0.0125
        conv_out = QuantParams(scale=np.float64(s), zero_point=np.float64(130),
                               qmin=0, qmax=255)
        relu_out = QuantParams(scale=np.float64(s), zero_point=np.float64(2),
                               qmin=0, qmax=255)
        em = _conv_relu_model(rng, conv_out, relu_out)
        x = rng.random((8, 3, 7, 7))
        got = _strict_predict(em, x)
        prog = next(iter(em._programs.values()))
        assert prog.fused_relus == 1
        assert not any(isinstance(s, _ReLUStep) for s in prog.steps)
        np.testing.assert_array_equal(got, em.predict(x, compiled=False))

    def test_standalone_lut_when_scales_differ(self):
        """Differing grids stay a standalone op (LUT), still bit-exact."""
        rng = np.random.default_rng(22)
        conv_out = _per_tensor(-2, 2, 0, 255)
        relu_out = _per_tensor(0, 1.7, 0, 255)
        em = _conv_relu_model(rng, conv_out, relu_out)
        x = rng.random((8, 3, 7, 7))
        got = _strict_predict(em, x)
        prog = next(iter(em._programs.values()))
        assert prog.fused_relus == 0
        assert any(isinstance(s, _ReLUStep) for s in prog.steps)
        np.testing.assert_array_equal(got, em.predict(x, compiled=False))

    def test_fused_and_standalone_agree_on_shared_grid(self):
        """The fused clamp and the standalone LUT are the same function
        when both lowerings are legal."""
        s = 0.02
        conv_out = QuantParams(scale=np.float64(s), zero_point=np.float64(100),
                               qmin=0, qmax=255)
        relu_out = QuantParams(scale=np.float64(s), zero_point=np.float64(0),
                               qmin=0, qmax=255)
        em_fused = _conv_relu_model(np.random.default_rng(23), conv_out,
                                    relu_out)
        x = np.random.default_rng(24).random((6, 3, 5, 5))
        fused = _strict_predict(em_fused, x)
        # force the standalone lowering by disabling fusion detection
        em_plain = _conv_relu_model(np.random.default_rng(23), conv_out,
                                    relu_out)
        import repro.edge.program as prog_mod
        orig = prog_mod._can_fuse_relu
        prog_mod._can_fuse_relu = lambda *a: False
        try:
            plain = _strict_predict(em_plain, x)
        finally:
            prog_mod._can_fuse_relu = orig
        np.testing.assert_array_equal(fused, plain)


class TestFallback:
    def test_unknown_op_falls_back_loudly_and_purely(self, lenet_edge):
        class Identity(EdgeOp):
            def __call__(self, q):
                return q

        edge, x = lenet_edge
        em = EdgeModel(edge.ops[:-1] + [Identity(), edge.ops[-1]], 10)
        with pytest.warns(RuntimeWarning, match="lowering failed"):
            got = em.predict(x)
        assert list(em._programs.values()) == [None]
        np.testing.assert_array_equal(got, em.predict(x, compiled=False))

    def test_validation_mismatch_falls_back(self, lenet_edge, monkeypatch):
        edge, x = lenet_edge
        em = EdgeModel(edge.ops, 10)
        monkeypatch.setattr(_ConvStep, "run",
                            lambda self, q: (_ for _ in ()).throw(
                                ValueError("broken step")))
        with pytest.warns(RuntimeWarning, match="lowering failed"):
            got = em.predict(x)
        np.testing.assert_array_equal(got, edge.predict(x, compiled=False))

    def test_program_rejects_unknown_op_directly(self):
        class Weird(EdgeOp):
            def __call__(self, q):
                return q

        em = EdgeModel([Weird()], 2)
        with pytest.raises(EdgeLoweringError):
            EdgeProgram(em, np.zeros((2, 3)))


class TestProgramCache:
    def test_programs_keyed_by_shape_and_dtype(self, lenet_edge):
        edge, x = lenet_edge
        em = EdgeModel(edge.ops, 10)
        _strict_predict(em, x[:8])
        _strict_predict(em, x[:8].astype(np.float32))
        keys = set(em._programs)
        assert ((8, 1, 16, 16), "<f8") in keys
        assert ((8, 1, 16, 16), "<f4") in keys

    def test_compiled_flag_bypasses_programs(self, lenet_edge):
        edge, x = lenet_edge
        em = EdgeModel(edge.ops, 10)
        em.predict(x[:4], compiled=False)
        assert em._programs == {}
