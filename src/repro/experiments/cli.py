"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    repro-exp table1                 # Table 1 at paper-scale config
    repro-exp fig6 --smoke           # Fig 6 at the tiny test scale
    repro-exp all                    # the full grid (minutes on CPU)
    repro-exp serve --smoke          # replay a recorded mixed workload
                                     # through the serving layer and
                                     # verify bit-parity vs sequential
    repro-exp serve --net --smoke    # same workload through the full
                                     # socket boundary (loopback server
                                     # + retrying client), bit-parity
    repro-exp serve --listen 7433    # standalone server (SIGTERM drains)
    repro-exp serve --connect HOST:PORT --smoke   # drive a remote server
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time
from typing import Callable, Dict

from ..nn import set_default_dtype
from .config import ExperimentConfig
from .pipeline import Pipeline


def _registry() -> Dict[str, Callable]:
    from . import (exp_ablations, exp_distilled, exp_dssim, exp_fig1,
                   exp_fig2, exp_fig4, exp_fig6, exp_fig7, exp_fig8,
                   exp_fig10, exp_sec54, exp_sec55, exp_table1, exp_table2,
                   exp_targeted)
    return {
        "table1": exp_table1.run,
        "fig1": exp_fig1.run,
        "fig2": exp_fig2.run,
        "fig4": exp_fig4.run,
        "fig6": exp_fig6.run,
        "fig6d": exp_fig6.run_steps,
        "table2": exp_table2.run,
        "fig7": exp_fig7.run,
        "dssim": exp_dssim.run,
        "sec54": exp_sec54.run,
        "sec55": exp_sec55.run,
        "fig8": exp_fig8.run,
        "fig10": exp_fig10.run,
        "targeted": exp_targeted.run,
        "ablation-bits": exp_ablations.run_bits,
        "ablation-eps": exp_ablations.run_eps,
        "ablation-keep-best": exp_ablations.run_keep_best,
        "ablation-per-channel": exp_ablations.run_per_channel,
        "distilled": exp_distilled.run,
    }


def _net_breakdown(counts, shed, retried, deduped) -> str:
    """The per-outcome line every networked mode prints: how each job
    ended, plus how hard the wire had to work to get there."""
    return (f"ok={counts.get('ok', 0)} failed={counts.get('failed', 0)} "
            f"rejected={counts.get('rejected', 0)} shed={shed} "
            f"deadline-degraded={counts.get('deadline-degraded', 0)} "
            f"retried={retried} deduped={deduped}")


def _serve_listen(args, spec) -> int:
    """Standalone server: bind, print the port, serve until a shutdown
    op or SIGINT/SIGTERM — both of which drain gracefully (accepted
    jobs finish and flush; new submits are refused with a structured
    ``rejected``)."""
    from ..serve import ServeSession
    from ..serve.net import ServeServer

    session = ServeSession(capacity=args.capacity,
                           float_coalesce=args.float_coalesce != "off",
                           default_deadline_s=(args.deadline_ms / 1e3
                                               if args.deadline_ms else None),
                           workers=args.workers)
    server = ServeServer(session, spec=spec, port=args.listen,
                         journal_path=args.journal)
    if server.recovered_completed or server.recovered_incomplete:
        print(f"  recovered  {server.recovered_completed} completed, "
              f"{server.recovered_incomplete} interrupted (resubmitted) "
              f"from {args.journal}")

    def _drain_signal(signum, frame):
        print(f"\n[signal {signum}: draining before shutdown]")
        server._shutdown_requested = True

    signal.signal(signal.SIGINT, _drain_signal)
    signal.signal(signal.SIGTERM, _drain_signal)
    print(f"=== serve: listening on {server.host}:{server.port} "
          f"(workload spec {spec['name']}, journal "
          f"{args.journal or 'off'}) ===", flush=True)
    server.serve_forever()
    stats = server.stats
    print(f"  served     accepted={stats['accepted']} "
          f"deduped={stats['deduped']} "
          f"rejected-draining={stats['rejected_draining']}")
    counts = stats["outcome_counts"]
    print(f"  outcomes   {_net_breakdown(counts, 0, 0, stats['deduped'])}")
    return 0


def _serve_connect(args, spec) -> int:
    """Client mode: materialize the workload locally, replay it through
    a remote server at ``--rate``x the recorded arrivals, verify every
    ``ok`` result bit-identical to the in-process solo run, and print
    the per-outcome breakdown."""
    import numpy as np
    from ..serve import ServeError, build_workload
    from ..serve.net import ServeClient, replay_net
    from ..serve.workload import replay_sequential

    host, _, port = args.connect.rpartition(":")
    workload = build_workload(spec)
    client = ServeClient(host or "127.0.0.1", int(port),
                         attempt_timeout_s=5.0, retry_seed=args.seed)
    try:
        if not client.health():
            print("  server unhealthy", file=sys.stderr)
            return 1
        out = replay_net(workload, client, rate=args.rate)
        try:
            deduped = int(client.server_stats().get("deduped", 0))
        except ServeError:
            deduped = 0
    finally:
        client.close()
    reference = replay_sequential(workload)["results"]
    for i, outcome in enumerate(out["outcomes"]):
        if outcome == "ok" and not np.array_equal(reference[i],
                                                  out["results"][i]):
            print(f"  PARITY FAILURE on job {i}", file=sys.stderr)
            return 1
    print(f"  parity OK: every ok job bit-identical to its solo run")
    print(f"  outcomes   {_net_breakdown(out['outcome_counts'], out['shed'], out['client']['retries'], deduped)}")
    print(f"  wire       {out['client']['frames_sent']} frames sent, "
          f"{out['client']['reconnects']} connects, "
          f"{out['seconds'] * 1e3:.1f} ms")
    return 0


def _serve_net_loopback(args, spec) -> int:
    """Loopback smoke for the socket boundary: server + retrying client
    in one process on a shared manual clock, optionally under seeded
    network chaos, with the full bit-parity gate."""
    from ..serve import (assign_arrivals, build_workload,
                         default_net_chaos_specs)
    from ..serve.net import verify_net_parity

    if not any(rec.get("arrival_offset_s") for rec in spec["jobs"]):
        assign_arrivals(spec, rate_hz=50.0, tenants=4)
    fault_specs = (default_net_chaos_specs() if args.net_faults else None)
    out = verify_net_parity(build_workload(spec), fault_specs=fault_specs,
                            seed=args.net_fault_seed, rate=args.rate,
                            capacity=args.capacity,
                            journal_path=args.journal,
                            deadline_s=(args.deadline_ms / 1e3
                                        if args.deadline_ms else None),
                            workers=args.workers)
    gate = ("chaos OK: every ok job bit-identical under seeded network "
            f"faults (seed {args.net_fault_seed})" if args.net_faults
            else "parity OK: every ok job bit-identical over the wire")
    print(f"  {gate}")
    print(f"  outcomes   {_net_breakdown(out['outcome_counts'], out['shed'], out['retried'], out['deduped'])}")
    if args.net_faults:
        fired = sum(n for kinds in out["faults_fired"].values()
                    for n in kinds.values())
        print(f"  faults     {fired} frame faults across "
              f"{len(out['faults_fired'])} points; "
              f"{out['client']['reconnects']} reconnects, "
              f"{out['client']['protocol_errors']} protocol errors")
    print(f"  load gen   {out['jobs']} jobs / {out['rows']} rows at "
          f"{args.rate:.0f}x recorded arrivals "
          f"({out['clock_s'] * 1e3:.1f} ms simulated)")
    return 0


def _run_serve(args) -> int:
    """Replay a recorded mixed workload sequentially and through a
    :class:`~repro.serve.ServeSession`, assert bit-parity, and print
    the aggregate throughput comparison.

    With ``--faults`` the replay instead runs under the deterministic
    chaos injector (:mod:`repro.serve.faults`): every non-rejected,
    non-deadline job must still come out bit-identical to its solo run,
    and the per-outcome breakdown is printed.  ``--net`` moves the same
    gate across the socket boundary (loopback server + retrying
    client), ``--listen``/``--connect`` split it across processes.
    """
    from ..serve import (build_workload, load_workload, mixed_workload_spec,
                         verify_parity)
    spec = (load_workload(args.workload) if args.workload
            else mixed_workload_spec(scale=1 if args.smoke else 2,
                                     seed=args.seed))
    if args.listen is not None:
        return _serve_listen(args, spec)
    if args.connect is not None:
        return _serve_connect(args, spec)
    if args.net:
        return _serve_net_loopback(args, spec)
    float_coalesce = args.float_coalesce != "off"
    lane = ("sequential scheduler" if args.workers is None
            else f"pool x{args.workers}")
    print(f"=== serve: workload {spec['name']} "
          f"({len(spec['jobs'])} jobs, float coalescing "
          f"{'on' if float_coalesce else 'off'}, {lane}) ===")
    t0 = time.time()
    if args.faults:
        from ..serve import chaos_replay
        out = chaos_replay(build_workload(spec), capacity=args.capacity,
                           seed=args.fault_seed,
                           deadline_s=(args.deadline_ms / 1e3
                                       if args.deadline_ms else None),
                           float_coalesce=float_coalesce,
                           workers=args.workers)
        print(f"  chaos OK: every surviving job bit-identical, every "
              f"refusal structured (fault seed {args.fault_seed})")
        breakdown = ", ".join(f"{k}={v}" for k, v in
                              sorted(out["outcome_counts"].items()))
        print(f"  outcomes   {breakdown}  ({out['rows']} rows, "
              f"{out['jobs']} jobs)")
        fired = sum(n for kinds in out["faults_fired"].values()
                    for n in kinds.values())
        print(f"  faults     {fired} fired across "
              f"{len(out['faults_fired'])} points; "
              f"{out['retry_dispatches']} ladder retries, "
              f"{out['quarantine']['trips']} quarantine trips, "
              f"{out['quarantine']['heals']} heals")
        print(f"  admission  {out['admission']['accepted']} accepted / "
              f"{out['admission']['rejected']} rejected / "
              f"{out['admission']['shed']} shed")
    else:
        out = verify_parity(build_workload(spec), capacity=args.capacity,
                            float_coalesce=float_coalesce,
                            workers=args.workers)
        print(f"  parity OK: every job bit-identical to its solo run")
        print(f"  sequential {out['sequential_s'] * 1e3:8.1f} ms  "
              f"({out['rows']} rows, {out['jobs']} jobs)")
        print(f"  served     {out['serve_s'] * 1e3:8.1f} ms  "
              f"({out['dispatches']} dispatches, "
              f"{out['coalesced_dispatches']} coalesced)")
        print(f"  aggregate throughput {out['throughput_ratio']:.2f}x; "
              f"plan cache {out['plan_cache']['hits']} hits / "
              f"{out['plan_cache']['misses']} misses")
    print(f"[serve done in {time.time() - t0:.1f}s]")
    return 0


def main(argv=None) -> int:
    registry = _registry()
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(registry) + ["all", "report", "serve"],
                        help="which table/figure to regenerate, 'report' "
                             "to rebuild EXPERIMENTS.md from existing "
                             "results, or 'serve' to replay a recorded "
                             "mixed workload through the serving layer")
    parser.add_argument("--smoke", action="store_true",
                        help="run at the tiny test scale (fast, inaccurate)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workload", default=None, metavar="PATH",
                        help="serve: JSON workload spec to replay "
                             "(default: the built-in mixed workload)")
    parser.add_argument("--capacity", type=int, default=64,
                        help="serve: scheduler slot capacity")
    parser.add_argument("--faults", action="store_true",
                        help="serve: replay under the deterministic chaos "
                             "fault injector and print the per-outcome "
                             "breakdown")
    parser.add_argument("--fault-seed", type=int,
                        default=int(os.environ.get("REPRO_FAULT_SEED", "0")),
                        help="serve: seed for --faults (default: "
                             "$REPRO_FAULT_SEED or 0)")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="serve: per-job deadline in milliseconds for "
                             "--faults replays (manual-clock time)")
    parser.add_argument("--net", action="store_true",
                        help="serve: replay through the full socket "
                             "boundary (loopback server + retrying "
                             "client) with the bit-parity gate")
    parser.add_argument("--net-faults", action="store_true",
                        help="serve: with --net, inject seeded network "
                             "frame faults (drop/duplicate/delay/"
                             "truncate) on every client send/recv")
    parser.add_argument("--net-fault-seed", type=int,
                        default=int(os.environ.get("REPRO_FAULT_SEED", "0")),
                        help="serve: seed for --net-faults and the "
                             "client retry jitter (default: "
                             "$REPRO_FAULT_SEED or 0)")
    parser.add_argument("--listen", type=int, default=None, metavar="PORT",
                        help="serve: run a standalone socket server for "
                             "the workload spec (0 picks a free port); "
                             "SIGINT/SIGTERM drain gracefully")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="serve: replay the workload through a "
                             "remote server and verify bit-parity "
                             "against the local solo run")
    parser.add_argument("--rate", type=float, default=10.0,
                        help="serve: arrival-process acceleration for "
                             "--net/--connect replays (10 = 10x the "
                             "recorded trace)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="serve: write-ahead journal for --listen/"
                             "--net (crash recovery + idempotent "
                             "re-reporting)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="serve: dispatch through the worker-pool "
                             "scheduler with N workers and N plan-cache/"
                             "breaker shards (results stay bit-identical "
                             "to sequential dispatch at every N; default: "
                             "the legacy single-threaded scheduler)")
    parser.add_argument("--float-coalesce", choices=("on", "off"),
                        default="on",
                        help="serve: coalesce float-predict jobs (and mix "
                             "them into attack dispatch rounds) under the "
                             "row-reproducible GEMM mode; 'off' serves "
                             "every float job solo (the parity gate runs "
                             "either way)")
    args = parser.parse_args(argv)

    set_default_dtype("float32")
    if args.experiment == "report":
        from .report import write_report
        print(f"wrote {write_report()}")
        return 0
    if args.experiment == "serve":
        return _run_serve(args)

    base = (ExperimentConfig.smoke() if args.smoke
            else ExperimentConfig.paper_scale())
    import dataclasses
    cfg = dataclasses.replace(base, seed=args.seed)
    pipe = Pipeline(cfg)

    names = sorted(registry) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        print(f"=== {name} ===")
        registry[name](cfg, pipeline=pipe)
        print(f"[{name} done in {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
