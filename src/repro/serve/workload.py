"""Recorded mixed workloads: build, save, replay — serve vs sequential.

The acceptance story for the serving layer is a *recorded* stream of
heterogeneous requests (attack jobs and plain inference jobs, arrival
order interleaved) that can be replayed two ways and compared:

- ``sequential`` — each job alone, in arrival order, exactly as the
  pre-serve codebase would have handled requests (every attack instance
  compiles its own programs; every predict call batches only its own
  rows);
- ``serve`` — all jobs through one :class:`~repro.serve.session.
  ServeSession`, sharing a plan cache and coalescing compatible jobs.

Per-job results must match bit for bit between the two replays
(:func:`verify_parity` asserts it); the throughput ratio is the
``serve_throughput`` entry of the BENCH trajectory.

A workload *spec* is a small JSON-serializable dict — seeds, model
hyper-parameters, and one record per job — so a workload can be
committed, shipped to the bench's subprocess-isolated arms, or replayed
by the ``repro-exp serve`` CLI subcommand.  Materialization
(:func:`build_workload`) deterministically reconstructs models, data and
attack instances from the spec; it never stores arrays.

Job kinds and their materialization:

===========  ==========================================================
``diva``     :class:`~repro.attacks.diva.DIVA` on the workload's
             (original, adapted) resnet pair; ``c``/``eps``/``alpha``
             per job.
``pgd``      :class:`~repro.attacks.pgd.PGD` on the adapted model.
``cw``       :class:`~repro.attacks.cw.CWLinf` on the adapted model.
``fgsm``     FGSM expressed as its exact PGD special case —
             ``steps=1, alpha=eps, keep_best=False`` reproduces
             :func:`repro.attacks.fgsm.fgsm` step for step — so
             single-step jobs ride the same scheduler.
``nes``      :class:`~repro.attacks.nes.NESDiva` semi-blackbox query
             stream (full-batch RNG state: never coalesced, served
             solo in arrival order).
``predict``  plain :meth:`EdgeModel.predict
             <repro.edge.engine.EdgeModel.predict>` on the workload's
             int8 edge artifact.
``predict_float``
             float logits from the workload's *adapted* model (the
             attack target itself), scored under
             :func:`repro.nn.rowrep.row_reproducible` so per-row bits
             are batch-composition independent; coalesces with other
             float predicts and rides along with attack groups against
             the same model (mixed traffic on shared passes).
===========  ==========================================================

Doctest — specs are plain data and round-trip through JSON::

    >>> spec = mixed_workload_spec(scale=1)
    >>> import json
    >>> spec == json.loads(json.dumps(spec))
    True
    >>> sorted({j["kind"] for j in spec["jobs"]})
    ['cw', 'diva', 'fgsm', 'nes', 'pgd', 'predict', 'predict_float']
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from .resilience import ServeError
from .session import ServeSession

#: spec format version, bumped on incompatible schema changes; job
#: records may carry optional ``tenant`` / ``deadline_s`` /
#: ``arrival_offset_s`` fields (older specs without them replay
#: unchanged — offsets default to 0 — so the version stays 1)
SPEC_VERSION = 1


def mixed_workload_spec(scale: int = 2, seed: int = 0) -> Dict[str, Any]:
    """The default recorded workload: interleaved attack + inference.

    ``scale`` multiplies the request count (not the per-job size), so
    occupancy stays "mixed": many small attack probes (4-8 rows each,
    the shape of real per-user requests) plus moderate inference
    batches.  Arrival order interleaves kinds and parameters so
    coalescing has to work across gaps, not just on adjacent twins.
    """
    jobs: List[Dict[str, Any]] = []
    eps_grid = [8 / 255, 16 / 255, 12 / 255]
    c_grid = [1.0, 0.5, 2.0]
    for i in range(scale):
        e = eps_grid[i % len(eps_grid)]
        jobs += [
            {"kind": "diva", "rows": 6, "c": c_grid[i % 3], "eps": e},
            {"kind": "predict", "rows": 24},
            {"kind": "pgd", "rows": 6, "eps": e},
            {"kind": "predict_float", "rows": 12},
            {"kind": "diva", "rows": 4, "c": c_grid[(i + 1) % 3]},
            {"kind": "fgsm", "rows": 8, "eps": e},
            {"kind": "predict", "rows": 16},
            {"kind": "cw", "rows": 4, "kappa": 0.0},
            {"kind": "predict_float", "rows": 20},
            {"kind": "diva", "rows": 6, "eps": eps_grid[(i + 2) % 3]},
            {"kind": "nes", "rows": 2, "steps": 3, "n_samples": 2},
            {"kind": "pgd", "rows": 4, "alpha": 2 / 255},
            {"kind": "predict", "rows": 24},
            {"kind": "predict_float", "rows": 8},
            {"kind": "cw", "rows": 4, "kappa": 0.0},
        ]
    return {
        "version": SPEC_VERSION,
        "name": f"mixed-x{scale}",
        "seed": seed,
        "steps": 10,
        "attack_model": {"arch": "resnet", "num_classes": 10, "width": 8,
                         "image_size": 16},
        "edge_model": {"arch": "lenet", "num_classes": 10, "width": 8,
                       "image_size": 16, "in_channels": 1},
        "jobs": jobs,
    }


def assign_arrivals(spec: Dict[str, Any], rate_hz: float = 50.0,
                    tenants: int = 4, seed: Optional[int] = None
                    ) -> Dict[str, Any]:
    """Give every job a tenant and an ``arrival_offset_s`` (in place).

    Jobs are dealt round-robin across ``tenants`` independent arrival
    processes; each tenant's inter-arrival gaps are exponential with
    mean ``1 / rate_hz`` (a Poisson process per tenant, the standard
    open-loop load model), drawn from a seeded RNG so a spec's arrival
    pattern is part of its identity.  The job *list order* is left
    untouched — arrival order is the offsets' job, and the load
    generator sorts by them at replay time.  Old specs without offsets
    load with offset 0 (all-at-once, the historic behaviour).

    >>> spec = assign_arrivals(mixed_workload_spec(scale=1), tenants=2)
    >>> all("arrival_offset_s" in j and "tenant" in j
    ...     for j in spec["jobs"])
    True
    """
    if rate_hz <= 0 or tenants < 1:
        raise ValueError("rate_hz must be > 0 and tenants >= 1")
    rng = np.random.default_rng(
        spec["seed"] + 1000003 if seed is None else seed)
    clocks = [0.0] * tenants
    for i, job in enumerate(spec["jobs"]):
        t = i % tenants
        clocks[t] += float(rng.exponential(1.0 / rate_hz))
        job["tenant"] = f"tenant-{t}"
        job["arrival_offset_s"] = round(clocks[t], 6)
    return spec


def save_workload(spec: Dict[str, Any], path: str) -> str:
    with open(path, "w") as fh:
        json.dump(spec, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_workload(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        spec = json.load(fh)
    if spec.get("version") != SPEC_VERSION:
        raise ValueError(f"unsupported workload spec version "
                         f"{spec.get('version')!r} (expected {SPEC_VERSION})")
    return spec


@dataclass
class MaterializedJob:
    """One replayable request: inputs plus a factory for its attack."""

    kind: str
    x: np.ndarray
    y: Optional[np.ndarray]
    make_attack: Optional[Any]      # zero-arg factory, None for predict
    model: Any = None               # EdgeModel for predict jobs
    tenant: Any = None              # admission-quota identity
    deadline_s: Optional[float] = None   # relative per-job deadline
    arrival_offset_s: float = 0.0   # load-gen arrival time (0 = at once)
    record: Optional[Dict[str, Any]] = None  # resolved spec record (wire form)


@dataclass
class Workload:
    """Materialized spec: fixed server-side models + the request list."""

    spec: Dict[str, Any]
    original: Any
    adapted: Any
    edge: Any
    jobs: List[MaterializedJob]

    @property
    def rows(self) -> int:
        return sum(len(j.x) for j in self.jobs)


def build_models(spec: Dict[str, Any]):
    """``(original, adapted, edge)`` deterministically from a spec.

    The server-side state mirrors the bench fixtures: an untrained
    (seeded) original model, its calibrated+frozen 8-bit QAT adaptation
    as the attack target pair, and a separately quantized feed-forward
    model compiled to the int8 edge artifact for inference jobs.  The
    networked server calls this with the *same spec* the client
    materialized its workload from, which is what makes wire replays
    comparable bit for bit with in-process ones.
    """
    from ..edge import compile_edge
    from ..models import build_model
    from ..quantization import calibrate, prepare_qat

    rng = np.random.default_rng(spec["seed"])
    am = spec["attack_model"]
    em = spec["edge_model"]

    original = build_model(am["arch"], num_classes=am["num_classes"],
                           width=am["width"], seed=spec["seed"])
    original.eval()
    calib = rng.random((16, 3, am["image_size"], am["image_size"]),
                       ).astype(np.float32)
    adapted = prepare_qat(original, weight_bits=8)
    calibrate(adapted, calib)
    adapted.freeze()
    adapted.eval()

    edge_f = build_model(em["arch"], num_classes=em["num_classes"],
                         width=em["width"], image_size=em["image_size"],
                         in_channels=em.get("in_channels", 1),
                         seed=spec["seed"] + 1)
    edge_f.eval()
    edge_calib = rng.random(
        (16, em.get("in_channels", 1), em["image_size"], em["image_size"]),
    ).astype(np.float32)
    edge_q = prepare_qat(edge_f, weight_bits=8, act_bits=8, per_channel=True)
    calibrate(edge_q, edge_calib)
    edge_q.freeze()
    edge = compile_edge(edge_q, em["num_classes"])
    return original, adapted, edge


def attack_factory(original: Any, adapted: Any, rec: Dict[str, Any],
                   default_steps: int = 10):
    """Zero-arg attack factory for one *resolved* job record.

    A resolved record carries every parameter explicitly (the NES seed
    in particular — :func:`build_workload` injects the job index for
    old specs that omit it), so the same record produces the same
    attack whether it is materialized client-side, server-side from a
    wire frame, or during journal recovery.
    """
    from ..attacks import CWLinf, DIVA, NESDiva, PGD

    kind = rec["kind"]
    eps = float(rec.get("eps", 8 / 255))
    alpha = float(rec.get("alpha", 1 / 255))
    n_steps = int(rec.get("steps", default_steps))
    if kind == "diva":
        c = float(rec.get("c", 1.0))
        return (lambda c=c, eps=eps, alpha=alpha, n=n_steps:
                DIVA(original, adapted, c=c, eps=eps, alpha=alpha,
                     steps=n))
    if kind == "pgd":
        return (lambda eps=eps, alpha=alpha, n=n_steps:
                PGD(adapted, eps=eps, alpha=alpha, steps=n))
    if kind == "cw":
        kappa = float(rec.get("kappa", 0.0))
        return (lambda eps=eps, alpha=alpha, n=n_steps, k=kappa:
                CWLinf(adapted, eps=eps, alpha=alpha, steps=n, kappa=k))
    if kind == "fgsm":
        # FGSM == PGD(steps=1, alpha=eps, keep_best=False): one
        # eps-sized sign step from the natural sample
        return (lambda eps=eps:
                PGD(adapted, eps=eps, alpha=eps, steps=1,
                    keep_best=False))
    if kind == "nes":
        ns = int(rec.get("n_samples", 4))
        s = int(rec.get("seed", 0))
        return (lambda eps=eps, alpha=alpha, n=n_steps, ns=ns, s=s:
                NESDiva(original, adapted, n_samples=ns, eps=eps,
                        alpha=alpha, steps=n, seed=s))
    raise ValueError(f"unknown workload job kind {kind!r}")


def build_workload(spec: Dict[str, Any]) -> Workload:
    """Deterministically materialize models, data and jobs from a spec.

    Models come from :func:`build_models`; attack-job labels are the
    original model's own predictions, so every probe starts
    un-succeeded (no random-label degeneracy).  Each materialized job
    keeps its *resolved* spec record (index-dependent defaults like the
    NES seed made explicit) — the wire form a networked client sends.
    """
    from ..training import predict_labels

    original, adapted, edge = build_models(spec)
    rng = np.random.default_rng(spec["seed"])
    am = spec["attack_model"]
    em = spec["edge_model"]
    steps = int(spec.get("steps", 10))
    # burn the model-calibration draws so job data stays where the
    # original single-RNG materialization put it (spec identity)
    rng.random((16, 3, am["image_size"], am["image_size"]))
    rng.random((16, em.get("in_channels", 1), em["image_size"],
                em["image_size"]))

    jobs: List[MaterializedJob] = []
    for i, rec in enumerate(spec["jobs"]):
        kind = rec["kind"]
        rows = int(rec["rows"])
        tenant = rec.get("tenant")
        deadline_s = rec.get("deadline_s")
        deadline_s = None if deadline_s is None else float(deadline_s)
        offset = float(rec.get("arrival_offset_s", 0.0))
        if kind == "predict":
            x = rng.random((rows, em.get("in_channels", 1),
                            em["image_size"], em["image_size"]),
                           ).astype(np.float32)
            jobs.append(MaterializedJob(kind, x, None, None, model=edge,
                                        tenant=tenant, deadline_s=deadline_s,
                                        arrival_offset_s=offset,
                                        record=dict(rec)))
            continue
        if kind == "predict_float":
            # float inference against the attack target itself: the
            # shape of monitoring/scoring traffic interleaved with
            # attack probes, and the mixed-coalescing rider case
            x = rng.random((rows, 3, am["image_size"], am["image_size"]),
                           ).astype(np.float32)
            jobs.append(MaterializedJob(kind, x, None, None, model=adapted,
                                        tenant=tenant, deadline_s=deadline_s,
                                        arrival_offset_s=offset,
                                        record=dict(rec)))
            continue
        x = rng.random((rows, 3, am["image_size"], am["image_size"]),
                       ).astype(np.float32)
        y = predict_labels(original, x)
        resolved = dict(rec)
        resolved.setdefault("steps", steps)
        if kind == "nes":
            resolved.setdefault("seed", i)
        make = attack_factory(original, adapted, resolved,
                              default_steps=steps)
        jobs.append(MaterializedJob(kind, x, y, make, tenant=tenant,
                                    deadline_s=deadline_s,
                                    arrival_offset_s=offset,
                                    record=resolved))
    return Workload(spec, original, adapted, edge, jobs)


def replay_sequential(workload: Workload) -> Dict[str, Any]:
    """Each job alone, in arrival order — the pre-serve baseline.

    Every attack job gets a fresh instance from its factory (distinct
    requests hold distinct configurations; nothing is shared but the
    models themselves), and inference jobs call ``predict`` (edge) or a
    row-reproducible ``predict_logits`` (float) on their own rows only —
    exactly what a naive per-request handler would do.
    """
    from ..nn import rowrep
    from ..training.evaluate import predict_logits

    results = []
    t0 = time.perf_counter()
    for job in workload.jobs:
        if job.kind == "predict":
            results.append(job.model.predict(job.x))
        elif job.kind == "predict_float":
            # the solo float reference runs under the same
            # row-reproducible mode the scheduler uses: the mode is the
            # *definition* of a float job's bits, so solo and coalesced
            # replays are comparable bit for bit
            with rowrep.row_reproducible():
                results.append(predict_logits(job.model, job.x))
        else:
            results.append(job.make_attack().generate(job.x, job.y))
    elapsed = time.perf_counter() - t0
    return {"results": results, "seconds": elapsed,
            "rows": workload.rows, "jobs": len(workload.jobs)}


def replay_serve(workload: Workload, capacity: int = 64,
                 session: Optional[ServeSession] = None,
                 float_coalesce: bool = True,
                 workers: Optional[int] = None) -> Dict[str, Any]:
    """All jobs through one session: submit in arrival order, drain.

    Per-job terminal states are recorded alongside the results:
    ``outcomes[i]`` is the job's outcome (``ok`` / ``failed`` /
    ``rejected`` / ``deadline-degraded``), ``results[i]`` is its value
    (the best-so-far batch for deadline-degraded attack jobs, None for
    failed/rejected ones) and ``errors[i]`` the :class:`ServeError` a
    refused or failed job raised.  Graceful degradation is thereby
    distinguishable from silent corruption post-hoc — a replay record
    says *how* every job ended, not just what it returned.

    ``workers`` builds the session on the worker-pool backend
    (:mod:`repro.serve.pool`); per-job results are bit-identical to
    every other worker count and to the single-threaded scheduler.
    """
    session = session if session is not None else ServeSession(
        capacity=capacity, float_coalesce=float_coalesce, workers=workers)
    futures = []
    t0 = time.perf_counter()
    for job in workload.jobs:
        if job.kind in ("predict", "predict_float"):
            futures.append(session.submit_predict(
                job.model, job.x, tenant=job.tenant))
        else:
            futures.append(session.submit_attack(
                job.make_attack(), job.x, job.y, tenant=job.tenant,
                deadline_s=job.deadline_s))
    results: List[Optional[np.ndarray]] = []
    errors: List[Optional[BaseException]] = []
    for f in futures:
        try:
            results.append(f.result())
            errors.append(None)
        except ServeError as exc:
            results.append(None)
            errors.append(exc)
    elapsed = time.perf_counter() - t0
    outcomes = [f.outcome for f in futures]
    counts: Dict[str, int] = {}
    for o in outcomes:
        counts[o] = counts.get(o, 0) + 1
    out = dict(session.stats)
    # per-replay records win over the session-lifetime stats keys
    out.update({"results": results, "errors": errors, "outcomes": outcomes,
                "outcome_counts": counts, "seconds": elapsed,
                "rows": workload.rows, "jobs": len(workload.jobs)})
    return out


def verify_parity(workload: Workload, capacity: int = 64,
                  allow_failures: bool = False,
                  serve: Optional[Dict[str, Any]] = None,
                  float_coalesce: bool = True,
                  workers: Optional[int] = None) -> Dict[str, Any]:
    """Replay both ways, assert bit-identical per-job results.

    The serving layer's whole contract in one call: coalescing and
    shared caches may change wall-time only.  Returns both replays'
    timings plus the aggregate throughput ratio
    (``rows / seconds`` serve over sequential).

    With ``allow_failures`` (chaos runs), jobs that ended ``failed`` /
    ``rejected`` / ``deadline-degraded`` are excluded from the bit
    comparison — their degradation is *explicit* in the outcome record —
    while every ``ok`` job must still match its solo run exactly:
    graceful degradation is allowed, silent corruption never is.
    ``serve`` optionally supplies an already-completed served replay
    (e.g. one run under fault injection) instead of running a fresh one.
    """
    seq = replay_sequential(workload)
    srv = serve if serve is not None else replay_serve(
        workload, capacity=capacity, float_coalesce=float_coalesce,
        workers=workers)
    not_ok = [(i, o) for i, o in enumerate(srv["outcomes"]) if o != "ok"]
    if not_ok and not allow_failures:
        raise AssertionError(
            f"{len(not_ok)} job(s) did not complete ok "
            f"(breakdown {srv['outcome_counts']}); pass "
            "allow_failures=True for chaos replays")
    for i, (a, b) in enumerate(zip(seq["results"], srv["results"])):
        if srv["outcomes"][i] != "ok":
            continue
        if not (a.shape == b.shape and a.dtype == b.dtype
                and np.array_equal(a, b)):
            raise AssertionError(
                f"job {i} ({workload.jobs[i].kind}) diverged between "
                "sequential and served replay")
    return {
        "jobs": len(workload.jobs),
        "rows": workload.rows,
        "sequential_s": seq["seconds"],
        "serve_s": srv["seconds"],
        "throughput_ratio": seq["seconds"] / srv["seconds"],
        "dispatches": srv["dispatches"],
        "coalesced_dispatches": srv["coalesced_dispatches"],
        "outcome_counts": srv["outcome_counts"],
        "plan_cache": srv["plan_cache"],
    }


def chaos_replay(workload: Workload, capacity: int = 64,
                 fault_specs=None, seed: int = 0,
                 deadline_s: Optional[float] = None,
                 max_pending_jobs: Optional[int] = None,
                 admission_policy: str = "reject",
                 float_coalesce: bool = True,
                 workers: Optional[int] = None) -> Dict[str, Any]:
    """Serve the workload under seeded fault injection and check every
    resilience invariant the chaos suite (and ``repro-exp serve
    --faults``) relies on:

    - **no hangs, no silent drops** — every submitted job's future
      resolves with a terminal outcome;
    - **no silent corruption** — every ``ok`` job is bit-identical to
      its solo fault-free run;
    - **structured failures** — every refused/failed job raises a
      :class:`~repro.serve.resilience.ServeError` subclass;
    - **flagged degradation** — deadline-degraded jobs return a real
      best-so-far batch plus per-row ``steps_done`` info.

    Time is a :class:`~repro.serve.resilience.ManualClock` advanced only
    by the injector's latency faults, so a given (workload, specs, seed)
    triple replays bit-for-bit.  Short quarantine/failure cool-downs are
    used so transient faults visibly heal within one replay.
    """
    from . import faults as faults_mod
    from .resilience import ManualClock

    clock = ManualClock()
    specs = (fault_specs if fault_specs is not None
             else faults_mod.default_chaos_specs())
    injector = faults_mod.FaultInjector(specs, seed=seed, clock=clock)
    # the fault-free solo reference, computed before any injection
    reference = replay_sequential(workload)["results"]
    session = ServeSession(
        capacity=capacity, clock=clock,
        default_deadline_s=deadline_s,
        quarantine_cooldown_s=0.5, failure_cooldown_s=0.5,
        max_pending_jobs=max_pending_jobs,
        admission_policy=admission_policy,
        float_coalesce=float_coalesce, workers=workers)
    with faults_mod.inject(injector):
        srv = replay_serve(workload, session=session)
    for i, outcome in enumerate(srv["outcomes"]):
        kind = workload.jobs[i].kind
        if outcome is None:
            raise AssertionError(f"job {i} ({kind}) never resolved")
        if outcome == "ok":
            a, b = reference[i], srv["results"][i]
            if not (a.shape == b.shape and a.dtype == b.dtype
                    and np.array_equal(a, b)):
                raise AssertionError(
                    f"job {i} ({kind}) completed ok under faults but "
                    "diverged from its solo fault-free run")
        elif outcome == "deadline-degraded":
            b = srv["results"][i]
            if b is None or b.shape != reference[i].shape:
                raise AssertionError(
                    f"job {i} ({kind}) is deadline-degraded without a "
                    "best-so-far batch")
        elif srv["errors"][i] is None or not isinstance(
                srv["errors"][i], ServeError):
            raise AssertionError(
                f"job {i} ({kind}) ended {outcome!r} without a "
                "structured ServeError")
    return {
        "jobs": len(workload.jobs),
        "rows": workload.rows,
        "outcome_counts": srv["outcome_counts"],
        "faults_fired": injector.stats,
        "retry_dispatches": srv["retry_dispatches"],
        "degraded_dispatches": srv["degraded_dispatches"],
        "quarantine": srv["quarantine"],
        "admission": srv["admission"],
        "plan_cache": srv["plan_cache"],
        "clock_s": clock.now(),
    }
