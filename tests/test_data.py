"""Datasets: generation determinism, split semantics, transforms,
attack-set selection protocol."""

import numpy as np
import pytest

from repro.data import (ArrayDataset, SynthFacesConfig, SynthImageNetConfig,
                        additive_noise, augment_batch, channel_stats,
                        correctly_classified_mask, denormalize,
                        generate_synth_digits, generate_synth_faces,
                        generate_synth_imagenet, iterate_batches, normalize,
                        random_horizontal_flip, random_shift,
                        select_attack_set, standard_splits, stratified_sample)


class TestArrayDataset:
    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 4, 4)), np.zeros(2), 2)
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 4)), np.zeros(3), 2)

    def test_subset_and_split(self, rng):
        ds = ArrayDataset(rng.normal(size=(10, 1, 4, 4)),
                          np.arange(10) % 2, 2)
        a, b = ds.split(0.7, rng)
        assert len(a) == 7 and len(b) == 3
        sub = ds.subset(np.array([0, 5]))
        assert len(sub) == 2

    def test_class_counts(self):
        ds = ArrayDataset(np.zeros((6, 1, 2, 2)),
                          np.array([0, 0, 1, 1, 1, 3]), 5)
        assert ds.class_counts().tolist() == [2, 3, 0, 1, 0]


class TestSynthImageNet:
    def test_deterministic(self):
        cfg = SynthImageNetConfig(num_classes=4, image_size=8)
        a = generate_synth_imagenet(5, cfg, split_seed=1)
        b = generate_synth_imagenet(5, cfg, split_seed=1)
        assert np.array_equal(a.x, b.x) and np.array_equal(a.y, b.y)

    def test_split_seeds_disjoint_instances(self):
        cfg = SynthImageNetConfig(num_classes=3, image_size=8)
        a = generate_synth_imagenet(5, cfg, split_seed=1)
        b = generate_synth_imagenet(5, cfg, split_seed=2)
        assert not np.allclose(a.x, b.x)

    def test_shapes_and_range(self):
        cfg = SynthImageNetConfig(num_classes=3, image_size=10)
        ds = generate_synth_imagenet(4, cfg)
        assert ds.x.shape == (12, 3, 10, 10)
        assert ds.x.dtype == np.float32
        assert ds.x.min() >= 0.0 and ds.x.max() <= 1.0
        assert ds.class_counts().tolist() == [4, 4, 4]

    def test_classes_distinguishable(self):
        """Noise-free class means should differ clearly between classes."""
        cfg = SynthImageNetConfig(num_classes=4, image_size=12, noise=0.0,
                                  jitter=0.0)
        ds = generate_synth_imagenet(6, cfg)
        means = np.stack([ds.x[ds.y == c].mean(axis=0).ravel()
                          for c in range(4)])
        dists = np.linalg.norm(means[:, None] - means[None, :], axis=2)
        off_diag = dists[~np.eye(4, dtype=bool)]
        assert off_diag.min() > 0.5

    def test_standard_splits(self):
        cfg = SynthImageNetConfig(num_classes=3, image_size=8)
        train, val, surr = standard_splits(cfg, 6, 3, 3)
        assert len(train) == 18 and len(val) == 9 and len(surr) == 9


class TestSynthDigits:
    def test_deterministic(self):
        a = generate_synth_digits(3, image_size=14, split_seed=1)
        b = generate_synth_digits(3, image_size=14, split_seed=1)
        assert np.array_equal(a.x, b.x)

    def test_shapes(self):
        ds = generate_synth_digits(2, image_size=20)
        assert ds.x.shape == (20, 1, 20, 20)
        assert ds.num_classes == 10
        assert ds.x.min() >= 0 and ds.x.max() <= 1

    def test_digits_have_ink(self):
        ds = generate_synth_digits(2, image_size=20, noise=0.0)
        assert (ds.x.reshape(len(ds.x), -1).max(axis=1) > 0.5).all()


class TestSynthFaces:
    def test_deterministic(self):
        cfg = SynthFacesConfig(num_identities=3, image_size=16)
        a = generate_synth_faces(2, cfg, split_seed=1)
        b = generate_synth_faces(2, cfg, split_seed=1)
        assert np.array_equal(a.x, b.x)

    def test_shapes(self):
        cfg = SynthFacesConfig(num_identities=5, image_size=16)
        ds = generate_synth_faces(3, cfg)
        assert ds.x.shape == (15, 3, 16, 16)
        assert ds.num_classes == 5

    def test_identities_distinct(self):
        cfg = SynthFacesConfig(num_identities=4, image_size=16, noise=0.0,
                               pose_jitter=0.0)
        ds = generate_synth_faces(3, cfg)
        means = np.stack([ds.x[ds.y == i].mean(axis=0).ravel()
                          for i in range(4)])
        d = np.linalg.norm(means[:, None] - means[None, :], axis=2)
        assert d[~np.eye(4, dtype=bool)].min() > 0.3


class TestBatching:
    def test_iterate_covers_everything(self, rng):
        x = np.arange(10).reshape(10, 1, 1, 1).astype(float)
        y = np.arange(10)
        seen = []
        for xb, yb in iterate_batches(x, y, 3):
            assert len(xb) == len(yb)
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_shuffle_deterministic(self, rng):
        x = np.arange(8).reshape(8, 1, 1, 1).astype(float)
        runs = []
        for _ in range(2):
            order = [yb.tolist() for _, yb in iterate_batches(
                x, np.arange(8), 4, shuffle=True,
                rng=np.random.default_rng(5))]
            runs.append(order)
        assert runs[0] == runs[1]

    def test_stratified_sample(self, rng):
        y = np.array([0] * 10 + [1] * 3 + [2] * 10)
        idx = stratified_sample(y, 5, rng)
        counts = np.bincount(y[idx], minlength=3)
        assert counts.tolist() == [5, 3, 5]


class TestTransforms:
    def test_normalize_round_trip(self, rng):
        x = rng.random((4, 3, 5, 5))
        mean, std = channel_stats(x)
        z = normalize(x, mean, std)
        assert np.allclose(denormalize(z, mean, std), x)
        assert np.allclose(z.mean(axis=(0, 2, 3)), 0, atol=1e-10)

    def test_flip_flips(self, rng):
        x = rng.random((4, 1, 3, 3))
        out = random_horizontal_flip(x, np.random.default_rng(0), p=1.0)
        assert np.allclose(out, x[:, :, :, ::-1])

    def test_flip_p_zero_identity(self, rng):
        x = rng.random((4, 1, 3, 3))
        assert np.allclose(random_horizontal_flip(x, rng, p=0.0), x)

    def test_shift_preserves_shape(self, rng):
        x = rng.random((3, 2, 6, 6))
        assert random_shift(x, rng, 2).shape == x.shape

    def test_additive_noise_clips(self, rng):
        x = np.ones((2, 1, 4, 4))
        out = additive_noise(x, rng, sigma=0.5)
        assert out.max() <= 1.0

    def test_augment_batch_pipeline(self, rng):
        x = rng.random((4, 3, 8, 8)).astype(np.float32)
        out = augment_batch(x, rng, flip=True, shift=1, noise=0.01)
        assert out.shape == x.shape and out.dtype == x.dtype


class TestAttackSetSelection:
    def test_only_correct_samples_selected(self, tiny_dataset, tiny_model):
        _, val = tiny_dataset
        sel = select_attack_set(val, [tiny_model], per_class=3)
        mask = correctly_classified_mask([tiny_model], sel.x, sel.y)
        assert mask.all()

    def test_per_class_cap(self, tiny_dataset, tiny_model):
        _, val = tiny_dataset
        sel = select_attack_set(val, [tiny_model], per_class=2)
        assert (np.bincount(sel.y, minlength=val.num_classes) <= 2).all()

    def test_multiple_models_intersection(self, tiny_dataset, tiny_model,
                                          tiny_quantized):
        _, val = tiny_dataset
        sel = select_attack_set(val, [tiny_model, tiny_quantized], per_class=3)
        assert correctly_classified_mask(
            [tiny_model, tiny_quantized], sel.x, sel.y).all()

    def test_impossible_selection_raises(self, tiny_dataset, fixed_logit_model):
        _, val = tiny_dataset
        # a model that's always wrong: constant logits favoring a class
        # different from every label
        logits = np.zeros((len(val), val.num_classes))
        logits[np.arange(len(val)), (val.y + 1) % val.num_classes] = 10.0
        wrong = fixed_logit_model(logits)
        with pytest.raises(RuntimeError):
            select_attack_set(val, [wrong], per_class=2)
