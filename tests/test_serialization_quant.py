"""Serialization of adapted models and edge artifacts."""

import numpy as np
import pytest

from repro.edge import compile_edge, load_edge_model, save_edge_model
from repro.models import build_model
from repro.nn import Tensor
from repro.quantization import load_qat, prepare_qat, qat_finetune, save_qat
from repro.training import predict_logits


class TestQATSerialization:
    def test_round_trip_predictions(self, tiny_quantized, tiny_dataset,
                                    tmp_path):
        _, val = tiny_dataset
        path = str(tmp_path / "adapted.npz")
        save_qat(tiny_quantized, path)
        loaded = load_qat(
            lambda: build_model("resnet", num_classes=6, width=4, seed=0),
            path)
        a = predict_logits(tiny_quantized, val.x[:16])
        b = predict_logits(loaded, val.x[:16])
        assert np.allclose(a, b, atol=1e-5)

    def test_round_trip_preserves_frozen_grids(self, tiny_quantized,
                                               tmp_path):
        path = str(tmp_path / "adapted.npz")
        save_qat(tiny_quantized, path)
        loaded = load_qat(
            lambda: build_model("resnet", num_classes=6, width=4, seed=0),
            path)
        orig_fq = dict(tiny_quantized.fake_quant_modules())
        for name, fq in loaded.fake_quant_modules():
            src = orig_fq[name]
            assert fq.frozen == src.frozen
            if src.frozen:
                assert np.allclose(np.asarray(fq.qparams().scale),
                                   np.asarray(src.qparams().scale))

    def test_round_trip_preserves_bit_widths(self, tiny_quantized, tmp_path):
        path = str(tmp_path / "adapted.npz")
        save_qat(tiny_quantized, path)
        loaded = load_qat(
            lambda: build_model("resnet", num_classes=6, width=4, seed=0),
            path)
        assert loaded.weight_bits == tiny_quantized.weight_bits
        assert loaded.act_bits == tiny_quantized.act_bits

    def test_architecture_mismatch_raises(self, tiny_quantized, tmp_path):
        path = str(tmp_path / "adapted.npz")
        save_qat(tiny_quantized, path)
        with pytest.raises((KeyError, ValueError)):
            load_qat(lambda: build_model("resnet", num_classes=6, width=8,
                                         seed=0), path)

    def test_unfrozen_model_round_trip(self, tiny_model, tiny_dataset,
                                       tmp_path):
        from repro.quantization import calibrate
        train, val = tiny_dataset
        q = prepare_qat(tiny_model)
        calibrate(q, train.x[:32])           # observed but not frozen
        path = str(tmp_path / "calibrated.npz")
        save_qat(q, path)
        loaded = load_qat(
            lambda: build_model("resnet", num_classes=6, width=4, seed=0),
            path)
        a = predict_logits(q, val.x[:8])
        b = predict_logits(loaded, val.x[:8])
        assert np.allclose(a, b, atol=1e-5)


@pytest.fixture(scope="module")
def edge_artifact(tmp_path_factory):
    from repro.data import generate_synth_digits
    from repro.training import fit
    train = generate_synth_digits(40, image_size=16, split_seed=1)
    val = generate_synth_digits(10, image_size=16, split_seed=2)
    model = build_model("lenet", num_classes=10, image_size=16, seed=0)
    fit(model, train.x, train.y, epochs=3, batch_size=32, lr=0.03)
    q = prepare_qat(model, per_channel=True)
    qat_finetune(q, train.x, train.y, epochs=1, batch_size=32, lr=0.002)
    q.freeze()
    edge = compile_edge(q, 10)
    path = str(tmp_path_factory.mktemp("edge") / "model.npz")
    save_edge_model(edge, path)
    return edge, path, val


class TestEdgeSerialization:
    def test_round_trip_bit_exact(self, edge_artifact):
        edge, path, val = edge_artifact
        loaded = load_edge_model(path)
        assert np.array_equal(edge.predict(val.x), loaded.predict(val.x))

    def test_program_metadata(self, edge_artifact):
        edge, path, _ = edge_artifact
        loaded = load_edge_model(path)
        assert loaded.num_classes == edge.num_classes
        assert len(loaded.ops) == len(edge.ops)

    def test_weights_stored_as_int8(self, edge_artifact):
        _, path, _ = edge_artifact
        with np.load(path) as npz:
            weight_keys = [k for k in npz.files if k.startswith("w")]
            assert weight_keys
            for k in weight_keys:
                assert npz[k].dtype == np.int8

    def test_artifact_smaller_than_float_state(self, edge_artifact,
                                               tmp_path):
        edge, path, _ = edge_artifact
        import os
        # compare against a float32 dump of equivalent tensor volume
        n_weights = sum(op.q_weight.size for op in edge.ops
                        if hasattr(op, "q_weight"))
        assert os.path.getsize(path) < n_weights * 4
