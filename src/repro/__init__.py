"""repro — reproduction of "A Tale of Two Models: Constructing Evasive
Attacks on Edge Models" (Hao et al., MLSys 2022).

The package implements the paper's DIVA attack and everything it stands
on, from scratch on numpy: a reverse-mode autodiff framework
(:mod:`repro.nn`), model adaptation by quantization (:mod:`repro.quantization`)
and pruning (:mod:`repro.pruning`), knowledge distillation
(:mod:`repro.distillation`), the attack family (:mod:`repro.attacks`),
robust training (:mod:`repro.defense`), an integer edge inference engine
(:mod:`repro.edge`), the paper's metrics (:mod:`repro.metrics`), the
experiment harness regenerating every table and figure
(:mod:`repro.experiments`), and the multi-tenant serving layer
multiplexing concurrent attack/inference jobs over shared compiled
programs (:mod:`repro.serve`).

Quickstart
----------
>>> from repro import nn, models, quantization, attacks
>>> model = models.build_model("resnet", num_classes=10)
>>> adapted = quantization.prepare_qat(model)        # ... train, QAT ...
>>> diva = attacks.DIVA(model, adapted)
"""

__version__ = "1.0.0"

from . import (analysis, attacks, data, defense, distillation, edge, metrics,
               models, nn, pruning, quantization, serve, training, utils)

__all__ = [
    "nn", "models", "data", "quantization", "pruning", "distillation",
    "attacks", "defense", "edge", "metrics", "analysis", "serve",
    "training", "utils", "__version__",
]
