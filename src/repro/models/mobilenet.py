"""MobileNet (Howard et al.) scaled for small-image experiments.

Depthwise-separable convolutions — the architecture family the paper's
MobileNet results cover.  Notably the paper finds this small,
under-parameterized network transfers attacks worst (§5.2), a behaviour
our scaled version also exhibits.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..nn.layers import (BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, ReLU)
from ..nn.module import Module, ModuleList
from ..nn.tensor import Tensor


class DepthwiseSeparable(Module):
    """3x3 depthwise conv + 1x1 pointwise conv, BN+ReLU after each."""

    def __init__(self, in_ch: int, out_ch: int, stride: int,
                 rng: np.random.Generator):
        super().__init__()
        self.dw = Conv2d(in_ch, in_ch, 3, stride=stride, padding=1,
                         groups=in_ch, rng=rng, bias=False)
        self.dw_bn = BatchNorm2d(in_ch)
        self.dw_relu = ReLU()
        self.pw = Conv2d(in_ch, out_ch, 1, rng=rng, bias=False)
        self.pw_bn = BatchNorm2d(out_ch)
        self.pw_relu = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        x = self.dw_relu(self.dw_bn(self.dw(x)))
        return self.pw_relu(self.pw_bn(self.pw(x)))


class MobileNet(Module):
    """Small-image MobileNet-v1-style network.

    ``config`` is a list of (out_channels_multiplier, stride) applied to
    ``width``; the default gives three resolution stages like the ResNet
    counterpart so the two are comparable.
    """

    def __init__(self, num_classes: int = 10, width: int = 8,
                 config: Optional[List[Tuple[int, int]]] = None,
                 in_channels: int = 3, seed: int = 0):
        super().__init__()
        config = config if config is not None else [(1, 1), (2, 2), (2, 1), (4, 2)]
        rng = np.random.default_rng(seed)
        self.num_classes = num_classes
        self.width = width
        self.stem = Conv2d(in_channels, width, 3, stride=1, padding=1,
                           rng=rng, bias=False)
        self.stem_bn = BatchNorm2d(width)
        self.stem_relu = ReLU()
        blocks = []
        in_ch = width
        for mult, stride in config:
            out_ch = width * mult
            blocks.append(DepthwiseSeparable(in_ch, out_ch, stride, rng))
            in_ch = out_ch
        self.blocks = ModuleList(blocks)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(in_ch, num_classes, rng=rng)
        self.feature_dim = in_ch

    def features(self, x: Tensor) -> Tensor:
        out = self.stem_relu(self.stem_bn(self.stem(x)))
        for block in self.blocks:
            out = block(out)
        return self.pool(out)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(self.features(x))
