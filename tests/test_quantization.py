"""Quantization: affine math, observers, fake-quant STE, QAT/PTQ,
extraction."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.quantization import (FakeQuantize, HistogramObserver,
                                MinMaxObserver, MovingAverageMinMaxObserver,
                                PerChannelMinMaxObserver, QATModel,
                                QuantParams, choose_qparams, dequantize,
                                export_quantized_layers, fake_quant_ste,
                                fake_quantize_array, int_range,
                                model_size_bytes, post_training_quantize,
                                prepare_qat, qat_finetune, quantization_error,
                                quantize, quantize_multiplier,
                                reconstruct_float_model, requantize)

from .conftest import numerical_gradient


class TestAffine:
    def test_int_range(self):
        assert int_range(8, True) == (-128, 127)
        assert int_range(8, False) == (0, 255)
        assert int_range(4, True) == (-8, 7)
        with pytest.raises(ValueError):
            int_range(1, True)

    def test_asymmetric_qparams_cover_range(self):
        qp = choose_qparams(np.float64(-1.0), np.float64(3.0), -128, 127)
        lo = (qp.qmin - qp.zero_point) * qp.scale
        hi = (qp.qmax - qp.zero_point) * qp.scale
        # zero-point rounding can shave up to scale/2 off either end
        half = float(qp.scale) / 2
        assert lo <= -1.0 + half and hi >= 3.0 - half

    def test_symmetric_zero_point_is_zero(self):
        qp = choose_qparams(np.float64(-2.0), np.float64(1.0), -128, 127,
                            symmetric=True)
        assert qp.zero_point == 0

    def test_zero_always_representable(self, rng):
        qp = choose_qparams(np.float64(0.5), np.float64(3.0), -128, 127)
        assert quantization_error(np.zeros(3), qp) < 1e-9

    def test_round_trip_error_bounded(self, rng):
        x = rng.uniform(-1, 2, size=1000)
        qp = choose_qparams(x.min(), x.max(), -128, 127)
        err = np.abs(x - fake_quantize_array(x, qp))
        # grid spacing scale; zero-point rounding adds up to scale/2 at
        # the range boundary -> total bound is one full scale
        assert err.max() <= float(qp.scale) + 1e-12

    def test_quantize_clips_out_of_range(self):
        qp = choose_qparams(np.float64(-1.0), np.float64(1.0), -128, 127)
        q = quantize(np.array([100.0, -100.0]), qp)
        assert q.tolist() == [127, -128]

    def test_per_channel_shapes(self, rng):
        w = rng.normal(size=(4, 3, 3, 3))
        mins = w.reshape(4, -1).min(axis=1)
        maxs = w.reshape(4, -1).max(axis=1)
        qp = choose_qparams(mins, maxs, -8, 7, symmetric=True, axis=0)
        assert qp.scale.shape == (4,)
        deq = dequantize(quantize(w, qp), qp)
        assert deq.shape == w.shape
        per_ch_err = np.abs(w - deq).reshape(4, -1).max(axis=1)
        assert (per_ch_err <= qp.scale / 2 + 1e-12).all()

    def test_multiplier_decomposition(self):
        for m in (0.0003, 0.12, 0.5, 0.99, 1.7, 300.0):
            m0, shift = quantize_multiplier(m)
            assert (1 << 30) <= m0 < (1 << 31)
            approx = m0 / (1 << 31) * 2.0 ** (-shift)
            assert np.isclose(approx, m, rtol=1e-8)
        with pytest.raises(ValueError):
            quantize_multiplier(0.0)

    def test_requantize_matches_float(self, rng):
        acc = rng.integers(-10000, 10000, size=500)
        real = 0.0371
        m0, shift = quantize_multiplier(real)
        got = requantize(acc, m0, shift)
        want = np.round(acc * real)
        assert np.abs(got - want).max() <= 1


class TestObservers:
    def test_minmax_tracks_extremes(self, rng):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0, 2.0]))
        obs.observe(np.array([-5.0, 0.5]))
        assert obs.min_val == -5.0 and obs.max_val == 2.0

    def test_moving_average_smooths(self):
        obs = MovingAverageMinMaxObserver(momentum=0.5)
        obs.observe(np.array([0.0, 10.0]))
        obs.observe(np.array([0.0, 20.0]))
        assert obs.max_val == 15.0   # 0.5*10 + 0.5*20

    def test_per_channel_reduction(self, rng):
        obs = PerChannelMinMaxObserver(axis=0)
        w = rng.normal(size=(4, 10))
        obs.observe(w)
        assert obs.min_val.shape == (4,)
        assert np.allclose(obs.max_val, w.max(axis=1))

    def test_uninitialized_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().compute_qparams()

    def test_reset(self):
        obs = MinMaxObserver()
        obs.observe(np.ones(3))
        obs.reset()
        assert not obs.initialized

    def test_histogram_clips_outliers(self, rng):
        obs = HistogramObserver(coverage=0.98)
        data = rng.normal(size=5000)
        data[0] = 1000.0          # a single wild outlier
        obs.observe(data)
        assert obs.max_val < 100.0

    def test_histogram_widens_range(self, rng):
        obs = HistogramObserver()
        obs.observe(rng.uniform(0, 1, 500))
        obs.observe(rng.uniform(5, 6, 500))
        assert obs.max_val > 4.0


class TestFakeQuant:
    def test_forward_snaps_to_grid(self, rng):
        x = rng.normal(size=100)
        qp = choose_qparams(x.min(), x.max(), -8, 7)
        out = fake_quant_ste(Tensor(x), qp)
        assert len(np.unique(out.data)) <= 16

    def test_ste_gradient_mask(self):
        qp = QuantParams(scale=np.float64(0.1), zero_point=np.float64(0),
                         qmin=-8, qmax=7)
        x = Tensor(np.array([0.0, 0.5, 100.0, -100.0]), requires_grad=True)
        fake_quant_ste(x, qp).sum().backward()
        # inside range -> gradient 1; clipped -> 0
        assert x.grad.tolist() == [1.0, 1.0, 0.0, 0.0]

    def test_module_observes_in_train_only(self, rng):
        fq = FakeQuantize.for_activations()
        fq.train()
        fq(Tensor(rng.normal(size=10)))
        lo1 = fq.observer.min_val
        fq.eval()
        fq(Tensor(rng.normal(size=10) * 100))
        assert fq.observer.min_val == lo1

    def test_freeze_pins_grid(self, rng):
        fq = FakeQuantize.for_activations()
        fq.train()
        fq(Tensor(rng.normal(size=100)))
        fq.freeze()
        qp1 = fq.qparams()
        fq.train()
        fq(Tensor(rng.normal(size=100) * 50))
        assert fq.qparams().scale == qp1.scale

    def test_unfreeze_reenables(self, rng):
        fq = FakeQuantize.for_activations()
        fq.train()
        fq(Tensor(rng.normal(size=10)))
        fq.freeze()
        fq.unfreeze()
        assert not fq.frozen

    def test_eval_before_observation_is_identity(self, rng):
        fq = FakeQuantize.for_activations()
        fq.eval()
        x = Tensor(rng.normal(size=5))
        assert np.allclose(fq(x).data, x.data)

    def test_disabled_fake_quant_passthrough(self, rng):
        fq = FakeQuantize.for_activations()
        fq.fake_quant_enabled = False
        fq.train()
        x = Tensor(rng.normal(size=5))
        assert np.allclose(fq(x).data, x.data)


class TestQAT:
    def test_prepare_instruments_layers(self, tiny_model):
        q = prepare_qat(tiny_model)
        from repro.nn.layers import Conv2d, Linear
        for _, mod in q.model.named_modules():
            if isinstance(mod, (Conv2d, Linear)):
                assert mod.weight_fake_quant is not None
                assert mod.activation_post_process is not None

    def test_prepare_does_not_touch_source(self, tiny_model):
        before = {n: p.data.copy() for n, p in tiny_model.named_parameters()}
        q = prepare_qat(tiny_model)
        for n, p in tiny_model.named_parameters():
            assert np.array_equal(before[n], p.data)
        assert tiny_model.stem.weight_fake_quant is None

    def test_qat_accuracy_close_to_float(self, tiny_model, tiny_quantized,
                                         tiny_dataset):
        from repro.training import evaluate_accuracy
        _, val = tiny_dataset
        acc_f = evaluate_accuracy(tiny_model, val.x, val.y)
        acc_q = evaluate_accuracy(tiny_quantized, val.x, val.y)
        assert acc_q >= acc_f - 0.15     # int4: modest degradation allowed

    def test_freeze_marks_all(self, tiny_quantized):
        for _, fq in tiny_quantized.fake_quant_modules():
            if fq.observer.initialized:
                assert fq.frozen

    def test_frozen_model_deterministic(self, tiny_quantized, tiny_dataset):
        _, val = tiny_dataset
        a = tiny_quantized(Tensor(val.x[:4])).data
        b = tiny_quantized(Tensor(val.x[:4])).data
        assert np.array_equal(a, b)

    def test_qat_model_differentiable(self, tiny_quantized, tiny_dataset):
        """The property §6 relies on: gradients flow through the adapted
        model's STE to the input."""
        _, val = tiny_dataset
        x = Tensor(val.x[:2], requires_grad=True)
        tiny_quantized(x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).max() > 0

    def test_features_passthrough(self, tiny_quantized, tiny_dataset):
        _, val = tiny_dataset
        f = tiny_quantized.features(Tensor(val.x[:2]))
        assert f.shape[0] == 2


class TestPTQ:
    def test_ptq_produces_frozen_model(self, tiny_model, tiny_dataset):
        train, val = tiny_dataset
        q = post_training_quantize(tiny_model, train.x[:64])
        assert isinstance(q, QATModel)
        for _, fq in q.fake_quant_modules():
            if fq.observer.initialized:
                assert fq.frozen

    def test_ptq_accuracy_reasonable(self, tiny_model, tiny_dataset):
        from repro.training import evaluate_accuracy
        train, val = tiny_dataset
        q = post_training_quantize(tiny_model, train.x[:64])
        acc_f = evaluate_accuracy(tiny_model, val.x, val.y)
        acc_q = evaluate_accuracy(q, val.x, val.y)
        assert acc_q >= acc_f - 0.2


class TestExtraction:
    def test_export_layer_inventory(self, tiny_quantized):
        layers = export_quantized_layers(tiny_quantized)
        from repro.nn.layers import Conv2d, Linear
        n_expected = sum(1 for _, m in tiny_quantized.model.named_modules()
                         if isinstance(m, (Conv2d, Linear)))
        assert len(layers) == n_expected
        for rec in layers:
            assert rec.q_weight.dtype == np.int32
            assert rec.q_weight.min() >= rec.weight_qparams.qmin
            assert rec.q_weight.max() <= rec.weight_qparams.qmax

    def test_reconstruction_matches_effective_weights(self, tiny_model,
                                                      tiny_quantized):
        """§4.3: dequantized extraction lands exactly on the adapted
        model's effective (fake-quantized) weights."""
        layers = export_quantized_layers(tiny_quantized)
        rebuilt = reconstruct_float_model(tiny_model, layers)
        for name, mod in tiny_quantized.model.named_modules():
            from repro.nn.layers import Conv2d, Linear
            if isinstance(mod, (Conv2d, Linear)):
                eff = mod.effective_weight().data
                got = dict(rebuilt.named_modules())[name].weight.data
                assert np.allclose(got, eff, atol=1e-6)

    def test_reconstruction_shape_mismatch_raises(self, tiny_quantized):
        from repro.models import build_model
        wrong = build_model("resnet", num_classes=6, width=8, seed=0)
        layers = export_quantized_layers(tiny_quantized)
        with pytest.raises(ValueError):
            reconstruct_float_model(wrong, layers)

    def test_model_size_accounting(self, tiny_model):
        full = model_size_bytes(tiny_model)
        quant = model_size_bytes(tiny_model, quantized_bits=8)
        assert quant < full
        # conv/linear weights dominate, so int8 should be ~4x smaller
        assert quant < full / 2
