"""DIVA — the paper's DIfferential eVasive Attack (§4).

The attack ascends

    L_DIVA(x, y) = p_orig(x)[y] - c * p_adapted(x)[y]           (Eq. 5)

under an L-inf budget.  Raising ``p_orig[y]`` keeps the authoritative
full-precision model confidently correct (evasion); lowering
``p_adapted[y]`` flips the edge model (attack).  ``c`` trades the two
goals (§5.3); the paper's default is ``c = 1``.

The same class powers every threat model: whitebox passes the true
(original, adapted) pair; semi-blackbox passes (surrogate original,
true adapted); blackbox passes (surrogate original, surrogate adapted)
— see :mod:`repro.attacks.surrogate` for the pipelines.

Each gradient step drives both models as one fused unit through the
paired executor (:mod:`repro.attacks.engine`): the two compiled
programs share scratch buffers, their logits are seeded by a *single*
stacked-softmax gradient, and both input gradients are summed into one
step direction — two model passes per step instead of four, with the
logits doubling as the keep-best success check.  ``c`` may be a per-row
vector (sweep variants, §5.3).  Untraceable models fall back to the
eager tape (still reusing the gradient-pass logits).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import (Attack, DEFAULT_ALPHA, DEFAULT_EPS, DEFAULT_STEPS,
                   input_gradient, softmax_np, softmax_vjp)


def diva_loss(orig_probs: Tensor, adapted_probs: Tensor, y: np.ndarray,
              c=1.0) -> Tensor:
    """Summed Eq. 5 over a batch (``c`` scalar or per-row vector)."""
    y = np.asarray(y)
    return (orig_probs.gather_rows(y) - c * adapted_probs.gather_rows(y)).sum()


def _prob_seed(logits: np.ndarray, y: np.ndarray, coeff: float) -> np.ndarray:
    """d(coeff * sum softmax(z)[y]) / dz."""
    p = softmax_np(logits)
    onehot = np.zeros_like(p)
    onehot[np.arange(len(y)), y] = coeff
    return softmax_vjp(p, onehot)


class DIVA(Attack):
    """Whitebox DIVA (§4.2): joint ascent over both models' probabilities.

    Parameters
    ----------
    original: the model whose prediction must *not* change (evasion).
    adapted: the model to flip (attack).
    c: Eq. 5 balance hyper-parameter (sweepable per item).
    """

    sweep_params = frozenset({"c"})

    def __init__(self, original: Module, adapted: Module, c: float = 1.0,
                 eps: float = DEFAULT_EPS, alpha: float = DEFAULT_ALPHA,
                 steps: int = DEFAULT_STEPS, random_start: bool = False,
                 keep_best: bool = True, seed: int = 0):
        super().__init__(eps, alpha, steps, random_start, keep_best, seed)
        self.original = original
        self.adapted = adapted
        self.c = float(c)
        self.original.eval()
        self.adapted.eval()

    def serve_signature(self):
        """Merge DIVA jobs over the same (original, adapted) pair and
        step count; ``c`` is a declared sweep param, so it rides the
        per-item parameter vectors and never blocks coalescing."""
        return (type(self).__qualname__, id(self.original),
                id(self.adapted), self.steps)

    # -- gradient ------------------------------------------------------- #
    def _paired(self, x: np.ndarray):
        """Cached paired executor over (original, adapted), or None."""
        return self._paired_executor((self.original, self.adapted), x)

    def _loop_spec(self, x: np.ndarray):
        """Whole-loop recipe: the paired programs, stacked-softmax seeds.

        ``c`` comes from the per-row variant vector when sweeping, the
        attack scalar otherwise — the same resolution order as
        :meth:`gradient_with_logits`.  Seeding goes through
        :meth:`_paired_seeds`, so :class:`TargetedDIVA`'s seed-vector
        override flows through unchanged; refused when the gradient or
        step rule is overridden or either model fails to compile.
        """
        from .base import Attack
        from .loop import LoopSpec
        if (type(self).gradient_with_logits is not DIVA.gradient_with_logits
                or type(self)._step is not Attack._step):
            return None
        pe = self._paired(x)
        if pe is None:
            return None

        def seeds(outs, y, variant):
            c = variant["c"] if variant and "c" in variant else self.c
            return list(self._paired_seeds(outs, y, c))

        return LoopSpec(programs=list(pe.programs), seeds=seeds,
                        aux_of=tuple)

    def _seed_vectors(self, p: np.ndarray, n: int, y: np.ndarray,
                      c) -> np.ndarray:
        """Upstream probability-gradient for the stacked (2n, k) softmax:
        rows [0, n) are the original model's block (+1 at the label),
        rows [n, 2n) the adapted model's (-c at the label)."""
        v = np.zeros_like(p)
        rows = np.arange(n)
        v[rows, y] = 1.0
        v[n + rows, y] = -np.asarray(c, dtype=p.dtype)
        return v

    def _paired_seeds(self, outs: Sequence[np.ndarray], y: np.ndarray,
                      c) -> Tuple[np.ndarray, np.ndarray]:
        """One combined softmax-seeded backward: a single stacked softmax
        over both logit blocks, one vjp, split per program.  Row-wise
        identical to seeding the two models separately."""
        zo, za = outs
        n = len(zo)
        p = softmax_np(np.concatenate([zo, za], axis=0))
        seeds = softmax_vjp(p, self._seed_vectors(p, n, y, c))
        return seeds[:n], seeds[n:]

    def _eager_loss(self, xt: Tensor, y: np.ndarray, cap: dict, c) -> Tensor:
        zo = self.original(xt)
        za = self.adapted(xt)
        cap["aux"] = (zo.data, za.data)
        p_orig = F.softmax(zo, axis=-1)
        p_adapt = F.softmax(za, axis=-1)
        return diva_loss(p_orig, p_adapt, y, c)

    def gradient(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.gradient_with_logits(x_adv, y)[0]

    def gradient_with_logits(self, x_adv: np.ndarray, y: np.ndarray,
                             variant: Optional[Dict[str, np.ndarray]] = None,
                             ) -> Tuple[np.ndarray, Any]:
        y = np.asarray(y)
        c = variant["c"] if variant and "c" in variant else self.c
        pe = self._paired(x_adv)
        if pe is not None:
            outs, g = pe.value_and_input_grad(
                x_adv, lambda zs: self._paired_seeds(zs, y, c))
            return g, outs
        cap: dict = {}
        g = input_gradient(lambda xt: self._eager_loss(xt, y, cap, c), x_adv)
        return g, cap["aux"]

    # -- success -------------------------------------------------------- #
    def success_logits(self, x_adv: np.ndarray, y: np.ndarray) -> Any:
        pe = self._paired(x_adv)
        if pe is not None:
            return pe.replay(x_adv, copy=False)
        return (self.original(Tensor(x_adv)).data,
                self.adapted(Tensor(x_adv)).data)

    def success_from_logits(self, aux: Any, y: np.ndarray) -> Optional[np.ndarray]:
        """DIVA's goal: original stays correct AND adapted flips."""
        if aux is None:
            return None
        zo, za = aux
        y = np.asarray(y)
        return (zo.argmax(axis=1) == y) & (za.argmax(axis=1) != y)

    def is_success(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        """DIVA's goal on pixel inputs (public API; one forward per model).

        Note the check runs against the models the *attacker* holds —
        for surrogate pipelines that is the surrogate pair, so no
        illegitimate information about the true models leaks in.
        """
        from ..training.evaluate import predict_labels
        po = predict_labels(self.original, x_adv, batch_size=len(x_adv))
        pa = predict_labels(self.adapted, x_adv, batch_size=len(x_adv))
        return (po == y) & (pa != y)


class TargetedDIVA(DIVA):
    """Targeted variant (§6): steer the adapted model toward a chosen
    class while evading the original model.

    Adds to Eq. 5 a term pulling the adapted model's distribution toward
    the one-hot target — "increases the loss based on its distance away
    from a one-hot vector with the value of 1 being at the position of
    the target class".
    """

    def __init__(self, original: Module, adapted: Module, target_class: int,
                 c: float = 1.0, target_weight: float = 1.0,
                 eps: float = DEFAULT_EPS, alpha: float = DEFAULT_ALPHA,
                 steps: int = DEFAULT_STEPS, random_start: bool = False,
                 keep_best: bool = True, seed: int = 0):
        super().__init__(original, adapted, c, eps, alpha, steps,
                         random_start, keep_best, seed)
        self.target_class = int(target_class)
        self.target_weight = float(target_weight)

    def serve_signature(self):
        """Targeted jobs additionally pin the target class/weight (both
        read by the gradient seed, neither expressible per item)."""
        return super().serve_signature() + (self.target_class,
                                            self.target_weight)

    def _seed_vectors(self, p: np.ndarray, n: int, y: np.ndarray,
                      c) -> np.ndarray:
        v = np.zeros_like(p)
        rows = np.arange(n)
        v[rows, y] = 1.0
        v[n + rows, y] = -np.asarray(c, dtype=p.dtype)
        # negative squared distance to the one-hot target, ascended
        # (adapted block only)
        pa = p[n:]
        onehot = np.zeros_like(pa)
        onehot[rows, self.target_class] = 1.0
        v[n:] -= 2.0 * self.target_weight * (pa - onehot)
        return v

    def _eager_loss(self, xt: Tensor, y: np.ndarray, cap: dict, c) -> Tensor:
        zo = self.original(xt)
        za = self.adapted(xt)
        cap["aux"] = (zo.data, za.data)
        p_orig = F.softmax(zo, axis=-1)
        p_adapt = F.softmax(za, axis=-1)
        base = diva_loss(p_orig, p_adapt, y, c)
        onehot = np.zeros(p_adapt.shape, dtype=p_adapt.data.dtype)
        onehot[np.arange(len(y)), self.target_class] = 1.0
        d = p_adapt - Tensor(onehot)
        return base - self.target_weight * (d * d).sum()

    def success_from_logits(self, aux: Any, y: np.ndarray) -> Optional[np.ndarray]:
        """Targeted goal: original stays correct AND adapted says target."""
        if aux is None:
            return None
        zo, za = aux
        y = np.asarray(y)
        return ((zo.argmax(axis=1) == y) & (za.argmax(axis=1) == self.target_class)
                & (y != self.target_class))

    def is_success(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Targeted goal on pixel inputs (public API)."""
        from ..training.evaluate import predict_labels
        po = predict_labels(self.original, x_adv, batch_size=len(x_adv))
        pa = predict_labels(self.adapted, x_adv, batch_size=len(x_adv))
        return (po == y) & (pa == self.target_class) & (np.asarray(y) != self.target_class)
