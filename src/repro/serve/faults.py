"""Deterministic, seeded fault injection for the serving control plane.

Chaos testing the resilience layer needs faults that are *named* (so a
test can say "plan validation corrupts on rebuild"), *seeded* (so a CI
failure replays bit-for-bit from ``REPRO_FAULT_SEED``) and *free of
wall-clock time* (latency faults advance a
:class:`~repro.serve.resilience.ManualClock` instead of sleeping).

Production code is instrumented with a handful of **named injection
points** — a single ``faults.fire(point)`` / ``faults.corrupt(point,
arr)`` call that is a no-op unless an injector is installed:

======================  ================================================
``attack.plan.build``   :func:`~repro.attacks.base.compile_model` and
                        the paired-executor builder, before compiling —
                        an error fault is a failed plan build.
``edge.plan.build``     :class:`~repro.edge.program.EdgeProgram`
                        construction — an error fault aborts lowering
                        (caught by the loud eager-fallback path).
``edge.plan.validate``  the compiled-vs-eager bit comparison — a
                        corruption fault flips one element of the
                        compiled output, so validation *must* catch it;
                        an error fault aborts validation outright.
``edge.dispatch``       :meth:`EdgeProgram.run` — an error fault is a
                        kernel failure at dispatch time.
``dispatch.attack``     scheduler attack dispatch (compiled rungs only).
``dispatch.predict``    scheduler inference dispatch (compiled rungs
                        only).
``dispatch.predict_float``
                        scheduler float-inference dispatch (compiled
                        rungs only) — an error fault quarantines the
                        coalesced float key and walks members down the
                        ladder.
``attack.step``         between compiled attack steps (fired by
                        :meth:`DeadlineToken.poll <repro.serve.
                        resilience.DeadlineToken.poll>`) — latency
                        faults burn deadline budget mid-attack.
``queue.tick``          once per scheduler dispatch round — latency
                        faults model queueing delay.
``net.client.send``     every request frame the networked client puts
                        on the wire (:mod:`repro.serve.net`) — frame
                        faults (``drop`` / ``duplicate`` /
                        ``truncate``) and latency apply here.
``net.client.recv``     every response frame the client takes off the
                        wire — same frame-fault menu, modelling lost,
                        repeated and cut-off replies.
======================  ================================================

The three **frame-fault kinds** act on whole frames at the network
boundary instead of raising: ``drop`` deletes the frame (the peer never
sees it — the retry/timeout path must recover), ``duplicate`` delivers
it twice (the idempotency window must dedup), and ``truncate`` cuts it
mid-byte and kills the connection (the CRC-checked framing must refuse
the prefix and the client must reconnect).  They are consulted through
:func:`frame` rather than :func:`fire`, and compose deterministically
in spec order.

Corruption faults are deliberately only injectable *upstream of a
validator* (plan validation): the serving layer's defence against
silent corruption **is** bit-validation, so the harness corrupts where
a validator must catch it and never where nothing could.  Likewise the
eager rung of the degradation ladder is never instrumented — it is the
reference implementation the ladder degrades *to*, which is what lets
the chaos suite assert that every completed job is still bit-identical
to a solo eager run.

Doctest — deterministic, seeded, clock-driven::

    >>> from .resilience import ManualClock
    >>> clock = ManualClock()
    >>> inj = FaultInjector([FaultSpec("queue.tick", "latency", rate=1.0,
    ...                                delay_s=0.25)], seed=7, clock=clock)
    >>> with inject(inj):
    ...     fire("queue.tick")
    ...     fire("queue.tick")
    >>> clock.now()
    0.5
    >>> inj.fired("queue.tick", "latency")
    2
    >>> fire("queue.tick")        # no injector installed: no-op
    >>> clock.now()
    0.5
"""

from __future__ import annotations

import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .resilience import Clock, ManualClock, ServeError

#: every fault kind the injector understands; the last three are
#: frame faults, meaningful only at ``net.*`` points (see :func:`frame`)
KINDS = ("error", "latency", "corrupt", "drop", "duplicate", "truncate")


class InjectedFault(ServeError):
    """An error fault fired at a named injection point."""

    def __init__(self, point: str):
        super().__init__(f"injected fault at {point!r}")
        self.point = point


@dataclass
class FaultSpec:
    """One fault stream: where, what, how often.

    ``rate`` is the per-probe fire probability (1.0 = every probe);
    ``max_fires`` bounds total fires so a spec can model a *transient*
    fault that heals (None = unbounded); ``delay_s`` is the clock
    advance per latency fire.
    """

    point: str
    kind: str
    rate: float = 1.0
    max_fires: Optional[int] = None
    delay_s: float = 0.05

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError("rate must be in [0, 1]")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")


class _Stream:
    """Runtime state of one spec: its own RNG stream and fire budget.

    Under a worker-pool :func:`scope`, probes route to a per-*group*
    derived sub-stream (keyed by the group's head sequence number, an
    extra word in the RNG seed) with its own fire budget.  Group
    execution order across workers then cannot perturb any group's draw
    sequence — each group's chaos is a pure function of (seed, point,
    slot, group), which is exactly why a chaos replay is bit-identical
    at every worker count.
    """

    def __init__(self, spec: FaultSpec, seed: int, index: int,
                 group: Optional[int] = None):
        self.spec = spec
        self.seed = seed
        self.index = index
        # one independent, reconstructible stream per (seed, point,
        # slot[, group])
        words = [seed, zlib.crc32(spec.point.encode()), index]
        if group is not None:
            words.append(group)
        self.rng = np.random.default_rng(words)
        self.fires = 0
        self.probes = 0
        self._scoped: Dict[int, "_Stream"] = {}

    def scoped(self, group: int) -> "_Stream":
        sub = self._scoped.get(group)
        if sub is None:
            # benign if two workers race distinct groups here: dict
            # writes are atomic and the keys differ (a group only ever
            # runs on one worker)
            sub = self._scoped[group] = _Stream(
                self.spec, self.seed, self.index, group=group)
        return sub

    def draw(self) -> bool:
        self.probes += 1
        if (self.spec.max_fires is not None
                and self.fires >= self.spec.max_fires):
            return False
        if self.spec.rate < 1.0 and self.rng.random() >= self.spec.rate:
            return False
        self.fires += 1
        return True


class FaultInjector:
    """Seeded fault plan over the named injection points.

    Every spec owns an independent RNG stream keyed by (seed, point,
    slot), so adding or removing one spec never perturbs another's
    draw sequence — the property that makes "same seed, same chaos"
    hold as fault plans evolve.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0,
                 clock: Optional[ManualClock] = None):
        self.seed = int(seed)
        self.clock = clock
        self._streams: Dict[str, List[_Stream]] = {}
        for i, spec in enumerate(specs):
            self._streams.setdefault(spec.point, []).append(
                _Stream(spec, self.seed, i))
        self.log: List[Dict[str, Any]] = []
        self._log_lock = threading.Lock()

    def _log_event(self, rec: Dict[str, Any],
                   sc: Optional["_GroupScope"]) -> None:
        if sc is not None:
            rec["worker"] = sc.worker
            rec["group"] = sc.group
        with self._log_lock:
            self.log.append(rec)

    # -- the two hooks --------------------------------------------------- #
    def fire(self, point: str) -> None:
        """Probe ``point``: latency faults advance the clock, then an
        error fault (if drawn) raises :class:`InjectedFault`.

        Inside a worker-pool :func:`scope`, draws come from the scope's
        per-group derived streams, latency advances the scope's clock
        (the group's :class:`~repro.serve.resilience.OffsetClock` view),
        and log entries carry ``worker``/``group`` attribution.
        """
        sc = current_scope()
        err = False
        for base in self._streams.get(point, ()):
            stream = base if sc is None else base.scoped(sc.group)
            kind = stream.spec.kind
            if kind == "corrupt" or not stream.draw():
                continue
            if kind == "latency":
                clock = self.clock
                if sc is not None and sc.clock is not None:
                    clock = sc.clock
                if clock is not None:
                    clock.advance(stream.spec.delay_s)
                self._log_event({"point": point, "kind": "latency",
                                 "delay_s": stream.spec.delay_s}, sc)
            else:
                self._log_event({"point": point, "kind": "error"}, sc)
                err = True
        if err:
            raise InjectedFault(point)

    def frame(self, point: str, payload: bytes
              ) -> List[Tuple[str, bytes]]:
        """Probe ``point`` with one wire frame; returns the delivery
        plan as ``(action, bytes)`` pairs.

        The default plan is ``[("deliver", payload)]``.  Fired frame
        faults rewrite it in spec order: ``drop`` empties it,
        ``duplicate`` doubles it, ``truncate`` replaces it with a
        single ``("truncate", prefix)`` — the transport must send only
        the prefix and then sever the connection, which is what makes
        truncation indistinguishable from a real mid-frame connection
        loss.  Latency specs at the same point advance the clock, as
        with :meth:`fire`.  Composition is deterministic because every
        stream draws from its own seeded RNG.
        """
        plan: List[Tuple[str, bytes]] = [("deliver", payload)]
        for stream in self._streams.get(point, ()):
            kind = stream.spec.kind
            if kind not in ("drop", "duplicate", "truncate", "latency"):
                continue
            if not stream.draw():
                continue
            if kind == "latency":
                if self.clock is not None:
                    self.clock.advance(stream.spec.delay_s)
                self._log_event({"point": point, "kind": "latency",
                                 "delay_s": stream.spec.delay_s}, None)
            elif kind == "drop":
                plan = []
                self._log_event({"point": point, "kind": "drop"}, None)
            elif kind == "duplicate":
                plan = plan + plan
                self._log_event({"point": point, "kind": "duplicate"}, None)
            else:   # truncate: cut the frame and sever the stream there
                cut = int(stream.rng.integers(1, max(len(payload), 2)))
                plan = [("truncate", payload[:cut])]
                self._log_event({"point": point, "kind": "truncate",
                                 "cut": cut}, None)
        return plan

    def corrupt(self, point: str, arr: np.ndarray) -> bool:
        """Probe ``point`` with a corruption target: flips one element
        of ``arr`` in place when the fault fires.  Returns whether it
        did (tests assert the downstream validator caught it)."""
        sc = current_scope()
        hit = False
        for base in self._streams.get(point, ()):
            stream = base if sc is None else base.scoped(sc.group)
            if stream.spec.kind != "corrupt" or not stream.draw():
                continue
            flat = arr.reshape(-1)
            idx = int(stream.rng.integers(flat.size))
            flat[idx] += np.asarray(1, dtype=arr.dtype)
            self._log_event({"point": point, "kind": "corrupt",
                             "index": idx}, sc)
            hit = True
        return hit

    # -- accounting ------------------------------------------------------ #
    def fired(self, point: Optional[str] = None,
              kind: Optional[str] = None) -> int:
        return sum(1 for rec in self.log
                   if (point is None or rec["point"] == point)
                   and (kind is None or rec["kind"] == kind))

    @property
    def stats(self) -> Dict[str, Dict[str, int]]:
        """``{point: {kind: fires}}`` over everything fired so far."""
        out: Dict[str, Dict[str, int]] = {}
        for rec in self.log:
            by_kind = out.setdefault(rec["point"], {})
            by_kind[rec["kind"]] = by_kind.get(rec["kind"], 0) + 1
        return out


# --------------------------------------------------------------------- #
# module-level installation (what the instrumented code calls)
# --------------------------------------------------------------------- #

_ACTIVE: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    return _ACTIVE


@contextmanager
def inject(injector: FaultInjector):
    """Install ``injector`` for the duration of the block (no nesting —
    the previous injector, if any, is restored on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


class _GroupScope:
    """One worker's current execution scope: which worker, which
    dispatch group (by head seq), and the group's clock view."""

    __slots__ = ("worker", "group", "clock")

    def __init__(self, worker: int, group: int, clock: Optional[Clock]):
        self.worker = worker
        self.group = group
        self.clock = clock


_SCOPE = threading.local()


def current_scope() -> Optional[_GroupScope]:
    return getattr(_SCOPE, "current", None)


@contextmanager
def scope(worker: int, group: int, clock: Optional[Clock] = None):
    """Tag the calling thread's fault probes with a worker/group scope.

    The pool wraps each planned group's execution in this.  Three
    effects, together the worker dimension of every fault point:

    - draws route to per-group derived RNG streams (seeded by the
      group's head seq), so chaos is a function of the *group*, not of
      worker count or interleaving — the same workload chaos-replays
      bit-identically at every ``--workers N``;
    - ``max_fires`` budgets apply per group under a scope (each derived
      stream has its own budget) — a "transient" spec is transient per
      group;
    - latency faults advance the scope's clock (the group's
      :class:`~repro.serve.resilience.OffsetClock` view) instead of the
      shared session clock, and log entries carry ``worker`` and
      ``group`` fields for post-hoc attribution.
    """
    prev = current_scope()
    _SCOPE.current = _GroupScope(int(worker), int(group), clock)
    try:
        yield
    finally:
        _SCOPE.current = prev


def fire(point: str) -> None:
    """Production-side hook: no-op unless an injector is installed."""
    if _ACTIVE is not None:
        _ACTIVE.fire(point)


def corrupt(point: str, arr: np.ndarray) -> bool:
    if _ACTIVE is not None:
        return _ACTIVE.corrupt(point, arr)
    return False


def frame(point: str, payload: bytes) -> List[Tuple[str, bytes]]:
    """Production-side frame hook: delivered unchanged unless an
    injector is installed (the networked client consults this on every
    frame it sends or receives)."""
    if _ACTIVE is not None:
        return _ACTIVE.frame(point, payload)
    return [("deliver", payload)]


def default_chaos_specs(deadline_pressure: bool = True) -> List[FaultSpec]:
    """The stock chaos plan: every fault class at every point family.

    Error faults are transient (bounded fires) so the cool-down
    re-probe story is exercised end to end; latency faults are
    unbounded and, with ``deadline_pressure``, aggressive enough to
    expire realistic per-job deadlines mid-attack.
    """
    specs = [
        FaultSpec("attack.plan.build", "error", rate=0.5, max_fires=2),
        FaultSpec("edge.plan.build", "error", rate=0.5, max_fires=1),
        FaultSpec("edge.plan.validate", "corrupt", rate=0.5, max_fires=2),
        FaultSpec("edge.dispatch", "error", rate=0.3, max_fires=1),
        FaultSpec("dispatch.attack", "error", rate=0.25, max_fires=2),
        FaultSpec("dispatch.predict", "error", rate=0.25, max_fires=1),
        FaultSpec("dispatch.predict_float", "error", rate=0.25, max_fires=1),
        FaultSpec("queue.tick", "latency", rate=1.0, delay_s=0.02),
    ]
    if deadline_pressure:
        specs.append(FaultSpec("attack.step", "latency", rate=0.5,
                               delay_s=0.05))
    return specs


def default_net_chaos_specs() -> List[FaultSpec]:
    """The stock *network* chaos plan: every frame-fault kind on both
    directions of the wire, plus send-side latency.

    Fire budgets are bounded so a finite retry policy always converges:
    the client's ``max_retries`` must only outlast the worst per-key
    burst, not an unbounded fault stream.  Use alongside
    :func:`default_chaos_specs` to chaos both the wire and the control
    plane at once.
    """
    return [
        FaultSpec("net.client.send", "drop", rate=0.2, max_fires=3),
        FaultSpec("net.client.send", "duplicate", rate=0.2, max_fires=3),
        FaultSpec("net.client.send", "truncate", rate=0.1, max_fires=2),
        FaultSpec("net.client.send", "latency", rate=0.3, delay_s=0.02),
        FaultSpec("net.client.recv", "drop", rate=0.15, max_fires=2),
        FaultSpec("net.client.recv", "duplicate", rate=0.15, max_fires=2),
        FaultSpec("net.client.recv", "truncate", rate=0.1, max_fires=1),
    ]
