"""Model zoo: shapes, determinism, feature extraction, registry."""

import numpy as np
import pytest

from repro.models import (available_models, build_model, register_model)
from repro.nn import Tensor


ARCH_KWARGS = {
    "resnet": dict(num_classes=7, width=4, seed=0),
    "mobilenet": dict(num_classes=7, width=4, seed=0),
    "densenet": dict(num_classes=7, growth=3, width=4, seed=0),
}


class TestArchitectures:
    @pytest.mark.parametrize("arch", sorted(ARCH_KWARGS))
    def test_forward_shape(self, arch, rng):
        m = build_model(arch, **ARCH_KWARGS[arch])
        m.eval()
        out = m(Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float64)))
        assert out.shape == (2, 7)

    @pytest.mark.parametrize("arch", sorted(ARCH_KWARGS))
    def test_features_shape(self, arch, rng):
        m = build_model(arch, **ARCH_KWARGS[arch])
        m.eval()
        f = m.features(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert f.shape == (2, m.feature_dim)

    @pytest.mark.parametrize("arch", sorted(ARCH_KWARGS))
    def test_deterministic_per_seed(self, arch, rng):
        m1 = build_model(arch, **ARCH_KWARGS[arch])
        m2 = build_model(arch, **ARCH_KWARGS[arch])
        x = Tensor(rng.normal(size=(1, 3, 16, 16)))
        m1.eval(); m2.eval()
        assert np.allclose(m1(x).data, m2(x).data)

    @pytest.mark.parametrize("arch", sorted(ARCH_KWARGS))
    def test_different_seed_differs(self, arch, rng):
        kw = dict(ARCH_KWARGS[arch])
        m1 = build_model(arch, **kw)
        kw["seed"] = 1
        m2 = build_model(arch, **kw)
        x = Tensor(rng.normal(size=(1, 3, 16, 16)))
        m1.eval(); m2.eval()
        assert not np.allclose(m1(x).data, m2(x).data)

    @pytest.mark.parametrize("arch", sorted(ARCH_KWARGS))
    def test_gradients_reach_all_parameters(self, arch, rng):
        from repro.nn import functional as F
        m = build_model(arch, **ARCH_KWARGS[arch])
        m.train()
        logits = m(Tensor(rng.normal(size=(4, 3, 16, 16))))
        F.cross_entropy(logits, np.array([0, 1, 2, 3])).backward()
        missing = [n for n, p in m.named_parameters() if p.grad is None]
        assert missing == []

    def test_resnet_shortcut_projection(self, rng):
        m = build_model("resnet", num_classes=3, width=4,
                        blocks=[1, 1], seed=0)
        # second stage halves resolution and doubles channels -> projection
        assert m.stages[1].short_conv is not None
        m.eval()
        assert m(Tensor(rng.normal(size=(1, 3, 8, 8)))).shape == (1, 3)

    def test_mobilenet_uses_depthwise(self):
        m = build_model("mobilenet", num_classes=3, width=4, seed=0)
        dw = m.blocks[0].dw
        assert dw.groups == dw.in_channels

    def test_densenet_channel_growth(self):
        m = build_model("densenet", num_classes=3, growth=2, width=4,
                        block_layers=[2, 2], seed=0)
        assert m.blocks[0].out_channels == 4 + 2 * 2

    def test_grayscale_input_channels(self, rng):
        m = build_model("resnet", num_classes=4, width=4, in_channels=1, seed=0)
        m.eval()
        assert m(Tensor(rng.normal(size=(2, 1, 16, 16)))).shape == (2, 4)


class TestLeNetAndVGGFace:
    def test_lenet_shapes(self, rng):
        m = build_model("lenet", num_classes=10, image_size=28, seed=0)
        m.eval()
        assert m(Tensor(rng.normal(size=(2, 1, 28, 28)))).shape == (2, 10)
        assert m.features(Tensor(rng.normal(size=(2, 1, 28, 28)))).shape == (2, 42)

    def test_lenet_edge_layers_cover_forward(self, rng):
        m = build_model("lenet", num_classes=5, image_size=16, seed=0)
        m.eval()
        x = Tensor(rng.normal(size=(2, 1, 16, 16)))
        out = x
        for layer in m.edge_layers():
            out = layer(out)
        assert np.allclose(out.data, m(x).data)

    def test_vggface_shapes(self, rng):
        m = build_model("vggface", num_identities=9, image_size=32,
                        width=4, embed_dim=16, seed=0)
        m.eval()
        assert m(Tensor(rng.normal(size=(2, 3, 32, 32)))).shape == (2, 9)
        assert m.features(Tensor(rng.normal(size=(1, 3, 32, 32)))).shape == (1, 16)

    def test_vggface_edge_layers_cover_forward(self, rng):
        m = build_model("vggface", num_identities=4, image_size=16,
                        width=4, embed_dim=8, seed=0)
        m.eval()
        x = Tensor(rng.normal(size=(1, 3, 16, 16)))
        out = x
        for layer in m.edge_layers():
            out = layer(out)
        assert np.allclose(out.data, m(x).data)

    def test_vggface_size_validation(self):
        with pytest.raises(ValueError):
            build_model("vggface", num_identities=4, image_size=30)


class TestRegistry:
    def test_available_models(self):
        names = available_models()
        for expected in ("resnet", "mobilenet", "densenet", "lenet", "vggface"):
            assert expected in names

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_model("resnet", lambda: None)

    def test_case_insensitive(self):
        m = build_model("ResNet", num_classes=3, width=4, seed=0)
        assert m.num_classes == 3
