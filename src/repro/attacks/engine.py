"""Paired-program attack engine (§5.2 economics, engineered).

Three cooperating pieces turn the attack loop from "one model pass at a
time, one configuration at a time" into a single scheduled computation:

- :class:`PairedExecutor` — compiles the (original, adapted) model pair
  into replayable programs that share one :class:`~repro.nn.graph.
  ScratchPool` (im2col scratch, padded-input and backward-matmul
  buffers are allocated once for the pair), replays both forwards on the
  same batch, computes *one* combined softmax-seeded gradient for both
  logit blocks, then runs both backwards and sums the input gradients.
  DIVA's Eq. 5 step is thereby a single fused unit instead of two
  independent ``value_and_input_grad`` calls.

- :func:`run_scheduled` / :func:`run_scheduled_steps` — the active-slot
  scheduler behind ``Attack.generate`` / ``Attack.generate_sweep``.
  Work items (sample, variant) occupy up to ``capacity`` slots; each
  pass runs one gradient batch over the occupied slots, retires items
  that satisfied their success criterion (checked against the logits
  the gradient pass already produced — the shifted keep-best check),
  and refills freed slots with pending items from later batches /
  variants (cross-batch work stealing).  Because every per-sample
  trajectory is independent, the produced iterates are bit-identical to
  the per-batch sequential loop; the trailing success forward the
  sequential loop paid is dropped entirely (it cannot change the
  returned iterate when done samples stop stepping).
  :func:`run_scheduled` additionally routes through the recorded
  whole-loop plan (:mod:`repro.attacks.loop`) when the attack has one,
  with :func:`run_scheduled_steps` — the step-at-a-time body — as both
  the loop's compile-time validation reference and its loud fallback.

- variant tiling — ``Attack.generate_sweep`` maps an (eps, c, ...) grid
  onto per-item parameter vectors so a whole figure's configuration
  sweep shares one compiled program pair and one scheduler pass.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.graph import ScratchPool, compile_forward_or_none

#: variant keys interpreted by the scheduler itself (all attacks)
SCHEDULER_KEYS = frozenset({"eps", "alpha", "keep_best"})


class PairedExecutor:
    """N compiled programs driven in lockstep over one input batch.

    Built for the two-model DIVA objective (hence the name), but any
    number of frozen models over the same input works.  All programs
    draw transient scratch from one shared pool; forwards run first so
    the seed function sees every program's logits at once, then each
    program's backward runs and the input gradients are summed in
    place.
    """

    def __init__(self, programs: Sequence):
        self.programs = list(programs)

    @classmethod
    def compile(cls, models: Sequence, example: np.ndarray
                ) -> Optional["PairedExecutor"]:
        """Compile every model against ``example`` with shared scratch;
        None (eager fallback) unless all of them compile."""
        pool = ScratchPool()
        programs = []
        for model in models:
            prog = compile_forward_or_none(model, example, pool=pool)
            if prog is None:
                return None
            programs.append(prog)
        return cls(programs)

    def refresh(self) -> None:
        for prog in self.programs:
            prog.refresh()

    def replay(self, x: np.ndarray, copy: bool = True) -> Tuple[np.ndarray, ...]:
        """Forward-only logits for every program (views when ``copy``
        is False, valid until that program's next replay)."""
        return tuple(prog.replay(x, copy=copy) for prog in self.programs)

    def value_and_input_grad(self, x: np.ndarray,
                             seeds_fn: Callable[[Sequence[np.ndarray]],
                                                Sequence[np.ndarray]],
                             ) -> Tuple[Tuple[np.ndarray, ...], np.ndarray]:
        """One fused paired step: all logits plus the summed d(loss)/dx.

        ``seeds_fn`` maps the tuple of logit blocks to one seed per
        program (computed together — DIVA does a single stacked softmax
        for both models).  The returned logits are buffer views valid
        until the next replay; the gradient is freshly owned.
        """
        xs = [prog._check_input(x) for prog in self.programs]
        outs = tuple(prog._forward(xc) for prog, xc in zip(self.programs, xs))
        seeds = seeds_fn(outs)
        gx: Optional[np.ndarray] = None
        for prog, xc, seed in zip(self.programs, xs, seeds):
            g = prog._backward_from_seed(np.asarray(seed), xc)
            if gx is None:
                gx = g                       # freshly owned by contract
            else:
                np.add(gx, g, out=gx)
        return outs, gx


def generate_grid(attacks: Dict[str, Any], x: np.ndarray, y: np.ndarray,
                  variants: Optional[Dict[str, Sequence[Dict[str, Any]]]] = None,
                  batch_size: int = 64) -> Dict[str, Any]:
    """Run a named grid of attacks over one attack set.

    The experiment drivers' per-configuration loops collapse into one
    call: every attack runs on the slot scheduler, and entries with
    parameter ``variants`` (``{name: [variant, ...]}``) run as a single
    vectorized sweep sharing that attack's compiled programs.  Returns
    ``{name: adversarial_batch}`` — or a list of per-variant batches for
    swept entries.  Distinct attacks hold distinct model pairs, so they
    cannot share programs with each other; the win across entries is
    scheduling, the win within an entry is the sweep.
    """
    out: Dict[str, Any] = {}
    for name, attack in attacks.items():
        v = (variants or {}).get(name)
        if v is None:
            out[name] = attack.generate(x, y, batch_size=batch_size)
        else:
            out[name] = attack.generate_sweep(x, y, v, batch_size=batch_size)
    return out


def _per_item(value, n: int, dtype) -> np.ndarray:
    """Broadcast a scalar (or per-item array) to an (n,) vector."""
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim == 0:
        return np.full(n, arr, dtype=dtype)
    if arr.shape != (n,):
        raise ValueError(f"per-item parameter has shape {arr.shape}, "
                         f"expected ({n},)")
    return arr


def run_scheduled(attack, x: np.ndarray, y: np.ndarray, adv: np.ndarray,
                  eps: np.ndarray, alpha: np.ndarray, check: np.ndarray,
                  params: Optional[Dict[str, np.ndarray]],
                  capacity: int,
                  snaps: Optional[np.ndarray] = None,
                  deadline=None) -> np.ndarray:
    """Scheduled attack loop: the recorded whole-loop plan when the
    attack has one (:mod:`repro.attacks.loop` — every step replayed
    inside one masked program, bit-validated against the engine), the
    step-at-a-time engine otherwise.  Snapshot requests always take the
    engine (per-step iterates are the observable the loop's masking
    elides), as does anything :func:`~repro.attacks.loop.try_run_loop`
    declines — results are bit-identical either way, per the loop's
    compile-time validation gate.
    """
    if snaps is None:
        from .loop import try_run_loop
        out = try_run_loop(attack, x, y, adv, eps, alpha, check, params,
                           capacity, deadline=deadline)
        if out is not None:
            return out
    return run_scheduled_steps(attack, x, y, adv, eps, alpha, check, params,
                               capacity, snaps=snaps, deadline=deadline)


def run_scheduled_steps(attack, x: np.ndarray, y: np.ndarray, adv: np.ndarray,
                        eps: np.ndarray, alpha: np.ndarray, check: np.ndarray,
                        params: Optional[Dict[str, np.ndarray]],
                        capacity: int,
                        snaps: Optional[np.ndarray] = None,
                        deadline=None) -> np.ndarray:
    """Active-slot keep-best loop with cross-batch work stealing.

    ``adv`` holds the initialized iterates and is advanced in place;
    items enter slots in order, step until their criterion fires (only
    where ``check`` is set) or ``attack.steps`` is exhausted, and their
    freed slot is refilled from the pending tail.  ``snaps[t, i]`` — when
    requested — receives item ``i``'s iterate after ``t + 1`` steps,
    frozen at the success iterate once done (the AttackTrace contract).

    Per-sample trajectories depend only on that sample's own gradients,
    so outputs are bit-identical to running each item in its own
    sequential batch — scheduling only changes wall-time.

    ``deadline`` — a :class:`~repro.serve.resilience.DeadlineToken` (or
    anything with its ``poll``/``expire`` surface) — is checked once per
    pass, *before* the next gradient is paid: rows whose deadline has
    passed retire immediately with their current best-so-far iterate and
    are recorded on the token.  Rows that already retired normally are
    never polled, so a completed row can never be marked expired.

    This is both the universal fallback and the validation reference:
    :func:`repro.attacks.loop.compile_attack_loop` must reproduce this
    function's output bit-for-bit before a loop plan exists.
    """
    n_items = len(x)
    steps = attack.steps
    steps_done = np.zeros(n_items, dtype=np.intp)
    active: List[int] = []
    next_item = 0

    while active or next_item < n_items:
        while len(active) < capacity and next_item < n_items:
            active.append(next_item)
            next_item += 1
        act = np.asarray(active, dtype=np.intp)
        if deadline is not None:
            exp = np.asarray(deadline.poll(act), dtype=bool)
            if exp.any():
                rows = act[exp]
                deadline.expire(rows, steps_done[rows])
                if snaps is not None:
                    for i in rows:
                        snaps[steps_done[i]:, i] = adv[i]
                active = [i for i, e in zip(active, exp) if not e]
                if not active:
                    continue
                act = act[~exp]
        variant = ({k: v[act] for k, v in params.items()}
                   if params else None)
        g, aux = attack.gradient_with_logits(adv[act], y[act], variant)

        # shifted success check: the logits of this pass describe the
        # current iterates, which earlier passes produced
        keep = np.ones(len(act), dtype=bool)
        elig = (steps_done[act] > 0) & check[act]
        if elig.any():
            mask = attack._success_mask(aux, adv[act], y[act])
            if mask is not None:
                keep = ~(np.asarray(mask, dtype=bool) & elig)

        kact = act[keep]
        if kact.size:
            adv[kact] = attack._step(adv[kact], x[kact], g[keep],
                                     eps=eps[kact], alpha=alpha[kact])
            steps_done[kact] += 1
            if snaps is not None:
                snaps[steps_done[kact] - 1, kact] = adv[kact]

        retired = ~keep | (steps_done[act] >= steps)
        if retired.any():
            if snaps is not None:
                for i in act[retired]:
                    snaps[steps_done[i]:, i] = adv[i]
            active = [i for i, r in zip(active, retired) if not r]
    return adv
