"""Ablations of the reproduction's design choices (DESIGN.md §5).

The paper-scale configuration makes three scale-compensating choices:
4-bit weights (vs the paper's int8 on 50-layer models), eps = 32/255
(vs 8/255 on 224x224 inputs), and best-iterate bookkeeping in the attack
loop.  Each ablation isolates one choice and shows how the headline
result (DIVA evasive success vs PGD) responds:

- ``bits``: weight width sweep — divergence (instability) and DIVA's
  advantage grow as the grid coarsens; int8 on tiny models leaves too
  little boundary offset for *any* attack to separate the models;
- ``eps``: budget sweep — PGD saturates its attack-only success early
  while its evasive success *decays* with budget (more transfer); DIVA's
  evasive success grows;
- ``keep_best``: disabling best-iterate return shows the overshoot
  effect (success found mid-trajectory, lost by step 20);
- ``per_channel``: per-channel weight grids halve the divergence, the
  reason the paper-scale config uses per-tensor at this model size.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..attacks import DIVA, PGD
from ..metrics import evaluate_attack, instability_report
from ..quantization import prepare_qat, qat_finetune
from .config import ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results


def _adapt(pipe: Pipeline, arch: str, weight_bits: int, act_bits: int,
           per_channel: bool):
    """QAT-adapt the cached original with ablated quantization settings."""
    cfg = pipe.cfg

    def build():
        train, _, _ = pipe.datasets()
        q = prepare_qat(pipe.original(arch), weight_bits=weight_bits,
                        act_bits=act_bits, per_channel=per_channel)
        qat_finetune(q, train.x, train.y, epochs=cfg.qat_epochs,
                     batch_size=cfg.batch_size, lr=cfg.qat_lr,
                     rng=np.random.default_rng(cfg.seed + 2))
        q.freeze()
        return q
    key = cfg.cache_key("ablate_quant", arch, str(weight_bits),
                        str(act_bits), str(per_channel))
    return pipe.get_or_build(key, build)


def run_bits(cfg: Optional[ExperimentConfig] = None,
             pipeline: Optional[Pipeline] = None, arch: str = "resnet",
             bit_widths: Sequence[int] = (8, 6, 5, 4, 3),
             verbose: bool = True) -> Dict:
    """Weight-bit-width ablation."""
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    orig = pipe.original(arch)
    _, val, _ = pipe.datasets()

    rows = []
    results: Dict = {"arch": arch, "per_bits": {}}
    for bits in bit_widths:
        quant = _adapt(pipe, arch, bits, cfg.act_bits, cfg.per_channel)
        inst = instability_report(orig, quant, val.x, val.y)
        atk_set = pipe.attack_set([orig, quant], f"ablate-bits-{arch}-{bits}")
        kw = dict(eps=cfg.eps, alpha=cfg.alpha, steps=cfg.steps)
        rd = evaluate_attack(orig, quant, DIVA(orig, quant, c=cfg.c, **kw)
                             .generate(atk_set.x, atk_set.y),
                             atk_set.y, topk=cfg.topk)
        rp = evaluate_attack(orig, quant, PGD(quant, **kw)
                             .generate(atk_set.x, atk_set.y),
                             atk_set.y, topk=cfg.topk)
        results["per_bits"][bits] = {
            "quantized_accuracy": inst.adapted_accuracy,
            "instability": inst.deviation_instability,
            "diva_top1": rd.top1_success_rate,
            "pgd_top1": rp.top1_success_rate,
        }
        rows.append([f"int{bits}", f"{inst.adapted_accuracy:.1%}",
                     f"{inst.deviation_instability:.1%}",
                     f"{rd.top1_success_rate:.1%}", f"{rp.top1_success_rate:.1%}"])
    table = format_table(
        ["Weight width", "Quantized acc", "Instability", "DIVA top-1",
         "PGD top-1"], rows,
        title=f"Ablation — weight bit width ({arch})")
    results["table"] = table
    if verbose:
        print(table)
    save_results("ablation_bits", results)
    return results


def run_eps(cfg: Optional[ExperimentConfig] = None,
            pipeline: Optional[Pipeline] = None, arch: str = "resnet",
            eps_values: Sequence[float] = (8 / 255, 16 / 255, 32 / 255,
                                           48 / 255),
            verbose: bool = True) -> Dict:
    """Attack-budget ablation (alpha scales with eps, steps fixed)."""
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    orig = pipe.original(arch)
    quant = pipe.quantized(arch)
    atk_set = pipe.attack_set([orig, quant], f"ablate-eps-{arch}")

    rows = []
    results: Dict = {"arch": arch, "per_eps": {}}
    # the whole budget grid is two vectorized sweeps (one per attack),
    # each sharing its compiled programs across every eps point
    variants = [{"eps": float(e), "alpha": float(e / 8.0)} for e in eps_values]
    kw0 = dict(eps=eps_values[0], alpha=eps_values[0] / 8.0, steps=cfg.steps)
    diva_advs = DIVA(orig, quant, c=cfg.c, **kw0).generate_sweep(
        atk_set.x, atk_set.y, variants)
    pgd_advs = PGD(quant, **kw0).generate_sweep(atk_set.x, atk_set.y, variants)
    for eps, x_diva, x_pgd in zip(eps_values, diva_advs, pgd_advs):
        rd = evaluate_attack(orig, quant, x_diva, atk_set.y, topk=cfg.topk)
        rp = evaluate_attack(orig, quant, x_pgd, atk_set.y, topk=cfg.topk)
        key = f"{eps * 255:.0f}/255"
        results["per_eps"][key] = {
            "diva_top1": rd.top1_success_rate,
            "pgd_top1": rp.top1_success_rate,
            "pgd_attack_only": rp.attack_only_success_rate,
        }
        rows.append([key, f"{rd.top1_success_rate:.1%}",
                     f"{rp.top1_success_rate:.1%}",
                     f"{rp.attack_only_success_rate:.1%}"])
    table = format_table(
        ["eps", "DIVA top-1", "PGD top-1", "PGD attack-only"], rows,
        title=f"Ablation — attack budget ({arch})")
    results["table"] = table
    if verbose:
        print(table)
    save_results("ablation_eps", results)
    return results


def run_keep_best(cfg: Optional[ExperimentConfig] = None,
                  pipeline: Optional[Pipeline] = None, arch: str = "resnet",
                  verbose: bool = True) -> Dict:
    """Best-iterate bookkeeping ablation."""
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    orig = pipe.original(arch)
    quant = pipe.quantized(arch)
    atk_set = pipe.attack_set([orig, quant], f"ablate-kb-{arch}")
    kw = dict(eps=cfg.eps, alpha=cfg.alpha, steps=cfg.steps)

    rows = []
    results: Dict = {"arch": arch, "variants": {}}
    # keep_best is a scheduler flag, so both bookkeeping variants run in
    # one sweep per attack
    labels = [("keep-best", True), ("final-iterate", False)]
    sweep = [{"keep_best": keep} for _, keep in labels]
    diva_advs = DIVA(orig, quant, c=cfg.c, **kw).generate_sweep(
        atk_set.x, atk_set.y, sweep)
    pgd_advs = PGD(quant, **kw).generate_sweep(atk_set.x, atk_set.y, sweep)
    for (label, _), x_diva, x_pgd in zip(labels, diva_advs, pgd_advs):
        rd = evaluate_attack(orig, quant, x_diva, atk_set.y, topk=cfg.topk)
        rp = evaluate_attack(orig, quant, x_pgd, atk_set.y, topk=cfg.topk)
        results["variants"][label] = {"diva_top1": rd.top1_success_rate,
                                      "pgd_top1": rp.top1_success_rate}
        rows.append([label, f"{rd.top1_success_rate:.1%}",
                     f"{rp.top1_success_rate:.1%}"])
    table = format_table(["Variant", "DIVA top-1", "PGD top-1"], rows,
                         title=f"Ablation — best-iterate return ({arch})")
    results["table"] = table
    if verbose:
        print(table)
    save_results("ablation_keep_best", results)
    return results


def run_per_channel(cfg: Optional[ExperimentConfig] = None,
                    pipeline: Optional[Pipeline] = None,
                    arch: str = "resnet", verbose: bool = True) -> Dict:
    """Per-channel vs per-tensor weight quantization ablation."""
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    orig = pipe.original(arch)
    _, val, _ = pipe.datasets()

    rows = []
    results: Dict = {"arch": arch, "variants": {}}
    for label, per_ch in [("per-tensor", False), ("per-channel", True)]:
        quant = _adapt(pipe, arch, cfg.weight_bits, cfg.act_bits, per_ch)
        inst = instability_report(orig, quant, val.x, val.y)
        atk_set = pipe.attack_set([orig, quant], f"ablate-pc-{arch}-{per_ch}")
        kw = dict(eps=cfg.eps, alpha=cfg.alpha, steps=cfg.steps)
        rd = evaluate_attack(orig, quant, DIVA(orig, quant, c=cfg.c, **kw)
                             .generate(atk_set.x, atk_set.y),
                             atk_set.y, topk=cfg.topk)
        results["variants"][label] = {
            "quantized_accuracy": inst.adapted_accuracy,
            "instability": inst.deviation_instability,
            "diva_top1": rd.top1_success_rate,
        }
        rows.append([label, f"{inst.adapted_accuracy:.1%}",
                     f"{inst.deviation_instability:.1%}",
                     f"{rd.top1_success_rate:.1%}"])
    table = format_table(
        ["Weight grids", "Quantized acc", "Instability", "DIVA top-1"],
        rows, title=f"Ablation — weight grid granularity ({arch})")
    results["table"] = table
    if verbose:
        print(table)
    save_results("ablation_per_channel", results)
    return results
