"""Benchmark fixtures.

Benchmarks run the paper-scale configuration (see
``repro.experiments.config.ExperimentConfig.paper_scale``).  Heavy model
training happens once inside the session-scoped ``pipeline`` fixture
(memoized to ``.artifacts/`` on disk, so repeat runs skip it); each bench
then times only its experiment's own compute and prints the
paper-vs-measured comparison.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import ExperimentConfig, Pipeline
from repro.nn import set_default_dtype


@pytest.fixture(scope="session", autouse=True)
def _float32():
    set_default_dtype("float32")
    yield


@pytest.fixture(scope="session")
def cfg():
    # benchmarks run the deployment dtype; the config carries it so the
    # pipeline (and its artifact cache keys) agree with the fixture above
    return dataclasses.replace(ExperimentConfig.paper_scale(),
                               dtype="float32")


@pytest.fixture(scope="session")
def pipeline(cfg):
    return Pipeline(cfg)


def run_once(benchmark, fn):
    """Benchmark ``fn`` exactly once (experiments are minutes-scale; the
    statistical machinery of pytest-benchmark is not the point here)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
