"""Ablation benches for the reproduction's design choices (DESIGN.md §5).

These are not paper tables; they justify the scale substitutions the
paper-scale configuration makes (bit width, attack budget, best-iterate
bookkeeping, grid granularity) by showing the headline result's
sensitivity to each.
"""

from .conftest import run_once


def test_ablation_bits(benchmark, cfg, pipeline):
    from repro.experiments import exp_ablations
    res = run_once(benchmark,
                   lambda: exp_ablations.run_bits(cfg, pipeline=pipeline,
                                                  bit_widths=(8, 6, 4)))
    per = res["per_bits"]
    # coarser grids -> more divergence for the attack to exploit
    assert per[4]["instability"] >= per[8]["instability"]
    assert per[4]["diva_top1"] >= per[8]["diva_top1"]


def test_ablation_eps(benchmark, cfg, pipeline):
    from repro.experiments import exp_ablations
    res = run_once(benchmark,
                   lambda: exp_ablations.run_eps(cfg, pipeline=pipeline))
    per = res["per_eps"]
    # PGD's raw attack power grows monotonically with budget
    assert per["48/255"]["pgd_attack_only"] >= \
        per["8/255"]["pgd_attack_only"] - 0.02
    # DIVA's evasive success grows with budget (it needs room to steer
    # into divergence slivers), and dominates at the configured budget
    assert per["48/255"]["diva_top1"] >= per["8/255"]["diva_top1"]
    assert per["32/255"]["diva_top1"] > per["32/255"]["pgd_top1"]


def test_ablation_keep_best(benchmark, cfg, pipeline):
    from repro.experiments import exp_ablations
    res = run_once(benchmark,
                   lambda: exp_ablations.run_keep_best(cfg,
                                                       pipeline=pipeline))
    v = res["variants"]
    assert v["keep-best"]["diva_top1"] >= v["final-iterate"]["diva_top1"]


def test_ablation_per_channel(benchmark, cfg, pipeline):
    from repro.experiments import exp_ablations
    res = run_once(benchmark,
                   lambda: exp_ablations.run_per_channel(cfg,
                                                         pipeline=pipeline))
    v = res["variants"]
    # finer grids shrink the exploitable divergence
    assert v["per-tensor"]["instability"] >= \
        v["per-channel"]["instability"] - 0.02


def test_distilled_adaptation(benchmark, cfg, pipeline):
    from repro.experiments import exp_distilled
    res = run_once(benchmark,
                   lambda: exp_distilled.run(cfg, pipeline=pipeline))
    for arch, r in res["per_arch"].items():
        assert r["diva_top1"] >= r["pgd_top1"] - 0.05, arch
