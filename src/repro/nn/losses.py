"""Additional loss functions beyond the cross-entropy family in
``functional``."""

from __future__ import annotations

from typing import Union

import numpy as np

from . import functional as F
from .tensor import Tensor


def label_smoothing_cross_entropy(logits: Tensor, labels: np.ndarray,
                                  smoothing: float = 0.1,
                                  reduction: str = "mean") -> Tensor:
    """Cross-entropy against smoothed targets.

    Target distribution: ``1 - smoothing`` on the true class, the rest
    spread uniformly — a common regularizer for the original models the
    operator trains.
    """
    if not 0.0 <= smoothing < 1.0:
        raise ValueError(f"smoothing must be in [0, 1), got {smoothing}")
    labels = np.asarray(labels)
    n, k = logits.shape
    logp = F.log_softmax(logits, axis=-1)
    true_term = -logp.gather_rows(labels) * (1.0 - smoothing)
    uniform_term = -logp.sum(axis=-1) * (smoothing / k)
    loss = true_term + uniform_term
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def binary_cross_entropy_with_logits(logits: Tensor,
                                     targets: Union[Tensor, np.ndarray],
                                     reduction: str = "mean") -> Tensor:
    """Numerically-stable BCE on raw logits.

    Uses ``max(z, 0) - z*t + log(1 + exp(-|z|))``.
    """
    t = targets if isinstance(targets, Tensor) else Tensor(np.asarray(targets))
    stable = logits.maximum(0.0) - logits * t + \
        ((-(logits.abs())).exp() + 1.0).log()
    if reduction == "mean":
        return stable.mean()
    if reduction == "sum":
        return stable.sum()
    return stable


def multi_margin_loss(logits: Tensor, labels: np.ndarray,
                      margin: float = 1.0, reduction: str = "mean") -> Tensor:
    """Multi-class hinge: mean_j max(0, margin - z_y + z_j), j != y."""
    labels = np.asarray(labels)
    n, k = logits.shape
    true_vals = logits.gather_rows(labels).reshape(n, 1)
    margins = (logits - true_vals + margin).maximum(0.0)
    # zero out the true-class term (it contributes exactly `margin`)
    mask = np.ones((n, k))
    mask[np.arange(n), labels] = 0.0
    loss = (margins * Tensor(mask)).sum(axis=-1) * (1.0 / (k - 1))
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def huber_loss(pred: Tensor, target: Union[Tensor, np.ndarray],
               delta: float = 1.0, reduction: str = "mean") -> Tensor:
    """Quadratic near zero, linear in the tails."""
    t = target if isinstance(target, Tensor) else Tensor(np.asarray(target))
    diff = (pred - t).abs()
    quad = diff.minimum(delta)
    loss = quad * quad * 0.5 + (diff - quad) * delta
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss
