"""§5.4 — CW and Momentum PGD baselines.

Paper (mean top-1 evasive success): CW 25.5%, Momentum PGD 39.4%,
PGD 40.6% — neither alternative baseline beats plain PGD.
"""

from .conftest import run_once


def test_sec54(benchmark, cfg, pipeline):
    from repro.experiments import exp_sec54
    res = run_once(benchmark, lambda: exp_sec54.run(cfg, pipeline=pipeline))
    means = res["mean_top1"]
    # no oblivious baseline should dramatically beat PGD
    assert means["momentum_pgd"] <= means["pgd"] + 0.15
    assert means["cw"] <= means["pgd"] + 0.15
