"""Edge artifact serialization — the deployable "flatbuffer".

Stores a compiled :class:`~repro.edge.engine.EdgeModel` as an
``.npz`` of integer tensors plus an op program, so a device-side process
can run inference with nothing but this file and the engine (no float
weights ever leave the server, matching real edge deployments).

Only the op list is serialized: a loaded model re-plans its fused
per-shape :class:`~repro.edge.program.EdgeProgram` lazily on first
``predict``, so artifacts written before the compiled path existed run
through it unchanged.
"""

from __future__ import annotations

import json
import os
from typing import List

import numpy as np

from ..quantization.affine import QuantParams
from .engine import (Dequantize, EdgeModel, EdgeOp, QConv2d, QFlatten,
                     QLinear, QMaxPool2d, QReLU, QuantizeInput)


def _qp_to_dict(qp: QuantParams) -> dict:
    return {"scale": np.asarray(qp.scale).tolist(),
            "zero_point": np.asarray(qp.zero_point).tolist(),
            "qmin": qp.qmin, "qmax": qp.qmax, "axis": qp.axis}


def _qp_from_dict(d: dict) -> QuantParams:
    return QuantParams(scale=np.asarray(d["scale"]),
                       zero_point=np.asarray(d["zero_point"]),
                       qmin=int(d["qmin"]), qmax=int(d["qmax"]),
                       axis=d["axis"])


def save_edge_model(edge: EdgeModel, path: str) -> None:
    """Serialize the integer program + tensors to ``path`` (.npz)."""
    program: List[dict] = []
    tensors = {}
    for i, op in enumerate(edge.ops):
        if isinstance(op, QuantizeInput):
            program.append({"op": "quantize", "qp": _qp_to_dict(op.qp)})
        elif isinstance(op, QConv2d):
            tensors[f"w{i}"] = op.q_weight.astype(np.int8)
            tensors[f"b{i}"] = op.bias_q.astype(np.int64)
            program.append({"op": "conv2d", "w": f"w{i}", "b": f"b{i}",
                            "in_qp": _qp_to_dict(op.in_qp),
                            "w_qp": _qp_to_dict(op.w_qp),
                            "out_qp": _qp_to_dict(op.out_qp),
                            "stride": op.stride, "padding": op.padding,
                            "groups": op.groups})
        elif isinstance(op, QLinear):
            tensors[f"w{i}"] = op.q_weight.astype(np.int8)
            tensors[f"b{i}"] = op.bias_q.astype(np.int64)
            program.append({"op": "linear", "w": f"w{i}", "b": f"b{i}",
                            "in_qp": _qp_to_dict(op.in_qp),
                            "w_qp": _qp_to_dict(op.w_qp),
                            "out_qp": _qp_to_dict(op.out_qp)})
        elif isinstance(op, QReLU):
            program.append({"op": "relu", "in_qp": _qp_to_dict(op.in_qp),
                            "out_qp": _qp_to_dict(op.out_qp)})
        elif isinstance(op, QMaxPool2d):
            program.append({"op": "maxpool", "kernel": op.kernel,
                            "stride": op.stride, "padding": op.padding})
        elif isinstance(op, QFlatten):
            program.append({"op": "flatten"})
        elif isinstance(op, Dequantize):
            program.append({"op": "dequantize", "qp": _qp_to_dict(op.qp)})
        else:  # pragma: no cover - engine/serializer kept in sync
            raise TypeError(f"cannot serialize op {type(op).__name__}")
    meta = {"program": program, "num_classes": edge.num_classes}
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez_compressed(path, __meta__=np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8), **tensors)


def load_edge_model(path: str) -> EdgeModel:
    """Rebuild an :class:`EdgeModel` from :func:`save_edge_model` output."""
    with np.load(path) as npz:
        meta = json.loads(bytes(npz["__meta__"]).decode())
        tensors = {k: npz[k] for k in npz.files if k != "__meta__"}
    ops: List[EdgeOp] = []
    for spec in meta["program"]:
        kind = spec["op"]
        if kind == "quantize":
            ops.append(QuantizeInput(_qp_from_dict(spec["qp"])))
        elif kind == "conv2d":
            ops.append(QConv2d(tensors[spec["w"]].astype(np.int64),
                               tensors[spec["b"]],
                               _qp_from_dict(spec["in_qp"]),
                               _qp_from_dict(spec["w_qp"]),
                               _qp_from_dict(spec["out_qp"]),
                               stride=spec["stride"],
                               padding=spec["padding"],
                               groups=spec["groups"]))
        elif kind == "linear":
            ops.append(QLinear(tensors[spec["w"]].astype(np.int64),
                               tensors[spec["b"]],
                               _qp_from_dict(spec["in_qp"]),
                               _qp_from_dict(spec["w_qp"]),
                               _qp_from_dict(spec["out_qp"])))
        elif kind == "relu":
            ops.append(QReLU(_qp_from_dict(spec["in_qp"]),
                             _qp_from_dict(spec["out_qp"])))
        elif kind == "maxpool":
            ops.append(QMaxPool2d(spec["kernel"], spec["stride"],
                                  spec["padding"]))
        elif kind == "flatten":
            ops.append(QFlatten())
        elif kind == "dequantize":
            ops.append(Dequantize(_qp_from_dict(spec["qp"])))
        else:
            raise ValueError(f"unknown op in program: {kind!r}")
    return EdgeModel(ops, meta["num_classes"])
