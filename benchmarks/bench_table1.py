"""Table 1 — fp32 vs adapted accuracy and instability.

Paper numbers (ImageNet, int8): accuracy 72.1/70.1, 69.1/67.4, 73.5/71.0;
instability 8.1% / 6.3% / 7.9%.  Reproduced shape: adapted accuracy >=
~96% of original; instability several times the accuracy gap.
"""

from .conftest import run_once


def test_table1(benchmark, cfg, pipeline):
    from repro.experiments import exp_table1
    res = run_once(benchmark, lambda: exp_table1.run(cfg, pipeline=pipeline))
    for arch, r in res["architectures"].items():
        gap = r["original_accuracy"] - r["quantized_accuracy"]
        # instability dwarfs the accuracy gap (the paper's Table-1 point)
        assert r["deviation_instability"] >= max(gap, 0.0), arch
        assert r["accuracy_ratio"] >= 0.9, arch
