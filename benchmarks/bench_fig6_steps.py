"""Figure 6d — top-1 evasive success vs attack steps (ResNet).

Paper: PGD plateaus around 40.8% by step 7; DIVA keeps climbing and
reaches 96.9% by step 11.
"""

from .conftest import run_once


def test_fig6d(benchmark, cfg, pipeline):
    from repro.experiments import exp_fig6
    res = run_once(benchmark,
                   lambda: exp_fig6.run_steps(cfg, pipeline=pipeline))
    diva = res["curves"]["diva"]
    pgd = res["curves"]["pgd"]
    # DIVA dominates PGD at the end and keeps improving with steps
    assert diva[-1] > pgd[-1]
    assert diva[-1] >= diva[len(diva) // 2]
