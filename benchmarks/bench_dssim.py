"""§5.2 — DSSIM / imperceptibility of adversarial images.

Paper: all DSSIM < 0.0092 at eps=8/255 on 224x224.  Our eps is scaled
(32/255 on 16x16 — see config), so the absolute threshold scales; the
reproduced claim is DIVA is no more perceptible than PGD at equal budget.
"""

from .conftest import run_once


def test_dssim(benchmark, cfg, pipeline):
    from repro.experiments import exp_dssim
    res = run_once(benchmark, lambda: exp_dssim.run(cfg, pipeline=pipeline))
    pgd = res["per_attack"]["PGD"]
    diva = res["per_attack"]["DIVA"]
    assert diva["max_linf"] <= cfg.eps + 1e-6
    assert pgd["max_linf"] <= cfg.eps + 1e-6
    # DIVA no more visible than PGD (small slack for estimator noise)
    assert diva["mean_dssim"] <= pgd["mean_dssim"] + 0.02
