"""Paired-program attack engine: sweep-vs-sequential parity, cross-batch
work-stealing equivalence, paired-vs-separate executor bit-parity, the
executor-cache keying fix, and the experiment dtype policy."""

import dataclasses
import gc
import weakref

import numpy as np
import pytest

from repro.attacks import DIVA, PGD, PairedExecutor, TargetedDIVA, generate_grid
from repro.attacks.base import softmax_np, softmax_vjp
from repro.nn.graph import ScratchPool, compile_forward


@pytest.fixture(scope="module")
def pair_setup(request):
    """(original, adapted, attack set) trained pair from the shared
    session fixtures."""
    model = request.getfixturevalue("tiny_model")
    quant = request.getfixturevalue("tiny_quantized")
    train, val = request.getfixturevalue("tiny_dataset")
    from repro.data import select_attack_set
    atk = select_attack_set(val, [model, quant], per_class=4)
    return model, quant, atk


EPS = 32.0 / 255.0
ALPHA = 4.0 / 255.0


class TestPairedExecutor:
    def test_paired_matches_separate_bitwise(self, pair_setup):
        """One fused paired step must reproduce the two separate
        value_and_input_grad calls bit for bit (DIVA's Eq. 5 economics
        rely on the fusion being value-neutral)."""
        orig, quant, atk = pair_setup
        x, y = atk.x[:6], atk.y[:6]
        c = 1.0
        pe = PairedExecutor.compile((orig, quant), x)
        assert pe is not None
        atk_obj = DIVA(orig, quant, c=c)
        (zo, za), g = pe.value_and_input_grad(
            x, lambda zs: atk_obj._paired_seeds(zs, y, c))

        exo = compile_forward(orig, x)
        exa = compile_forward(quant, x)

        def seed(z, coeff):
            p = softmax_np(z)
            v = np.zeros_like(p)
            v[np.arange(len(y)), y] = coeff
            return softmax_vjp(p, v)

        zo_ref, go = exo.value_and_input_grad(x, lambda z: seed(z, 1.0))
        za_ref, ga = exa.value_and_input_grad(x, lambda z: seed(z, -c))
        np.testing.assert_array_equal(zo, zo_ref)
        np.testing.assert_array_equal(za, za_ref)
        np.testing.assert_array_equal(g, go + ga)

    def test_paired_shares_scratch_pool(self, pair_setup):
        orig, quant, atk = pair_setup
        pe = PairedExecutor.compile((orig, quant), atk.x[:4])
        pools = {id(prog._pool) for prog in pe.programs}
        assert len(pools) == 1
        pe.replay(atk.x[:4])
        # conv scratch got pooled (same-geometry layers deduplicate)
        pool = pe.programs[0]._pool
        assert any(key[0][0] == "conv_cols" for key in pool._bufs)

    def test_compile_fallback_is_none(self):
        class Opaque:
            def eval(self):
                return self

            def __call__(self, x):
                return "nope"

        assert PairedExecutor.compile((Opaque(),), np.zeros((2, 1, 4, 4))) is None

    @pytest.mark.parametrize("cls", [DIVA, TargetedDIVA])
    def test_paired_generate_matches_eager(self, pair_setup, cls):
        orig, quant, atk = pair_setup
        kwargs = dict(eps=EPS, alpha=ALPHA, steps=6)
        if cls is TargetedDIVA:
            kwargs["target_class"] = 1
        fast = cls(orig, quant, **kwargs).generate(atk.x, atk.y)
        slow_atk = cls(orig, quant, **kwargs)
        slow_atk.use_compiled = False
        slow = slow_atk.generate(atk.x, atk.y)
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-12)


class TestWorkStealing:
    """Scheduling must be value-neutral: per-sample trajectories do not
    depend on which other samples share the gradient batch."""

    def test_small_capacity_equals_full_batch(self, pair_setup):
        orig, quant, atk = pair_setup
        kw = dict(eps=EPS, alpha=ALPHA, steps=8)
        ref = DIVA(orig, quant, **kw).generate(atk.x, atk.y, batch_size=64)
        stolen = DIVA(orig, quant, **kw).generate(atk.x, atk.y, batch_size=3)
        np.testing.assert_array_equal(ref, stolen)

    def test_equals_per_sample_runs_under_uneven_success(self, pair_setup):
        """The trained pair produces genuinely uneven success steps, so
        slots retire and refill at different times; every sample must
        still match its own single-sample run."""
        orig, quant, atk = pair_setup
        kw = dict(eps=EPS, alpha=ALPHA, steps=8)
        batch = DIVA(orig, quant, **kw).generate(atk.x, atk.y, batch_size=5)
        atk_solo = DIVA(orig, quant, **kw)
        for i in range(len(atk.x)):
            solo = atk_solo.generate(atk.x[i:i + 1], atk.y[i:i + 1])
            np.testing.assert_array_equal(batch[i:i + 1], solo)

    def test_pgd_steals_too(self, pair_setup):
        orig, quant, atk = pair_setup
        kw = dict(eps=EPS, alpha=ALPHA, steps=8)
        ref = PGD(quant, **kw).generate(atk.x, atk.y)
        stolen = PGD(quant, **kw).generate(atk.x, atk.y, batch_size=4)
        np.testing.assert_array_equal(ref, stolen)


class TestGenerateSweep:
    def test_sweep_matches_sequential_per_variant(self, pair_setup):
        orig, quant, atk = pair_setup
        steps = 6
        variants = [{"c": 0.1}, {"c": 1.0}, {"eps": 16 / 255, "alpha": 2 / 255},
                    {"c": 5.0, "eps": 48 / 255}, {"keep_best": False}]
        sweep = DIVA(orig, quant, c=1.0, eps=EPS, alpha=ALPHA,
                     steps=steps).generate_sweep(atk.x, atk.y, variants)
        assert len(sweep) == len(variants)
        for v, got in zip(variants, sweep):
            ref_atk = DIVA(orig, quant, c=v.get("c", 1.0),
                           eps=v.get("eps", EPS), alpha=v.get("alpha", ALPHA),
                           steps=steps, keep_best=v.get("keep_best", True))
            np.testing.assert_array_equal(got, ref_atk.generate(atk.x, atk.y))

    def test_sweep_rejects_unknown_params(self, pair_setup):
        orig, quant, atk = pair_setup
        with pytest.raises(ValueError, match="unsupported sweep parameter"):
            DIVA(orig, quant).generate_sweep(atk.x, atk.y, [{"steps": 3}])

    def test_pgd_eps_sweep(self, pair_setup):
        orig, quant, atk = pair_setup
        variants = [{"eps": e, "alpha": e / 8} for e in (8 / 255, 32 / 255)]
        sweep = PGD(quant, steps=6).generate_sweep(atk.x, atk.y, variants)
        for v, got in zip(variants, sweep):
            ref = PGD(quant, eps=v["eps"], alpha=v["alpha"], steps=6)
            np.testing.assert_array_equal(got, ref.generate(atk.x, atk.y))

    def test_momentum_pgd_falls_back_to_sequential(self, pair_setup):
        from repro.attacks import MomentumPGD
        orig, quant, atk = pair_setup
        variants = [{"eps": 16 / 255, "alpha": 2 / 255}, {}]
        sweep = MomentumPGD(quant, eps=EPS, alpha=ALPHA,
                            steps=4).generate_sweep(atk.x, atk.y, variants)
        for v, got in zip(variants, sweep):
            ref = MomentumPGD(quant, eps=v.get("eps", EPS),
                              alpha=v.get("alpha", ALPHA), steps=4)
            np.testing.assert_array_equal(got, ref.generate(atk.x, atk.y))

    def test_generate_grid_mixes_plain_and_sweeps(self, pair_setup):
        orig, quant, atk = pair_setup
        kw = dict(eps=EPS, alpha=ALPHA, steps=4)
        advs = generate_grid(
            {"pgd": PGD(quant, **kw), "diva": DIVA(orig, quant, **kw)},
            atk.x, atk.y, variants={"diva": [{"c": 0.5}, {"c": 2.0}]})
        np.testing.assert_array_equal(
            advs["pgd"], PGD(quant, **kw).generate(atk.x, atk.y))
        assert len(advs["diva"]) == 2
        np.testing.assert_array_equal(
            advs["diva"][1],
            DIVA(orig, quant, c=2.0, **kw).generate(atk.x, atk.y))


class TestExecutorCacheKeying:
    """Regression for the (id(model), shape) cache-key collision: entries
    must pin the model they were compiled from."""

    def _fresh(self, seed=3):
        from repro.models import build_model
        rng = np.random.default_rng(11)
        m = build_model("lenet", num_classes=6, in_channels=1, image_size=12,
                        width=4, seed=seed)
        m.eval()
        x = rng.random((4, 1, 12, 12))
        y = np.zeros(4, dtype=int)
        return m, x, y

    def test_cache_entry_pins_model(self):
        model, x, y = self._fresh()
        atk = PGD(model, steps=2, eps=0.1, alpha=0.05)
        atk.generate(x, y)
        wr = weakref.ref(model)
        # rebind the attack's model: the only strong reference to the old
        # model is now the cache entry itself — exactly what keeps its id
        # from being recycled for a different model
        atk.model, model = self._fresh(seed=4)[0], None
        gc.collect()
        assert wr() is not None
        assert any(entry[0] is wr() for entry in atk._exec_cache.values())

    def test_rebound_model_gets_its_own_program(self):
        model_a, x, y = self._fresh(seed=3)
        atk = PGD(model_a, steps=3, eps=0.1, alpha=0.05)
        first = atk.generate(x, y)
        model_b = self._fresh(seed=17)[0]
        atk.model = model_b
        rebound = atk.generate(x, y)
        ref = PGD(model_b, steps=3, eps=0.1, alpha=0.05).generate(x, y)
        np.testing.assert_allclose(rebound, ref, rtol=0, atol=1e-12)
        assert not np.array_equal(first, rebound)
        # both entries alive, each pinning its own model
        models = [entry[0] for entry in atk._exec_cache.values()]
        assert any(m is model_a for m in models)
        assert any(m is model_b for m in models)


class TestDtypePolicy:
    def test_dtype_keys_artifact_cache(self):
        from repro.experiments import ExperimentConfig
        a = ExperimentConfig.smoke()
        b = dataclasses.replace(a, dtype="float32")
        assert a.cache_key("orig", "resnet") != b.cache_key("orig", "resnet")

    def test_pipeline_applies_dtype_to_attack_set(self, tmp_path, request):
        from repro.experiments import ArtifactStore, ExperimentConfig, Pipeline
        from repro.nn import get_default_dtype
        cfg = dataclasses.replace(ExperimentConfig.smoke(), dtype="float32",
                                  train_epochs=1, num_classes=4,
                                  train_per_class=8, val_per_class=6,
                                  attack_per_class=2)
        pipe = Pipeline(cfg, store=ArtifactStore(str(tmp_path)))
        assert get_default_dtype() == np.float32
        orig = pipe.original("resnet")
        atk = pipe.attack_set([orig], "dtype-test")
        assert atk.x.dtype == np.float32

    def test_coexisting_pipelines_keep_their_own_dtype(self, tmp_path):
        """Constructing a second pipeline must not poison what the first
        one builds afterwards: accessors re-pin their own policy."""
        from repro.experiments import ArtifactStore, ExperimentConfig, Pipeline
        cfg = dataclasses.replace(ExperimentConfig.smoke(), train_epochs=1,
                                  num_classes=4, train_per_class=8,
                                  val_per_class=6, attack_per_class=2)
        pipe64 = Pipeline(cfg, store=ArtifactStore(str(tmp_path / "a")))
        Pipeline(dataclasses.replace(cfg, dtype="float32"),
                 store=ArtifactStore(str(tmp_path / "b")))   # moves the global
        model = pipe64.original("resnet")
        params = list(model.parameters())
        assert params[0].data.dtype == np.float64

    def test_run_dtype_delta_records_deltas(self, tmp_path, monkeypatch):
        from repro.experiments import ArtifactStore, ExperimentConfig
        from repro.experiments import exp_fig6
        monkeypatch.chdir(tmp_path)      # save_results writes under cwd
        cfg = dataclasses.replace(
            ExperimentConfig.smoke(), train_epochs=1, qat_epochs=1,
            num_classes=4, train_per_class=8, val_per_class=6,
            surrogate_per_class=4, attack_per_class=2, steps=3, width=4)
        res = exp_fig6.run_dtype_delta(
            cfg, verbose=False, store=ArtifactStore(str(tmp_path / "store")))
        assert set(res["per_dtype"]) == {"float64", "float32"}
        for name in ("pgd", "diva"):
            assert name in res["dtype_deltas"]
            assert -1.0 <= res["dtype_deltas"][name] <= 1.0
