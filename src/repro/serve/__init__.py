"""Attack-serving layer: shared plan caches, request coalescing, futures,
and the fault-tolerant control plane.

The paper's threat model is multi-tenant by construction — many users
query one deployed edge artifact while attackers probe the (original,
adapted) pair — and the ROADMAP's north star asks for heavy-traffic
serving on top of the four compiled-executor legs.  This package is
that layer:

- :class:`PlanCache` (:mod:`repro.serve.cache`) — one budgeted LRU
  store for every compiled plan (forward replays, paired attack
  programs, integer edge programs), replacing the per-attack and
  per-edge-model ad-hoc dicts; pinned failures re-probe after a
  cool-down so transient compile faults heal;
- :class:`Scheduler` (:mod:`repro.serve.scheduler`) — arrival-order
  dispatch that coalesces compatible requests (same serve signature,
  same shape/dtype) into single scheduled passes, starvation-free by
  construction, and walks failing dispatches down the degradation
  ladder (coalesced-compiled → solo-compiled → eager);
- :class:`ServeSession` (:mod:`repro.serve.session`) — the front end:
  submit heterogeneous jobs (with tenants and deadlines), get per-job
  futures, results bit-identical to running each job alone; admission
  control bounds the queue and the session's stats surface accounts
  every accepted/rejected/shed/degraded job;
- :mod:`repro.serve.resilience` — the shared vocabulary: the
  :class:`ServeError` taxonomy, clocks, deadline tokens, the
  :class:`CircuitBreaker` quarantine and the
  :class:`AdmissionController`;
- :mod:`repro.serve.faults` — the deterministic, seeded fault-injection
  harness (named injection points in plan build, validation, kernel
  dispatch and queue timing) behind ``make chaos`` and ``repro-exp
  serve --faults``;
- :mod:`repro.serve.workload` — recorded mixed workloads, replayable
  sequentially or through a session (``repro-exp serve``), with parity
  verification, per-job outcome records and the ``serve_throughput``
  bench protocol;
- :mod:`repro.serve.net` — the networked service boundary: a
  length-prefixed CRC-checked frame protocol, :class:`ServeServer`
  (backpressure as structured responses, health/readiness probes,
  graceful drain, bounded idempotency window) and :class:`ServeClient`
  (deadlines, seeded retry/backoff, idempotency keys), with
  ``net.client.*`` frame-fault points wired into the chaos harness;
- :mod:`repro.serve.journal` — the write-ahead journal of accepted
  jobs that makes a killed-and-restarted server replay and re-report
  bit-identical outcomes;
- :mod:`repro.serve.pool` — the worker-pool executor behind the
  scheduler: waves of independent dispatch groups planned
  single-threaded, serialized per conflict component, placed by a
  seeded steal pass onto N workers (each hitting its
  :class:`ShardedPlanCache` / :class:`ShardedCircuitBreaker` shards)
  and published through a single-writer result plane — per-job results
  bit-identical to sequential dispatch at every worker count.
"""

from .cache import PlanCache, ShardedPlanCache, plan_nbytes
from .faults import FaultInjector, FaultSpec, InjectedFault, \
    default_chaos_specs, default_net_chaos_specs, inject
from .journal import Journal, pack_arrays, unpack_arrays
from .net import (FrameParser, NetError, ProtocolError, RetryError,
                  ServeClient, ServeServer, encode_frame, replay_net,
                  verify_net_parity)
from .pool import PoolScheduler, StealRecord
from .resilience import (LADDER, AdmissionController, AdmissionError,
                         CircuitBreaker, Clock, DeadlineError,
                         DeadlineToken, JobError, ManualClock, OffsetClock,
                         QuotaError, ServeError, ShardedCircuitBreaker,
                         ShedError)
from .scheduler import (OUTCOMES, DispatchContext, DispatchRecord, Job,
                        JobFuture, Scheduler)
from .session import ServeSession
from .workload import (Workload, assign_arrivals, attack_factory,
                       build_models, build_workload, chaos_replay,
                       load_workload, mixed_workload_spec,
                       replay_sequential, replay_serve, save_workload,
                       verify_parity)

__all__ = [
    "PlanCache", "ShardedPlanCache", "plan_nbytes",
    "FaultInjector", "FaultSpec", "InjectedFault", "default_chaos_specs",
    "default_net_chaos_specs", "inject",
    "Journal", "pack_arrays", "unpack_arrays",
    "FrameParser", "NetError", "ProtocolError", "RetryError",
    "ServeClient", "ServeServer", "encode_frame", "replay_net",
    "verify_net_parity",
    "PoolScheduler", "StealRecord",
    "LADDER", "AdmissionController", "AdmissionError", "CircuitBreaker",
    "Clock", "DeadlineError", "DeadlineToken", "JobError", "ManualClock",
    "OffsetClock", "QuotaError", "ServeError", "ShardedCircuitBreaker",
    "ShedError",
    "OUTCOMES", "DispatchContext", "DispatchRecord", "Job", "JobFuture",
    "Scheduler", "ServeSession",
    "Workload", "assign_arrivals", "attack_factory", "build_models",
    "build_workload", "chaos_replay", "load_workload",
    "mixed_workload_spec", "replay_sequential", "replay_serve",
    "save_workload", "verify_parity",
]
