"""LeNet-style convnet for the digit experiments (Fig 4 PCA study).

The paper uses ResNet50 on MNIST for the representation analysis; at this
reproduction's scale a LeNet gives the same qualitative picture (clean
per-digit clusters in the penultimate space) at a fraction of the cost,
and a digit-ResNet is also available through the registry for parity.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from ..nn.module import Module
from ..nn.tensor import Tensor


class LeNet(Module):
    """conv5-pool-conv5-pool-fc120-fc84-fc{classes}, ReLU activations.

    Bias-carrying convs and no batch norm keep this model compilable by
    the integer edge engine (:mod:`repro.edge`).
    """

    def __init__(self, num_classes: int = 10, in_channels: int = 1,
                 image_size: int = 28, width: int = 6, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.num_classes = num_classes
        self.conv1 = Conv2d(in_channels, width, 5, padding=2, rng=rng)
        self.relu1 = ReLU()
        self.pool1 = MaxPool2d(2)
        self.conv2 = Conv2d(width, width * 3, 5, padding=0, rng=rng)
        self.relu2 = ReLU()
        self.pool2 = MaxPool2d(2)
        self.flat = Flatten()
        side = ((image_size // 2) - 4) // 2
        flat_dim = width * 3 * side * side
        self.fc1 = Linear(flat_dim, 60, rng=rng)
        self.relu3 = ReLU()
        self.fc2 = Linear(60, 42, rng=rng)
        self.relu4 = ReLU()
        self.fc3 = Linear(42, num_classes, rng=rng)
        self.feature_dim = 42

    def features(self, x: Tensor) -> Tensor:
        out = self.pool1(self.relu1(self.conv1(x)))
        out = self.pool2(self.relu2(self.conv2(out)))
        out = self.relu3(self.fc1(self.flat(out)))
        return self.relu4(self.fc2(out))

    def forward(self, x: Tensor) -> Tensor:
        return self.fc3(self.features(x))

    def edge_layers(self):
        """Ordered layer sequence for edge compilation (feed-forward)."""
        return [self.conv1, self.relu1, self.pool1,
                self.conv2, self.relu2, self.pool2,
                self.flat, self.fc1, self.relu3, self.fc2, self.relu4,
                self.fc3]
