"""§6 targeted attack — steer the face model to chosen identities.

Paper: probing 10 target people, the attack reaches on average a set of
8.3 of them.
"""

from .conftest import run_once


def test_targeted(benchmark, cfg, pipeline):
    from repro.experiments import exp_targeted
    res = run_once(benchmark,
                   lambda: exp_targeted.run(cfg, pipeline=pipeline,
                                            n_targets=10))
    # a majority of probed identities should be reachable
    assert res["targets_reachable"] >= res["targets_probed"] // 2
