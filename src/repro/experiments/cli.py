"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    repro-exp table1                 # Table 1 at paper-scale config
    repro-exp fig6 --smoke           # Fig 6 at the tiny test scale
    repro-exp all                    # the full grid (minutes on CPU)
    repro-exp serve --smoke          # replay a recorded mixed workload
                                     # through the serving layer and
                                     # verify bit-parity vs sequential
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict

from ..nn import set_default_dtype
from .config import ExperimentConfig
from .pipeline import Pipeline


def _registry() -> Dict[str, Callable]:
    from . import (exp_ablations, exp_distilled, exp_dssim, exp_fig1,
                   exp_fig2, exp_fig4, exp_fig6, exp_fig7, exp_fig8,
                   exp_fig10, exp_sec54, exp_sec55, exp_table1, exp_table2,
                   exp_targeted)
    return {
        "table1": exp_table1.run,
        "fig1": exp_fig1.run,
        "fig2": exp_fig2.run,
        "fig4": exp_fig4.run,
        "fig6": exp_fig6.run,
        "fig6d": exp_fig6.run_steps,
        "table2": exp_table2.run,
        "fig7": exp_fig7.run,
        "dssim": exp_dssim.run,
        "sec54": exp_sec54.run,
        "sec55": exp_sec55.run,
        "fig8": exp_fig8.run,
        "fig10": exp_fig10.run,
        "targeted": exp_targeted.run,
        "ablation-bits": exp_ablations.run_bits,
        "ablation-eps": exp_ablations.run_eps,
        "ablation-keep-best": exp_ablations.run_keep_best,
        "ablation-per-channel": exp_ablations.run_per_channel,
        "distilled": exp_distilled.run,
    }


def _run_serve(args) -> int:
    """Replay a recorded mixed workload sequentially and through a
    :class:`~repro.serve.ServeSession`, assert bit-parity, and print
    the aggregate throughput comparison.

    With ``--faults`` the replay instead runs under the deterministic
    chaos injector (:mod:`repro.serve.faults`): every non-rejected,
    non-deadline job must still come out bit-identical to its solo run,
    and the per-outcome breakdown is printed.
    """
    from ..serve import (build_workload, load_workload, mixed_workload_spec,
                         verify_parity)
    spec = (load_workload(args.workload) if args.workload
            else mixed_workload_spec(scale=1 if args.smoke else 2,
                                     seed=args.seed))
    float_coalesce = args.float_coalesce != "off"
    print(f"=== serve: workload {spec['name']} "
          f"({len(spec['jobs'])} jobs, float coalescing "
          f"{'on' if float_coalesce else 'off'}) ===")
    t0 = time.time()
    if args.faults:
        from ..serve import chaos_replay
        out = chaos_replay(build_workload(spec), capacity=args.capacity,
                           seed=args.fault_seed,
                           deadline_s=(args.deadline_ms / 1e3
                                       if args.deadline_ms else None),
                           float_coalesce=float_coalesce)
        print(f"  chaos OK: every surviving job bit-identical, every "
              f"refusal structured (fault seed {args.fault_seed})")
        breakdown = ", ".join(f"{k}={v}" for k, v in
                              sorted(out["outcome_counts"].items()))
        print(f"  outcomes   {breakdown}  ({out['rows']} rows, "
              f"{out['jobs']} jobs)")
        fired = sum(n for kinds in out["faults_fired"].values()
                    for n in kinds.values())
        print(f"  faults     {fired} fired across "
              f"{len(out['faults_fired'])} points; "
              f"{out['retry_dispatches']} ladder retries, "
              f"{out['quarantine']['trips']} quarantine trips, "
              f"{out['quarantine']['heals']} heals")
        print(f"  admission  {out['admission']['accepted']} accepted / "
              f"{out['admission']['rejected']} rejected / "
              f"{out['admission']['shed']} shed")
    else:
        out = verify_parity(build_workload(spec), capacity=args.capacity,
                            float_coalesce=float_coalesce)
        print(f"  parity OK: every job bit-identical to its solo run")
        print(f"  sequential {out['sequential_s'] * 1e3:8.1f} ms  "
              f"({out['rows']} rows, {out['jobs']} jobs)")
        print(f"  served     {out['serve_s'] * 1e3:8.1f} ms  "
              f"({out['dispatches']} dispatches, "
              f"{out['coalesced_dispatches']} coalesced)")
        print(f"  aggregate throughput {out['throughput_ratio']:.2f}x; "
              f"plan cache {out['plan_cache']['hits']} hits / "
              f"{out['plan_cache']['misses']} misses")
    print(f"[serve done in {time.time() - t0:.1f}s]")
    return 0


def main(argv=None) -> int:
    registry = _registry()
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(registry) + ["all", "report", "serve"],
                        help="which table/figure to regenerate, 'report' "
                             "to rebuild EXPERIMENTS.md from existing "
                             "results, or 'serve' to replay a recorded "
                             "mixed workload through the serving layer")
    parser.add_argument("--smoke", action="store_true",
                        help="run at the tiny test scale (fast, inaccurate)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workload", default=None, metavar="PATH",
                        help="serve: JSON workload spec to replay "
                             "(default: the built-in mixed workload)")
    parser.add_argument("--capacity", type=int, default=64,
                        help="serve: scheduler slot capacity")
    parser.add_argument("--faults", action="store_true",
                        help="serve: replay under the deterministic chaos "
                             "fault injector and print the per-outcome "
                             "breakdown")
    parser.add_argument("--fault-seed", type=int,
                        default=int(os.environ.get("REPRO_FAULT_SEED", "0")),
                        help="serve: seed for --faults (default: "
                             "$REPRO_FAULT_SEED or 0)")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="serve: per-job deadline in milliseconds for "
                             "--faults replays (manual-clock time)")
    parser.add_argument("--float-coalesce", choices=("on", "off"),
                        default="on",
                        help="serve: coalesce float-predict jobs (and mix "
                             "them into attack dispatch rounds) under the "
                             "row-reproducible GEMM mode; 'off' serves "
                             "every float job solo (the parity gate runs "
                             "either way)")
    args = parser.parse_args(argv)

    set_default_dtype("float32")
    if args.experiment == "report":
        from .report import write_report
        print(f"wrote {write_report()}")
        return 0
    if args.experiment == "serve":
        return _run_serve(args)

    base = (ExperimentConfig.smoke() if args.smoke
            else ExperimentConfig.paper_scale())
    import dataclasses
    cfg = dataclasses.replace(base, seed=args.seed)
    pipe = Pipeline(cfg)

    names = sorted(registry) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        print(f"=== {name} ===")
        registry[name](cfg, pipeline=pipe)
        print(f"[{name} done in {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
