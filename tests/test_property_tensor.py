"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor

from .conftest import numerical_gradient

SETTINGS = dict(max_examples=25, deadline=None)

small_floats = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5),
    elements=st.floats(-5, 5, allow_nan=False, width=64),
)


@given(small_floats)
@settings(**SETTINGS)
def test_add_commutative(a):
    t = Tensor(a)
    assert np.allclose((t + t).data, (2.0 * t).data)


@given(small_floats)
@settings(**SETTINGS)
def test_relu_idempotent(a):
    t = Tensor(a)
    once = t.relu()
    twice = once.relu()
    assert np.array_equal(once.data, twice.data)


@given(small_floats)
@settings(**SETTINGS)
def test_exp_log_inverse(a):
    t = Tensor(np.abs(a) + 0.1)
    assert np.allclose(t.log().exp().data, t.data, rtol=1e-9)


@given(small_floats)
@settings(**SETTINGS)
def test_sum_grad_is_ones(a):
    t = Tensor(a, requires_grad=True)
    t.sum().backward()
    assert np.allclose(t.grad, np.ones_like(a))


@given(small_floats)
@settings(**SETTINGS)
def test_mean_grad_uniform(a):
    t = Tensor(a, requires_grad=True)
    t.mean().backward()
    assert np.allclose(t.grad, np.full(a.shape, 1.0 / a.size))


@given(small_floats)
@settings(**SETTINGS)
def test_mul_gradient_numerically(a):
    t = Tensor(a.copy(), requires_grad=True)
    (t * t).sum().backward()
    assert np.allclose(t.grad, 2 * a, atol=1e-8)


@given(hnp.arrays(dtype=np.float64, shape=st.tuples(
    st.integers(1, 4), st.integers(1, 4)),
    elements=st.floats(-3, 3, allow_nan=False, width=64)))
@settings(**SETTINGS)
def test_softmax_properties(z):
    from repro.nn import functional as F
    p = F.softmax(Tensor(z), axis=-1).data
    assert np.allclose(p.sum(axis=-1), 1.0)
    assert (p >= 0).all() and (p <= 1).all()
    # shift invariance
    p2 = F.softmax(Tensor(z + 100.0), axis=-1).data
    assert np.allclose(p, p2, atol=1e-9)


@given(small_floats, st.floats(-2, 2), st.floats(0.1, 2))
@settings(**SETTINGS)
def test_clip_bounds(a, lo, width):
    hi = lo + width
    out = Tensor(a).clip(lo, hi).data
    assert (out >= lo - 1e-12).all() and (out <= hi + 1e-12).all()


@given(small_floats)
@settings(**SETTINGS)
def test_reshape_preserves_content(a):
    t = Tensor(a)
    flat = t.reshape(a.size)
    assert np.array_equal(np.sort(flat.data), np.sort(a.ravel()))


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=20, deadline=None)
def test_random_graph_gradcheck(seed):
    """Random small computation graphs pass numerical gradient checks."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(2, 3))
    b = rng.normal(size=(3,))

    def build(at, bt):
        x = at * bt + at
        x = x.tanh() + (x * x + 0.5).sqrt()
        return (x.sum(axis=1) * 0.5).max()

    at = Tensor(a.copy(), requires_grad=True)
    bt = Tensor(b.copy(), requires_grad=True)
    build(at, bt).backward()
    f = lambda: float(build(Tensor(at.data), Tensor(bt.data)).data)
    assert np.abs(numerical_gradient(f, at.data) - at.grad).max() < 1e-5
    assert np.abs(numerical_gradient(f, bt.data) - bt.grad).max() < 1e-5
