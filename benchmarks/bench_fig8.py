"""Figure 8 — attacks on pruned and pruned+quantized models (§5.6).

Paper: DIVA >= 97.8% top-1/top-5 and always above PGD; instability of
pruning is much larger than quantization's (17.1-33.5%), so PGD gets
closer than in the quantization setting.
"""

from .conftest import run_once


def test_fig8(benchmark, cfg, pipeline):
    from repro.experiments import exp_fig8
    res = run_once(benchmark, lambda: exp_fig8.run(cfg, pipeline=pipeline))
    for track in ("pruned", "pruned_quantized"):
        for arch, r in res[track].items():
            assert r["diva"]["top1"] >= r["pgd"]["top1"], (track, arch)
    # pruning's divergence dwarfs quantization's (Table 1 vs §5.6)
    import json
    mean_inst = sum(r["instability"] for r in res["pruned"].values()) / 3
    assert mean_inst > 0.0
