"""Table 1: original vs quantized accuracy and prediction instability.

Paper's rows (ImageNet, int8 QAT):

    ResNet50:    72.1% / 70.1%, deviations 1510/925, instability 8.1%
    MobileNet:   69.1% / 67.4%, deviations 1199/677, instability 6.3%
    DenseNet121: 73.5% / 71.0%, deviations 1567/816, instability 7.9%

The claim reproduced: the adapted model keeps >=96% of the original's
accuracy, yet the *per-sample* deviation rate (instability) is several
times the accuracy gap.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..metrics import instability_report
from .config import ARCHITECTURES, ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results


def run(cfg: Optional[ExperimentConfig] = None,
        pipeline: Optional[Pipeline] = None, verbose: bool = True) -> Dict:
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    _, val, _ = pipe.datasets()

    rows = []
    results: Dict = {"architectures": {}}
    for arch in ARCHITECTURES:
        orig = pipe.original(arch)
        quant = pipe.quantized(arch)
        rep = instability_report(orig, quant, val.x, val.y)
        results["architectures"][arch] = {
            "original_accuracy": rep.original_accuracy,
            "quantized_accuracy": rep.adapted_accuracy,
            "orig_correct_quant_incorrect": rep.orig_correct_adapted_incorrect,
            "orig_incorrect_quant_correct": rep.orig_incorrect_adapted_correct,
            "deviation_instability": rep.deviation_instability,
            "total_instability": rep.instability,
            "accuracy_ratio": rep.adapted_accuracy / max(rep.original_accuracy, 1e-9),
            "n": rep.total,
        }
        rows.append([arch, f"{rep.original_accuracy:.1%}",
                     f"{rep.adapted_accuracy:.1%}",
                     rep.orig_correct_adapted_incorrect,
                     rep.orig_incorrect_adapted_correct,
                     f"{rep.deviation_instability:.1%}"])
    table = format_table(
        ["Architecture", "Original Acc", "Quantized Acc",
         "Orig OK & Quant X", "Orig X & Quant OK", "Instability"],
        rows, title="Table 1 — accuracy and instability (fp32 vs adapted)")
    results["table"] = table
    if verbose:
        print(table)
    save_results("table1", results)
    return results
