"""Chaos suite: the serving control plane under deterministic fault
injection.

Every test drives a :class:`~repro.serve.resilience.ManualClock` — time
moves only when the injector's latency faults advance it — so a given
``(workload, specs, seed)`` triple replays bit-for-bit.  The seed comes
from ``$REPRO_FAULT_SEED`` (default 0, the ``make chaos`` pin) so CI can
sweep seeds without touching the tests.

The invariants, shared with ``repro-exp serve --faults``:

- no hangs, no silent drops — every future resolves with an outcome;
- no silent corruption — every ``ok`` job is bit-identical to its solo
  fault-free run, and every degraded rung change is value-neutral;
- structured failures — refusals and dead jobs raise ServeError
  subclasses, chained to their root cause;
- flagged degradation — deadline-expired jobs return best-so-far
  batches marked ``deadline-degraded``, never partial silence.
"""

import os

import numpy as np
import pytest

from repro.attacks import DIVA, PGD
from repro.edge import compile_edge
from repro.models import build_model
from repro.quantization import calibrate, prepare_qat
from repro.serve import (AdmissionError, FaultInjector, FaultSpec,
                         ManualClock, QuotaError, ServeSession, ShedError,
                         build_workload, chaos_replay, inject,
                         mixed_workload_spec)
from repro.training import predict_labels

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


@pytest.fixture(scope="module")
def pair():
    """Untrained resnet + frozen 8-bit adaptation with self-labels."""
    rng = np.random.default_rng(0)
    x = rng.random((16, 3, 12, 12)).astype(np.float32)
    orig = build_model("resnet", num_classes=6, width=4, seed=0)
    orig.eval()
    quant = prepare_qat(orig, weight_bits=8)
    calibrate(quant, x)
    quant.freeze()
    quant.eval()
    y = predict_labels(orig, x)
    return orig, quant, x, y


def _fresh_edge():
    rng = np.random.default_rng(1)
    x = rng.random((16, 1, 12, 12)).astype(np.float32)
    lenet = build_model("lenet", num_classes=6, in_channels=1,
                        image_size=12, width=4, seed=3)
    lenet.eval()
    q = prepare_qat(lenet, weight_bits=8, act_bits=8, per_channel=True)
    calibrate(q, x)
    q.freeze()
    return compile_edge(q, 6), x


class TestChaosReplay:
    def test_mixed_workload_survives_default_chaos(self):
        """The acceptance run: the full default fault menu (plan-build
        errors, validation corruption, dispatch errors, queue/step
        latency) over the mixed workload.  chaos_replay raises if any
        invariant breaks; here we pin the accounting."""
        spec = mixed_workload_spec(scale=1)
        spec["steps"] = 3
        out = chaos_replay(build_workload(spec), capacity=32,
                           seed=FAULT_SEED, deadline_s=0.4)
        assert sum(out["outcome_counts"].values()) == out["jobs"] == 15
        assert out["faults_fired"]                  # chaos actually ran
        assert out["clock_s"] > 0                   # latency faults ticked
        # at least one dispatch fault forced a walk down the ladder
        assert out["retry_dispatches"] + out["quarantine"]["trips"] >= 1

    def test_replay_is_deterministic(self):
        spec = mixed_workload_spec(scale=1)
        spec["steps"] = 2
        a = chaos_replay(build_workload(spec), capacity=32, seed=FAULT_SEED)
        b = chaos_replay(build_workload(spec), capacity=32, seed=FAULT_SEED)
        assert a["outcome_counts"] == b["outcome_counts"]
        assert a["faults_fired"] == b["faults_fired"]
        assert a["clock_s"] == b["clock_s"]


class TestDegradationLadder:
    def test_dispatch_fault_degrades_then_heals(self, pair):
        """One injected dispatch error: the job retries solo-compiled
        (bit-identical), the key is quarantined, and a cool-down later
        the probe walks it back to coalesced-compiled."""
        orig, quant, x, y = pair
        clock = ManualClock()
        inj = FaultInjector([FaultSpec("dispatch.attack", "error",
                                       rate=1.0, max_fires=1)],
                            seed=FAULT_SEED, clock=clock)
        session = ServeSession(capacity=16, clock=clock,
                               quarantine_cooldown_s=1.0)
        ref = PGD(quant, steps=2).generate(x[:4], y[:4])
        with inject(inj):
            got = session.submit_attack(PGD(quant, steps=2),
                                        x[:4], y[:4]).result()
        np.testing.assert_array_equal(got, ref)
        assert [(r.level, r.retry) for r in session.dispatch_log] == \
            [(0, False), (1, True)]
        assert session.breaker.stats["trips"] == 1
        assert session.breaker.stats["quarantined_keys"] == 1

        # still quarantined: the next dispatch starts at solo-compiled
        got = session.submit_attack(PGD(quant, steps=2),
                                    x[:4], y[:4]).result()
        np.testing.assert_array_equal(got, ref)
        assert session.dispatch_log[-1].level == 1

        clock.advance(1.5)            # cool-down elapsed: probe one rung up
        got = session.submit_attack(PGD(quant, steps=2),
                                    x[:4], y[:4]).result()
        np.testing.assert_array_equal(got, ref)
        assert session.dispatch_log[-1].level == 0
        assert session.breaker.stats["heals"] == 1
        assert session.breaker.stats["quarantined_keys"] == 0
        assert session.scheduler.outcomes["ok"] == 3

    def test_float_coalesced_key_degrades_then_heals(self, pair):
        """The float-predict ladder is byte-neutral under faults: one
        injected ``dispatch.predict_float`` error quarantines the
        coalesced float key, every member completes solo-compiled with
        bits identical to its row-reproducible solo run, and the key
        walks back to coalesced after the cool-down."""
        from repro.nn import rowrep
        from repro.training import predict_logits
        orig, quant, x, y = pair
        clock = ManualClock()
        inj = FaultInjector([FaultSpec("dispatch.predict_float", "error",
                                       rate=1.0, max_fires=1)],
                            seed=FAULT_SEED, clock=clock)
        session = ServeSession(capacity=16, clock=clock,
                               quarantine_cooldown_s=1.0)
        refs = []
        for lo, hi in ((0, 5), (5, 16)):
            with rowrep.row_reproducible():
                refs.append(predict_logits(quant, x[lo:hi]))

        def submit_both():
            futs = [session.submit_predict(quant, x[:5]),
                    session.submit_predict(quant, x[5:16])]
            return [f.result() for f in futs]

        with inject(inj):
            got = submit_both()
        for ref, out in zip(refs, got):
            np.testing.assert_array_equal(out, ref)
        # coalesced rung failed, both members retried solo-compiled
        assert [(r.level, r.retry, r.coalesced)
                for r in session.dispatch_log] == \
            [(0, False, True), (1, True, False), (1, True, False)]
        assert session.breaker.stats["trips"] == 1
        assert session.breaker.stats["quarantined_keys"] == 1

        # still quarantined: next round starts solo-compiled, same bytes
        for ref, out in zip(refs, submit_both()):
            np.testing.assert_array_equal(out, ref)
        assert all(r.level == 1 for r in session.dispatch_log[-2:])

        clock.advance(1.5)            # cool-down elapsed: healed
        for ref, out in zip(refs, submit_both()):
            np.testing.assert_array_equal(out, ref)
        assert session.dispatch_log[-1].level == 0
        assert session.dispatch_log[-1].coalesced
        assert session.breaker.stats["heals"] == 1
        assert session.breaker.stats["quarantined_keys"] == 0

    def test_ladder_failure_chains_every_rung(self, pair):
        """A job broken at every rung fails with the whole descent
        attributable from ``__cause__`` links, and each rung left a
        DispatchRecord."""
        orig, quant, x, y = pair

        class Broken(PGD):
            def serve_signature(self):       # coalesces with plain PGD
                return ("PGD", id(self.model), self.steps)

            def gradient_with_logits(self, *a, **k):
                raise RuntimeError("bad tenant payload")

        from repro.serve import JobError
        session = ServeSession(capacity=16)
        bad = session.submit_attack(Broken(quant, steps=2), x[:4], y[:4])
        good = session.submit_attack(PGD(quant, steps=2), x[4:8], y[4:8])
        ref = PGD(quant, steps=2).generate(x[4:8], y[4:8])
        np.testing.assert_array_equal(good.result(), ref)
        with pytest.raises(JobError, match="bad tenant payload") as ei:
            bad.result()
        # coalesced level 0, bad solo at 1 then eager at 2, good solo at 1
        assert [(r.level, r.retry) for r in session.dispatch_log] == \
            [(0, False), (1, True), (2, True), (1, True)]
        # the terminal error chains eager <- solo <- coalesced failures
        chain = []
        exc = ei.value.__cause__
        while exc is not None:
            chain.append(exc)
            exc = exc.__cause__
        assert len(chain) == 3
        assert all("bad tenant payload" in str(e) for e in chain)
        assert session.scheduler.outcomes["failed"] == 1


class TestDeadlines:
    def test_deadline_job_returns_flagged_best_so_far(self, pair):
        """Step-latency faults burn the budget: the job's rows retire
        between compiled steps and the future resolves
        ``deadline-degraded`` with a real partial batch."""
        orig, quant, x, y = pair
        clock = ManualClock()
        inj = FaultInjector([FaultSpec("attack.step", "latency",
                                       rate=1.0, delay_s=0.2)],
                            seed=FAULT_SEED, clock=clock)
        session = ServeSession(capacity=16, clock=clock)
        fut = session.submit_attack(PGD(quant, steps=8), x[:4], y[:4],
                                    deadline_s=0.5)
        with inject(inj):
            out = fut.result()           # resolves, does not raise
        assert fut.outcome == "deadline-degraded"
        assert out.shape == x[:4].shape and out.dtype == x.dtype
        assert fut.info["expired_rows"] == 4
        assert (fut.info["steps_done"] < 8).all()
        assert session.scheduler.outcomes["deadline-degraded"] == 1

    def test_jobs_without_deadline_are_untouched(self, pair):
        """A deadline tenant coalesced with an unbounded one must not
        change the unbounded tenant's bytes."""
        orig, quant, x, y = pair
        clock = ManualClock()
        inj = FaultInjector([FaultSpec("attack.step", "latency",
                                       rate=1.0, delay_s=0.2)],
                            seed=FAULT_SEED, clock=clock)
        session = ServeSession(capacity=16, clock=clock)
        ref = DIVA(orig, quant, steps=6).generate(x[4:8], y[4:8])
        bounded = session.submit_attack(DIVA(orig, quant, steps=6),
                                        x[:4], y[:4], deadline_s=0.3)
        free = session.submit_attack(DIVA(orig, quant, steps=6),
                                     x[4:8], y[4:8])
        with inject(inj):
            got = free.result()
        np.testing.assert_array_equal(got, ref)
        assert free.outcome == "ok"
        assert bounded.outcome == "deadline-degraded"
        assert session.dispatch_log[0].coalesced    # they shared the pass


class TestAdmission:
    def test_reject_policy_bounds_the_queue(self, pair):
        orig, quant, x, y = pair
        session = ServeSession(capacity=16, max_pending_jobs=2)
        f1 = session.submit_attack(PGD(quant, steps=2), x[:4], y[:4])
        f2 = session.submit_attack(PGD(quant, steps=2), x[4:8], y[4:8])
        f3 = session.submit_attack(PGD(quant, steps=2), x[8:12], y[8:12])
        assert f3.outcome == "rejected"       # refused at submit, no drain
        with pytest.raises(AdmissionError):
            f3.result()
        ref = PGD(quant, steps=2).generate(x[:4], y[:4])
        np.testing.assert_array_equal(f1.result(), ref)
        assert f2.outcome == "ok"
        assert session.admission.stats["accepted"] == 2
        assert session.admission.stats["rejected"] == 1

    def test_shed_policy_drops_oldest_first(self, pair):
        orig, quant, x, y = pair
        session = ServeSession(capacity=16, max_pending_jobs=2,
                               admission_policy="shed")
        f1 = session.submit_attack(PGD(quant, steps=2), x[:4], y[:4])
        f2 = session.submit_attack(PGD(quant, steps=2), x[4:8], y[4:8])
        f3 = session.submit_attack(PGD(quant, steps=2), x[8:12], y[8:12])
        assert f1.outcome == "rejected"       # oldest pending was shed
        with pytest.raises(ShedError):
            f1.result()
        ref3 = PGD(quant, steps=2).generate(x[8:12], y[8:12])
        np.testing.assert_array_equal(f3.result(), ref3)
        assert f2.outcome == "ok"
        assert session.admission.stats["shed"] == 1

    def test_tenant_quota_cannot_starve_others(self, pair):
        orig, quant, x, y = pair
        session = ServeSession(capacity=16,
                               tenant_quota_rows={"A": 6})
        fa1 = session.submit_attack(PGD(quant, steps=2), x[:4], y[:4],
                                    tenant="A")
        fa2 = session.submit_attack(PGD(quant, steps=2), x[4:8], y[4:8],
                                    tenant="A")       # 8 pending rows > 6
        fb = session.submit_attack(PGD(quant, steps=2), x[8:12], y[8:12],
                                   tenant="B")        # no quota: admitted
        assert fa2.outcome == "rejected"
        with pytest.raises(QuotaError):
            fa2.result()
        ref = PGD(quant, steps=2).generate(x[8:12], y[8:12])
        np.testing.assert_array_equal(fb.result(), ref)
        assert fa1.outcome == "ok" and fb.outcome == "ok"
        assert session.admission.stats["quota_rejected"] == 1


class TestPlanFaults:
    def test_transient_build_fault_pins_eager_then_reprobes(self):
        """An injected compile fault pins the eager fallback (loudly),
        serves exact results meanwhile, and the pinned failure re-probes
        after the cool-down — the plan compiles and the fallback heals."""
        edge, x = _fresh_edge()
        clock = ManualClock()
        session = ServeSession(capacity=16, clock=clock,
                               failure_cooldown_s=1.0)
        ref = edge.predict(x[:8], compiled=False)
        inj = FaultInjector([FaultSpec("edge.plan.build", "error",
                                       rate=1.0, max_fires=1)],
                            seed=FAULT_SEED, clock=clock)
        with inject(inj):
            with pytest.warns(RuntimeWarning, match="injected fault"):
                got = session.submit_predict(edge, x[:8]).result()
            np.testing.assert_array_equal(got, ref)
            # within the cool-down: the pinned failure serves eager again
            got = session.submit_predict(edge, x[:8]).result()
            np.testing.assert_array_equal(got, ref)
            assert session.plan_cache.stats["reprobes"] == 0

            clock.advance(1.5)       # cool-down elapsed: builder retried
            got = session.submit_predict(edge, x[:8]).result()
        np.testing.assert_array_equal(got, ref)
        assert session.plan_cache.stats["reprobes"] == 1
        # healed: a real compiled program now serves this shape
        key = ("edge", id(edge), x[:8].shape, x[:8].dtype.str)
        assert session.plan_cache._entries[key].plan is not None

    def test_validation_corruption_is_caught_loudly(self):
        """A corrupted compiled output must never reach a tenant: the
        compile-time bit-validation catches the flip, pins the eager
        loop with a warning, and results stay exact."""
        edge, x = _fresh_edge()
        session = ServeSession(capacity=16)
        ref = edge.predict(x[:8], compiled=False)
        inj = FaultInjector([FaultSpec("edge.plan.validate", "corrupt",
                                       rate=1.0, max_fires=1)],
                            seed=FAULT_SEED)
        with inject(inj):
            with pytest.warns(RuntimeWarning, match="lowering failed"):
                got = session.submit_predict(edge, x[:8]).result()
        np.testing.assert_array_equal(got, ref)
        assert inj.fired("edge.plan.validate", "corrupt")
