"""Serving layer: PlanCache eviction, scheduler fairness, bit-parity."""

import numpy as np
import pytest

from repro.attacks import CWLinf, DIVA, PGD, TargetedDIVA
from repro.edge import compile_edge
from repro.models import build_model
from repro.quantization import calibrate, prepare_qat
from repro.serve import (JobError, PlanCache, Scheduler, ServeSession,
                         build_workload, mixed_workload_spec, plan_nbytes,
                         verify_parity)
from repro.serve.scheduler import _group_key
from repro.training import predict_labels


@pytest.fixture(scope="module")
def pair():
    """Untrained resnet + frozen 8-bit adaptation with self-labels."""
    rng = np.random.default_rng(0)
    x = rng.random((24, 3, 12, 12)).astype(np.float32)
    orig = build_model("resnet", num_classes=6, width=4, seed=0)
    orig.eval()
    quant = prepare_qat(orig, weight_bits=8)
    calibrate(quant, x)
    quant.freeze()
    quant.eval()
    y = predict_labels(orig, x)
    return orig, quant, x, y


@pytest.fixture(scope="module")
def edge_model():
    rng = np.random.default_rng(1)
    x = rng.random((32, 1, 12, 12)).astype(np.float32)
    lenet = build_model("lenet", num_classes=6, in_channels=1,
                        image_size=12, width=4, seed=3)
    lenet.eval()
    q = prepare_qat(lenet, weight_bits=8, act_bits=8, per_channel=True)
    calibrate(q, x)
    q.freeze()
    return compile_edge(q, 6), x


class TestPlanCache:
    def test_hit_returns_same_plan(self):
        cache = PlanCache()
        owner = object()
        built = []
        plan = cache.get("k", (owner,), lambda: built.append(1) or object())
        again = cache.get("k", (owner,), lambda: built.append(1) or object())
        assert plan is again and built == [1]
        assert cache.stats["hits"] == 1

    def test_owner_mismatch_rebuilds(self):
        """A recycled/rebound key must never serve a stale plan."""
        cache = PlanCache()
        a, b = object(), object()
        plan_a = cache.get("k", (a,), lambda: "plan-a")
        assert cache.get("k", (b,), lambda: "plan-b") == "plan-b"
        assert cache.get("k", (b,), lambda: "never") == "plan-b"
        assert plan_a == "plan-a"

    def test_failure_pinned(self):
        cache = PlanCache()
        calls = []
        owner = object()
        assert cache.get("k", (owner,), lambda: calls.append(1)) is None
        assert cache.get("k", (owner,), lambda: calls.append(1)) is None
        assert calls == [1]

    def test_plan_nbytes_dedupes_views(self):
        class P:
            def __init__(self):
                self.base = np.zeros((8, 128), dtype=np.float64)
                self.view = self.base[:2]
        assert plan_nbytes(P()) == 8 * 128 * 8

    def test_owner_held_cache_never_compounds_entry_charges(self):
        """An owner that holds the cache itself (EdgeModel.plan_cache)
        must not have previously resident plans walked into every new
        entry's byte charge — that would compound quadratically and
        thrash eviction."""
        cache = PlanCache()

        class Model:
            def __init__(self):
                self.w = np.zeros(128, dtype=np.float64)     # 1 KiB
                self.plan_cache = cache

        class Plan:
            def __init__(self):
                self.buf = np.zeros(1024, dtype=np.float64)  # 8 KiB

        m = Model()
        cache.get("a", (m,), Plan)
        cache.get("b", (m,), Plan)
        cache.get("c", (m,), Plan)
        sizes = [e.nbytes for _, e in cache.items()]
        assert sizes == [8 * 1024 + 1024] * 3    # plan + owner, flat

    def test_refresh_is_owner_scoped(self):
        refreshed = []

        class Plan:
            def __init__(self, tag):
                self.tag = tag

            def refresh(self):
                refreshed.append(self.tag)

        cache = PlanCache()
        m1, m2 = object(), object()
        cache.get("a", (m1,), lambda: Plan("a"))
        cache.get("b", (m2,), lambda: Plan("b"))
        cache.refresh(owners=[m1])
        assert refreshed == ["a"]
        cache.refresh()                  # None = everything
        assert refreshed == ["a", "a", "b"]

    def test_lru_eviction_under_budget(self):
        class Plan:
            def __init__(self):
                self.buf = np.zeros(256, dtype=np.float64)   # 2 KiB
        cache = PlanCache(budget_bytes=5000)
        owner = object()
        for k in "abc":
            cache.get(k, (owner,), Plan)
        assert "a" not in cache and {"b", "c"} <= set(
            k for k, _ in cache.items())
        assert cache.stats["evictions"] == 1
        # touching "b" promotes it: inserting "d" now evicts "c"
        cache.get("b", (owner,), lambda: pytest.fail("must hit"))
        cache.get("d", (owner,), Plan)
        assert "b" in cache and "c" not in cache


class TestEvictionRebuildsValidate:
    def test_edge_programs_evict_and_rebuild_bit_identical(self, edge_model):
        """A tight budget cycles per-shape programs; every rebuild re-runs
        the compile-time bit-validation and still matches the eager op
        loop exactly."""
        edge, x = edge_model
        ref16 = edge.predict(x[:16], compiled=False)
        ref8 = edge.predict(x[16:24], compiled=False)
        edge._program_for(x[:16])
        assert edge.plan_cache.stats["entries"] == 1
        # budget fits one entry (program + pinned owner): alternating
        # shapes forces eviction
        one_entry = next(iter(edge.plan_cache.items()))[1].nbytes
        edge.plan_cache = PlanCache(budget_bytes=int(one_entry * 1.5))
        for _ in range(3):
            np.testing.assert_array_equal(edge.predict(x[:16]), ref16)
            np.testing.assert_array_equal(edge.predict(x[16:24]), ref8)
        stats = edge.plan_cache.stats
        assert stats["evictions"] >= 4 and stats["rebuilds"] >= 4
        assert stats["entries"] == 1
        assert stats["resident_bytes"] <= int(one_entry * 1.5)

    def test_evicted_rebuild_under_corruption_falls_back_loudly(
            self, edge_model):
        """Eviction forces a rebuild; a rebuild whose validation pass is
        corrupted (injected fault) must pin the eager loop with a
        warning — never serve the corrupted program, never a stale one."""
        from repro.serve import FaultInjector, FaultSpec, inject
        edge, x = edge_model
        ref16 = edge.predict(x[:16], compiled=False)
        ref8 = edge.predict(x[16:24], compiled=False)
        edge.plan_cache = PlanCache()
        edge._program_for(x[:16])
        one_entry = next(iter(edge.plan_cache.items()))[1].nbytes
        # budget fits one entry: the 8-row shape evicts the 16-row plan
        edge.plan_cache = PlanCache(budget_bytes=int(one_entry * 1.5))
        np.testing.assert_array_equal(edge.predict(x[:16]), ref16)
        np.testing.assert_array_equal(edge.predict(x[16:24]), ref8)
        assert edge.plan_cache.stats["evictions"] >= 1
        inj = FaultInjector([FaultSpec("edge.plan.validate", "corrupt",
                                       rate=1.0, max_fires=1)])
        with inject(inj):
            with pytest.warns(RuntimeWarning, match="lowering failed"):
                got = edge.predict(x[:16])      # rebuild catches the flip
        np.testing.assert_array_equal(got, ref16)
        assert inj.fired("edge.plan.validate", "corrupt")
        # the corrupted rebuild is pinned as a failure, not served
        entry = next(e for k, e in edge.plan_cache.items()
                     if k[2] == x[:16].shape)
        assert entry.plan is None

    def test_attack_programs_evict_and_rebuild_bit_identical(self, pair):
        orig, quant, x, y = pair
        atk = DIVA(orig, quant, steps=3)
        ref = atk.generate(x[:8], y[:8])
        paired = next(p for _, e in atk.plan_cache.items()
                      for p in [e.plan] if p is not None)
        atk.plan_cache = PlanCache(
            budget_bytes=int(plan_nbytes(paired) * 1.2))
        # distinct trailing shapes alternate through the tight cache
        small = x[:8, :, :8, :8].copy()
        ref_small = DIVA(orig, quant, steps=3).generate(small, y[:8])
        for _ in range(2):
            np.testing.assert_array_equal(atk.generate(x[:8], y[:8]), ref)
            np.testing.assert_array_equal(atk.generate(small, y[:8]),
                                          ref_small)
        assert atk.plan_cache.stats["evictions"] >= 2
        assert atk.plan_cache.stats["rebuilds"] >= 1


class TestScheduler:
    def _submit_attacks(self, session, attacks, x, y, rows=4):
        futs = []
        for i, atk in enumerate(attacks):
            sl = slice((i * rows) % (len(x) - rows), None)
            futs.append(session.submit_attack(
                atk, x[sl][:rows], y[sl][:rows]))
        return futs

    def test_compatible_jobs_coalesce(self, pair):
        orig, quant, x, y = pair
        session = ServeSession(capacity=64)
        attacks = [DIVA(orig, quant, c=c, steps=3) for c in (0.5, 1.0, 2.0)]
        futs = self._submit_attacks(session, attacks, x, y)
        for f in futs:
            f.result()
        assert len(session.dispatch_log) == 1
        assert session.dispatch_log[0].coalesced

    def test_incompatible_signatures_stay_apart(self, pair):
        orig, quant, x, y = pair
        session = ServeSession(capacity=64)
        jobs = [DIVA(orig, quant, steps=3),
                TargetedDIVA(orig, quant, target_class=1, steps=3),
                PGD(quant, steps=3), PGD(quant, steps=4),
                CWLinf(quant, steps=3, kappa=0.0),
                CWLinf(quant, steps=3, kappa=1.0)]
        futs = self._submit_attacks(session, jobs, x, y)
        for f in futs:
            f.result()
        assert len(session.dispatch_log) == 6   # nothing merged

    def test_arrival_order_fairness(self, pair):
        """Job i is dispatched no later than round i: a stream of
        mutually compatible jobs cannot starve the incompatible job
        sitting between them."""
        orig, quant, x, y = pair
        session = ServeSession(capacity=16)
        futs = []
        for i in range(6):
            futs.append(session.submit_attack(
                DIVA(orig, quant, c=1.0 + i, steps=2), x[:4], y[:4]))
            if i == 1:       # the lone PGD arrives early...
                lone = session.submit_attack(PGD(quant, steps=2),
                                             x[:4], y[:4])
        for f in futs:
            f.result()
        lone.result()
        log = session.dispatch_log
        # ...and is served in round 2 (0-indexed round 1), right after
        # the first DIVA batch, despite 4 more DIVAs queued behind it
        rounds_by_seq = {s: i for i, r in enumerate(log) for s in r.seqs}
        for seq, rnd in rounds_by_seq.items():
            assert rnd <= seq, (seq, rnd, log)
        assert rounds_by_seq[2] == 1    # the PGD was job seq=2

    def test_max_batch_rows_caps_coalescing(self, pair):
        orig, quant, x, y = pair
        session = ServeSession(capacity=64, max_batch_rows=8)
        attacks = [DIVA(orig, quant, c=c, steps=2) for c in (0.5, 1.0, 2.0)]
        futs = self._submit_attacks(session, attacks, x, y, rows=4)
        for f in futs:
            f.result()
        assert len(session.dispatch_log) == 2
        assert all(r.rows <= 8 for r in session.dispatch_log)

    def test_shared_cache_refreshes_across_instances(self, pair):
        """A hit on a plan some *other* attack compiled must still see
        current weights: refresh is store-wide, not per-builder."""
        orig, quant, x, y = pair
        model = build_model("resnet", num_classes=6, width=4, seed=9)
        model.eval()
        session = ServeSession(capacity=16)
        session.submit_attack(PGD(model, steps=3), x[:6], y[:6]).result()
        for p in model.parameters():        # operator rotates the model
            p.data += 0.01
        served = session.submit_attack(PGD(model, steps=3),
                                       x[:6], y[:6]).result()
        ref = PGD(model, steps=3).generate(x[:6], y[:6])
        np.testing.assert_array_equal(served, ref)

    def test_full_batch_state_job_matches_generate_defaults(self, pair):
        """NES-style jobs (batch partition is part of the result) must
        reproduce `attack.generate(x, y)` regardless of capacity."""
        from repro.attacks import NESDiva
        orig, quant, x, y = pair
        ref = NESDiva(orig, quant, n_samples=2, steps=2,
                      seed=5).generate(x[:12], y[:12])
        session = ServeSession(capacity=8)     # != generate's default 64
        got = session.submit_attack(
            NESDiva(orig, quant, n_samples=2, steps=2, seed=5),
            x[:12], y[:12]).result()
        np.testing.assert_array_equal(got, ref)

    def test_mixed_dtype_tenants_keep_their_precision(self, pair):
        """Plan keys include dtype: a float64 tenant must never hit a
        float32 plan (replays silently cast their input)."""
        orig, quant, x, y = pair
        x64 = x.astype(np.float64)
        ref32 = DIVA(orig, quant, steps=3).generate(x[:6], y[:6])
        ref64 = DIVA(orig, quant, steps=3).generate(x64[:6], y[:6])
        session = ServeSession(capacity=16)
        f32 = session.submit_attack(DIVA(orig, quant, steps=3),
                                    x[:6], y[:6])
        f64 = session.submit_attack(DIVA(orig, quant, steps=3),
                                    x64[:6], y[:6])
        np.testing.assert_array_equal(f32.result(), ref32)
        np.testing.assert_array_equal(f64.result(), ref64)
        assert f64.result().dtype == np.float64

    def test_poisoned_coalesced_batch_retries_members_solo(self, pair):
        """One tenant's broken request must not fail compatible jobs it
        was merged with."""
        orig, quant, x, y = pair

        class Poisoned(PGD):
            def serve_signature(self):       # coalesces with plain PGD
                return ("PGD", id(self.model), self.steps)

            def gradient_with_logits(self, *a, **k):
                raise RuntimeError("tenant bug")

        session = ServeSession(capacity=16)
        bad = session.submit_attack(Poisoned(quant, steps=2), x[:4], y[:4])
        good = session.submit_attack(PGD(quant, steps=2), x[4:8], y[4:8])
        ref = PGD(quant, steps=2).generate(x[4:8], y[4:8])
        np.testing.assert_array_equal(good.result(), ref)
        with pytest.raises(JobError, match="tenant bug"):
            bad.result()
        assert session.dispatch_log[0].coalesced    # they did merge

    def test_mismatched_labels_rejected_at_submit(self, pair):
        orig, quant, x, y = pair
        session = ServeSession(capacity=16)
        with pytest.raises(ValueError, match="labels have"):
            session.submit_attack(PGD(quant, steps=2), x[:4], y[:3])

    def test_failed_job_is_isolated(self, pair):
        orig, quant, x, y = pair

        class Broken(PGD):
            def serve_signature(self):
                return None

            def gradient_with_logits(self, *a, **k):
                raise RuntimeError("boom")

        session = ServeSession(capacity=16)
        bad = session.submit_attack(Broken(quant, steps=2), x[:4], y[:4])
        good = session.submit_attack(PGD(quant, steps=2), x[:4], y[:4])
        with pytest.raises(JobError, match="boom"):
            bad.result()
        ref = PGD(quant, steps=2).generate(x[:4], y[:4])
        np.testing.assert_array_equal(good.result(), ref)

    def test_group_key_respects_shape_and_dtype(self, pair):
        orig, quant, x, y = pair
        from repro.serve.scheduler import Job, JobFuture
        atk = DIVA(orig, quant, steps=2)

        def key_for(arr):
            return _group_key(Job(kind="attack", seq=0, x=arr,
                                  future=JobFuture(lambda: None),
                                  y=y[:4], attack=atk))
        assert key_for(x[:4]) == key_for(x[4:8])
        assert key_for(x[:4]) != key_for(x[:4].astype(np.float64))
        assert key_for(x[:4]) != key_for(x[:4, :, :8, :8])


class TestServeParity:
    def test_coalesced_attacks_bit_identical_to_solo(self, pair):
        orig, quant, x, y = pair
        configs = [dict(c=0.5, eps=8 / 255), dict(c=1.0, eps=16 / 255),
                   dict(c=2.0, alpha=2 / 255)]
        refs = [DIVA(orig, quant, steps=4, **cfg).generate(x[i * 6:(i + 1) * 6],
                                                           y[i * 6:(i + 1) * 6])
                for i, cfg in enumerate(configs)]
        session = ServeSession(capacity=32)
        futs = [session.submit_attack(DIVA(orig, quant, steps=4, **cfg),
                                      x[i * 6:(i + 1) * 6],
                                      y[i * 6:(i + 1) * 6])
                for i, cfg in enumerate(configs)]
        for ref, fut in zip(refs, futs):
            np.testing.assert_array_equal(fut.result(), ref)
        assert session.dispatch_log[0].coalesced

    def test_coalesced_predict_bit_identical_to_solo(self, edge_model):
        edge, x = edge_model
        refs = [edge.predict(x[:12]), edge.predict(x[12:20]),
                edge.predict(x[20:32])]
        session = ServeSession(capacity=16, predict_batch=64)
        futs = [session.submit_predict(edge, x[:12]),
                session.submit_predict(edge, x[12:20]),
                session.submit_predict(edge, x[20:32])]
        for ref, fut in zip(refs, futs):
            got = fut.result()
            np.testing.assert_array_equal(got, ref)
            assert got.base is None      # owned, not a merged-batch view
        assert len(session.dispatch_log) == 1

    def test_mixed_workload_parity_and_stats(self):
        """The acceptance workload: interleaved attack + inference jobs
        served bit-identically to sequential replay."""
        spec = mixed_workload_spec(scale=1)
        spec["steps"] = 3            # keep the test fast
        out = verify_parity(build_workload(spec), capacity=32)
        assert out["jobs"] == 15
        assert out["coalesced_dispatches"] >= 2
        assert out["dispatches"] < out["jobs"]

    def test_replay_serve_records_per_job_outcomes(self):
        """Replay output carries a per-job outcome record (satellite of
        the fault-tolerance PR): a healthy replay is all-``ok`` and the
        counts agree with the job list."""
        from repro.serve import replay_serve
        spec = mixed_workload_spec(scale=1)
        spec["steps"] = 2
        out = replay_serve(build_workload(spec))
        assert out["outcomes"] == ["ok"] * 15
        assert out["outcome_counts"] == {"ok": 15}
        assert out["errors"] == [None] * 15

    def test_workload_spec_roundtrips_tenant_and_deadline(self, tmp_path):
        """tenant / deadline_s ride through save/load/build and reach
        the session (a quota-bounded tenant's second job is rejected)."""
        from repro.serve import (ServeSession, QuotaError, load_workload,
                                 replay_serve, save_workload)
        spec = mixed_workload_spec(scale=1)
        spec["steps"] = 2
        spec["jobs"] = [j for j in spec["jobs"]
                        if j["kind"] != "predict"][:3]
        for j in spec["jobs"]:
            j["tenant"] = "A"
            j["deadline_s"] = 30.0       # generous: must not expire
        path = str(tmp_path / "w.json")
        save_workload(spec, path)
        w = build_workload(load_workload(path))
        assert all(j.tenant == "A" and j.deadline_s == 30.0
                   for j in w.jobs)
        rows0 = len(w.jobs[0].x)
        session = ServeSession(capacity=32,
                               tenant_quota_rows={"A": rows0})
        out = replay_serve(w, session=session)
        assert out["outcomes"][0] == "ok"
        assert "rejected" in out["outcomes"]
        assert any(isinstance(e, QuotaError) for e in out["errors"])

    def test_session_shares_one_plan_cache(self, pair):
        orig, quant, x, y = pair
        session = ServeSession(capacity=16)
        a = DIVA(orig, quant, c=0.5, steps=2)
        b = DIVA(orig, quant, c=2.0, steps=2)
        session.submit_attack(a, x[:4], y[:4]).result()
        session.submit_attack(b, x[4:8], y[4:8]).result()
        assert a.plan_cache is session.plan_cache
        assert b.plan_cache is session.plan_cache
        # the pair compiled once and the whole-loop plan recorded once,
        # both shared across the session
        keys = [k for k, _ in session.plan_cache.items()]
        model_keys = [k for k in keys
                      if not (isinstance(k, tuple) and k
                              and k[0] == "attack-loop")]
        loop_keys = [k for k in keys if k not in model_keys]
        assert len(model_keys) == 1
        assert len(loop_keys) <= 1
        assert session.plan_cache.stats["entries"] == len(keys)


class TestBurstMemory:
    def test_repeated_bursts_release_programs(self):
        """Serving many workload bursts must not accumulate retired
        compiled programs: programs are self-referential (op closures
        capture them), so they are cyclic garbage the drain explicitly
        collects — steady-state object count stays flat across bursts."""
        import gc
        from repro.serve import mixed_workload_spec, build_workload, \
            replay_serve
        spec = mixed_workload_spec(scale=1)
        spec["steps"] = 2
        w = build_workload(spec)
        replay_serve(w)
        replay_serve(w)
        gc.collect()
        n0 = len(gc.get_objects())
        for _ in range(3):
            replay_serve(w)
        gc.collect()
        growth = len(gc.get_objects()) - n0
        assert growth < 500, f"{growth} objects leaked across bursts"


class TestCachedForwardCompile:
    def test_predict_logits_cache_refreshes_after_mutation(self):
        """The memoized auto-compiled replay must re-fold mutated
        parameters — a cached executor can never serve stale weights."""
        from repro.nn import Tensor
        from repro.nn.graph import compile_forward_cached
        from repro.serve import PlanCache
        model = build_model("lenet", num_classes=4, in_channels=1,
                            image_size=12, width=4, seed=0)
        model.eval()
        x = np.random.default_rng(0).random((4, 1, 12, 12)).astype(np.float32)
        cache = PlanCache()
        ex = compile_forward_cached(model, x, cache=cache)
        assert ex is not None
        np.testing.assert_array_equal(ex.replay(x), model(Tensor(x)).data)
        for p in model.parameters():
            p.data += 0.05
        ex2 = compile_forward_cached(model, x, cache=cache)
        assert ex2 is ex            # cache hit ...
        np.testing.assert_allclose(ex2.replay(x), model(Tensor(x)).data,
                                   rtol=0, atol=0)   # ... with fresh folds
