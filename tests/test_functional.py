"""Functional ops: convolution, pooling, losses — values and gradients."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

from .conftest import numerical_gradient


def scipy_conv2d_reference(x, w, b, stride, pad):
    """Direct-loop reference convolution (slow, obviously correct)."""
    n, c, h, wd = x.shape
    f, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (wd + 2 * pad - kw) // stride + 1
    out = np.zeros((n, f, oh, ow))
    for i in range(oh):
        for j in range(ow):
            patch = xp[:, :, i * stride:i * stride + kh, j * stride:j * stride + kw]
            out[:, :, i, j] = np.tensordot(patch, w, axes=([1, 2, 3], [1, 2, 3]))
    if b is not None:
        out += b.reshape(1, f, 1, 1)
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_reference(self, rng, stride, pad):
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=pad)
        ref = scipy_conv2d_reference(x, w, b, stride, pad)
        assert np.allclose(out.data, ref, atol=1e-10)

    def test_output_size_formula(self):
        assert F.conv_output_size(16, 3, 1, 1) == 16
        assert F.conv_output_size(16, 3, 2, 1) == 8
        assert F.conv_output_size(7, 5, 1, 0) == 3

    def test_depthwise_matches_per_channel_conv(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(3, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), None, padding=1, groups=3)
        for ch in range(3):
            ref = scipy_conv2d_reference(x[:, ch:ch + 1], w[ch:ch + 1], None, 1, 1)
            assert np.allclose(out.data[:, ch:ch + 1], ref, atol=1e-10)

    def test_grouped_conv_grads(self, rng):
        x = rng.normal(size=(2, 4, 5, 5))
        w = rng.normal(size=(6, 2, 3, 3))     # groups=2, 3 filters/group
        xt = Tensor(x.copy(), requires_grad=True)
        wt = Tensor(w.copy(), requires_grad=True)
        (F.conv2d(xt, wt, None, padding=1, groups=2) ** 2).sum().backward()
        f = lambda: float((F.conv2d(Tensor(xt.data), Tensor(wt.data), None,
                                    padding=1, groups=2).data ** 2).sum())
        assert np.abs(numerical_gradient(f, xt.data) - xt.grad).max() < 1e-5
        assert np.abs(numerical_gradient(f, wt.data) - wt.grad).max() < 1e-5

    def test_group_validation(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 4, 4)))
        w = Tensor(rng.normal(size=(4, 1, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w, None, groups=2)       # 3 not divisible by 2

    def test_channel_mismatch_rejected(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 4, 4)))
        w = Tensor(rng.normal(size=(4, 2, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w, None)


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_overlapping(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        out = F.max_pool2d(Tensor(x), 3, stride=1)
        assert out.shape == (1, 2, 3, 3)
        assert np.allclose(out.data[0, 0, 0, 0], x[0, 0, :3, :3].max())

    def test_maxpool_grad_routes_to_argmax(self, rng):
        x = rng.normal(size=(2, 2, 4, 4))
        xt = Tensor(x.copy(), requires_grad=True)
        F.max_pool2d(xt, 2).sum().backward()
        # each window contributes exactly one gradient unit
        assert np.isclose(xt.grad.sum(), 2 * 2 * 2 * 2)
        assert set(np.unique(xt.grad)) <= {0.0, 1.0}

    def test_avgpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        assert np.allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_grad_uniform(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        xt = Tensor(x.copy(), requires_grad=True)
        F.avg_pool2d(xt, 2).sum().backward()
        assert np.allclose(xt.grad, 0.25)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        assert np.allclose(F.global_avg_pool2d(Tensor(x)).data,
                           x.mean(axis=(2, 3)))


class TestLosses:
    def test_softmax_rows_sum_to_one(self, rng):
        p = F.softmax(Tensor(rng.normal(size=(5, 7)) * 10), axis=-1)
        assert np.allclose(p.data.sum(axis=1), 1.0)
        assert (p.data >= 0).all()

    def test_softmax_stability_large_logits(self):
        p = F.softmax(Tensor(np.array([[1000.0, 1000.0, -1000.0]])), axis=-1)
        assert np.allclose(p.data, [[0.5, 0.5, 0.0]])

    def test_log_softmax_consistency(self, rng):
        z = rng.normal(size=(4, 6))
        assert np.allclose(F.log_softmax(Tensor(z)).data,
                           np.log(F.softmax(Tensor(z)).data), atol=1e-10)

    def test_cross_entropy_value(self):
        logits = np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]]))
        loss = F.cross_entropy(Tensor(logits), np.array([0, 1]))
        assert np.isclose(float(loss.data), -(np.log(0.7) + np.log(0.8)) / 2)

    def test_cross_entropy_reductions(self, rng):
        z = Tensor(rng.normal(size=(4, 5)))
        y = np.array([0, 1, 2, 3])
        per = F.cross_entropy(z, y, reduction="none")
        assert per.shape == (4,)
        assert np.isclose(float(F.cross_entropy(z, y, reduction="sum").data),
                          per.data.sum())
        assert np.isclose(float(F.cross_entropy(z, y).data), per.data.mean())
        with pytest.raises(ValueError):
            F.cross_entropy(z, y, reduction="bogus")

    def test_cross_entropy_gradient(self, rng):
        z = rng.normal(size=(3, 5))
        y = np.array([1, 0, 4])
        zt = Tensor(z.copy(), requires_grad=True)
        F.cross_entropy(zt, y).backward()
        # analytic: (softmax - onehot)/N
        p = np.exp(z - z.max(1, keepdims=True))
        p /= p.sum(1, keepdims=True)
        onehot = np.eye(5)[y]
        assert np.allclose(zt.grad, (p - onehot) / 3, atol=1e-10)

    def test_mse(self, rng):
        a, b = rng.normal(size=(3, 3)), rng.normal(size=(3, 3))
        assert np.isclose(float(F.mse_loss(Tensor(a), b).data),
                          ((a - b) ** 2).mean())

    def test_kl_div_zero_for_identical(self, rng):
        z = rng.normal(size=(4, 5))
        p = F.softmax(Tensor(z)).data
        kl = F.kl_div(F.log_softmax(Tensor(z)), p)
        assert abs(float(kl.data)) < 1e-6

    def test_kl_div_positive(self, rng):
        logp = F.log_softmax(Tensor(rng.normal(size=(4, 5))))
        q = F.softmax(Tensor(rng.normal(size=(4, 5)))).data
        assert float(F.kl_div(logp, q).data) > 0

    def test_nll_loss(self, rng):
        z = rng.normal(size=(3, 4))
        y = np.array([0, 1, 2])
        logp = F.log_softmax(Tensor(z))
        assert np.isclose(float(F.nll_loss(logp, y).data),
                          float(F.cross_entropy(Tensor(z), y).data))


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_training_scales_survivors(self):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=True)
        vals = np.unique(out.data)
        assert set(vals) <= {0.0, 2.0}
        assert abs(out.data.mean() - 1.0) < 0.05
