"""``repro.defense`` — PGD minimax robust training (§2.3, §5.5)."""

from .robust_training import adversarial_fit, pgd_perturb, robust_accuracy

__all__ = ["adversarial_fit", "pgd_perturb", "robust_accuracy"]
