"""CLI entry point and example-script integrity."""

import importlib.util
import os
import sys

import pytest


class TestCLI:
    def test_registry_covers_every_experiment_module(self):
        from repro.experiments.cli import _registry
        reg = _registry()
        for required in ("table1", "fig1", "fig2", "fig4", "fig6", "fig6d",
                         "table2", "fig7", "dssim", "sec54", "sec55", "fig8",
                         "fig10", "targeted", "ablation-bits", "distilled"):
            assert required in reg, required

    def test_unknown_experiment_rejected(self):
        from repro.experiments.cli import main
        with pytest.raises(SystemExit):
            main(["bogus-experiment"])

    def test_smoke_run_via_cli(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path / "results"))
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path / "artifacts"))
        # fresh store bound to the env var
        import repro.experiments.artifacts as artifacts
        monkeypatch.setattr(artifacts, "_STORE", None)
        monkeypatch.setattr(artifacts, "_DEFAULT_ROOT",
                            str(tmp_path / "artifacts"))
        from repro.experiments.cli import main
        assert main(["table1", "--smoke"]) == 0
        assert (tmp_path / "results" / "table1.json").exists()

    def test_report_command(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        import importlib
        from repro.experiments import report
        importlib.reload(report)
        out = report.write_report(str(tmp_path / "EXPERIMENTS.md"))
        assert os.path.exists(out)

    def test_serve_replays_recorded_workload(self, tmp_path, capsys):
        """`repro-exp serve --workload <spec.json>` replays the recorded
        workload and asserts bit-parity against sequential runs."""
        from repro.experiments.cli import main
        from repro.serve import mixed_workload_spec, save_workload
        spec = mixed_workload_spec(scale=1)
        spec["steps"] = 2                      # keep the smoke fast
        path = str(tmp_path / "workload.json")
        save_workload(spec, path)
        assert main(["serve", "--workload", path, "--capacity", "32"]) == 0
        out = capsys.readouterr().out
        assert "parity OK" in out and "aggregate throughput" in out

    def test_serve_faults_reports_outcome_breakdown(self, tmp_path, capsys):
        """`repro-exp serve --faults` replays under the chaos injector
        and prints the per-outcome breakdown instead of wall-clock
        parity numbers."""
        from repro.experiments.cli import main
        from repro.serve import mixed_workload_spec, save_workload
        spec = mixed_workload_spec(scale=1)
        spec["steps"] = 2
        path = str(tmp_path / "workload.json")
        save_workload(spec, path)
        assert main(["serve", "--workload", path, "--capacity", "32",
                     "--faults", "--fault-seed", "0",
                     "--deadline-ms", "400"]) == 0
        out = capsys.readouterr().out
        assert "chaos OK" in out and "outcomes" in out
        assert "quarantine trips" in out

    def test_serve_net_loopback_breakdown(self, tmp_path, capsys):
        """`repro-exp serve --net` replays through the socket boundary
        and prints the networked per-outcome breakdown."""
        from repro.experiments.cli import main
        from repro.serve import mixed_workload_spec, save_workload
        spec = mixed_workload_spec(scale=1)
        spec["steps"] = 2
        path = str(tmp_path / "workload.json")
        save_workload(spec, path)
        assert main(["serve", "--workload", path, "--net",
                     "--journal", str(tmp_path / "serve.journal")]) == 0
        out = capsys.readouterr().out
        assert "parity OK" in out
        assert "retried=0" in out and "deduped=0" in out

    def test_serve_net_faults_breakdown(self, tmp_path, capsys):
        """`repro-exp serve --net --net-faults` survives seeded frame
        chaos and reports retried/deduped counts."""
        from repro.experiments.cli import main
        from repro.serve import mixed_workload_spec, save_workload
        spec = mixed_workload_spec(scale=1)
        spec["steps"] = 2
        path = str(tmp_path / "workload.json")
        save_workload(spec, path)
        assert main(["serve", "--workload", path, "--net", "--net-faults",
                     "--net-fault-seed", "0", "--rate", "20"]) == 0
        out = capsys.readouterr().out
        assert "chaos OK" in out and "frame faults" in out
        assert "ok=" in out and "retried=" in out and "deduped=" in out


class TestDocsCheck:
    """The CI docs gate: doctests run and links/anchors resolve."""

    def _load(self):
        import importlib.util
        path = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "scripts", "check_docs.py")
        spec = importlib.util.spec_from_file_location("check_docs", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def test_repo_docs_are_clean(self):
        mod = self._load()
        paths = []
        for pattern in mod.DOC_FILES:
            paths.extend(sorted(mod.ROOT.glob(pattern)))
        assert paths, "doc file globs matched nothing"
        assert mod.check_markdown(paths) == []

    def test_broken_link_and_anchor_detected(self, tmp_path):
        mod = self._load()
        good = tmp_path / "good.md"
        good.write_text("# Real Heading\nbody\n")
        bad = tmp_path / "bad.md"
        bad.write_text("[a](missing.md) [b](good.md#real-heading) "
                       "[c](good.md#no-such-anchor)\n")
        errors = mod.check_markdown([bad])
        assert len(errors) == 2
        assert any("missing.md" in e for e in errors)
        assert any("no-such-anchor" in e for e in errors)

    def test_slugs_match_github_style(self):
        mod = self._load()
        assert mod.github_slug("The `BENCH_<sha>.json` trajectory") == \
            "the-bench_shajson-trajectory"
        assert mod.github_slug("Trace/plan -> validate") == \
            "traceplan---validate"


EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")


class TestExamples:
    """Examples must at least import cleanly (full runs are minutes-long;
    the quickstart path is covered by the experiment smoke tests)."""

    @pytest.mark.parametrize("script", [
        "quickstart.py", "face_recognition_attack.py",
        "semi_blackbox_attack.py", "pruning_attack.py",
        "robust_training_defense.py", "edge_deployment.py",
    ])
    def test_example_imports(self, script):
        path = os.path.join(EXAMPLES_DIR, script)
        assert os.path.exists(path), script
        spec = importlib.util.spec_from_file_location(
            f"example_{script[:-3]}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)      # runs top-level imports only
        assert hasattr(module, "main")
