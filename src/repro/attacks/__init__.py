"""``repro.attacks`` — DIVA and the baseline attack family.

Whitebox DIVA (§4.2), targeted DIVA (§6), surrogate pipelines for the
semi-blackbox (§4.3) and blackbox (§4.4) threat models, plus baselines:
FGSM, R+FGSM, PGD, Momentum PGD, CW-Linf.
"""

from .base import (Attack, AttackTrace, DEFAULT_ALPHA, DEFAULT_EPS,
                   DEFAULT_STEPS, compile_model, input_gradient,
                   linf_distance, project_linf, softmax_np, softmax_vjp)
from .cw import CWLinf, cw_margin_loss
from .engine import (PairedExecutor, generate_grid, run_scheduled,
                     run_scheduled_steps)
from .diva import DIVA, TargetedDIVA, diva_loss
from .loop import CompiledAttackLoop, LoopSpec, compile_attack_loop
from .fgsm import fgsm, r_fgsm
from .nes import NESDiva
from .pgd import MomentumPGD, PGD
from .surrogate import (SurrogateBundle, blackbox_diva,
                        build_surrogate_original, semi_blackbox_diva)

__all__ = [
    "Attack", "AttackTrace", "project_linf", "linf_distance", "input_gradient",
    "compile_model", "softmax_np", "softmax_vjp",
    "DEFAULT_EPS", "DEFAULT_ALPHA", "DEFAULT_STEPS",
    "fgsm", "r_fgsm", "PGD", "MomentumPGD", "CWLinf", "cw_margin_loss",
    "DIVA", "TargetedDIVA", "diva_loss", "NESDiva",
    "PairedExecutor", "generate_grid", "run_scheduled", "run_scheduled_steps",
    "CompiledAttackLoop", "LoopSpec", "compile_attack_loop",
    "SurrogateBundle", "build_surrogate_original", "semi_blackbox_diva",
    "blackbox_diva",
]
