"""Model artifact cache.

Training every model in the grid (3 architectures x {original, quantized,
pruned, pruned+quantized, surrogate original, surrogate adapted} + robust
+ face + digit models) dominates experiment wall-clock.  The cache trains
each artifact once per configuration and memoizes it on disk, so each
benchmark re-derives only the attack under test.

Storage is ``pickle`` — an *internal* cache format keyed by config hash
(the public, stable serialization is ``repro.nn.save_state``'s npz).
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Callable, Optional

_DEFAULT_ROOT = os.environ.get(
    "REPRO_ARTIFACTS",
    os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))), ".artifacts"))


class ArtifactStore:
    """Disk-backed memoization of expensive experiment artifacts."""

    def __init__(self, root: Optional[str] = None):
        self.root = root if root is not None else _DEFAULT_ROOT
        self._memory: dict = {}

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.pkl")

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """Return the cached artifact for ``key`` or build + persist it."""
        if key in self._memory:
            return self._memory[key]
        path = self._path(key)
        if os.path.exists(path):
            with open(path, "rb") as f:
                obj = pickle.load(f)
            self._memory[key] = obj
            return obj
        obj = builder()
        os.makedirs(self.root, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            pickle.dump(obj, f)
        os.replace(tmp, path)
        self._memory[key] = obj
        return obj

    def invalidate(self, key: str) -> None:
        self._memory.pop(key, None)
        path = self._path(key)
        if os.path.exists(path):
            os.remove(path)

    def clear_memory(self) -> None:
        """Drop in-process cache (disk copies stay)."""
        self._memory.clear()


_STORE: Optional[ArtifactStore] = None


def default_store() -> ArtifactStore:
    global _STORE
    if _STORE is None:
        _STORE = ArtifactStore()
    return _STORE
