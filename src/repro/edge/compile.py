"""Compile a frozen QAT model into an :class:`EdgeModel` (TFLite-style
conversion).

Requirements mirror a real converter's:

- the inner model must expose ``edge_layers()`` — an ordered feed-forward
  layer list (LeNet and VGGFaceNet do);
- every fake-quant grid must be frozen (run ``qat_model.freeze()`` after
  QAT, the "convert" step);
- layers must be Conv2d / Linear / ReLU / MaxPool2d / Flatten.  BatchNorm
  is deliberately unsupported: production converters fold BN into convs,
  and edge-deployable models here are built BN-free (biased convs), which
  is also how the original VGG was trained.

The returned :class:`EdgeModel` carries the eager op list as its
reference semantics; ``predict`` lowers it further into per-shape
compiled programs (:mod:`repro.edge.program`) on first use — zero-point
folding, fused/LUT activations and planned buffers — bit-validated
against the op loop, so conversion itself stays a pure, cheap
op-list build.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from ..quantization.affine import QuantParams, quantize
from ..quantization.qat import QATModel
from .engine import (Dequantize, EdgeModel, EdgeOp, QConv2d, QFlatten,
                     QLinear, QMaxPool2d, QReLU, QuantizeInput)


def _frozen_qparams(fq, what: str) -> QuantParams:
    if fq is None:
        raise ValueError(f"{what}: layer has no fake-quant module; "
                         "was the model prepared with prepare_qat?")
    if not fq.frozen:
        raise ValueError(f"{what}: fake-quant grid not frozen; call "
                         "qat_model.freeze() before compiling")
    return fq.qparams()


def compile_edge(qat_model: QATModel, num_classes: int) -> EdgeModel:
    """Lower a frozen QAT model to the integer engine."""
    inner = qat_model.model
    if not hasattr(inner, "edge_layers"):
        raise TypeError(f"{type(inner).__name__} exposes no edge_layers(); "
                        "only feed-forward architectures are edge-compilable")
    in_qp = _frozen_qparams(qat_model.input_fake_quant, "input")
    ops: List[EdgeOp] = [QuantizeInput(in_qp)]
    current_qp = in_qp
    for layer in inner.edge_layers():
        if isinstance(layer, Conv2d):
            w_qp = _frozen_qparams(layer.weight_fake_quant, "conv weight")
            out_qp = _frozen_qparams(layer.activation_post_process, "conv output")
            w = layer.weight.data
            if layer.weight_mask is not None:
                w = w * layer.weight_mask
            q_w = quantize(w, w_qp)
            bias = layer.bias.data if layer.bias is not None else \
                np.zeros(layer.out_channels)
            w_scales = np.atleast_1d(np.asarray(w_qp.scale, dtype=np.float64))
            bias_scale = float(current_qp.scale) * w_scales
            bias_q = np.round(bias / bias_scale).astype(np.int64)
            ops.append(QConv2d(q_w, bias_q, current_qp, w_qp, out_qp,
                               stride=layer.stride, padding=layer.padding,
                               groups=layer.groups))
            current_qp = out_qp
        elif isinstance(layer, Linear):
            w_qp = _frozen_qparams(layer.weight_fake_quant, "linear weight")
            out_qp = _frozen_qparams(layer.activation_post_process, "linear output")
            w = layer.weight.data
            if layer.weight_mask is not None:
                w = w * layer.weight_mask
            q_w = quantize(w, w_qp)
            bias = layer.bias.data if layer.bias is not None else \
                np.zeros(layer.out_features)
            w_scales = np.atleast_1d(np.asarray(w_qp.scale, dtype=np.float64))
            bias_scale = float(current_qp.scale) * w_scales
            bias_q = np.round(bias / bias_scale).astype(np.int64)
            ops.append(QLinear(q_w, bias_q, current_qp, w_qp, out_qp))
            current_qp = out_qp
        elif isinstance(layer, ReLU):
            out_qp = _frozen_qparams(layer.activation_post_process, "relu output")
            ops.append(QReLU(current_qp, out_qp))
            current_qp = out_qp
        elif isinstance(layer, MaxPool2d):
            ops.append(QMaxPool2d(layer.kernel_size, layer.stride, layer.padding))
        elif isinstance(layer, Flatten):
            ops.append(QFlatten())
        else:
            raise TypeError(f"edge compiler cannot lower {type(layer).__name__}")
    ops.append(Dequantize(current_qp))
    return EdgeModel(ops, num_classes)
