"""Request-coalescing scheduler: many jobs, one compiled pass at a time.

The multi-tenant serving problem: heterogeneous requests arrive over
time — DIVA/PGD/CW/FGSM attack jobs against a deployed (original,
adapted) pair, NES query streams, plain :meth:`EdgeModel.predict
<repro.edge.engine.EdgeModel.predict>` scoring — and most of them want
the *same* compiled resources.  Running each request alone wastes the
two things the compiled legs made cheap: program compilation (paid per
attack instance today) and pass occupancy (a 4-row request steps 4-row
gradient batches through machinery that is just as happy with 64).

:class:`Scheduler` fixes both without touching results:

- **compatibility keys** — every job maps to a group key.  Attack jobs
  coalesce when their attacks report equal
  :meth:`~repro.attacks.base.Attack.serve_signature` (same class, same
  model objects, same step count, same non-per-item parameters) over
  the same input shape/dtype; per-item parameters (``eps``, ``alpha``,
  ``keep_best`` and the attack's declared sweep params such as DIVA's
  ``c``) never block coalescing because
  :func:`~repro.attacks.engine.run_scheduled` already takes them as
  per-row vectors.  Edge-inference jobs coalesce per
  :class:`~repro.edge.engine.EdgeModel`.  Float-model inference jobs
  (``predict_float``) coalesce per (model, shape, dtype) under the
  row-reproducible GEMM mode, and also ride along with attack groups
  targeting the same models (mixed traffic shares the dispatch round).
  Everything else (NES and momentum attacks with full-batch
  RNG/velocity state, attacks with no signature, float predicts with
  coalescing disabled) runs solo — with the reason recorded on its
  :class:`DispatchRecord`, never silently serialized.
- **arrival-order dispatch (no starvation)** — the dispatch loop always
  takes the *oldest pending job* as the head of the next batch and then
  folds in every other pending compatible job up to ``max_batch_rows``.
  Group membership is frozen at dispatch, so a stream of compatible
  arrivals can never push an incompatible job back: job *i* is
  dispatched no later than the *i*-th round (asserted by the fairness
  tests).
- **value-neutral merging** — a merged attack batch is exactly the
  tiling :meth:`Attack.generate_sweep` already performs (per-row
  parameter vectors into one ``run_scheduled`` call, each job's own
  ``_init`` for its rows), and per-sample trajectories depend only on
  that sample's own gradients; merged edge batches ride the integer
  path, which is exact per row; merged float batches run under
  :func:`repro.nn.rowrep.row_reproducible`, whose fixed-order blocked
  accumulation makes each row's float bits independent of batch
  composition.  All are bit-identical to running each job alone — the
  scheduler may only change wall-time, never bytes.

Failure handling runs down the **degradation ladder**
(:data:`~repro.serve.resilience.LADDER`): a dispatch that raises at the
coalesced-compiled rung quarantines its group key in the
:class:`~repro.serve.resilience.CircuitBreaker` and retries every
member solo-compiled, then eager — the rung that *is* the bit-exact
reference implementation, so degradation can change latency but never
bytes.  Every retry emits its own :class:`DispatchRecord` (``level`` /
``retry``) and chains the prior rung's exception via ``__cause__``, so
a post-hoc reader can attribute exactly which rung failed and why.
Jobs with a deadline carry a
:class:`~repro.serve.resilience.DeadlineToken` into the step loop and
resolve ``deadline-degraded`` with their best-so-far iterates instead
of running long or failing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..attacks.base import Attack
from ..attacks.engine import run_scheduled
from ..nn import rowrep
from ..nn.tensor import Tensor
from . import faults
from .resilience import (EAGER_LEVEL, CircuitBreaker, Clock, DeadlineError,
                         DeadlineToken, JobError, ServeError)

#: every terminal state a job can land in (the workload-record taxonomy)
OUTCOMES = ("ok", "failed", "rejected", "deadline-degraded")


class JobFuture:
    """Handle to one submitted job's eventual result.

    ``result()`` drives the owning session until this job resolves (the
    scheduler is single-threaded and synchronous — there is no waiting,
    only work).  A failed job re-raises a :class:`ServeError`: admission
    and injected faults keep their own class, anything else is wrapped
    in :class:`JobError` with the root cause chained.  ``outcome`` holds
    the job's terminal state (one of :data:`OUTCOMES`) and ``info``
    outcome details (e.g. per-row ``steps_done`` for deadline-degraded
    attack jobs).
    """

    def __init__(self, drain: Callable[[], None]):
        self._drain = drain
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self.outcome: Optional[str] = None
        self.info: Dict[str, Any] = {}

    @property
    def done(self) -> bool:
        return self._done

    def _resolve(self, value: Any, outcome: str = "ok",
                 info: Optional[Dict[str, Any]] = None) -> None:
        self._value = value
        self.outcome = outcome
        if info:
            self.info.update(info)
        self._done = True

    def _fail(self, error: BaseException, outcome: str = "failed",
              info: Optional[Dict[str, Any]] = None) -> None:
        self._error = error
        self.outcome = outcome
        if info:
            self.info.update(info)
        self._done = True

    def result(self, timeout: Optional[float] = None) -> Any:
        """The job's value, driving the session until it resolves.

        ``timeout`` bounds the wait: the drain stops dispatching new
        rounds once ``timeout`` seconds of session-clock time have
        elapsed, and if this job is still pending a structured
        :class:`~repro.serve.resilience.DeadlineError` is raised — the
        job stays queued (a later unbounded ``result()`` can still
        serve it).  Under a :class:`~repro.serve.resilience.
        ManualClock` only injected latency moves time, so a bounded
        wait expiring is a deterministic, replayable event.
        """
        if not self._done:
            if timeout is None:
                self._drain()
            else:
                self._drain(timeout=timeout)
        if not self._done:
            if timeout is not None:
                raise DeadlineError(
                    f"job did not resolve within the {timeout}s drain "
                    "budget; it remains pending")
            raise JobError("job did not resolve after a full drain")
        if self._error is not None:
            if isinstance(self._error, ServeError):
                raise self._error
            raise JobError(f"{type(self._error).__name__}: {self._error}"
                           ) from self._error
        return self._value


@dataclass
class Job:
    """One queued request (attack or inference) plus its future."""

    kind: str                       # "attack" | "predict" | "predict_float"
    seq: int
    x: np.ndarray
    future: JobFuture
    y: Optional[np.ndarray] = None
    attack: Optional[Attack] = None
    model: Any = None               # EdgeModel / float Module for inference
    tenant: Any = None              # admission-quota identity
    deadline: Optional[float] = None   # absolute clock time, or None
    solo_reason: Optional[str] = None  # why the job could not coalesce

    @property
    def rows(self) -> int:
        return len(self.x)


@dataclass
class DispatchRecord:
    """One scheduling decision, kept for fairness tests, retry
    attribution and stats.  ``level`` is the degradation-ladder rung the
    dispatch ran at (index into :data:`~repro.serve.resilience.LADDER`);
    ``retry`` marks dispatches re-attempted after a failed rung."""

    key: Any
    seqs: Tuple[int, ...]
    rows: int
    level: int = 0
    retry: bool = False
    reason: Optional[str] = None    # solo attribution, never a silent path
    worker: Optional[int] = None    # pool-worker attribution (None = seq.)
    coalesced: bool = field(init=False)

    def __post_init__(self):
        self.coalesced = len(self.seqs) > 1


def _group_key(job: Job, float_coalesce: bool = True):
    """Compatibility key; a unique key (by ``seq``) means "runs solo".

    Solo keys always set ``job.solo_reason`` — a job that cannot
    coalesce dispatches solo *with attribution* (surfaced on its
    :class:`DispatchRecord`), never silently serializes.  Float-predict
    keys embed the row-reproducible mode (``("rr", ROW_BLOCK)``): only
    the fixed-order GEMM makes per-row float bits independent of batch
    composition, so only under that mode is coalescing value-neutral.
    """
    if job.kind == "predict":
        return ("predict", id(job.model), job.x.shape[1:], job.x.dtype.str)
    if job.kind == "predict_float":
        if job.x.dtype.kind != "f":
            job.solo_reason = "non-float input on float-predict path"
            return ("solo", job.seq)
        if not float_coalesce:
            job.solo_reason = "float-coalesce-disabled"
            return ("solo", job.seq)
        return ("predict_float", id(job.model), job.x.shape[1:],
                job.x.dtype.str, ("rr", rowrep.ROW_BLOCK))
    atk = job.attack
    sig = atk.serve_signature()
    if sig is None or not atk.shrink_done:
        job.solo_reason = ("full-batch gradient state" if sig is not None
                          else "no serve signature")
        return ("solo", job.seq)
    return ("attack", sig, job.x.shape[1:], job.x.dtype.str)


class DispatchContext:
    """Everything one dispatch needs that differs between the sequential
    scheduler and a pool worker: which clock deadlines read, which
    breaker holds the key's rung state, where
    :class:`DispatchRecord`\\ s go, and how jobs settle.

    The sequential scheduler's context writes straight into live state
    (``dispatch_log.append`` / :meth:`Scheduler.settle`).  A pool
    worker's context buffers both into per-group lists that the
    single-writer reap publishes in plan order, and reads time from a
    per-group clock view — dispatch code itself stays identical either
    way.  ``is_settled`` covers both the already-published case
    (``future.done``) and settles buffered in this context but not yet
    reaped, so the ladder's "skip settled members" check keeps working
    under deferral.
    """

    def __init__(self, clock: Clock, breaker: CircuitBreaker,
                 record: Callable[["DispatchRecord"], None],
                 settle: Callable[..., None]):
        self.clock = clock
        self.breaker = breaker
        self._record = record
        self._settle = settle
        self._settled: set = set()

    def record(self, rec: "DispatchRecord") -> None:
        self._record(rec)

    def settle(self, job: "Job", *, value: Any = None,
               error: Optional[BaseException] = None,
               outcome: str = "ok",
               info: Optional[Dict[str, Any]] = None) -> None:
        if self.is_settled(job):
            return
        self._settled.add(id(job))
        self._settle(job, value=value, error=error, outcome=outcome,
                     info=info)

    def is_settled(self, job: "Job") -> bool:
        return job.future.done or id(job) in self._settled


def _float_forward(model: Any, xs: np.ndarray, batch_size: int,
                   executor: Any) -> np.ndarray:
    """Chunked eval-mode float forward with **no** auto-compile.

    The eager ladder rung must stay the pure-tape reference — letting
    ``predict_logits`` silently re-enter the compiled path for large
    batches would make "eager" mean "compiled sometimes", which is
    exactly the attribution ambiguity the ladder exists to rule out.
    Chunking is irrelevant to bits here because every caller wraps this
    in :func:`repro.nn.rowrep.row_reproducible`.
    """
    was_training = getattr(model, "training", False)
    model.eval()
    try:
        outs = []
        for start in range(0, len(xs), batch_size):
            xb = xs[start:start + batch_size]
            if executor is not None:
                outs.append(executor.replay(xb))
            else:
                outs.append(model(Tensor(xb)).data.copy())
        return np.concatenate(outs, axis=0)
    finally:
        if was_training:
            model.train()


class Scheduler:
    """Arrival-order batching of compatible jobs onto shared programs.

    Parameters
    ----------
    capacity:
        Active-slot count handed to
        :func:`~repro.attacks.engine.run_scheduled` and the chunk size
        for merged edge-inference batches.
    max_batch_rows:
        Ceiling on the summed rows of one coalesced dispatch; pending
        compatible jobs beyond it wait for the next round (they keep
        their arrival-order priority).
    predict_batch:
        Chunk size for merged edge-inference batches (the per-shape
        program cache amortizes best over one fixed chunk shape).
    clock:
        Time source for deadlines and quarantine cool-downs; injectable
        so chaos tests drive everything from a
        :class:`~repro.serve.resilience.ManualClock`.
    breaker:
        The per-key quarantine.  Shared with the owning session so its
        stats surface on ``ServeSession.stats()``.
    float_coalesce:
        When True (default), float-predict jobs coalesce per (model,
        shape, dtype) under the row-reproducible GEMM mode, and mixed
        traffic rides along: a float-predict job whose model belongs to
        an attack group head's plan owners joins that head's dispatch
        round (sharing the session plan cache and round latency).  When
        False every float-predict job runs solo — attributed on its
        :class:`DispatchRecord`, never silently serialized.
    """

    def __init__(self, capacity: int = 64, max_batch_rows: int = 512,
                 predict_batch: int = 256,
                 clock: Optional[Clock] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 float_coalesce: bool = True):
        if capacity < 1 or max_batch_rows < 1 or predict_batch < 1:
            raise ValueError("capacity, max_batch_rows and predict_batch "
                             "must be >= 1")
        self.capacity = int(capacity)
        self.max_batch_rows = int(max_batch_rows)
        self.predict_batch = int(predict_batch)
        self.float_coalesce = bool(float_coalesce)
        self.clock = clock if clock is not None else Clock()
        self.breaker = (breaker if breaker is not None
                        else CircuitBreaker(clock=self.clock))
        self.pending: "deque[Job]" = deque()
        self.dispatch_log: List[DispatchRecord] = []
        self.outcomes: Dict[str, int] = {o: 0 for o in OUTCOMES}
        self._seq = 0

    # -- queueing ------------------------------------------------------- #
    def enqueue(self, job: Job) -> Job:
        job.seq = self._seq
        self._seq += 1
        self.pending.append(job)
        return job

    def __len__(self) -> int:
        return len(self.pending)

    def settle(self, job: Job, *, value: Any = None,
               error: Optional[BaseException] = None,
               outcome: str = "ok",
               info: Optional[Dict[str, Any]] = None) -> None:
        """Resolve/fail a job's future exactly once and account the
        outcome (the one funnel every terminal state goes through)."""
        if job.future.done:
            return
        if error is not None:
            job.future._fail(error, outcome=outcome, info=info)
        else:
            job.future._resolve(value, outcome=outcome, info=info)
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1

    # -- dispatch ------------------------------------------------------- #
    def run_pending(self, until: Optional[float] = None) -> int:
        """Serve the queue to empty; returns the number of head rounds.

        Membership of each batch is decided when its head job (always
        the oldest pending) is popped — jobs enqueued mid-run join the
        tail and cannot delay anything already queued.  ``queue.tick``
        fires once per round (a latency-fault injection point: queueing
        delay under chaos; error faults do not belong on it).

        ``until`` (absolute clock time) is the bounded-wait budget
        behind :meth:`JobFuture.result(timeout=...) <JobFuture.
        result>`: it is checked *between* dispatch rounds — a round in
        flight always completes (jobs are never abandoned mid-dispatch)
        but no new round starts past the budget, leaving the rest of
        the queue pending for a later drain.
        """
        rounds = 0
        while self.pending:
            if until is not None and self.clock.now() >= until:
                break
            kind, group, key = self._pop_group()
            self._run_group(kind, group, key, self._group_context(key))
            rounds += 1
        return rounds

    def _pop_group(self) -> Tuple[str, List[Job], Any]:
        """Pop the next dispatch round: the oldest pending job as head
        plus every compatible pending job up to ``max_batch_rows``.

        This is *the* grouping decision — the pool planner calls it
        unchanged, so a pooled run partitions the queue into exactly the
        groups a sequential run would (the property the partition tests
        assert).  Fires ``queue.tick`` once per call.
        """
        faults.fire("queue.tick")
        head = self.pending.popleft()
        key = _group_key(head, self.float_coalesce)
        group = [head]
        rows = head.rows
        if key[0] != "solo":
            # an attack-headed group also absorbs float-predict
            # "riders" against the attack's own models: mixed
            # traffic shares the dispatch round (and the session
            # plan cache) instead of waiting behind it
            owners: Tuple[Any, ...] = ()
            if key[0] == "attack" and self.float_coalesce:
                owners = tuple(head.attack._plan_owners())
            kept: List[Job] = []
            for job in self.pending:
                fits = rows + job.rows <= self.max_batch_rows
                if fits and _group_key(job, self.float_coalesce) == key:
                    group.append(job)
                    rows += job.rows
                elif (fits and owners and job.kind == "predict_float"
                        and job.x.dtype.kind == "f"
                        and any(job.model is m for m in owners)):
                    group.append(job)
                    rows += job.rows
                else:
                    kept.append(job)
            self.pending = deque(kept)
        return head.kind, group, key

    def _group_context(self, key) -> DispatchContext:
        """The live-state context: records and settles publish directly.
        Subclasses route ``key`` to its breaker shard here."""
        return DispatchContext(self.clock, self.breaker,
                               self.dispatch_log.append, self.settle)

    def _run_group(self, kind: str, group: List[Job], key,
                   ctx: DispatchContext) -> None:
        """Dispatch a group down the degradation ladder.

        A healthy key dispatches coalesced-compiled (rung 0).  If that
        raises (one tenant's malformed rows, an injected fault, a bad
        plan), the key is quarantined and every member walks the rest of
        the ladder solo — innocent jobs still complete, the faulty one
        carries the error, and each attempt is logged so failures are
        attributable post-hoc.  A key already quarantined at rung L
        skips straight to solo dispatch at L for every member.
        """
        start = ctx.breaker.level(key)
        cause: Optional[BaseException] = None
        if start == 0:
            ctx.record(DispatchRecord(
                key, tuple(j.seq for j in group),
                sum(j.rows for j in group), level=0,
                reason=group[0].solo_reason if len(group) == 1 else None))
            try:
                self._dispatch(kind, group, level=0, ctx=ctx)
                ctx.breaker.record_success(key, 0)
                return
            except Exception as exc:    # noqa: BLE001 - job isolation
                ctx.breaker.record_failure(key, 0)
                cause = exc
            start = 1
        for job in group:
            self._run_ladder(kind, job, key, start, cause, ctx)

    def _run_ladder(self, kind: str, job: Job, key, level: int,
                    cause: Optional[BaseException],
                    ctx: DispatchContext) -> None:
        """Walk one job down the ladder from ``level`` until a rung
        succeeds or the eager floor fails too.  Each failed rung's
        exception is chained behind the next (``__cause__``), so the
        terminal error explains the whole descent.  Jobs already
        settled by a partially-successful mixed dispatch (their kind's
        sub-dispatch resolved before another kind's raised) are done —
        re-running them would double-spend the pass."""
        if ctx.is_settled(job):
            return
        while True:
            level = min(level, EAGER_LEVEL)
            ctx.record(DispatchRecord(
                key, (job.seq,), job.rows, level=level,
                retry=cause is not None, reason=job.solo_reason))
            try:
                self._dispatch(kind, [job], level=level, ctx=ctx)
                ctx.breaker.record_success(key, level)
                return
            except Exception as exc:    # noqa: BLE001 - job isolation
                ctx.breaker.record_failure(key, level)
                if (cause is not None and exc is not cause
                        and exc.__cause__ is None):
                    exc.__cause__ = cause
                cause = exc
                if level >= EAGER_LEVEL:
                    ctx.settle(job, error=exc, outcome="failed")
                    return
                level += 1

    def _dispatch(self, kind: str, group: List[Job], level: int,
                  ctx: DispatchContext) -> None:
        # mixed groups (attack head + float-predict riders) partition by
        # kind: each sub-dispatch resolves its own jobs, so a failure in
        # one kind walks only the unresolved members down the ladder
        compiled = level < EAGER_LEVEL
        attacks = [j for j in group if j.kind == "attack"]
        predicts = [j for j in group if j.kind == "predict"]
        floats = [j for j in group if j.kind == "predict_float"]
        if attacks:
            self._dispatch_attack(attacks, ctx, compiled=compiled)
        if predicts:
            self._dispatch_predict(predicts, ctx, compiled=compiled)
        if floats:
            self._dispatch_predict_float(floats, ctx, compiled=compiled)

    # -- attack batches -------------------------------------------------- #
    def _dispatch_attack(self, group: List[Job], ctx: DispatchContext,
                         compiled: bool = True) -> None:
        """One scheduled pass over the merged rows of ``group``.

        Mirrors :meth:`Attack.generate_sweep`'s tiling exactly, with one
        "variant" per job: per-row ``eps``/``alpha``/``keep_best`` (and
        sweep-parameter) vectors taken from each job's own attack, each
        job's rows initialized by its own attack's ``_init`` (so
        ``random_start`` streams match a solo run), and the group head's
        attack driving the gradient passes.  Per-sample trajectories are
        independent, so every job's slice is bit-identical to
        ``job.attack.generate(job.x, job.y)`` run alone.

        ``compiled=False`` is the eager ladder rung: the head attack's
        ``use_compiled`` is forced off for the dispatch (which also
        gates off the recorded whole-loop path), and no fault point
        fires — eager is the reference implementation faults degrade
        *to*, never a fault domain itself.  Jobs with deadlines thread
        a :class:`DeadlineToken` into the step loop; rows whose
        deadline passes retire between steps with their best-so-far
        iterate and the job resolves ``deadline-degraded``.

        The merged batch goes through
        :func:`~repro.attacks.engine.run_scheduled`, so when the head
        attack's whole-loop plan is warm (``use_loop`` on, models
        traceable, validation passed) the entire coalesced dispatch
        replays as one recorded masked program
        (:mod:`repro.attacks.loop`) — still bit-identical per row, by
        the loop path's build-time validation contract.
        """
        rep = group[0].attack
        if compiled:
            faults.fire("dispatch.attack")
        token: Optional[DeadlineToken] = None
        if any(j.deadline is not None for j in group):
            row_deadlines: List[Optional[float]] = []
            for j in group:
                row_deadlines.extend([j.deadline] * j.rows)
            token = DeadlineToken.for_rows(row_deadlines, ctx.clock)
        prior = rep.use_compiled
        rep.use_compiled = prior and compiled
        try:
            if len(group) == 1 and not rep.shrink_done:
                # full-batch gradient state (momentum, NES noise): the slot
                # scheduler cannot host it, and the batch partition is part
                # of the result (per-batch RNG/velocity state), so the job
                # must run with generate's own default batching — exactly
                # what `attack.generate(x, y)` alone would do
                job = group[0]
                adv = rep.generate(job.x, job.y, deadline=token)
                self._resolve_slices(group, adv, token, ctx)
                return
            rep._refresh_compiled()
            xs = np.concatenate([j.x for j in group], axis=0)
            ys = np.concatenate([np.asarray(j.y) for j in group])
            dtype = xs.dtype
            eps = np.concatenate([
                np.full(j.rows, j.attack.eps, dtype=dtype) for j in group])
            alpha = np.concatenate([
                np.full(j.rows, j.attack.alpha, dtype=dtype) for j in group])
            check = np.concatenate([
                np.full(j.rows, j.attack.keep_best, dtype=bool)
                for j in group])
            params: Optional[Dict[str, np.ndarray]] = None
            if len(group) > 1 and rep.sweep_params:
                params = {key: np.concatenate([
                    np.full(j.rows, float(getattr(j.attack, key)),
                            dtype=np.float64) for j in group])
                    for key in sorted(rep.sweep_params)}
            adv0 = np.concatenate([j.attack._init(j.x) for j in group],
                                  axis=0)
            adv = run_scheduled(rep, xs, ys, adv0, eps, alpha, check, params,
                                capacity=self.capacity, deadline=token)
            self._resolve_slices(group, adv, token, ctx)
        finally:
            rep.use_compiled = prior

    def _resolve_slices(self, group: List[Job], adv: np.ndarray,
                        token: Optional[DeadlineToken],
                        ctx: DispatchContext) -> None:
        start = 0
        for job in group:
            lo, hi = start, start + job.rows
            if token is not None and token.job_slice_expired(lo, hi):
                ctx.settle(
                    job, value=adv[lo:hi].copy(), outcome="deadline-degraded",
                    info={"expired_rows": int(token.expired[lo:hi].sum()),
                          "steps_done": token.steps_done[lo:hi].copy()})
            else:
                ctx.settle(job, value=adv[lo:hi].copy(), outcome="ok")
            start = hi

    # -- inference batches ----------------------------------------------- #
    def _dispatch_predict(self, group: List[Job], ctx: DispatchContext,
                          compiled: bool = True) -> None:
        """Merged rows through one shared per-shape edge program.

        The integer path is exact per row (float64 GEMMs on sub-2**53
        integers, elementwise requantization), so chunking the merged
        batch differently from each solo ``predict`` call cannot change
        a single bit of any job's logits.  Deadlines are ignored here by
        design: inference is a single pass with no intermediate iterate
        to return, so a "partial" predict does not exist.
        """
        model = group[0].model
        if compiled:
            faults.fire("dispatch.predict")
        xs = np.concatenate([j.x for j in group], axis=0)
        out = model.predict(xs, batch_size=self.predict_batch,
                            compiled=compiled)
        start = 0
        for job in group:
            # copy: a view would alias every tenant's result to one
            # merged buffer (and pin all of it for as long as any
            # caller keeps its small slice)
            ctx.settle(job, value=out[start:start + job.rows].copy())
            start += job.rows

    # -- float inference batches ------------------------------------------ #
    def _dispatch_predict_float(self, group: List[Job], ctx: DispatchContext,
                                compiled: bool = True) -> None:
        """Merged float rows through one shared row-reproducible pass.

        Unlike the integer edge path, a float GEMM's per-row bits depend
        on batch composition under BLAS (kernel/blocking selection keys
        off the row count), so naive merging would change results.  The
        whole dispatch therefore runs under
        :func:`repro.nn.rowrep.row_reproducible`: every matmul uses the
        fixed-order blocked accumulation, making each row's bits a
        function of that row and the weights alone.  With the mode on,
        coalesced-compiled == solo-compiled == eager per row (compiled
        plans are bit-validated against per-row execution at build
        time), so the degradation ladder is byte-neutral for float
        predicts exactly as it is for attacks and edge inference.

        Mixed groups may carry riders against several models / input
        shapes; each (model, shape, dtype) partition runs one shared
        pass.  Compiled rungs look up plans in the model's adopted
        session :class:`~repro.serve.cache.PlanCache` (falling back to
        the process-wide store), where row-reproducible plans are keyed
        apart from unconstrained ones by ``rowrep.mode_key()``; a plan
        that fails to build pins None and the pass runs the eager tape —
        bit-identical under the mode, per the shared fallback contract.
        Deadlines are ignored as in :meth:`_dispatch_predict`: a single
        pass has no partial result to return.
        """
        if compiled:
            faults.fire("dispatch.predict_float")
        from ..nn.graph import compile_forward_cached
        parts: Dict[Any, List[Job]] = {}
        for job in group:
            parts.setdefault(
                (id(job.model), job.x.shape[1:], job.x.dtype.str),
                []).append(job)
        with rowrep.row_reproducible():
            for members in parts.values():
                model = members[0].model
                xs = np.concatenate([j.x for j in members], axis=0)
                executor = None
                if compiled:
                    # 8 example rows, like Attack's executor cache: the
                    # plan replays any batch size, and the memo key only
                    # uses shape[1:]/dtype/mode
                    executor = compile_forward_cached(
                        model, xs[:8],
                        cache=getattr(model, "plan_cache", None))
                out = _float_forward(model, xs, self.predict_batch, executor)
                start = 0
                for job in members:
                    ctx.settle(job,
                               value=out[start:start + job.rows].copy())
                    start += job.rows
