"""Figure 4: PCA of penultimate representations on digits.

Paper: on MNIST, 1000 digit-0 and 1000 digit-2 samples (classified
identically by both models) are embedded via the penultimate layer of the
original and adapted ResNet50s and projected onto the top-2 principal
components.  DIVA's perturbation shifts digit-0 representations into the
digit-2 cluster for the *adapted* model while moving them much less for
the original model.

Reproduced quantitatively: we measure each attacked sample's distance to
the two class centroids in PCA space, per model — the adapted model's
attacked points must migrate toward the target cluster, the original
model's must mostly stay.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..analysis import PCA, extract_features
from ..attacks import DIVA
from ..training import predict_labels
from .config import ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results


def run(cfg: Optional[ExperimentConfig] = None,
        pipeline: Optional[Pipeline] = None, digit_a: int = 0,
        digit_b: int = 2, verbose: bool = True) -> Dict:
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    orig = pipe.digit_original()
    quant = pipe.digit_quantized()
    _, analysis_set = pipe.digit_datasets()

    # samples of the two digits both models classify correctly
    po = predict_labels(orig, analysis_set.x)
    pq = predict_labels(quant, analysis_set.x)
    ok = (po == analysis_set.y) & (pq == analysis_set.y)
    sel_a = ok & (analysis_set.y == digit_a)
    sel_b = ok & (analysis_set.y == digit_b)
    xa, xb = analysis_set.x[sel_a], analysis_set.x[sel_b]
    if len(xa) < 5 or len(xb) < 5:
        raise RuntimeError("not enough cleanly-classified digit samples")

    feats = {
        ("orig", "a"): extract_features(orig, xa),
        ("orig", "b"): extract_features(orig, xb),
        ("quant", "a"): extract_features(quant, xa),
        ("quant", "b"): extract_features(quant, xb),
    }
    pca = PCA(n_components=2).fit(np.concatenate(list(feats.values())))
    proj = {k: pca.transform(v) for k, v in feats.items()}

    attack = DIVA(orig, quant, c=cfg.c, eps=cfg.eps, alpha=cfg.alpha,
                  steps=cfg.steps)
    x_adv = attack.generate(xa, np.full(len(xa), digit_a))
    proj_adv_orig = pca.transform(extract_features(orig, x_adv))
    proj_adv_quant = pca.transform(extract_features(quant, x_adv))

    def shift_stats(points: np.ndarray, model_tag: str) -> Dict[str, float]:
        """Fraction of points nearer the b-centroid than the a-centroid."""
        ca = proj[(model_tag, "a")].mean(axis=0)
        cb = proj[(model_tag, "b")].mean(axis=0)
        da = np.linalg.norm(points - ca, axis=1)
        db = np.linalg.norm(points - cb, axis=1)
        return {"fraction_near_target": float((db < da).mean()),
                "mean_dist_to_source": float(da.mean()),
                "mean_dist_to_target": float(db.mean())}

    base_orig = shift_stats(proj[("orig", "a")], "orig")
    base_quant = shift_stats(proj[("quant", "a")], "quant")
    adv_orig = shift_stats(proj_adv_orig, "orig")
    adv_quant = shift_stats(proj_adv_quant, "quant")

    results: Dict = {
        "digits": [digit_a, digit_b],
        "n_a": int(len(xa)), "n_b": int(len(xb)),
        "explained_variance_ratio": pca.explained_variance_ratio_.tolist(),
        "natural": {"orig": base_orig, "quant": base_quant},
        "attacked": {"orig": adv_orig, "quant": adv_quant},
        "projections": {
            "orig_a": proj[("orig", "a")], "orig_b": proj[("orig", "b")],
            "quant_a": proj[("quant", "a")], "quant_b": proj[("quant", "b")],
            "adv_orig": proj_adv_orig, "adv_quant": proj_adv_quant,
        },
    }
    rows = [
        ["natural, original model", f"{base_orig['fraction_near_target']:.1%}"],
        ["natural, adapted model", f"{base_quant['fraction_near_target']:.1%}"],
        ["DIVA-attacked, original model", f"{adv_orig['fraction_near_target']:.1%}"],
        ["DIVA-attacked, adapted model", f"{adv_quant['fraction_near_target']:.1%}"],
    ]
    table = format_table(
        ["representation set", f"fraction nearer digit-{digit_b} cluster"],
        rows, title="Figure 4 — PCA representation shift under DIVA")
    results["table"] = table
    if verbose:
        print(table)
    save_results("fig4", {k: v for k, v in results.items()
                          if k != "projections"})
    return results
