"""Single-step attacks: FGSM (Goodfellow et al.) and R+FGSM (Tramer et al.).

Included as the historical baselines the paper's background (§2.2) builds
from; PGD (the paper's main baseline) is their iterated form.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import DEFAULT_EPS, input_gradient, project_linf


def fgsm(model: Module, x: np.ndarray, y: np.ndarray,
         eps: float = DEFAULT_EPS, batch_size: int = 128) -> np.ndarray:
    """Fast Gradient Sign Method: one eps-sized sign step (Eq. 2)."""
    model.eval()
    outs = []
    y = np.asarray(y)
    for start in range(0, len(x), batch_size):
        xb = x[start:start + batch_size]
        yb = y[start:start + batch_size]
        g = input_gradient(
            lambda xt: F.cross_entropy(model(xt), yb, reduction="sum"), xb)
        outs.append(project_linf(xb + eps * np.sign(g), xb, eps).astype(xb.dtype))
    return np.concatenate(outs, axis=0)


def r_fgsm(model: Module, x: np.ndarray, y: np.ndarray,
           eps: float = DEFAULT_EPS, alpha: Optional[float] = None,
           seed: int = 0, batch_size: int = 128) -> np.ndarray:
    """R+FGSM: random step of size ``alpha`` then an FGSM step of the
    remaining budget ``eps - alpha``."""
    alpha = eps / 2 if alpha is None else alpha
    if not 0 < alpha < eps:
        raise ValueError("alpha must satisfy 0 < alpha < eps")
    rng = np.random.default_rng(seed)
    model.eval()
    outs = []
    y = np.asarray(y)
    for start in range(0, len(x), batch_size):
        xb = x[start:start + batch_size]
        yb = y[start:start + batch_size]
        x0 = project_linf(
            xb + alpha * np.sign(rng.normal(size=xb.shape)), xb, eps).astype(xb.dtype)
        g = input_gradient(
            lambda xt: F.cross_entropy(model(xt), yb, reduction="sum"), x0)
        outs.append(project_linf(x0 + (eps - alpha) * np.sign(g), xb, eps).astype(xb.dtype))
    return np.concatenate(outs, axis=0)
