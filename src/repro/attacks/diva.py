"""DIVA — the paper's DIfferential eVasive Attack (§4).

The attack ascends

    L_DIVA(x, y) = p_orig(x)[y] - c * p_adapted(x)[y]           (Eq. 5)

under an L-inf budget.  Raising ``p_orig[y]`` keeps the authoritative
full-precision model confidently correct (evasion); lowering
``p_adapted[y]`` flips the edge model (attack).  ``c`` trades the two
goals (§5.3); the paper's default is ``c = 1``.

The same class powers every threat model: whitebox passes the true
(original, adapted) pair; semi-blackbox passes (surrogate original,
true adapted); blackbox passes (surrogate original, surrogate adapted)
— see :mod:`repro.attacks.surrogate` for the pipelines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import (Attack, DEFAULT_ALPHA, DEFAULT_EPS, DEFAULT_STEPS,
                   input_gradient)


def diva_loss(orig_probs: Tensor, adapted_probs: Tensor, y: np.ndarray,
              c: float = 1.0) -> Tensor:
    """Summed Eq. 5 over a batch."""
    y = np.asarray(y)
    return (orig_probs.gather_rows(y) - c * adapted_probs.gather_rows(y)).sum()


class DIVA(Attack):
    """Whitebox DIVA (§4.2): joint ascent over both models' probabilities.

    Parameters
    ----------
    original: the model whose prediction must *not* change (evasion).
    adapted: the model to flip (attack).
    c: Eq. 5 balance hyper-parameter.
    """

    def __init__(self, original: Module, adapted: Module, c: float = 1.0,
                 eps: float = DEFAULT_EPS, alpha: float = DEFAULT_ALPHA,
                 steps: int = DEFAULT_STEPS, random_start: bool = False,
                 keep_best: bool = True, seed: int = 0):
        super().__init__(eps, alpha, steps, random_start, keep_best, seed)
        self.original = original
        self.adapted = adapted
        self.c = float(c)
        self.original.eval()
        self.adapted.eval()

    def gradient(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        def loss(xt: Tensor) -> Tensor:
            p_orig = F.softmax(self.original(xt), axis=-1)
            p_adapt = F.softmax(self.adapted(xt), axis=-1)
            return diva_loss(p_orig, p_adapt, y, self.c)
        return input_gradient(loss, x_adv)

    def is_success(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        """DIVA's goal: original stays correct AND adapted flips.

        Note the check runs against the models the *attacker* holds —
        for surrogate pipelines that is the surrogate pair, so no
        illegitimate information about the true models leaks in.
        """
        from ..training.evaluate import predict_labels
        po = predict_labels(self.original, x_adv, batch_size=len(x_adv))
        pa = predict_labels(self.adapted, x_adv, batch_size=len(x_adv))
        return (po == y) & (pa != y)


class TargetedDIVA(DIVA):
    """Targeted variant (§6): steer the adapted model toward a chosen
    class while evading the original model.

    Adds to Eq. 5 a term pulling the adapted model's distribution toward
    the one-hot target — "increases the loss based on its distance away
    from a one-hot vector with the value of 1 being at the position of
    the target class".
    """

    def __init__(self, original: Module, adapted: Module, target_class: int,
                 c: float = 1.0, target_weight: float = 1.0,
                 eps: float = DEFAULT_EPS, alpha: float = DEFAULT_ALPHA,
                 steps: int = DEFAULT_STEPS, random_start: bool = False,
                 keep_best: bool = True, seed: int = 0):
        super().__init__(original, adapted, c, eps, alpha, steps,
                         random_start, keep_best, seed)
        self.target_class = int(target_class)
        self.target_weight = float(target_weight)

    def gradient(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        tgt = np.full(len(x_adv), self.target_class)

        def loss(xt: Tensor) -> Tensor:
            p_orig = F.softmax(self.original(xt), axis=-1)
            p_adapt = F.softmax(self.adapted(xt), axis=-1)
            base = diva_loss(p_orig, p_adapt, y, self.c)
            # negative squared distance to the one-hot target, ascended
            onehot = np.zeros(p_adapt.shape, dtype=p_adapt.data.dtype)
            onehot[np.arange(len(tgt)), tgt] = 1.0
            d = p_adapt - Tensor(onehot)
            return base - self.target_weight * (d * d).sum()
        return input_gradient(loss, x_adv)

    def is_success(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Targeted goal: original stays correct AND adapted says target."""
        from ..training.evaluate import predict_labels
        po = predict_labels(self.original, x_adv, batch_size=len(x_adv))
        pa = predict_labels(self.adapted, x_adv, batch_size=len(x_adv))
        return (po == y) & (pa == self.target_class) & (np.asarray(y) != self.target_class)
