"""Budgeted LRU cache over compiled plans — the serving layer's shared
program store.

Before this module, every compiled-executor leg grew its own ad-hoc
per-(model, shape, dtype) cache: ``Attack._exec_cache`` (a plain dict of
``CompiledForward`` / ``PairedExecutor`` entries), ``EdgeModel._programs``
(a never-evicting dict of :class:`~repro.edge.program.EdgeProgram`
plans), and :func:`repro.training.evaluate.predict_logits` recompiling a
fresh replay on every large evaluation.  A multi-tenant server cannot
afford N independent unbounded caches: compiled plans pin preallocated
activation and scratch buffers, so their footprint is real memory, and
the set of (model, shape) pairs in flight is open-ended once many users
drive many model variants (the EI-MTD moving-target setting).

:class:`PlanCache` is the one home for all of them:

- **keyed plans with pinned owners** — every entry holds a strong
  reference to the model object(s) it was compiled from and is only a
  hit while those references are identity-equal, preserving the PR 2
  id-reuse fix (a garbage-collected model's ``id()`` may be recycled;
  a pinned owner cannot be collected, and a rebound owner misses);
- **an explicit memory budget** — entry sizes are estimated by walking
  the plan for numpy buffers (:func:`plan_nbytes`); inserting past the
  budget evicts least-recently-used entries.  Evicted plans are simply
  rebuilt on the next request, and every rebuild re-runs the leg's own
  compile-time bit-validation, so eviction can never change results —
  only warm-up cost;
- **failure pinning with cool-down re-probe** — a builder returning
  ``None`` (the shared "fall back to eager" contract) is cached too, so
  an uncompilable (model, shape) pays the failed compile once, not per
  request.  With ``failure_cooldown_s`` set, a pinned failure expires
  after the cool-down and the next request re-runs the builder — a
  *transient* compile fault (an OOM spike, an injected chaos fault)
  heals instead of pinning eager forever.

The cache is deliberately single-threaded (as is the whole scheduler —
this container is single-CPU; see ROADMAP's multi-core note) and makes
no attempt to share eviction pressure across processes.

Doctest — the full lifecycle on toy plans::

    >>> import numpy as np
    >>> cache = PlanCache(budget_bytes=3500)
    >>> class Plan:
    ...     def __init__(self, tag):
    ...         self.buf = np.zeros(128, dtype=np.float64)   # 1024 B
    ...         self.tag = tag
    >>> owner = object()
    >>> a = cache.get("a", (owner,), lambda: Plan("a"))
    >>> cache.get("a", (owner,), lambda: Plan("never built")) is a
    True
    >>> _ = cache.get("b", (owner,), lambda: Plan("b"))
    >>> _ = cache.get("c", (owner,), lambda: Plan("c"))
    >>> _ = cache.get("d", (owner,), lambda: Plan("d"))   # evicts LRU ("a")
    >>> "a" in cache, "d" in cache, cache.stats["evictions"]
    (False, True, 1)
    >>> rebuilt = cache.get("a", (owner,), lambda: Plan("a2"))  # rebuild
    >>> rebuilt.tag
    'a2'
    >>> cache.stats["hits"], cache.stats["misses"]
    (1, 5)
"""

from __future__ import annotations

import threading
import weakref
import zlib
from collections import OrderedDict
from typing import (Any, Callable, Dict, Iterator, List, Optional,
                    Sequence, Tuple)

import numpy as np

from .resilience import Clock

#: traversal guard for :func:`plan_nbytes` — compiled plans are shallow
#: (steps -> buffers), so a tight depth keeps the walk cheap and safe
_MAX_WALK_DEPTH = 6

#: accounting charge for a pinned-failure entry (plan is None): small
#: but non-zero so a flood of uncompilable shapes still ages out
_FAILURE_NBYTES = 256

#: cap on remembered evicted keys (rebuild-stat bookkeeping only)
_EVICTED_KEYS_MAX = 4096

#: sentinel distinguishing "no entry" from a cached pinned-failure None
_MISS = object()


def plan_nbytes(plan: Any) -> int:
    """Estimated resident bytes of a compiled plan.

    Walks the object's attributes, sequences and dict values collecting
    numpy arrays, summing each distinct backing allocation once (views
    are charged to their base, so a pool slice does not double-count its
    slab).  Buffers drawn from a :class:`~repro.nn.graph.ScratchPool`
    shared with *other* plans are charged to every plan that references
    them — the estimate is deliberately conservative for eviction
    purposes, not an exact accounting.

    >>> import numpy as np
    >>> class P:
    ...     def __init__(self):
    ...         base = np.zeros((4, 256), dtype=np.float32)  # 4096 B
    ...         self.view = base[:2]         # charged via its base
    ...         self.parts = [base, np.zeros(2, dtype=np.int64)]
    >>> plan_nbytes(P())
    4112
    """
    if plan is None:
        return _FAILURE_NBYTES
    seen_objs = set()
    bases: Dict[int, int] = {}

    def visit(obj, depth):
        if depth > _MAX_WALK_DEPTH or obj is None:
            return
        oid = id(obj)
        if oid in seen_objs:
            return
        seen_objs.add(oid)
        if isinstance(obj, PlanCache):
            # owners may hold the very cache charging them (EdgeModel's
            # plan_cache): walking into it would charge every resident
            # plan to every new entry, compounding quadratically
            return
        if isinstance(obj, np.ndarray):
            base = obj
            while isinstance(base.base, np.ndarray):
                base = base.base
            bases[id(base)] = base.nbytes
            return
        if isinstance(obj, (str, bytes, int, float, complex, bool)):
            return
        if isinstance(obj, dict):
            for v in obj.values():
                visit(v, depth + 1)
            return
        if isinstance(obj, (list, tuple, set, frozenset)):
            for v in obj:
                visit(v, depth + 1)
            return
        for slot in getattr(type(obj), "__slots__", ()):
            visit(getattr(obj, slot, None), depth + 1)
        d = getattr(obj, "__dict__", None)
        if d:
            for v in d.values():
                visit(v, depth + 1)

    visit(plan, 0)
    return sum(bases.values())


class _Entry:
    """One cached plan.  ``owners`` are strong references on purpose
    (they make the ids in the key stable for the entry's lifetime);
    ``scope`` is a *weak* reference — a scope tag holding its own cache
    entries strongly would form uncollectable-by-refcount cycles
    (attack -> cache -> entry -> attack), and a long-lived serving
    process churning sessions would accumulate dead programs until the
    generational GC got around to them."""

    __slots__ = ("owners", "plan", "nbytes", "_scope", "failed_at")

    def __init__(self, owners: Tuple, plan: Any, nbytes: int, scope: Any,
                 failed_at: Optional[float] = None):
        self.owners = owners
        self.plan = plan
        self.nbytes = nbytes
        self._scope = None if scope is None else weakref.ref(scope)
        # when the plan is a pinned failure (None), the clock reading at
        # pin time — drives the cool-down re-probe
        self.failed_at = failed_at

    def scope_is(self, scope: Any) -> bool:
        return self._scope is not None and self._scope() is scope


class PlanCache:
    """LRU cache of compiled plans with pinned owners and a byte budget.

    Parameters
    ----------
    budget_bytes:
        Soft ceiling on the summed :func:`plan_nbytes` of resident
        entries (each entry is charged for its plan *and* the owner
        objects it pins); None (the default) never evicts, matching the
        historic per-attack / per-edge-model dict behaviour.  The most
        recently inserted entry is never evicted, so a single plan
        larger than the whole budget still serves (everything else
        goes).
    failure_cooldown_s:
        How long a pinned failure (builder returned None) stays pinned
        before the next request re-runs the builder; None (the default)
        pins failures for the cache's lifetime, the historic behaviour.
    clock:
        Monotonic time source for the cool-down; injectable so chaos
        tests drive re-probes with a
        :class:`~repro.serve.resilience.ManualClock`.
    """

    def __init__(self, budget_bytes: Optional[int] = None,
                 failure_cooldown_s: Optional[float] = None,
                 clock: Optional[Clock] = None):
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive or None")
        self.budget_bytes = budget_bytes
        self.failure_cooldown_s = failure_cooldown_s
        self.clock = clock if clock is not None else Clock()
        self._entries: "OrderedDict[Any, _Entry]" = OrderedDict()
        # evicted keys awaiting a possible rebuild, kept only so a miss
        # can be classified as a rebuild in the stats; bounded (oldest
        # dropped) so an open-ended key stream cannot leak through a
        # bookkeeping side-channel the byte budget cannot see
        self._evicted_keys: "OrderedDict[Any, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rebuilds = 0
        self.reprobes = 0

    # -- core ----------------------------------------------------------- #
    def get(self, key, owners: Tuple, build: Callable[[], Any],
            scope: Any = None) -> Any:
        """The one lookup path: cached plan, or build-insert-and-return.

        ``owners`` are identity-checked against the entry (a recycled
        ``id()`` in ``key`` therefore cannot alias a dead model's plan);
        ``build`` runs on miss and may return None to pin an eager
        fallback for this key.  ``scope`` tags the entry for scoped
        iteration/refresh (e.g. one attack instance inside a shared
        session cache).
        """
        plan = self._lookup(key, owners)
        if plan is not _MISS:
            return plan
        plan = build()
        self._insert_plan(key, owners, plan, scope)
        return plan

    def _lookup(self, key, owners: Tuple) -> Any:
        """Hit value (possibly a pinned-failure None) or :data:`_MISS`,
        with all hit/stale/cool-down bookkeeping applied.  Split from
        :meth:`get` so :class:`ShardedPlanCache` can hold its shard lock
        for the lookup and the insert but run the builder outside it."""
        entry = self._entries.get(key)
        if entry is not None:
            if (len(entry.owners) == len(owners)
                    and all(a is b for a, b in zip(entry.owners, owners))):
                if (entry.plan is None
                        and self.failure_cooldown_s is not None
                        and entry.failed_at is not None
                        and (self.clock.now() - entry.failed_at
                             >= self.failure_cooldown_s)):
                    # pinned failure past its cool-down: drop it and
                    # give the builder another chance
                    del self._entries[key]
                    self.reprobes += 1
                else:
                    self.hits += 1
                    self._entries.move_to_end(key)
                    return entry.plan
            else:
                # stale entry under a recycled/rebound key: rebuild
                del self._entries[key]
        self.misses += 1
        if key in self._evicted_keys:
            self.rebuilds += 1
            del self._evicted_keys[key]
        return _MISS

    def _insert_plan(self, key, owners: Tuple, plan: Any, scope: Any) -> None:
        # entries pin their owners, so an owner's arrays are resident
        # for exactly as long as the entry is: charge them to the
        # budget too (double-charged when several entries pin one
        # owner — conservative, i.e. errs toward evicting)
        nbytes = plan_nbytes(plan) + sum(plan_nbytes(o) for o in owners)
        failed_at = self.clock.now() if plan is None else None
        self._insert(key, _Entry(tuple(owners), plan, nbytes, scope,
                                 failed_at=failed_at))

    def _insert(self, key, entry: _Entry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if self.budget_bytes is None:
            return
        while (self.total_bytes() > self.budget_bytes
               and len(self._entries) > 1):
            victim = next(iter(self._entries))
            if victim == key:        # never evict the entry just inserted
                break
            del self._entries[victim]
            self.evictions += 1
            self._evicted_keys[victim] = None
            self._evicted_keys.move_to_end(victim)
            while len(self._evicted_keys) > _EVICTED_KEYS_MAX:
                self._evicted_keys.popitem(last=False)

    # -- introspection -------------------------------------------------- #
    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "rebuilds": self.rebuilds,
                "reprobes": self.reprobes,
                "entries": len(self._entries),
                "resident_bytes": self.total_bytes()}

    def items(self, scope: Any = None) -> Iterator[Tuple[Any, _Entry]]:
        """(key, entry) pairs, optionally restricted to one scope tag."""
        for key, entry in list(self._entries.items()):
            if scope is None or entry.scope_is(scope):
                yield key, entry

    def refresh(self, owners: Optional[Sequence] = None) -> None:
        """Re-fold constants on cached plans with a ``refresh`` method.

        The parameters a plan snapshot may have been mutated since it
        was built (optimizer steps between ``generate`` calls); attacks
        call this once per run.  ``owners`` restricts the pass to
        entries pinning at least one of the given objects (identity) —
        a plan's constants can only go stale through the models it was
        compiled from, so refreshing by owner is exact while staying
        O(own plans) in a shared multi-tenant store.  None refreshes
        everything.
        """
        for _, entry in self.items():
            if entry.plan is None or not hasattr(entry.plan, "refresh"):
                continue
            if owners is not None and not any(
                    e is o for e in entry.owners for o in owners):
                continue
            entry.plan.refresh()

    def discard(self, key) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()
        self._evicted_keys.clear()


class ShardedPlanCache:
    """N :class:`PlanCache` shards behind one deterministic key router —
    the worker pool's program store.

    Each pool worker's dispatches hit the shard its keys route to, so
    plan lookups from different workers contend only when their keys
    genuinely share a shard.  The full :class:`PlanCache` interface is
    preserved (``get`` / ``refresh`` / ``items`` / ``discard`` /
    ``clear`` / ``stats`` / containment); callers — attacks, edge
    models, the scheduler — cannot tell the difference, which is what
    lets :meth:`ServeSession._adopt <repro.serve.session.ServeSession.
    _adopt>` swap it in without touching any compiled leg.

    **Deterministic routing.**  Plan keys embed raw ``id()``\\ s (model
    identity), which vary run to run; hashing them raw would assign
    keys to different shards on every run and make per-shard stats,
    breaker state and steal decisions unreproducible.
    :meth:`register_owner` gives each adopted object a stable
    *adoption-order index*, and routing canonicalizes keys by
    substituting registered ids with their index before hashing.  The
    registry holds strong references so a registered id can never be
    recycled onto a different object.

    **Locking.**  One ``RLock`` per shard, held for lookups and inserts
    but *not* across builders: a plan compile may re-enter the cache
    under other keys (possibly on other shards), and holding shard A's
    lock while waiting on shard B's is a lock-ordering deadlock with a
    concurrent worker doing the reverse.  Duplicate concurrent builds
    of one key cannot happen anyway — the pool serializes groups that
    share plan owners onto one worker (the conflict-component rule), so
    any two touches of the same key are ordered.

    **Budget.**  ``budget_bytes`` splits evenly across shards.  Per-
    shard eviction is value-neutral exactly as single-cache eviction
    is: an evicted plan rebuilds on next request and re-runs its leg's
    compile-time bit-validation.
    """

    def __init__(self, nshards: int = 1,
                 budget_bytes: Optional[int] = None,
                 failure_cooldown_s: Optional[float] = None,
                 clock: Optional[Clock] = None):
        if nshards < 1:
            raise ValueError("nshards must be >= 1")
        self.nshards = int(nshards)
        self.budget_bytes = budget_bytes
        self.clock = clock if clock is not None else Clock()
        per_shard = (None if budget_bytes is None
                     else max(int(budget_bytes) // self.nshards, 1))
        self.shards: List[PlanCache] = [
            PlanCache(budget_bytes=per_shard,
                      failure_cooldown_s=failure_cooldown_s,
                      clock=self.clock)
            for _ in range(self.nshards)]
        self._locks = [threading.RLock() for _ in range(self.nshards)]
        self._owner_index: Dict[int, int] = {}
        self._owners: List[Any] = []        # strong refs: ids stay stable

    # -- routing -------------------------------------------------------- #
    def register_owner(self, obj: Any) -> int:
        """Assign (or return) ``obj``'s stable adoption-order index."""
        idx = self._owner_index.get(id(obj))
        if idx is None:
            idx = len(self._owners)
            self._owners.append(obj)
            self._owner_index[id(obj)] = idx
        return idx

    def _canonical(self, key):
        if isinstance(key, tuple):
            return tuple(self._canonical(k) for k in key)
        if isinstance(key, int) and not isinstance(key, bool):
            idx = self._owner_index.get(key)
            if idx is not None:
                return ("owner", idx)
        return key

    def shard_index(self, key) -> int:
        """The shard owning ``key`` — stable across runs for keys whose
        embedded ids belong to registered owners."""
        canon = repr(self._canonical(key)).encode("utf-8", "replace")
        return zlib.crc32(canon) % self.nshards

    # -- core ----------------------------------------------------------- #
    def get(self, key, owners: Tuple, build: Callable[[], Any],
            scope: Any = None) -> Any:
        i = self.shard_index(key)
        shard = self.shards[i]
        with self._locks[i]:
            plan = shard._lookup(key, owners)
            if plan is not _MISS:
                return plan
        plan = build()          # outside the lock: builders may re-enter
        with self._locks[i]:
            shard._insert_plan(key, owners, plan, scope)
        return plan

    # -- introspection / maintenance ------------------------------------ #
    def total_bytes(self) -> int:
        return sum(s.total_bytes() for s in self.shards)

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def __contains__(self, key) -> bool:
        i = self.shard_index(key)
        with self._locks[i]:
            return key in self.shards[i]

    def items(self, scope: Any = None) -> Iterator[Tuple[Any, _Entry]]:
        for i, shard in enumerate(self.shards):
            with self._locks[i]:
                pairs = list(shard.items(scope))
            for pair in pairs:
                yield pair

    def refresh(self, owners: Optional[Sequence] = None) -> None:
        for i, shard in enumerate(self.shards):
            with self._locks[i]:
                shard.refresh(owners)

    def discard(self, key) -> None:
        i = self.shard_index(key)
        with self._locks[i]:
            self.shards[i].discard(key)

    def clear(self) -> None:
        for i, shard in enumerate(self.shards):
            with self._locks[i]:
                shard.clear()

    @property
    def stats(self) -> Dict[str, Any]:
        per_shard = [s.stats for s in self.shards]
        agg = {field: sum(s[field] for s in per_shard)
               for field in ("hits", "misses", "evictions", "rebuilds",
                             "reprobes", "entries", "resident_bytes")}
        agg["nshards"] = self.nshards
        agg["per_shard"] = per_shard
        return agg
