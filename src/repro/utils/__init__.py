"""``repro.utils`` — deterministic RNG derivation and PPM image output."""

from .imageio import noise_to_image, write_pgm, write_ppm
from .rng import child_generator, child_seed, generator

__all__ = ["generator", "child_seed", "child_generator",
           "write_ppm", "write_pgm", "noise_to_image"]
