"""Whole-loop attack compilation: the PGD/DIVA/CW loop as one program.

After PRs 1–5 every attack *step* is a compiled replay, but the loop
around it — per-step dispatch, ``keep_best`` bookkeeping, done-row
re-slicing — still runs in the Python interpreter.  This module records
the whole loop once and replays it:

- :func:`compile_attack_loop` traces the masked step update into a
  :class:`~repro.nn.graph.CompiledKernel` (the ``sign``/``maximum``/
  ``minimum``/``select`` ops registered in :mod:`repro.nn.graph`),
  closes the loop with a per-row continuation mask and the attack's
  ``steps`` trip cap, and **bit-validates the recorded loop against the
  step-at-a-time engine** (:func:`repro.attacks.engine.
  run_scheduled_steps`) on a small slice before the plan exists — the
  same trace/plan → bit-validate → loud-fallback contract every
  compiled leg follows.  Any refusal (an attack whose gradient or step
  rule is overridden, an untraceable model, a validation mismatch)
  returns the engine path, never an error.

- :func:`try_run_loop` is the router ``run_scheduled`` consults: it
  resolves the attack's :meth:`~repro.attacks.base.Attack._loop_spec`
  (the compiled gradient programs plus seed/aux adapters), fetches the
  validated loop plan from the attack's
  :class:`~repro.serve.PlanCache`, and drives all steps with per-row
  **early exit via masking instead of re-slicing**: retired rows leave
  the select mask, and the batch is compacted only at retirement
  boundaries — exactly the engine's active-slot semantics, so per-row
  trajectories (and deadline poll cadence) are bit-identical.

Loop-carried state per active row: ``(x_adv, steps_done, done)`` plus
the loop-invariant clip bounds ``lo``/``hi`` (the keep-best "best"
iterate *is* ``x_adv`` — a row stops stepping at its first success, so
the held iterate never diverges from the carried one; the engine's
``keep``-mask is the continuation mask here).

Deadlines: the loop replays in bounded chunks of ``attack.loop_chunk``
gradient passes (default 1) and polls the
:class:`~repro.serve.resilience.DeadlineToken` between chunks, so
deadline-degraded jobs retire with best-so-far iterates exactly like
the engine.  With a deadline attached the loop additionally disables
fixed-point fast-forwarding, keeping the engine's pass-for-pass fault
and clock cadence (``attack.step`` latency faults fire per poll).

Fixed-point fast-forward (no deadline only): when a row's masked step
reproduces its iterate bit-for-bit, every future pass provably would
too (the gradient is a pure function of the iterate, so the next pass
replays the same bytes into the same bytes), and the row's returned
iterate can never change again — it skips straight to the trip cap.
CW rows hit this hinge fixed point a few steps after success (the
margin subgradient goes exactly zero); PGD/DIVA rows typically do not.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..nn.graph import GraphUnsupported, compile_step_kernel

#: rows of the caller's batch used for loop validation (matching the
#: model-compile example discipline)
_VALIDATE_ROWS = 8
#: trip cap for the validation run: enough passes to cover the no-check
#: first pass, the shifted success check and step-cap retirement
#: without paying the caller's full step count twice per compile
_VALIDATE_STEPS = 3

_LOOP_TAG = "attack-loop"

PIXEL_MIN = 0.0
PIXEL_MAX = 1.0


class LoopSpec:
    """An attack's recipe for direct program-level stepping.

    ``programs`` are the compiled forward programs the attack's
    ``gradient_with_logits`` would replay; ``seeds(outs, y, variant)``
    maps their logits to one backward seed per program; ``aux_of(outs)``
    shapes the logits into the payload ``_success_mask`` expects.
    Driving the programs directly (forwards, seeds, summed backwards)
    is bit-identical to the attack's own compiled gradient path — it is
    the same code path minus the per-step wrapper dispatch.
    """

    __slots__ = ("programs", "seeds", "aux_of")

    def __init__(self, programs: Sequence,
                 seeds: Callable[[Sequence[np.ndarray], np.ndarray,
                                  Optional[Dict[str, np.ndarray]]],
                                 Sequence[np.ndarray]],
                 aux_of: Callable[[Sequence[np.ndarray]], Any]):
        self.programs = list(programs)
        self.seeds = seeds
        self.aux_of = aux_of


class CompiledAttackLoop:
    """The cached whole-loop plan: one validated masked step kernel.

    The gradient programs are *not* pinned here — they stay in the
    attack's plan cache under their own keys (rebuilt/refreshed on
    their own contract) and are re-resolved per run; the loop plan owns
    only the step kernel plus the fact that the loop composition
    validated bit-for-bit against the engine.
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self.runs = 0

    def refresh(self) -> None:
        """No constants to re-fold: the kernel's every array is a
        per-replay input.  Defined so :meth:`PlanCache.refresh` treats
        loop plans uniformly with model programs."""


def _gradient_and_aux(spec: LoopSpec, adv_c: np.ndarray, y_c: np.ndarray,
                      variant) -> Tuple[np.ndarray, Any]:
    """Forwards, seeds and summed backwards over the spec's programs —
    ``PairedExecutor.value_and_input_grad`` inlined (single programs are
    the one-element case), bit-identical to the attack's compiled
    gradient path."""
    programs = spec.programs
    xs = [p._check_input(adv_c) for p in programs]
    outs = [p._forward(xc) for p, xc in zip(programs, xs)]
    seeds = spec.seeds(outs, y_c, variant)
    g = programs[0]._backward_from_seed(np.asarray(seeds[0]), xs[0])
    for p, xc, s in zip(programs[1:], xs[1:], seeds[1:]):
        np.add(g, p._backward_from_seed(np.asarray(s), xc), out=g)
    return g, spec.aux_of(outs)


def _run_loop(attack, spec: LoopSpec, kernel, x, y, adv, eps, alpha, check,
              params, capacity: int, deadline=None,
              steps: Optional[int] = None, fast_forward: bool = True
              ) -> np.ndarray:
    """Replay the recorded loop; mirrors ``run_scheduled_steps`` exactly.

    Active rows live compacted in loop-carried arrays; the kernel's
    ``select`` mask (the continuation mask) does the per-row early exit,
    and compaction happens only when rows retire — the engine's
    slot-refill boundary, preserving its fill → poll → gradient → check
    → step → retire order (and therefore its deadline/fault cadence).
    ``adv`` is advanced in place, including on an exception mid-loop
    (the engine's in-place contract the scheduler's retry ladder reads).
    """
    n_items = len(x)
    steps = attack.steps if steps is None else int(steps)
    chunk = max(1, int(getattr(attack, "loop_chunk", 1)))
    ff = fast_forward and deadline is None
    one = (1,) * (x.ndim - 1)
    trailing = x.shape[1:]

    idx = np.zeros(0, dtype=np.intp)
    adv_c = np.zeros((0,) + trailing, dtype=adv.dtype)
    lo_c = np.zeros((0,) + trailing, dtype=x.dtype)
    hi_c = np.zeros((0,) + trailing, dtype=x.dtype)
    alpha_c = np.zeros((0,) + one, dtype=alpha.dtype)
    y_c = y[:0]
    check_c = np.zeros(0, dtype=bool)
    sd_c = np.zeros(0, dtype=np.intp)
    pv_c = ({k: v[:0] for k, v in params.items()} if params else None)
    next_item = 0
    pass_i = 0

    try:
        while idx.size or next_item < n_items:
            if idx.size < capacity and next_item < n_items:
                stop = min(next_item + (capacity - idx.size), n_items)
                new = np.arange(next_item, stop, dtype=np.intp)
                next_item = stop
                eps_col = eps[new].reshape((-1,) + one)
                idx = np.concatenate([idx, new])
                adv_c = np.concatenate([adv_c, adv[new]])
                # loop-invariant clip bounds: a single max/min clamp
                # against clip(x ± eps, 0, 1) is bit-identical to the
                # engine's two-stage project_linf (clamp composition is
                # a selection among the same candidates, in np.clip's
                # lower-then-upper order; NaN propagates identically)
                lo_c = np.concatenate(
                    [lo_c, np.clip(x[new] - eps_col, PIXEL_MIN, PIXEL_MAX)])
                hi_c = np.concatenate(
                    [hi_c, np.clip(x[new] + eps_col, PIXEL_MIN, PIXEL_MAX)])
                alpha_c = np.concatenate(
                    [alpha_c, alpha[new].reshape((-1,) + one)])
                y_c = np.concatenate([y_c, y[new]])
                check_c = np.concatenate([check_c, check[new]])
                sd_c = np.concatenate(
                    [sd_c, np.zeros(len(new), dtype=np.intp)])
                if pv_c is not None:
                    pv_c = {k: np.concatenate([pv_c[k], params[k][new]])
                            for k in pv_c}

            if deadline is not None and pass_i % chunk == 0:
                exp = np.asarray(deadline.poll(idx), dtype=bool)
                if exp.any():
                    rows = idx[exp]
                    deadline.expire(rows, sd_c[exp])
                    adv[rows] = adv_c[exp]
                    live = ~exp
                    (idx, adv_c, lo_c, hi_c, alpha_c, y_c, check_c,
                     sd_c) = (a[live] for a in
                              (idx, adv_c, lo_c, hi_c, alpha_c, y_c,
                               check_c, sd_c))
                    if pv_c is not None:
                        pv_c = {k: v[live] for k, v in pv_c.items()}
                    if idx.size == 0:
                        continue
            pass_i += 1

            variant = pv_c if pv_c else None
            g, aux = _gradient_and_aux(spec, adv_c, y_c, variant)

            # shifted success check — identical to the engine's
            keep = np.ones(idx.size, dtype=bool)
            elig = (sd_c > 0) & check_c
            if elig.any():
                mask = attack._success_mask(aux, adv_c, y_c)
                if mask is not None:
                    keep = ~(np.asarray(mask, dtype=bool) & elig)

            if keep.any():
                stepped = kernel.replay(adv_c, g, keep.reshape((-1,) + one),
                                        alpha_c, lo_c, hi_c)
                if ff:
                    frozen = keep & (stepped == adv_c).reshape(
                        idx.size, -1).all(axis=1)
                np.copyto(adv_c, stepped)
                sd_c[keep] += 1
                if ff and frozen.any():
                    # P1 fixed point: this pass reproduced the iterate
                    # bit-for-bit, so every remaining pass would too —
                    # the returned bytes cannot change; skip to the cap
                    sd_c[frozen] = steps

            retired = ~keep | (sd_c >= steps)
            if retired.any():
                rows = idx[retired]
                adv[rows] = adv_c[retired]
                live = ~retired
                (idx, adv_c, lo_c, hi_c, alpha_c, y_c, check_c,
                 sd_c) = (a[live] for a in
                          (idx, adv_c, lo_c, hi_c, alpha_c, y_c,
                           check_c, sd_c))
                if pv_c is not None:
                    pv_c = {k: v[live] for k, v in pv_c.items()}
    except BaseException:
        if idx.size and idx.size == len(adv_c):
            adv[idx] = adv_c        # in-flight rows keep their progress
        raise
    return adv


def _validate_loop(attack, spec: LoopSpec, kernel, x, y, adv0, eps, alpha,
                   check, params, capacity: int) -> None:
    """Bit-validate the recorded loop against the step-at-a-time engine.

    Runs both paths on a small slice of the caller's actual batch with a
    reduced trip cap (the loop mechanics — no-check first pass, shifted
    check, masked stepping, cap retirement — are all exercised within
    :data:`_VALIDATE_STEPS` passes; the step kernel itself already
    bit-validated at build).  Mismatch raises :class:`GraphUnsupported`,
    which pins the engine fallback per the contract.
    """
    from .engine import run_scheduled_steps
    rows = min(len(x), _VALIDATE_ROWS)
    vsteps = min(int(attack.steps), _VALIDATE_STEPS)
    sl = slice(0, rows)
    pv = ({k: v[sl].copy() for k, v in params.items()} if params else None)
    ref = adv0[sl].copy()
    got = adv0[sl].copy()
    saved = attack.steps
    attack.steps = vsteps
    try:
        run_scheduled_steps(attack, x[sl], y[sl], ref, eps[sl], alpha[sl],
                            check[sl], pv, capacity)
    finally:
        attack.steps = saved
    _run_loop(attack, spec, kernel, x[sl], y[sl], got, eps[sl], alpha[sl],
              check[sl], pv, capacity, steps=vsteps)
    if not np.array_equal(ref, got):
        raise GraphUnsupported(
            "recorded attack loop does not match the step-at-a-time engine")


def compile_attack_loop(attack, x, y, adv0, eps, alpha, check, params,
                        capacity: int) -> CompiledAttackLoop:
    """Build and bit-validate the whole-loop plan for ``attack``.

    Traces the masked step kernel, then validates the *composition* —
    kernel, direct program stepping, continuation-mask bookkeeping —
    against :func:`~repro.attacks.engine.run_scheduled_steps` on a
    slice of the caller's batch.  Raises :class:`GraphUnsupported` when
    the attack declares no loop spec (overridden gradient/step rules,
    untraceable models) or validation fails; callers treat that as
    "use the engine", never as an error.
    """
    spec = attack._loop_spec(x)
    if spec is None:
        raise GraphUnsupported(
            f"{type(attack).__name__} declares no whole-loop spec")
    kernel = compile_step_kernel(x.shape[1:], x.dtype)
    _validate_loop(attack, spec, kernel, x, y, adv0, eps, alpha, check,
                   params, capacity)
    return CompiledAttackLoop(kernel)


def try_run_loop(attack, x, y, adv, eps, alpha, check, params, capacity: int,
                 deadline=None) -> Optional[np.ndarray]:
    """Route one scheduled batch through the recorded loop, or None.

    None means "the engine must run this one": the attack opted out
    (``use_loop`` / ``use_compiled`` — the scheduler's eager rung forces
    the latter off), declares no loop spec, its programs don't match the
    batch's dtype/shape, the loop plan failed to build (pinned by the
    plan cache, re-probed per its cooldown contract), or a deadline
    arrived before any plan exists — a cold compile under a deadline
    would reorder the engine's poll-before-build fault/clock cadence,
    so the first bounded call takes the engine and warms nothing.
    """
    if not getattr(attack, "use_loop", True) or not attack.use_compiled:
        return None
    spec_fn = getattr(attack, "_loop_spec", None)
    if spec_fn is None:
        return None
    owners = tuple(attack._plan_owners() or ())
    # keyed like the model plans: per attack type and model identity, so
    # shape-twin attacks in a shared session cache never thrash one
    # entry, and each attack type's loop composition validates once
    from ..nn import rowrep
    key = (_LOOP_TAG, type(attack).__qualname__,
           tuple(id(o) for o in owners), x.shape[1:], x.dtype.str,
           rowrep.mode_key())
    if deadline is not None and key not in attack.plan_cache:
        return None
    spec = spec_fn(x)
    if spec is None:
        return None
    trailing = x.shape[1:]
    # programs run in the framework default dtype and cast their inputs
    # (same as the attack's own compiled path); only the trailing shape
    # must match the traced example
    if adv.dtype != x.dtype or any(
            p._trailing != trailing for p in spec.programs):
        return None

    def build():
        try:
            return compile_attack_loop(attack, x, y, adv, eps, alpha, check,
                                       params, capacity)
        except GraphUnsupported:
            return None

    plan = attack.plan_cache.get(key, owners, build, scope=attack)
    if plan is None:
        return None
    plan.runs += 1
    return _run_loop(attack, spec, plan.kernel, x, y, adv, eps, alpha, check,
                     params, capacity, deadline=deadline)
