PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test chaos serve-net serve-pool bench bench-all docs-check

test:
	$(PYTHON) -m pytest -q

# the fault-tolerance gate: the full tier-1 suite (which includes the
# deterministic chaos tests in tests/test_chaos.py) plus a CLI serve
# replay under the fault injector, both pinned to one seed so failures
# reproduce bit-for-bit
chaos:
	REPRO_FAULT_SEED=0 $(PYTHON) -m pytest -x -q
	REPRO_FAULT_SEED=0 $(PYTHON) -m repro.experiments.cli serve --smoke \
		--faults --deadline-ms 400

# the network-chaos gate: the socket-boundary tests plus a CLI loopback
# replay under seeded frame faults (drop/duplicate/delay/truncate) —
# every ok result must stay bit-identical to its in-process solo run
serve-net:
	REPRO_FAULT_SEED=0 $(PYTHON) -m pytest tests/test_net.py -x -q
	REPRO_FAULT_SEED=0 $(PYTHON) -m repro.experiments.cli serve --smoke \
		--net --net-faults --rate 20

# the worker-pool gate: the concurrency/parity suite (sequential vs
# pooled dispatch byte-identical at every worker count, clean and under
# seeded chaos) plus CLI parity replays at workers 1 and 4
serve-pool:
	REPRO_FAULT_SEED=0 $(PYTHON) -m pytest tests/test_pool.py -x -q
	REPRO_FAULT_SEED=0 $(PYTHON) -m repro.experiments.cli serve --smoke \
		--workers 1
	REPRO_FAULT_SEED=0 $(PYTHON) -m repro.experiments.cli serve --smoke \
		--workers 4

bench:
	$(PYTHON) -m repro.benchrunner

bench-all:
	$(PYTHON) -m repro.benchrunner --all

# scripts/check_docs.py owns the authoritative doctest module list
# (DOCTEST_MODULES) and the markdown link/anchor check; the direct
# `python -m doctest` line is a packaging-free smoke for a module with
# no intra-package imports (runs without PYTHONPATH or install).
docs-check:
	$(PYTHON) -m doctest src/repro/serve/resilience.py
	$(PYTHON) scripts/check_docs.py
