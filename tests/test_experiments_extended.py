"""Extended experiments: ablations, distilled adaptation, multiseed
aggregation, report rendering."""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.experiments import ArtifactStore, ExperimentConfig, Pipeline


@pytest.fixture(scope="module")
def smoke(tmp_path_factory):
    cfg = ExperimentConfig.smoke()
    store = ArtifactStore(str(tmp_path_factory.mktemp("artifacts")))
    return cfg, Pipeline(cfg, store=store)


class TestAblations:
    def test_bits_sweep(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_ablations
        res = exp_ablations.run_bits(cfg, pipeline=pipe, bit_widths=(8, 4),
                                     verbose=False)
        assert set(res["per_bits"]) == {8, 4}
        for bits, r in res["per_bits"].items():
            assert 0 <= r["instability"] <= 1
            assert 0 <= r["diva_top1"] <= 1

    def test_eps_sweep(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_ablations
        res = exp_ablations.run_eps(cfg, pipeline=pipe,
                                    eps_values=(8 / 255, 32 / 255),
                                    verbose=False)
        assert "8/255" in res["per_eps"] and "32/255" in res["per_eps"]
        # larger budget cannot reduce PGD's raw attack success
        assert res["per_eps"]["32/255"]["pgd_attack_only"] >= \
            res["per_eps"]["8/255"]["pgd_attack_only"] - 0.05

    def test_keep_best(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_ablations
        res = exp_ablations.run_keep_best(cfg, pipeline=pipe, verbose=False)
        v = res["variants"]
        assert v["keep-best"]["diva_top1"] >= \
            v["final-iterate"]["diva_top1"] - 1e-9

    def test_per_channel(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_ablations
        res = exp_ablations.run_per_channel(cfg, pipeline=pipe, verbose=False)
        assert set(res["variants"]) == {"per-tensor", "per-channel"}


class TestDistilledAdaptation:
    def test_runs_and_reports(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_distilled
        res = exp_distilled.run(cfg, pipeline=pipe, verbose=False)
        for arch, r in res["per_arch"].items():
            assert 0 <= r["student_accuracy"] <= 1
            assert 0 <= r["diva_top1"] <= 1
            # a half-width student diverges much more than quantization
            assert r["instability"] >= 0


class TestMultiseed:
    def test_aggregates_scalars(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        from repro.experiments.multiseed import run_across_seeds
        calls = []

        def fake_experiment(cfg, pipeline=None, verbose=True):
            calls.append(cfg.seed)
            return {"metric": {"a": cfg.seed + 1.0, "b": 2.0},
                    "table": "ignored"}
        res = run_across_seeds(fake_experiment, ExperimentConfig.smoke(),
                               seeds=(0, 1, 2), name="unit")
        assert calls == [0, 1, 2]
        assert np.isclose(res.mean["metric.a"], 2.0)
        assert np.isclose(res.std["metric.b"], 0.0)
        assert "metric.a" in res.table()

    def test_saves_results(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        import importlib
        from repro.experiments import multiseed, tables
        importlib.reload(tables)
        importlib.reload(multiseed)
        multiseed.run_across_seeds(
            lambda cfg, pipeline=None, verbose=True: {"x": 1.0},
            ExperimentConfig.smoke(), seeds=(0,), name="unit2")
        assert os.path.exists(os.path.join(str(tmp_path),
                                           "multiseed_unit2.json"))


class TestReport:
    def test_renders_from_results(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        payload = {"architectures": {"resnet": {
            "original_accuracy": 0.7, "quantized_accuracy": 0.68,
            "orig_correct_quant_incorrect": 10,
            "orig_incorrect_quant_correct": 5,
            "deviation_instability": 0.09, "total_instability": 0.1,
            "accuracy_ratio": 0.97, "n": 100}}}
        with open(os.path.join(str(tmp_path), "table1.json"), "w") as f:
            json.dump(payload, f)
        import importlib
        from repro.experiments import report
        importlib.reload(report)
        text = report.render_report()
        assert "Table 1" in text
        assert "70.0%" in text

    def test_handles_missing_results(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path / "empty"))
        import importlib
        from repro.experiments import report
        importlib.reload(report)
        text = report.render_report()
        assert "EXPERIMENTS" in text   # header renders even with no data
