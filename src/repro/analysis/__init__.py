"""``repro.analysis`` — representation and decision-boundary analysis."""

from .boundary import (BoundaryMap, probe_boundary_plane, random_directions)
from .pca import PCA
from .representations import extract_features

__all__ = ["PCA", "extract_features", "BoundaryMap", "probe_boundary_plane",
           "random_directions"]
