"""Stateless differentiable operations: convolution, pooling, losses.

Convolution uses im2col (stride-tricks window extraction + one matmul),
which is the standard way to keep numpy convs fast; the col2im backward is
a small loop over kernel taps only (kh*kw iterations), never over pixels.
All tensors follow the NCHW layout.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from . import tensor as _tensor
from .tensor import Tensor, _unbroadcast

IntPair = Union[int, Tuple[int, int]]


def _pair(v: IntPair) -> Tuple[int, int]:
    return (v, v) if isinstance(v, int) else (int(v[0]), int(v[1]))


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling along one axis."""
    return (size + 2 * pad - kernel) // stride + 1


def _im2col(x: np.ndarray, kh: int, kw: int, sh: int, sw: int,
            ph: int, pw: int) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Extract sliding windows from NCHW ``x``.

    Returns ``cols`` of shape (N, C, kh, kw, OH, OW) (a view when possible)
    and the output spatial size.
    """
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    N, C, H, W = x.shape
    oh = (H - kh) // sh + 1
    ow = (W - kw) // sw + 1
    s0, s1, s2, s3 = x.strides
    cols = np.lib.stride_tricks.as_strided(
        x,
        shape=(N, C, kh, kw, oh, ow),
        strides=(s0, s1, s2, s3, s2 * sh, s3 * sw),
        writeable=False,
    )
    return cols, (oh, ow)


def _col2im(dcols: np.ndarray, x_shape: Tuple[int, ...], kh: int, kw: int,
            sh: int, sw: int, ph: int, pw: int) -> np.ndarray:
    """Scatter-add window gradients back to input layout (inverse of im2col)."""
    N, C, H, W = x_shape
    Hp, Wp = H + 2 * ph, W + 2 * pw
    oh = (Hp - kh) // sh + 1
    ow = (Wp - kw) // sw + 1
    dx = np.zeros((N, C, Hp, Wp), dtype=dcols.dtype)
    for i in range(kh):
        i_max = i + sh * oh
        for j in range(kw):
            j_max = j + sw * ow
            dx[:, :, i:i_max:sh, j:j_max:sw] += dcols[:, :, i, j]
    if ph or pw:
        dx = dx[:, :, ph:Hp - ph if ph else Hp, pw:Wp - pw if pw else Wp]
    return dx


def _col2im_xpad(W: int, pw: int, sw: int) -> int:
    """Row length the conv backward must X-pad its gradient to so that
    :func:`_col2im_flat` rows tile the phase image seamlessly.  For
    stride 1 this is the padded input width itself."""
    return -(-(W + 2 * pw) // sw)


def _col2im_flat(dcolsp: np.ndarray, x_shape: Tuple[int, ...], kh: int,
                 kw: int, sh: int, sw: int, ph: int, pw: int,
                 oh: int, ow: int,
                 out: Optional[np.ndarray] = None,
                 dx_out: Optional[np.ndarray] = None) -> np.ndarray:
    """Phase-major flat col2im from X-padded tap-major window gradients.

    ``dcolsp`` has shape (N, C, kh, kw, OH * XP) with ``XP =
    _col2im_xpad(W, pw, sw)``, where columns beyond OW of each window row
    are exact zeros (they come from zero-padded logits in the producing
    matmul).  Tap (i, j) only ever touches input pixels whose row is
    ``i (mod sh)`` and column ``j (mod sw)`` — one of ``sh * sw``
    disjoint *phase* sub-images, each of pitch XP.  Because every tap
    row then has its phase image's own row pitch, each tap lands with
    ONE contiguous shifted-slice add over the flattened phase image
    instead of the classic per-tap strided scatter — same additions,
    same (i, j) order per destination element, plus interleaved exact
    ``+0.0`` terms, so values match :func:`_col2im` bit-for-bit (modulo
    the sign of negative zeros).  For stride 1 there is a single phase
    and the flat buffer *is* the padded image.

    ``out`` is an optional (N, C, sh * sw, Hq * XP) scratch with
    ``Hq = ceil(Hp / sh)``; ``dx_out`` an optional (N, C, Hp, Wp)
    interleave target (unused when stride is 1).  Fresh arrays are
    allocated when omitted.  Returns the (N, C, H, W) crop (a view).
    """
    N, C, H, W = x_shape
    Hp, Wp = H + 2 * ph, W + 2 * pw
    Hq, Wq = -(-Hp // sh), -(-Wp // sw)
    phases = sh * sw
    flat = Hq * Wq
    full = oh * Wq
    if out is None:
        out = np.empty((N, C, phases, flat), dtype=dcolsp.dtype)
    # the first tap landing on a phase image ASSIGNS (plus zero-fills the
    # complement of its span) instead of accumulating into a memset
    # buffer: one full write+read per element saved, values unchanged up
    # to the sign of zeros the docstring already excepts
    started = [False] * phases
    for i in range(kh):
        for j in range(kw):
            p = (i % sh) * sw + (j % sw)
            off = (i // sh) * Wq + (j // sw)
            span = min(full, flat - off)
            dst = out[:, :, p, off:off + span]
            if started[p]:
                np.add(dst, dcolsp[:, :, i, j, :span], out=dst)
            else:
                out[:, :, p, :off].fill(0.0)
                np.copyto(dst, dcolsp[:, :, i, j, :span])
                out[:, :, p, off + span:].fill(0.0)
                started[p] = True
    for p in range(phases):
        if not started[p]:          # 1x1 kernels leave phases untouched
            out[:, :, p].fill(0.0)
    if phases == 1:
        dx = out.reshape(N, C, Hp, Wp)
    else:
        if dx_out is None:
            dx_out = np.empty((N, C, Hp, Wp), dtype=dcolsp.dtype)
        for pi in range(sh):
            rows = -(-(Hp - pi) // sh)
            for pj in range(sw):
                cols = -(-(Wp - pj) // sw)
                img = out[:, :, pi * sw + pj].reshape(N, C, Hq, Wq)
                dx_out[:, :, pi::sh, pj::sw] = img[:, :, :rows, :cols]
        dx = dx_out
    if ph or pw:
        dx = dx[:, :, ph:ph + H, pw:pw + W]
    return dx


def _conv_dw_dense(g2: np.ndarray, cols2: np.ndarray) -> np.ndarray:
    """Dense-conv weight gradient ``dw[f,k] = sum_n,p g2[n,f,p]*cols2[n,k,p]``.

    Two formulations with identical results up to summation order, chosen
    deterministically by shape (so the eager tape and the compiled
    executor always agree bit-for-bit): wide spatial extents run the
    copy-free batched matmul; deep/narrow layers run tensordot's single
    large GEMM, which wins when the contraction dwarfs the batch axis.
    """
    N, F, P = g2.shape
    K = cols2.shape[1]
    if P * 4 >= K:
        return np.matmul(g2, cols2.transpose(0, 2, 1)).sum(axis=0)
    return np.tensordot(g2, cols2, axes=([0, 2], [0, 2]))


def _conv_grouped_fwd(cols2: np.ndarray, wmat: np.ndarray,
                      out: np.ndarray) -> np.ndarray:
    """Grouped-conv forward contraction into ``out`` (N, G, Fg, oh, ow).

    Depthwise layers (Fg == 1) run a batched matvec — roughly 3x the
    einsum's speed on the MobileNet hot shapes; general grouped layers
    keep the einsum.  The choice is shape-deterministic, so the eager
    tape and the compiled executor always take the same path.
    """
    N, G, oh, ow, K = cols2.shape
    Fg = wmat.shape[1]
    if Fg == 1:
        np.matmul(cols2.reshape(N, G, oh * ow, K),
                  wmat.reshape(1, G, K, 1),
                  out=out.reshape(N, G, oh * ow, 1))
        return out
    np.einsum("ngxyk,gfk->ngfxy", cols2, wmat, out=out, optimize=True)
    return out


def _conv_dw_grouped(gg: np.ndarray, cols2: np.ndarray) -> np.ndarray:
    """Grouped-conv weight gradient: (N,G,Fg,oh,ow) x (N,G,oh,ow,K) ->
    (G, Fg, K); batched matvec for depthwise, einsum otherwise."""
    N, G, Fg, oh, ow = gg.shape
    K = cols2.shape[-1]
    if Fg == 1:
        return np.matmul(gg.reshape(N, G, 1, oh * ow),
                         cols2.reshape(N, G, oh * ow, K)).sum(axis=0)
    return np.einsum("ngfxy,ngxyk->gfk", gg, cols2, optimize=True)


def _conv_depthwise_fwd(colsK: np.ndarray, wmat: np.ndarray,
                        out: Optional[np.ndarray] = None) -> np.ndarray:
    """Depthwise forward on tap-major windows: (N,C,K,P) x (C,K) ->
    (N,C,1,P).  Tap-major means the im2col view copies straight into the
    scratch (no per-group transpose materialization)."""
    N, C, K, P = colsK.shape
    return np.matmul(wmat.reshape(1, C, 1, K), colsK, out=out)


def _conv_dw_depthwise(colsK: np.ndarray, g2: np.ndarray) -> np.ndarray:
    """Depthwise weight gradient on tap-major windows: (N,C,K,P) x
    (N,C,P) -> (C, K)."""
    N, C, K, P = colsK.shape
    return np.matmul(colsK, g2.reshape(N, C, P, 1)).sum(axis=0).reshape(C, K)


def _conv_dcols_grouped(ggp: np.ndarray, wmat: np.ndarray,
                        out: Optional[np.ndarray] = None) -> np.ndarray:
    """Grouped-conv input-gradient window rows: (N,G,Fg,Q) x (G,Fg,K) ->
    (N,G,K,Q) in tap-major order.  Depthwise has no contraction at all —
    a broadcast multiply emits the exact same products as the einsum."""
    N, G, Fg, Q = ggp.shape
    K = wmat.shape[-1]
    if Fg == 1:
        return np.multiply(ggp.reshape(N, G, 1, Q),
                           wmat.reshape(1, G, K, 1), out=out)
    if out is None:
        return np.einsum("ngfq,gfk->ngkq", ggp, wmat, optimize=True)
    return np.einsum("ngfq,gfk->ngkq", ggp, wmat, out=out, optimize=True)


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: IntPair = 1, padding: IntPair = 0, groups: int = 1) -> Tensor:
    """2D convolution.

    Parameters
    ----------
    x: (N, C_in, H, W)
    weight: (C_out, C_in // groups, kh, kw)
    bias: (C_out,) or None
    groups: 1 for dense conv, C_in for depthwise.
    """
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    N, C, H, W = x.shape
    F, Cg, kh, kw = weight.shape
    if C % groups or F % groups:
        raise ValueError(f"channels {C}/{F} not divisible by groups={groups}")
    if Cg != C // groups:
        raise ValueError(f"weight expects {Cg} in-channels/group, input has {C // groups}")

    cols, (oh, ow) = _im2col(x.data, kh, kw, sh, sw, ph, pw)

    if groups == 1:
        # Tap-major layout: the im2col window view is already
        # (N, C, kh, kw, OH, OW), so a straight copy is cheap (long
        # contiguous runs), and (F, K) @ (N, K, P) produces NCHW output
        # directly — no transposes on either side of the matmul.
        K = C * kh * kw
        colsK = np.ascontiguousarray(cols).reshape(N, K, oh * ow)
        w2 = weight.data.reshape(F, K)
        out_data = np.matmul(w2, colsK).reshape(N, F, oh, ow)
        cols2 = colsK                                    # closure capture
    elif Cg == 1 and F == groups:
        # pure depthwise: stay tap-major like the dense path — the
        # im2col view copies straight (long contiguous runs) and the
        # per-channel contraction is a batched matvec
        K = kh * kw
        colsK = np.ascontiguousarray(cols).reshape(N, C, K, oh * ow)
        out_data = _conv_depthwise_fwd(
            colsK, weight.data.reshape(C, K)).reshape(N, F, oh, ow)
        cols2 = colsK
    else:
        G = groups
        Fg = F // G
        # (N, G, Cg, kh, kw, OH, OW) -> (N, G, OH, OW, Cg*kh*kw)
        colsg = cols.reshape(N, G, Cg, kh, kw, oh, ow)
        cols2 = np.ascontiguousarray(colsg.transpose(0, 1, 5, 6, 2, 3, 4)).reshape(N, G, oh, ow, Cg * kh * kw)
        wmat = weight.data.reshape(G, Fg, Cg * kh * kw)  # (G, Fg, K)
        # a C-contiguous destination keeps downstream reductions (and the
        # compiled executor's buffer replays) bit-identical
        out_data = np.empty((N, G, Fg, oh, ow), dtype=cols2.dtype)
        _conv_grouped_fwd(cols2, wmat, out_data)
        out_data = out_data.reshape(N, F, oh, ow)

    if bias is not None:
        out_data += bias.data.reshape(1, F, 1, 1)

    parents = (x, weight) + ((bias,) if bias is not None else ())
    req = any(p.requires_grad for p in parents)
    out = Tensor(out_data, requires_grad=req, _parents=parents if req else ())
    if req:
        x_shape = x.shape

        def _bw(g, x=x, weight=weight, bias=bias, cols2=cols2):
            # g: (N, F, OH, OW)
            if bias is not None and bias.requires_grad:
                bias._accumulate(g.sum(axis=(0, 2, 3)))
            if groups == 1:
                K = C * kh * kw
                if weight.requires_grad:
                    g2 = np.ascontiguousarray(g).reshape(N, F, oh * ow)
                    dw = _conv_dw_dense(g2, cols2)                       # (F, K)
                    weight._accumulate(dw.reshape(weight.shape), owned=True)
                if x.requires_grad:
                    w2T = np.ascontiguousarray(weight.data.reshape(F, K).T)
                    # X-padded logits make every col2im tap a single
                    # contiguous shifted-slice add into its stride phase
                    # (see _col2im_flat)
                    Xp = _col2im_xpad(W, pw, sw)
                    g2p = np.zeros((N, F, oh, Xp), dtype=g.dtype)
                    g2p[..., :ow] = g
                    dcolsp = np.matmul(w2T, g2p.reshape(N, F, oh * Xp))
                    dx = _col2im_flat(
                        dcolsp.reshape(N, C, kh, kw, oh * Xp),
                        x_shape, kh, kw, sh, sw, ph, pw, oh, ow)
                    x._accumulate(dx, owned=True)
            else:
                G = groups
                Fg = F // G
                gg = g.reshape(N, G, Fg, oh, ow)
                if weight.requires_grad:
                    if Cg == 1 and F == G:
                        g2 = np.ascontiguousarray(g).reshape(N, C, oh * ow)
                        dw = _conv_dw_depthwise(cols2, g2)
                    else:
                        dw = _conv_dw_grouped(gg, cols2)
                    weight._accumulate(dw.reshape(weight.shape), owned=True)
                if x.requires_grad:
                    wmat = weight.data.reshape(G, Fg, Cg * kh * kw)
                    # Same X-padded tap-major path as the dense backward:
                    # the contraction emits window rows directly in
                    # (G, K) == (C, kh, kw) tap-major order with the
                    # phase image's pitch, so no transpose/materialize
                    # step survives between it and the flat col2im.
                    Xp = _col2im_xpad(W, pw, sw)
                    ggp = np.zeros((N, G, Fg, oh, Xp), dtype=g.dtype)
                    ggp[..., :ow] = gg
                    dcolsp = _conv_dcols_grouped(
                        ggp.reshape(N, G, Fg, oh * Xp), wmat)
                    dx = _col2im_flat(
                        dcolsp.reshape(N, C, kh, kw, oh * Xp),
                        x_shape, kh, kw, sh, sw, ph, pw, oh, ow)
                    x._accumulate(dx, owned=True)
        out._backward = _bw
    if _tensor._GRAPH_TRACER is not None:
        inputs = (x, weight) + ((bias,) if bias is not None else ())
        _tensor._GRAPH_TRACER.emit("conv2d", inputs, out,
                                   {"stride": (sh, sw), "padding": (ph, pw),
                                    "groups": groups,
                                    "has_bias": bias is not None})
    return out


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with weight of shape (out, in)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def max_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None,
               padding: IntPair = 0) -> Tensor:
    """Max pooling over NCHW windows."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride if stride is not None else kernel)
    ph, pw = _pair(padding)
    xd = x.data
    if ph or pw:
        xd = np.pad(xd, ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                    constant_values=-np.inf)
    cols, (oh, ow) = _im2col(xd, kh, kw, sh, sw, 0, 0)
    N, C = x.shape[:2]
    flat = cols.transpose(0, 1, 4, 5, 2, 3).reshape(N, C, oh, ow, kh * kw)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    out = Tensor(out_data, requires_grad=x.requires_grad,
                 _parents=(x,) if x.requires_grad else ())
    if x.requires_grad:
        x_shape = x.shape

        def _bw(g, x=x, arg=arg):
            dflat = np.zeros((N, C, oh, ow, kh * kw), dtype=g.dtype)
            np.put_along_axis(dflat, arg[..., None], g[..., None], axis=-1)
            dcols = dflat.reshape(N, C, oh, ow, kh, kw).transpose(0, 1, 4, 5, 2, 3)
            x._accumulate(_col2im(dcols, x_shape, kh, kw, sh, sw, ph, pw), owned=True)
        out._backward = _bw
    if _tensor._GRAPH_TRACER is not None:
        _tensor._GRAPH_TRACER.emit("max_pool2d", (x,), out,
                                   {"kernel": (kh, kw), "stride": (sh, sw),
                                    "padding": (ph, pw)})
    return out


def avg_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None,
               padding: IntPair = 0) -> Tensor:
    """Average pooling over NCHW windows."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride if stride is not None else kernel)
    ph, pw = _pair(padding)
    cols, (oh, ow) = _im2col(x.data, kh, kw, sh, sw, ph, pw)
    out_data = cols.mean(axis=(2, 3))
    out = Tensor(out_data, requires_grad=x.requires_grad,
                 _parents=(x,) if x.requires_grad else ())
    if x.requires_grad:
        N, C = x.shape[:2]
        x_shape = x.shape

        def _bw(g, x=x):
            dcols = np.broadcast_to(
                g[:, :, None, None, :, :] / (kh * kw), (N, C, kh, kw, oh, ow)
            ).astype(g.dtype)
            x._accumulate(_col2im(dcols, x_shape, kh, kw, sh, sw, ph, pw), owned=True)
        out._backward = _bw
    if _tensor._GRAPH_TRACER is not None:
        _tensor._GRAPH_TRACER.emit("avg_pool2d", (x,), out,
                                   {"kernel": (kh, kw), "stride": (sh, sw),
                                    "padding": (ph, pw)})
    return out


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over spatial dims: (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    m = Tensor(x.data.max(axis=axis, keepdims=True))
    shifted = x - m
    lse = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - lse


def cross_entropy(logits: Tensor, labels: np.ndarray,
                  reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy against integer labels.

    ``labels`` is an int array of shape (N,).
    """
    labels = np.asarray(labels)
    logp = log_softmax(logits, axis=-1)
    nll = -logp.gather_rows(labels)
    if reduction == "mean":
        return nll.mean()
    if reduction == "sum":
        return nll.sum()
    if reduction == "none":
        return nll
    raise ValueError(f"unknown reduction: {reduction}")


def nll_loss(logp: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood given log-probabilities."""
    nll = -logp.gather_rows(np.asarray(labels))
    if reduction == "mean":
        return nll.mean()
    if reduction == "sum":
        return nll.sum()
    return nll


def mse_loss(pred: Tensor, target: Union[Tensor, np.ndarray],
             reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    d = pred - target
    sq = d * d
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    return sq


def kl_div(logp: Tensor, q: Union[Tensor, np.ndarray],
           reduction: str = "batchmean") -> Tensor:
    """KL(q || p) given log-probabilities ``logp`` and target probs ``q``.

    Matches the convention of distillation losses: target distribution ``q``
    is treated as constant.
    """
    q_data = q.data if isinstance(q, Tensor) else np.asarray(q)
    q_const = Tensor(q_data)
    eps = 1e-12
    terms = q_const * (Tensor(np.log(q_data + eps)) - logp)
    if reduction == "batchmean":
        return terms.sum() * (1.0 / logp.shape[0])
    if reduction == "sum":
        return terms.sum()
    return terms


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return x
    if _tensor._GRAPH_TRACER is not None:
        # refuse BEFORE drawing: a traced mask would be frozen into the
        # program, and the un-advanced rng keeps the eager fallback
        # bitwise identical to a run that never attempted to compile
        _tensor._GRAPH_TRACER.refuse(
            "dropout redraws its mask per step; cannot compile")
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    return x * Tensor(mask)
