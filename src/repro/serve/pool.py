"""Worker-pool executor behind the Scheduler: N workers, one result plane.

The sequential :class:`~repro.serve.scheduler.Scheduler` dispatches one
coalesced group at a time.  Its groups are independent by construction
— different group keys mean different plan families — so the dispatch
loop is embarrassingly parallel *except* for the places where groups
share mutable state: compiled plans (and the models that own them),
breaker rungs, fault-stream draws, the manual clock, and the
result/record/outcome bookkeeping.  :class:`PoolScheduler` parallelizes
the loop while pinning each of those shared surfaces down:

- **plan wave (single-threaded)** — the queue is partitioned into
  dispatch groups by the *same* :meth:`~repro.serve.scheduler.
  Scheduler._pop_group` the sequential path uses, in the same arrival
  order, firing the same ``queue.tick`` per round.  A pooled run
  therefore forms exactly the groups a sequential run would (the
  partition-equality property test in ``tests/test_pool.py``).
- **conflict components** — groups that share any *plan owner* (an
  attack's models, an inference job's model, the attack instance
  itself) are unioned into one component and serialized, in plan
  order, on one worker.  Everything a dispatch mutates outside its own
  jobs — compiled-plan constants on ``refresh``, ``use_compiled``
  flags, eager-tape parameter grads — lives on those owners, so two
  groups in different components touch disjoint mutable state and may
  run concurrently.
- **deterministic assignment + seeded stealing** — components are
  dealt round-robin (by plan order) onto workers, then a seeded steal
  pass moves whole components off the most-loaded worker onto the
  least-loaded one while it strictly improves balance.  Every steal is
  logged as a :class:`StealRecord`; the whole placement is a pure
  function of (plan, workers, steal_seed) — and per-job *results* are
  placement-independent anyway, which the steal tests assert.
- **per-group clock views and fault scopes** — under a
  :class:`~repro.serve.resilience.ManualClock`, each group executes
  against an :class:`~repro.serve.resilience.OffsetClock` based at the
  wave start plus its worker's prior elapsed time, inside a
  :func:`repro.serve.faults.scope` keyed by the group's head seq.
  Latency faults advance only the group's view; deadline polls read
  it; fault draws come from per-group derived streams.  Chaos is a
  function of the group, never of worker count or interleaving.
- **single-writer result plane** — workers buffer their
  :class:`~repro.serve.scheduler.DispatchRecord`\\ s and settle
  intents into per-group lists.  After the wave joins, the *main
  thread alone* advances the real clock by the slowest worker's
  elapsed time and publishes every group's records, outcome counters
  and future resolutions in plan order.  ``dispatch_log`` order,
  outcome counts and :class:`~repro.serve.scheduler.JobFuture`
  completion order are therefore identical at every worker count.

Bounded waits ("completion wins ties"): ``run_pending(until)`` checks
the budget only when *planning* more groups.  Once a group is planned
it always executes and always reaps — a job whose group ran while the
clock crossed the deadline in the same tick resolves instead of
raising, and jobs never planned stay cleanly pending for a later
drain.

``workers=1`` (the default on this single-CPU container) runs the
whole machinery inline — no threads, same plan/steal/reap pipeline, so
single-worker pooled serving is deterministic by construction and
byte-identical to ``workers=N``.

The **process backend is a designed seam**: ``backend="process"``
raises :class:`NotImplementedError` with the design (plans rebuilt per
process, shared-memory activation/result buffers, journal-based reap)
spelled out.  The thread backend already isolates everything a process
backend must isolate; what remains is transport.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from . import faults
from .resilience import (CircuitBreaker, Clock, ManualClock, OffsetClock,
                         ShardedCircuitBreaker)
from .scheduler import DispatchContext, DispatchRecord, Job, Scheduler

#: executor backends; "process" is the documented scale-out seam
BACKENDS = ("thread", "process")

_PROCESS_SEAM = (
    "backend='process' is a designed seam, not yet an implementation. "
    "Process workers need three things the thread backend gets for "
    "free: (1) compiled plans rebuilt per worker process — plan objects "
    "hold kernel closures over preallocated buffers and do not pickle; "
    "(2) activation and result buffers in shared memory "
    "(multiprocessing.shared_memory) so merged batches fan out and "
    "per-job result slices return without copies; (3) the single-writer "
    "reap reading per-worker journals instead of in-process lists. "
    "Everything else — per-group clock views, per-group fault streams, "
    "sharded caches and breakers, the plan/assign/steal/reap pipeline — "
    "is process-ready as built; the seam is confined to transport.")


@dataclass
class StealRecord:
    """One steal decision: a whole component moved between workers."""

    component: int              # component root (plan order of its head)
    seqs: Tuple[int, ...]       # head seqs of the component's groups
    rows: int
    from_worker: int
    to_worker: int


@dataclass
class _PlannedGroup:
    """One dispatch group in a wave, plus its deferred result plane."""

    order: int                  # plan order within the wave
    kind: str
    group: List[Job]
    key: Any
    component: int = -1
    worker: int = -1
    records: List[DispatchRecord] = field(default_factory=list)
    resolutions: List[Tuple[Job, Dict[str, Any]]] = field(
        default_factory=list)
    error: Optional[BaseException] = None

    @property
    def seq(self) -> int:
        return self.group[0].seq

    @property
    def rows(self) -> int:
        return sum(j.rows for j in self.group)


def _group_owners(pg: _PlannedGroup) -> List[Any]:
    """The mutable objects a group's dispatch may touch beyond its own
    jobs: each attack instance (``use_compiled``, plan refresh, step
    state) and every model a job runs against (plan constants, eager
    parameter grads, BN/eval flags)."""
    owners: List[Any] = []
    for job in pg.group:
        if job.kind == "attack" and job.attack is not None:
            owners.append(job.attack)
            owners.extend(job.attack._plan_owners())
        elif job.model is not None:
            owners.append(job.model)
    return owners


class PoolScheduler(Scheduler):
    """Scheduler whose dispatch loop fans waves of groups onto workers.

    Drop-in for :class:`~repro.serve.scheduler.Scheduler` (same queue,
    same ``run_pending`` contract, same stats surfaces) with three new
    knobs:

    workers:
        Worker-lane count.  1 (default) runs inline — the full
        plan/assign/steal/reap pipeline with no threads.  N > 1 runs
        each wave's lanes on N daemon threads; the GEMMs dominating
        dispatch time release the GIL.
    steal_seed:
        Seed for the steal pass's victim choice; placement is a pure
        function of (plan, workers, steal_seed).
    backend:
        ``"thread"`` (implemented) or ``"process"`` (the documented
        scale-out seam — raises :class:`NotImplementedError`).
    """

    def __init__(self, capacity: int = 64, max_batch_rows: int = 512,
                 predict_batch: int = 256,
                 clock: Optional[Clock] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 float_coalesce: bool = True,
                 workers: int = 1, steal_seed: int = 0,
                 backend: str = "thread"):
        if backend not in BACKENDS:
            raise ValueError(f"unknown pool backend {backend!r}; "
                             f"expected one of {BACKENDS}")
        if backend == "process":
            raise NotImplementedError(_PROCESS_SEAM)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if breaker is None:
            clk = clock if clock is not None else Clock()
            breaker = ShardedCircuitBreaker(nshards=max(int(workers), 1),
                                            clock=clk)
            clock = clk
        super().__init__(capacity=capacity, max_batch_rows=max_batch_rows,
                         predict_batch=predict_batch, clock=clock,
                         breaker=breaker, float_coalesce=float_coalesce)
        self.workers = int(workers)
        self.steal_seed = int(steal_seed)
        self.backend = backend
        self.steal_log: List[StealRecord] = []
        #: one summary dict per executed wave (tests introspect these)
        self.wave_log: List[Dict[str, Any]] = []
        self._worker_elapsed: List[float] = []

    # -- the pooled dispatch loop --------------------------------------- #
    def run_pending(self, until: Optional[float] = None) -> int:
        """Serve the queue in waves; returns the number of groups run.

        ``until`` gates *planning only*: no new group is popped past
        the budget, but every planned group executes and reaps —
        completion wins ties at the deadline boundary, so a job whose
        group ran while an injected latency pushed the clock past
        ``until`` in the same tick resolves instead of staying in a
        completed-but-unreaped limbo.  Unplanned jobs stay pending for
        a later drain, exactly as the sequential bounded wait leaves
        them.
        """
        rounds = 0
        while self.pending:
            if until is not None and self.clock.now() >= until:
                break
            rounds += self._run_wave(until)
        return rounds

    def _run_wave(self, until: Optional[float]) -> int:
        plan: List[_PlannedGroup] = []
        while self.pending:
            if (plan and until is not None
                    and self.clock.now() >= until):
                break
            kind, group, key = self._pop_group()
            plan.append(_PlannedGroup(len(plan), kind, group, key))
        if not plan:
            return 0
        comps = self._components(plan)
        lanes = self._assign(plan, comps)
        self.wave_log.append({
            "wave": len(self.wave_log),
            "groups": [(tuple(j.seq for j in pg.group), pg.key)
                       for pg in plan],
            "components": {root: [pg.seq for pg in members]
                           for root, members in sorted(comps.items())},
            "workers": [[pg.seq for pg in lane] for lane in lanes],
        })
        self._execute(lanes)
        self._reap(plan)
        return len(plan)

    # -- conflict components -------------------------------------------- #
    def _components(self, plan: List[_PlannedGroup]
                    ) -> Dict[int, List[_PlannedGroup]]:
        """Union-find over plan-owner identity: groups sharing any
        owner object land in one component (keyed by the smallest plan
        order it contains) and will run serially in plan order."""
        parent = list(range(len(plan)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)

        owner_home: Dict[int, int] = {}
        for i, pg in enumerate(plan):
            for owner in _group_owners(pg):
                j = owner_home.setdefault(id(owner), i)
                if j != i:
                    union(i, j)
        comps: Dict[int, List[_PlannedGroup]] = {}
        for i, pg in enumerate(plan):
            root = find(i)
            pg.component = root
            comps.setdefault(root, []).append(pg)
        return comps

    # -- placement ------------------------------------------------------ #
    def _assign(self, plan: List[_PlannedGroup],
                comps: Dict[int, List[_PlannedGroup]]
                ) -> List[List[_PlannedGroup]]:
        """Components → workers: round-robin by plan order, then the
        seeded steal pass.  Returns each worker's lane (its components'
        groups, each component contiguous and in plan order)."""
        nw = self.workers
        order = sorted(comps)
        placement: Dict[int, int] = {root: k % nw
                                     for k, root in enumerate(order)}
        cost = {root: sum(pg.rows for pg in comps[root])
                for root in order}
        self._steal(order, placement, cost, comps)
        lanes: List[List[_PlannedGroup]] = [[] for _ in range(nw)]
        for root in order:
            lanes[placement[root]].extend(comps[root])
        return lanes

    def _steal(self, order: List[int], placement: Dict[int, int],
               cost: Dict[int, int],
               comps: Dict[int, List[_PlannedGroup]]) -> None:
        """Seeded rebalancing: move whole components from the most- to
        the least-loaded worker while the move strictly shrinks the
        spread.  Victim choice among eligible components is drawn from
        a seeded RNG (keyed by steal_seed and the wave index) so the
        steal plan — like everything else — replays bit-for-bit."""
        nw = self.workers
        if nw <= 1 or len(order) <= 1:
            return
        rng = np.random.default_rng([self.steal_seed, len(self.wave_log)])
        loads = [0] * nw
        for root, w in placement.items():
            loads[w] += cost[root]
        while True:
            hi = max(range(nw), key=lambda w: (loads[w], w))
            lo = min(range(nw), key=lambda w: (loads[w], w))
            gap = loads[hi] - loads[lo]
            # only moves that strictly shrink the spread (0 < cost <
            # gap) are eligible, so the squared-load sum decreases every
            # iteration and the pass always terminates
            victims = [root for root in order
                       if placement[root] == hi and 0 < cost[root] < gap]
            if hi == lo or not victims:
                return
            root = victims[int(rng.integers(len(victims)))]
            members = comps[root]
            self.steal_log.append(StealRecord(
                component=root,
                seqs=tuple(pg.seq for pg in members),
                rows=cost[root], from_worker=hi, to_worker=lo))
            placement[root] = lo
            loads[hi] -= cost[root]
            loads[lo] += cost[root]

    # -- execution ------------------------------------------------------ #
    def _execute(self, lanes: List[List[_PlannedGroup]]) -> None:
        base_now = self.clock.now()
        manual = isinstance(self.clock, ManualClock)
        self._worker_elapsed = [0.0] * self.workers

        def run_lane(w: int) -> None:
            elapsed = 0.0
            for pg in lanes[w]:
                pg.worker = w
                gclock: Clock = self.clock
                if manual:
                    gclock = OffsetClock(base_now + elapsed)
                ctx = DispatchContext(
                    gclock, self.breaker, pg.records.append,
                    self._deferred_settle(pg))
                try:
                    with faults.scope(w, pg.seq,
                                      gclock if manual else None):
                        self._run_group(pg.kind, pg.group, pg.key, ctx)
                except BaseException as exc:   # noqa: BLE001 - reap decides
                    pg.error = exc
                if manual:
                    elapsed += gclock.elapsed
            self._worker_elapsed[w] = elapsed

        active = [w for w in range(self.workers) if lanes[w]]
        if len(active) <= 1:
            for w in active:
                run_lane(w)
            return
        threads = [threading.Thread(target=run_lane, args=(w,),
                                    name=f"repro-pool-{w}", daemon=True)
                   for w in active]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    @staticmethod
    def _deferred_settle(pg: _PlannedGroup) -> Callable[..., None]:
        def settle(job: Job, *, value: Any = None,
                   error: Optional[BaseException] = None,
                   outcome: str = "ok",
                   info: Optional[Dict[str, Any]] = None) -> None:
            pg.resolutions.append((job, {
                "value": value, "error": error, "outcome": outcome,
                "info": info}))
        return settle

    # -- the single-writer result plane --------------------------------- #
    def _reap(self, plan: List[_PlannedGroup]) -> None:
        """Publish the wave: main thread only, plan order only.

        The manual clock advances once, by the slowest worker's elapsed
        time (wave wall-time is the slowest lane, as real parallel
        hardware bills it).  Then every group's buffered records join
        ``dispatch_log`` with worker attribution, and its settles run
        through :meth:`Scheduler.settle` — the one funnel that resolves
        futures and bumps outcome counters — in plan order, so
        completion order and counters match the sequential scheduler
        exactly.
        """
        if isinstance(self.clock, ManualClock):
            dt = max(self._worker_elapsed, default=0.0)
            if dt > 0:
                self.clock.advance(dt)
        crash: Optional[BaseException] = None
        for pg in plan:
            for rec in pg.records:
                rec.worker = pg.worker
                self.dispatch_log.append(rec)
            for job, kw in pg.resolutions:
                self.settle(job, **kw)
            if pg.error is not None:
                # escaped the ladder (the ladder settles everything it
                # catches): fail the group's unsettled members loudly
                for job in pg.group:
                    if not job.future.done:
                        self.settle(job, error=pg.error, outcome="failed")
                if not isinstance(pg.error, Exception):
                    crash = pg.error       # KeyboardInterrupt etc.
        if crash is not None:
            raise crash
