"""Principal component analysis (from scratch, SVD-based) for Fig 4."""

from __future__ import annotations

from typing import Optional

import numpy as np


class PCA:
    """Fit/transform PCA with deterministic component signs.

    Signs are fixed so the largest-magnitude loading of each component is
    positive, making projections reproducible across runs.
    """

    def __init__(self, n_components: int = 2):
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "PCA":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected 2D (n, d), got {x.shape}")
        if self.n_components > min(x.shape):
            raise ValueError("n_components exceeds matrix rank bound")
        self.mean_ = x.mean(axis=0)
        centered = x - self.mean_
        _, s, vt = np.linalg.svd(centered, full_matrices=False)
        comps = vt[:self.n_components]
        # deterministic sign convention
        flip = np.sign(comps[np.arange(len(comps)),
                             np.abs(comps).argmax(axis=1)])
        comps = comps * flip[:, None]
        self.components_ = comps
        var = (s ** 2) / max(len(x) - 1, 1)
        self.explained_variance_ = var[:self.n_components]
        total = var.sum()
        self.explained_variance_ratio_ = (self.explained_variance_ / total
                                          if total > 0 else np.zeros_like(
                                              self.explained_variance_))
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("PCA not fitted")
        return (np.asarray(x, dtype=np.float64) - self.mean_) @ self.components_.T

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("PCA not fitted")
        return np.asarray(z) @ self.components_ + self.mean_
