"""Trace-and-replay compiled forward executor for ``repro.nn`` modules.

The eager tape (:mod:`repro.nn.tensor`) rebuilds the full autograd graph —
tensor nodes, backward closures, a topological sort — on *every* forward.
For the attack hot loop, which pushes thousands of batches through two
frozen models, almost all of that work is identical step to step.  This
module does it once:

``compile_forward(module, example)`` runs the module's forward a single
time under a tracer (hooks in :mod:`repro.nn.tensor` /
:mod:`repro.nn.functional` report each primitive op in execution order —
already a topological order), then lowers the recorded tape into a flat
replayable program:

- **constant folding** — every subgraph that does not depend on the input
  (pruning masks, weight fake-quantization, ``weight.reshape(...).T``
  for Linear/Conv) is evaluated once at compile time and cached, so a
  QAT model no longer re-quantizes its weights on every attack step;
- **preallocated buffers** — elementwise/matmul/conv outputs are written
  into buffers allocated once per executor and reused across replays,
  and each conv reuses a single im2col scratch buffer for its forward
  *and* its input-gradient backward;
- **no per-step Python closure allocation or topo re-sort** — the
  program is a fixed list of bound kernels built at compile time;
- **fused forward + input gradient** — :meth:`CompiledForward.
  value_and_input_grad` returns the logits *and* d(loss)/d(input) in one
  replay, given the loss gradient w.r.t. the logits (parameter gradients
  are deliberately not computed here: attacks never use them — the
  *training* loop's parameter-gradient programs live in
  :mod:`repro.nn.train_graph`, built on this module's tracer, kernel
  factories and buffer machinery).

Replays accept any batch size whose trailing dims match the traced
example; buffers grow on demand and are sliced for smaller batches, so a
shrinking attack batch (samples dropping out as they succeed) replays
without retracing.

Safety: tracing is best-effort by construction, so compilation
*validates itself* — the compiled program is compared against the eager
tape on a perturbed input (logits and input gradient) before it is
returned, and any mismatch or untraceable op raises
:class:`GraphUnsupported`.  Callers (see :mod:`repro.attacks.base`)
treat that as "fall back to the eager tape", never as an error.

Constants are snapshots: if parameters are mutated after compilation
(e.g. by an optimizer step), call :meth:`CompiledForward.refresh` to
re-fold them.  Attacks do this at the start of every ``generate`` call.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from . import rowrep
from . import tensor as _tensor
from .functional import (_col2im, _col2im_flat, _col2im_xpad,
                         _conv_dcols_grouped, _conv_depthwise_fwd,
                         _conv_dw_dense, _conv_dw_depthwise,
                         _conv_dw_grouped, _conv_grouped_fwd, _im2col)
from .module import Module
from .tensor import Tensor, _unbroadcast, get_default_dtype


class GraphUnsupported(RuntimeError):
    """A forward cannot be traced into a replayable program."""


class ScratchPool:
    """Shared transient-buffer arena for a family of compiled programs.

    Buffers whose contents die inside a single op closure (im2col
    scratch, padded inputs, backward matmul outputs) are keyed by their
    geometry, so the two programs of a (original, adapted) pair — and
    same-shaped layers within one program — reuse one allocation
    instead of each holding their own.  Buffers that outlive their op
    (activation outputs, col2im accumulators referenced from the
    gradient environment) must stay private and never go through here.
    """

    def __init__(self):
        self._bufs: Dict[object, np.ndarray] = {}

    def acquire(self, key, n: int, per_sample_shape: Tuple[int, ...],
                dtype, fill: Optional[float]) -> np.ndarray:
        full_key = (key, per_sample_shape, np.dtype(dtype), fill)
        buf = self._bufs.get(full_key)
        if buf is None or len(buf) < n:
            buf = np.empty((max(n, len(buf) if buf is not None else 0),)
                           + per_sample_shape, dtype=dtype)
            if fill is not None:
                buf.fill(fill)
            self._bufs[full_key] = buf
        return buf


def compile_forward_or_none(module, example, pool: Optional[ScratchPool] = None):
    """Best-effort :func:`compile_forward`: None instead of raising.

    Any failure (unsupported op, non-Module test double, train-mode
    batch statistics, parity-validation mismatch) means "use the eager
    tape" — never an error.  The single fallback policy shared by
    attacks and evaluation.
    """
    try:
        return compile_forward(module, example, pool=pool)
    except Exception:
        return None


#: process-wide default plan store for :func:`compile_forward_cached`;
#: budgeted so long-lived evaluation processes cannot accumulate
#: unbounded per-(model, shape, dtype) programs
_DEFAULT_CACHE_BUDGET = 256 << 20
_default_plan_cache = None


def default_plan_cache():
    """The process-wide :class:`repro.serve.PlanCache` (lazily built)."""
    global _default_plan_cache
    if _default_plan_cache is None:
        from ..serve.cache import PlanCache
        _default_plan_cache = PlanCache(budget_bytes=_DEFAULT_CACHE_BUDGET)
    return _default_plan_cache


def compile_forward_cached(module, example, cache=None):
    """Best-effort compiled forward, memoized per (module, shape, dtype).

    The caching discipline matches ``Attack``'s executor cache: entries
    pin the module they were compiled from (identity-checked, so a
    recycled ``id()`` can never alias a dead module's program) and a
    cache hit is :meth:`CompiledForward.refresh`-ed before being
    returned, re-folding constants in case parameters were mutated since
    compilation — a refreshed replay equals a fresh compile bit for bit.
    Failures are pinned as None (eager fallback), also per the shared
    contract.  ``cache`` defaults to the process-wide budgeted store.
    """
    cache = cache if cache is not None else default_plan_cache()
    example = np.asarray(example)
    # mode-keyed: row-reproducible plans bake the fixed-order GEMM into
    # their kernel closures at build time, so the two modes' plans for
    # one (module, shape, dtype) are distinct cache entries
    key = ("nn-forward", id(module), example.shape[1:], example.dtype.str,
           rowrep.mode_key())
    hit_before = key in cache
    plan = cache.get(key, (module,),
                     lambda: compile_forward_or_none(module, example))
    if plan is not None and hit_before:
        plan.refresh()
    return plan


class _Op:
    """One recorded primitive op: ``out = kind(*inputs, **attrs)``."""

    __slots__ = ("kind", "inputs", "out", "attrs", "in_shapes", "out_shape")

    def __init__(self, kind, inputs, out, attrs, in_shapes, out_shape):
        self.kind = kind
        self.inputs = inputs          # tuple of node ids
        self.out = out                # node id
        self.attrs = attrs or {}
        self.in_shapes = in_shapes    # tuple of traced input shapes
        self.out_shape = out_shape    # traced output shape


class _Tracer:
    """Records emitted ops; installed as ``tensor._GRAPH_TRACER``."""

    #: whether :meth:`emit_effect` records (training compiler) or refuses
    #: (forward executor: a side effect cannot be replayed batch-variably)
    allow_effects = False

    def __init__(self, input_tensor: Tensor):
        self.ops: List[_Op] = []
        self.ids: Dict[int, int] = {}
        self.keep: List[Tensor] = []   # keepalive: id() reuse would corrupt ids
        self.leaves: Dict[int, Tensor] = {}
        self.effects: List[Tuple[int, Callable, int]] = []
        self.count = 0
        self.input_id = self._register(input_tensor)

    def _register(self, t: Tensor) -> int:
        nid = self.count
        self.count += 1
        self.ids[id(t)] = nid
        self.keep.append(t)
        return nid

    def _lookup(self, t: Tensor) -> int:
        nid = self.ids.get(id(t))
        if nid is None:
            nid = self._register(t)
            self.leaves[nid] = t
        return nid

    def emit(self, kind, inputs, out, attrs) -> None:
        in_ids = tuple(self._lookup(t) for t in inputs)
        out_id = self._register(out)
        self.ops.append(_Op(kind, in_ids, out_id, attrs,
                            tuple(t.data.shape for t in inputs),
                            out.data.shape))

    def refuse(self, reason: str) -> None:
        """Abort tracing: the forward is doing something no replay can
        reproduce (e.g. dropout redrawing its mask per step — a frozen
        mask would pass validation, since validation restores the module
        RNG to the state the trace consumed)."""
        raise GraphUnsupported(reason)

    def emit_effect(self, fn: Callable[[np.ndarray], None], t: Tensor) -> None:
        """Record a replayable side effect (train-time running statistics,
        observer updates): on replay, ``fn`` receives the current value of
        ``t`` at this position in the forward program.  The forward
        executor refuses such forwards — a mutation of module state cannot
        be replayed against arbitrary batches — while the training-step
        compiler records and replays them in order."""
        if not self.allow_effects:
            raise GraphUnsupported(
                "forward has train-time side effects; cannot compile")
        self.effects.append((len(self.ops), fn, self._lookup(t)))


def _check_input_path(roots, out: Tensor, tracer: _Tracer) -> None:
    """Every tape node that depends on a root tensor must have been traced.

    A missed emit on the input (or, for training programs, parameter)
    path would silently freeze an input-dependent value as a constant;
    this walk turns that into a loud :class:`GraphUnsupported` instead.
    """
    dep: Dict[int, bool] = {id(t): True for t in roots}
    order: List[Tensor] = []
    stack: List[Tuple[Tensor, bool]] = [(out, False)]
    seen = set()
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for p in node._parents:
            stack.append((p, False))
    for node in order:          # parents come before children
        if id(node) in dep:
            continue
        dep[id(node)] = any(dep.get(id(p), False) for p in node._parents)
        if dep[id(node)] and id(node) not in tracer.ids:
            raise GraphUnsupported(
                "forward used an untraced operation on the input path "
                f"(tensor shape {node.shape}); cannot compile")


# --------------------------------------------------------------------- #
# compile entry point
# --------------------------------------------------------------------- #
def compile_forward(module: Callable[[Tensor], Tensor],
                    example: np.ndarray,
                    validate: bool = True,
                    pool: Optional[ScratchPool] = None) -> "CompiledForward":
    """Trace ``module``'s forward on ``example`` and compile it.

    Raises :class:`GraphUnsupported` when the forward uses an op the
    executor does not implement, produces something other than a traced
    Tensor, or fails the compile-time parity validation.
    """
    x = np.asarray(example)
    if x.dtype != get_default_dtype():
        x = x.astype(get_default_dtype())
    if x.ndim < 1 or len(x) < 1:
        raise GraphUnsupported("example batch must be non-empty")
    if _tensor._GRAPH_TRACER is not None:
        raise GraphUnsupported("nested tracing is not supported")
    xt = Tensor(x, requires_grad=True)
    tracer = _Tracer(xt)
    _tensor._GRAPH_TRACER = tracer
    try:
        out = module(xt)
    finally:
        _tensor._GRAPH_TRACER = None
    if not isinstance(out, Tensor):
        raise GraphUnsupported("forward did not return a Tensor")
    out_id = tracer.ids.get(id(out))
    if out_id is None or out_id in tracer.leaves:
        raise GraphUnsupported("forward output was not produced by traced ops")
    _check_input_path((xt,), out, tracer)
    prog = CompiledForward(tracer, out_id, x, pool=pool)
    if validate:
        prog._validate(module, x)
        if rowrep.enabled() and len(x) > 1:
            # row-reproducible plans additionally bit-validate against
            # per-row execution: every probe row replayed alone must
            # equal its full-batch bits, forward and input gradient —
            # the property that makes coalescing float traffic (and
            # degradation down the serve ladder) value-neutral
            def _grad(xb):
                _, gx = prog.value_and_input_grad(
                    xb, lambda o: np.ones_like(o))
                return gx.copy()
            if not (rowrep.validate_per_row(prog.replay, x)
                    and rowrep.validate_per_row(_grad, x)):
                raise GraphUnsupported(
                    "compiled forward is not row-reproducible "
                    "(per-row bits change with batch composition)")
    return prog


class _Program:
    """Buffer, constant-folding and replay machinery shared by the
    forward executor (:class:`CompiledForward`) and the training-step
    executor (:class:`repro.nn.train_graph.CompiledTrainStep`)."""

    #: True: replays accept any batch size, so batch-axis-entangling ops
    #: are refused at compile time.  The training executor pins the
    #: traced batch and relaxes those checks (parameter transposes and
    #: batch-axis reductions are legitimate there).
    _variable_batch = True

    def __init__(self, tracer: _Tracer, out_id: int, example: np.ndarray,
                 pool: Optional[ScratchPool] = None,
                 var_roots: Optional[set] = None):
        self._input_id = tracer.input_id
        self._out_id = out_id
        self._dtype = example.dtype
        self._trailing = example.shape[1:]
        self._n0 = example.shape[0]
        #: transient-scratch arena; private by default, shared when the
        #: caller passes one (the paired attack engine does)
        self._pool = pool if pool is not None else ScratchPool()

        # Reachability from the output (plus recorded side effects).
        reach = {out_id}
        for _, _, nid in tracer.effects:
            reach.add(nid)
        for op in reversed(tracer.ops):
            if op.out in reach:
                reach.update(op.inputs)
        if self._input_id not in reach:
            raise GraphUnsupported("output does not depend on the input")
        ops = [op for op in tracer.ops if op.out in reach]

        # Split into constant (root-independent) and variable ops.
        var = {self._input_id} if var_roots is None else set(var_roots)
        for op in ops:
            if any(i in var for i in op.inputs):
                var.add(op.out)
        self._var_set = var
        self._const_ops = [op for op in ops if op.out not in var]
        self._var_ops = [op for op in ops if op.out in var]
        self._leaves = {nid: t for nid, t in tracer.leaves.items() if nid in reach}

        for op in self._var_ops:
            if op.kind not in _FWD_FACTORY or op.kind not in _BWD_FACTORY:
                raise GraphUnsupported(f"op {op.kind!r} is not replayable")

        self._env: List[Optional[np.ndarray]] = [None] * tracer.count
        self._ctx: Dict[int, dict] = {op.out: {} for op in self._var_ops}
        self._bufs: Dict[object, np.ndarray] = {}
        self._buf_shapes: Dict[object, Tuple[int, ...]] = {}
        self._alloc_n = 0
        self.replays = 0
        self.refresh()

    # -- buffers -------------------------------------------------------- #
    def _register_buf(self, key, per_sample_shape: Tuple[int, ...],
                      fill: Optional[float] = None,
                      pool_key: Optional[Tuple] = None) -> None:
        """``fill`` pre-fills the buffer once per allocation — used for
        padded-input buffers whose borders are constant (0 for conv,
        -inf for max-pool), so replays only write the interior.

        ``pool_key`` marks the buffer as *transient* (its contents die
        inside the registering op's closure): it is then drawn from the
        shared :class:`ScratchPool`, deduplicating same-geometry scratch
        across ops and across the programs sharing the pool.  Buffers
        whose contents outlive the op (activation outputs, gradient
        accumulators) must not set it.
        """
        self._buf_shapes[key] = (tuple(per_sample_shape), fill, pool_key)

    def _slot(self, key, n: int) -> np.ndarray:
        return self._bufs[key][:n]

    def _ensure(self, n: int) -> None:
        if n <= self._alloc_n:
            return
        for key, (shape, fill, pool_key) in self._buf_shapes.items():
            if pool_key is not None:
                self._bufs[key] = self._pool.acquire(pool_key, n, shape,
                                                     self._dtype, fill)
                continue
            buf = np.empty((n,) + shape, dtype=self._dtype)
            if fill is not None:
                buf.fill(fill)
            self._bufs[key] = buf
        self._alloc_n = n

    def _batched(self, shape: Tuple[int, ...]) -> bool:
        return len(shape) >= 1 and shape[0] == self._n0

    # -- constants ------------------------------------------------------ #
    def refresh(self) -> None:
        """Re-read leaf tensors and re-fold the constant subgraphs.

        Call after mutating parameters in place (optimizer steps); cheap
        relative to even a single replay, so attacks call it once per
        ``generate``.
        """
        env = self._env
        for nid, t in self._leaves.items():
            env[nid] = t.data
        for ctx in self._ctx.values():
            for key in ("wmat", "wmat_g", "w2", "w2T"):
                ctx.pop(key, None)
        for op in self._const_ops:
            val = _eval_const(op, env)
            if val.dtype.kind == "f" and val.dtype != self._dtype:
                # the eager tape wraps every op result in a Tensor,
                # which casts to the session dtype — mirror it, or a
                # folded float64 intermediate (fake_quant's dequantize
                # round trip) promotes the downstream BLAS calls and
                # drifts off the tape by ulps
                val = val.astype(self._dtype)
            env[op.out] = val

    # -- replay --------------------------------------------------------- #
    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.dtype != self._dtype:
            x = x.astype(self._dtype)
        if x.shape[1:] != self._trailing:
            raise GraphUnsupported(
                f"replay input trailing shape {x.shape[1:]} != traced "
                f"{self._trailing}")
        return x

    def _forward(self, x: np.ndarray) -> np.ndarray:
        n = len(x)
        self._ensure(n)
        env = self._env
        env[self._input_id] = x
        for run in self._fwd_prog:
            run(n)
        self.replays += 1
        return env[self._out_id]


class CompiledForward(_Program):
    """A flat, replayable program lowered from one traced forward."""

    def __init__(self, tracer: _Tracer, out_id: int, example: np.ndarray,
                 pool: Optional[ScratchPool] = None):
        super().__init__(tracer, out_id, example, pool=pool)
        for op in self._var_ops:
            if op.out_shape[:1] != (self._n0,):
                raise GraphUnsupported(
                    f"op {op.kind!r} output is not batch-major "
                    f"(shape {op.out_shape}); cannot replay variable batches")
        self._fwd_prog = [_FWD_FACTORY[op.kind](self, op) for op in self._var_ops]
        self._bwd_prog = [(_BWD_FACTORY[op.kind](self, op), op.out)
                          for op in reversed(self._var_ops)]
        self._ensure(self._n0)

    def replay(self, x: np.ndarray, copy: bool = True) -> np.ndarray:
        """Forward only: return the output (logits) for batch ``x``.

        With ``copy=False`` the returned array is a view into an
        internal buffer, valid until the next replay.
        """
        out = self._forward(self._check_input(x))
        return out.copy() if copy else out

    def value_and_input_grad(self, x: np.ndarray,
                             out_grad: Union[np.ndarray, Callable[[np.ndarray], np.ndarray]],
                             ) -> Tuple[np.ndarray, np.ndarray]:
        """One fused replay: output and d(loss)/d(input).

        ``out_grad`` is either the loss gradient w.r.t. the output, or a
        callable mapping the output array to that gradient (evaluated
        after the forward half, so success checks and gradient seeds can
        share the same logits).  The returned output is a buffer view
        valid until the next replay; the gradient is freshly owned.
        """
        x = self._check_input(x)
        out = self._forward(x)
        g = out_grad(out) if callable(out_grad) else np.asarray(out_grad)
        return out, self._backward_from_seed(g, x)

    def _backward_from_seed(self, g: np.ndarray, x: np.ndarray) -> np.ndarray:
        """d(loss)/d(input) for the *most recent* forward, seeded with the
        loss gradient w.r.t. the output.  The forward's activations must
        still be live (no replay of this program in between); the
        returned gradient is freshly owned.
        """
        out = self._env[self._out_id]
        n = len(x)
        if g.dtype != self._dtype:
            g = g.astype(self._dtype)
        if g.shape != out.shape:
            raise ValueError(f"seed gradient shape {g.shape} != output "
                             f"shape {out.shape}")
        genv: List[Optional[np.ndarray]] = [None] * len(self._env)
        gowned: List[bool] = [False] * len(self._env)
        genv[self._out_id] = g
        for run, out_nid in self._bwd_prog:
            go = genv[out_nid]
            if go is None:
                continue
            run(go, genv, gowned, n)
            genv[out_nid] = None
        gx = genv[self._input_id]
        if gx is None:
            gx = np.zeros_like(x)
        elif not gowned[self._input_id] or not gx.flags.writeable:
            # an unowned gradient may alias per-op scratch (e.g. the
            # stride-1 conv backward's col2im accumulator) that the next
            # replay overwrites — a contiguity check is not enough, the
            # caller was promised a freshly owned array
            gx = gx.copy()
        return gx

    # -- validation ----------------------------------------------------- #
    def _validate(self, module, example: np.ndarray) -> None:
        rng = np.random.default_rng(0)
        xv = (example + rng.normal(0.0, 1e-2, size=example.shape)
              ).astype(self._dtype)
        xt = Tensor(xv, requires_grad=True)
        ref_out_t = module(xt)
        ref = ref_out_t.data
        seed = np.ones_like(ref)
        ref_out_t.backward(seed)
        gref = xt.grad
        if isinstance(module, Module):
            module.zero_grad()       # drop parameter grads the check created
        got, gx = self.value_and_input_grad(xv, seed)
        if got.shape != ref.shape or not np.allclose(got, ref, rtol=1e-5, atol=1e-6):
            raise GraphUnsupported("compiled forward does not match eager tape")
        if gx.shape != gref.shape or not np.allclose(gx, gref, rtol=1e-5, atol=1e-6):
            raise GraphUnsupported("compiled input gradient does not match eager tape")


# --------------------------------------------------------------------- #
# constant evaluation (runs once per compile/refresh; clarity over speed)
# --------------------------------------------------------------------- #
def _eval_const(op: _Op, env) -> np.ndarray:
    ins = [env[i] for i in op.inputs]
    k, at = op.kind, op.attrs
    if k == "add":
        return ins[0] + ins[1]
    if k == "sub":
        return ins[0] - ins[1]
    if k == "neg":
        return -ins[0]
    if k == "mul":
        return ins[0] * ins[1]
    if k == "div":
        return ins[0] / ins[1]
    if k == "pow":
        return ins[0] ** at["exponent"]
    if k == "matmul":
        return ins[0] @ ins[1]
    if k == "exp":
        return np.exp(ins[0])
    if k == "log":
        return np.log(ins[0])
    if k == "sqrt":
        return np.sqrt(ins[0])
    if k == "tanh":
        return np.tanh(ins[0])
    if k == "sigmoid":
        return 1.0 / (1.0 + np.exp(-ins[0]))
    if k == "relu":
        return np.where(ins[0] > 0, ins[0], 0.0)
    if k == "sum":
        return ins[0].sum(axis=at["axis"], keepdims=at["keepdims"])
    if k == "reshape":
        return ins[0].reshape(op.out_shape)
    if k == "transpose":
        return ins[0].transpose(at["axes"])
    if k == "concat":
        return np.concatenate(ins, axis=at["axis"])
    if k == "stack":
        return np.stack(ins, axis=at["axis"])
    if k == "where":
        return np.where(at["cond"], ins[0], ins[1])
    if k == "sign":
        return np.sign(ins[0])
    if k == "maximum":
        return np.maximum(ins[0], ins[1])
    if k == "minimum":
        return np.minimum(ins[0], ins[1])
    if k == "select":
        return np.where(ins[0].astype(bool), ins[1], ins[2])
    if k == "pad2d":
        t, b, l, r = at["pad"]
        return np.pad(ins[0], ((0, 0), (0, 0), (t, b), (l, r)))
    if k == "fake_quant":
        from ..quantization.affine import fake_quantize_array
        return fake_quantize_array(ins[0], at["qp"])
    raise GraphUnsupported(f"op {op.kind!r} is not replayable")


# --------------------------------------------------------------------- #
# variable-op kernels
#
# Each factory binds the op's ids/attrs once at compile time and returns
# a closure; replay just calls the closures in order, so the hot loop
# allocates no closures and never re-sorts the graph.
#
# Backward closures accumulate through ``_gacc`` with an explicit
# ownership flag: a contribution may only be added *in place* into an
# existing entry when that entry was stored as a freshly-owned array.
# View contributions (reshape/transpose/concat slices of an upstream
# gradient) are never mutated — the same aliasing discipline
# ``Tensor._accumulate`` follows.
# --------------------------------------------------------------------- #
def _gacc(genv, gowned, nid: int, arr: np.ndarray, owned: bool) -> None:
    cur = genv[nid]
    if cur is None:
        genv[nid] = arr
        gowned[nid] = owned
    elif gowned[nid] and cur.flags.writeable:
        np.add(cur, arr, out=cur)
    else:
        genv[nid] = cur + arr
        gowned[nid] = True


_FWD_FACTORY: Dict[str, Callable] = {}
_BWD_FACTORY: Dict[str, Callable] = {}


def _register(kind):
    def deco(fn):
        _FWD_FACTORY[kind] = fn
        return fn
    return deco


def _register_bwd(kind):
    def deco(fn):
        _BWD_FACTORY[kind] = fn
        return fn
    return deco


def _ufunc_fwd(prog, op, call):
    """Shared buffer logic for elementwise/matmul/sum ops: write into a
    preallocated batch-major buffer when possible, else allocate fresh."""
    env = prog._env
    o = op.out
    if prog._batched(op.out_shape):
        prog._register_buf(o, op.out_shape[1:])

        def run(n, env=env, o=o, prog=prog, call=call):
            env[o] = call(prog._slot(o, n))
    else:
        # non-batch-major outputs (train-mode batch statistics, scalar
        # heads) allocate fresh — they only occur in fixed-batch training
        # programs and are small
        def run(n, env=env, o=o, call=call):
            env[o] = call(None)
    return run


def _grad_target_shape(prog, shape: Tuple[int, ...], n: int) -> Tuple[int, ...]:
    return ((n,) + shape[1:]) if prog._batched(shape) else shape


# ---- arithmetic ------------------------------------------------------- #
@_register("add")
def _f_add(prog, op):
    a, b = op.inputs
    env = prog._env
    return _ufunc_fwd(prog, op, lambda out: np.add(env[a], env[b], out=out))


@_register_bwd("add")
def _b_add(prog, op):
    a, b = op.inputs
    var = prog._var_set
    sa, sb = op.in_shapes

    def run(g, genv, gowned, n, a=a, b=b, sa=sa, sb=sb):
        if a in var:
            ga = _unbroadcast(g, _grad_target_shape(prog, sa, n))
            _gacc(genv, gowned, a, ga, ga is not g)
        if b in var:
            gb = _unbroadcast(g, _grad_target_shape(prog, sb, n))
            _gacc(genv, gowned, b, gb, gb is not g)
    return run


@_register("sub")
def _f_sub(prog, op):
    a, b = op.inputs
    env = prog._env
    return _ufunc_fwd(prog, op, lambda out: np.subtract(env[a], env[b], out=out))


@_register_bwd("sub")
def _b_sub(prog, op):
    a, b = op.inputs
    var = prog._var_set
    sa, sb = op.in_shapes
    bown = not prog._variable_batch
    buf_b = None
    if b in var and prog._batched(op.out_shape):
        buf_b = ("gsub_b", op.out)
        prog._register_buf(buf_b, op.out_shape[1:])

    def run(g, genv, gowned, n, a=a, b=b, sa=sa, sb=sb):
        if a in var:
            ga = _unbroadcast(g, _grad_target_shape(prog, sa, n))
            _gacc(genv, gowned, a, ga, ga is not g)
        if b in var:
            neg = (np.negative(g, out=prog._slot(buf_b, n))
                   if buf_b is not None else -g)
            gb = _unbroadcast(neg, _grad_target_shape(prog, sb, n))
            _gacc(genv, gowned, b, gb,
                  bown or buf_b is None or gb is not neg)
    return run


@_register("neg")
def _f_neg(prog, op):
    a, = op.inputs
    env = prog._env
    return _ufunc_fwd(prog, op, lambda out: np.negative(env[a], out=out))


@_register_bwd("neg")
def _b_neg(prog, op):
    a, = op.inputs

    def run(g, genv, gowned, n, a=a):
        _gacc(genv, gowned, a, -g, True)
    return run


@_register("mul")
def _f_mul(prog, op):
    a, b = op.inputs
    env = prog._env
    return _ufunc_fwd(prog, op, lambda out: np.multiply(env[a], env[b], out=out))


@_register_bwd("mul")
def _b_mul(prog, op):
    a, b = op.inputs
    var = prog._var_set
    env = prog._env
    sa, sb = op.in_shapes
    # full-size products land in per-op buffers (same bits, no per-step
    # allocation).  Fixed-batch training programs mark them owned —
    # in-place fan-in accumulation, and no gradient ever leaves the
    # program; variable-batch programs export the input gradient, so
    # buffer-backed contributions stay unowned there and are copied
    # before handing out.
    bown = not prog._variable_batch
    buf_a = buf_b = None
    if prog._batched(op.out_shape):
        if a in var:
            buf_a = ("gmul_a", op.out)
            prog._register_buf(buf_a, op.out_shape[1:])
        if b in var:
            buf_b = ("gmul_b", op.out)
            prog._register_buf(buf_b, op.out_shape[1:])

    def run(g, genv, gowned, n, a=a, b=b, sa=sa, sb=sb):
        if a in var:
            prod = (np.multiply(g, env[b], out=prog._slot(buf_a, n))
                    if buf_a is not None else g * env[b])
            ga = _unbroadcast(prod, _grad_target_shape(prog, sa, n))
            _gacc(genv, gowned, a, ga,
                  bown or buf_a is None or ga is not prod)
        if b in var:
            prod = (np.multiply(g, env[a], out=prog._slot(buf_b, n))
                    if buf_b is not None else g * env[a])
            gb = _unbroadcast(prod, _grad_target_shape(prog, sb, n))
            _gacc(genv, gowned, b, gb,
                  bown or buf_b is None or gb is not prod)
    return run


@_register("div")
def _f_div(prog, op):
    a, b = op.inputs
    env = prog._env
    return _ufunc_fwd(prog, op, lambda out: np.divide(env[a], env[b], out=out))


@_register_bwd("div")
def _b_div(prog, op):
    a, b = op.inputs
    var = prog._var_set
    env = prog._env
    sa, sb = op.in_shapes

    def run(g, genv, gowned, n, a=a, b=b, sa=sa, sb=sb):
        if a in var:
            _gacc(genv, gowned, a,
                  _unbroadcast(g / env[b], _grad_target_shape(prog, sa, n)), True)
        if b in var:
            _gacc(genv, gowned, b,
                  _unbroadcast(-g * env[a] / (env[b] ** 2),
                               _grad_target_shape(prog, sb, n)), True)
    return run


@_register("pow")
def _f_pow(prog, op):
    a, = op.inputs
    e = op.attrs["exponent"]
    env = prog._env
    return _ufunc_fwd(prog, op, lambda out: np.power(env[a], e, out=out))


@_register_bwd("pow")
def _b_pow(prog, op):
    a, = op.inputs
    e = op.attrs["exponent"]
    env = prog._env

    def run(g, genv, gowned, n, a=a, e=e):
        _gacc(genv, gowned, a, g * e * (env[a] ** (e - 1)), True)
    return run


@_register("matmul")
def _f_matmul(prog, op):
    a, b = op.inputs
    env = prog._env
    if len(op.in_shapes[0]) < 2 or len(op.in_shapes[1]) < 2:
        raise GraphUnsupported("vector matmul is not replayable")
    # the row-reproducible mode is baked into the plan at build time
    # (plan-cache keys carry rowrep.mode_key(), so a plan can never be
    # replayed under the other mode's bits)
    if (rowrep.enabled() and len(op.in_shapes[0]) == 2
            and len(op.in_shapes[1]) == 2):
        return _ufunc_fwd(prog, op,
                          lambda out: rowrep.rr_matmul(env[a], env[b], out=out))
    return _ufunc_fwd(prog, op, lambda out: np.matmul(env[a], env[b], out=out))


@_register_bwd("matmul")
def _b_matmul(prog, op):
    a, b = op.inputs
    var = prog._var_set
    env = prog._env
    sa, sb = op.in_shapes
    # input-gradient leg (rows of g against a fixed right operand): per
    # row, so it takes the fixed-order kernel when the plan was built
    # in row-reproducible mode; the b-side (weight-style) gradient
    # reduces over the batch and is never per-row
    rr = rowrep.enabled() and len(sa) == 2 and len(sb) == 2

    def run(g, genv, gowned, n, a=a, b=b, sa=sa, sb=sb, rr=rr):
        if a in var:
            bt = np.swapaxes(env[b], -1, -2)
            ga = rowrep.rr_matmul(g, bt) if rr else g @ bt
            _gacc(genv, gowned, a,
                  _unbroadcast(ga, _grad_target_shape(prog, sa, n)), True)
        if b in var:
            _gacc(genv, gowned, b,
                  _unbroadcast(np.swapaxes(env[a], -1, -2) @ g,
                               _grad_target_shape(prog, sb, n)), True)
    return run


# ---- elementwise math ------------------------------------------------- #
@_register("exp")
def _f_exp(prog, op):
    a, = op.inputs
    env = prog._env
    return _ufunc_fwd(prog, op, lambda out: np.exp(env[a], out=out))


@_register_bwd("exp")
def _b_exp(prog, op):
    a, = op.inputs
    o = op.out
    env = prog._env

    def run(g, genv, gowned, n, a=a, o=o):
        _gacc(genv, gowned, a, g * env[o], True)
    return run


@_register("log")
def _f_log(prog, op):
    a, = op.inputs
    env = prog._env
    return _ufunc_fwd(prog, op, lambda out: np.log(env[a], out=out))


@_register_bwd("log")
def _b_log(prog, op):
    a, = op.inputs
    env = prog._env

    def run(g, genv, gowned, n, a=a):
        _gacc(genv, gowned, a, g / env[a], True)
    return run


@_register("sqrt")
def _f_sqrt(prog, op):
    a, = op.inputs
    env = prog._env
    return _ufunc_fwd(prog, op, lambda out: np.sqrt(env[a], out=out))


@_register_bwd("sqrt")
def _b_sqrt(prog, op):
    a, = op.inputs
    o = op.out
    env = prog._env

    def run(g, genv, gowned, n, a=a, o=o):
        _gacc(genv, gowned, a, g * 0.5 / env[o], True)
    return run


@_register("tanh")
def _f_tanh(prog, op):
    a, = op.inputs
    env = prog._env
    return _ufunc_fwd(prog, op, lambda out: np.tanh(env[a], out=out))


@_register_bwd("tanh")
def _b_tanh(prog, op):
    a, = op.inputs
    o = op.out
    env = prog._env

    def run(g, genv, gowned, n, a=a, o=o):
        v = env[o]
        _gacc(genv, gowned, a, g * (1.0 - v * v), True)
    return run


@_register("sigmoid")
def _f_sigmoid(prog, op):
    a, = op.inputs
    env = prog._env

    def call(out):
        v = np.exp(np.negative(env[a], out=out), out=out)
        np.add(v, 1.0, out=v)
        return np.divide(1.0, v, out=v)
    return _ufunc_fwd(prog, op, call)


@_register_bwd("sigmoid")
def _b_sigmoid(prog, op):
    a, = op.inputs
    o = op.out
    env = prog._env

    def run(g, genv, gowned, n, a=a, o=o):
        v = env[o]
        _gacc(genv, gowned, a, g * v * (1.0 - v), True)
    return run


@_register("relu")
def _f_relu(prog, op):
    a, = op.inputs
    env = prog._env
    return _ufunc_fwd(prog, op, lambda out: np.maximum(env[a], 0.0, out=out))


@_register_bwd("relu")
def _b_relu(prog, op):
    a, = op.inputs
    env = prog._env
    bown = not prog._variable_batch
    buf = None
    if prog._batched(op.out_shape):
        buf = ("grelu", op.out)
        prog._register_buf(buf, op.out_shape[1:])

    def run(g, genv, gowned, n, a=a):
        if buf is not None:
            arr = np.multiply(g, env[a] > 0, out=prog._slot(buf, n))
            _gacc(genv, gowned, a, arr, bown)
        else:
            _gacc(genv, gowned, a, g * (env[a] > 0), True)
    return run


# ---- reductions / shape ---------------------------------------------- #
@_register("sum")
def _f_sum(prog, op):
    a, = op.inputs
    ax = op.attrs["axis"]
    kd = op.attrs["keepdims"]
    env = prog._env
    return _ufunc_fwd(prog, op,
                      lambda out: np.sum(env[a], axis=ax, keepdims=kd, out=out))


@_register_bwd("sum")
def _b_sum(prog, op):
    a, = op.inputs
    ax = op.attrs["axis"]
    kd = op.attrs["keepdims"]
    env = prog._env
    bown = not prog._variable_batch
    buf = None
    if prog._batched(op.in_shapes[0]):
        buf = ("gsum", op.out)
        prog._register_buf(buf, op.in_shapes[0][1:])

    def run(g, genv, gowned, n, a=a, ax=ax, kd=kd):
        shape = env[a].shape
        if ax is not None and not kd:
            g = np.expand_dims(g, ax)
        if buf is not None:
            arr = prog._slot(buf, n)
            np.copyto(arr, g)           # broadcasting copy, same values
            _gacc(genv, gowned, a, arr, bown)
            return
        if ax is None and not np.ndim(g):
            arr = np.full(shape, g, dtype=g.dtype)
        else:
            arr = np.broadcast_to(g, shape).copy()
        _gacc(genv, gowned, a, arr, True)
    return run


@_register("reshape")
def _f_reshape(prog, op):
    a, = op.inputs
    env = prog._env
    if prog._variable_batch:
        if not (prog._batched(op.in_shapes[0]) and prog._batched(op.out_shape)):
            raise GraphUnsupported("reshape mixing the batch dim is not replayable")
        tpl = (-1,) + op.out_shape[1:]
    else:
        tpl = op.out_shape          # fixed batch: parameter reshapes are fine

    def run(n, a=a, o=op.out, tpl=tpl):
        env[o] = env[a].reshape(tpl)
    return run


@_register_bwd("reshape")
def _b_reshape(prog, op):
    a, = op.inputs
    tpl = ((-1,) + op.in_shapes[0][1:]) if prog._variable_batch \
        else op.in_shapes[0]

    def run(g, genv, gowned, n, a=a, tpl=tpl):
        arr = g.reshape(tpl)
        _gacc(genv, gowned, a, arr, False)
    return run


@_register("transpose")
def _f_transpose(prog, op):
    a, = op.inputs
    axes = tuple(op.attrs["axes"])
    if prog._variable_batch and axes[0] != 0:
        raise GraphUnsupported("transpose moving the batch dim is not replayable")
    env = prog._env

    def run(n, a=a, o=op.out, axes=axes):
        env[o] = env[a].transpose(axes)
    return run


@_register_bwd("transpose")
def _b_transpose(prog, op):
    a, = op.inputs
    inv = tuple(np.argsort(op.attrs["axes"]))

    def run(g, genv, gowned, n, a=a, inv=inv):
        _gacc(genv, gowned, a, g.transpose(inv), False)
    return run


@_register("concat")
def _f_concat(prog, op):
    axis = op.attrs["axis"]
    if axis == 0:
        raise GraphUnsupported("concat along the batch dim is not replayable")
    env = prog._env
    ins = op.inputs
    prog._register_buf(op.out, op.out_shape[1:])

    def run(n, ins=ins, o=op.out, axis=axis):
        env[o] = np.concatenate([env[i] for i in ins], axis=axis,
                                out=prog._slot(o, n))
    return run


@_register_bwd("concat")
def _b_concat(prog, op):
    axis = op.attrs["axis"]
    var = prog._var_set
    sizes = [s[axis] for s in op.in_shapes]
    offsets = np.cumsum([0] + sizes)
    spans = [(op.inputs[i], int(offsets[i]), int(offsets[i + 1]))
             for i in range(len(op.inputs))]

    def run(g, genv, gowned, n, spans=spans, axis=axis):
        for nid, s, e in spans:
            if nid in var:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(s, e)
                _gacc(genv, gowned, nid, g[tuple(sl)], False)
    return run


@_register("stack")
def _f_stack(prog, op):
    axis = op.attrs["axis"] % len(op.out_shape)
    if axis == 0:
        raise GraphUnsupported("stack along the batch dim is not replayable")
    env = prog._env
    ins = op.inputs
    slices = [(slice(None),) * axis + (idx,) for idx in range(len(ins))]
    prog._register_buf(op.out, op.out_shape[1:])

    def run(n, ins=ins, o=op.out, slices=slices):
        out = prog._slot(o, n)
        for nid, sl in zip(ins, slices):
            out[sl] = env[nid]
        env[o] = out
    return run


@_register_bwd("stack")
def _b_stack(prog, op):
    axis = op.attrs["axis"] % len(op.out_shape)
    var = prog._var_set
    pairs = [(nid, (slice(None),) * axis + (idx,))
             for idx, nid in enumerate(op.inputs)]

    def run(g, genv, gowned, n, pairs=pairs):
        for nid, sl in pairs:
            if nid in var:
                _gacc(genv, gowned, nid, g[sl], False)
    return run


@_register("where")
def _f_where(prog, op):
    a, b = op.inputs
    cond = op.attrs["cond"]
    if cond.ndim >= len(op.out_shape) and prog._batched(cond.shape):
        # A batch-major condition was computed from the traced example
        # (off-tape, e.g. ``x.data > t``); replaying it against other
        # inputs would silently freeze a data-dependent branch choice.
        raise GraphUnsupported(
            "where() with a batch-dependent condition is not replayable")
    env = prog._env
    prog._register_buf(op.out, op.out_shape[1:])

    def run(n, a=a, b=b, o=op.out, cond=cond):
        out = prog._slot(o, n)
        np.copyto(out, env[b])
        np.copyto(out, env[a], where=cond)
        env[o] = out
    return run


@_register_bwd("where")
def _b_where(prog, op):
    a, b = op.inputs
    var = prog._var_set
    cond = op.attrs["cond"]
    sa, sb = op.in_shapes

    def run(g, genv, gowned, n, a=a, b=b, sa=sa, sb=sb, cond=cond):
        if a in var:
            _gacc(genv, gowned, a,
                  _unbroadcast(np.where(cond, g, 0.0),
                               _grad_target_shape(prog, sa, n)), True)
        if b in var:
            _gacc(genv, gowned, b,
                  _unbroadcast(np.where(cond, 0.0, g),
                               _grad_target_shape(prog, sb, n)), True)
    return run


@_register("pad2d")
def _f_pad2d(prog, op):
    a, = op.inputs
    t, b, l, r = op.attrs["pad"]
    _, C, H, W = op.in_shapes[0]
    env = prog._env
    # The borders are constant zeros: pre-fill once per allocation and
    # rewrite only the interior each replay.  The output feeds later ops,
    # so the buffer stays private (never pooled).
    prog._register_buf(op.out, op.out_shape[1:], fill=0.0)

    def run(n, a=a, o=op.out):
        out = prog._slot(o, n)
        out[:, :, t:t + H, l:l + W] = env[a]
        env[o] = out
    return run


@_register_bwd("pad2d")
def _b_pad2d(prog, op):
    a, = op.inputs
    t, b, l, r = op.attrs["pad"]
    _, C, H, W = op.in_shapes[0]

    def run(g, genv, gowned, n, a=a):
        _gacc(genv, gowned, a, g[:, :, t:t + H, l:l + W], False)
    return run


# ---- fake quantization ------------------------------------------------ #
@_register("fake_quant")
def _f_fake_quant(prog, op):
    a, = op.inputs
    qp = op.attrs["qp"]
    ndim = len(op.in_shapes[0])
    s = qp.scale_for(ndim)
    z = qp.zero_point_for(ndim)
    env = prog._env
    if not prog._variable_batch:
        # Training program: the quantization grid moves every step (QAT
        # observers keep observing, weights keep changing), so re-read
        # the provider's params per replay and run the exact eager
        # kernel — bit-parity with the tape beats the fused round trip.
        from ..quantization.affine import fake_quantize_array
        fq = op.attrs.get("fq")
        ctx = prog._ctx[op.out]

        dtype = prog._dtype

        def run(n, a=a, o=op.out, fq=fq, qp=qp, ctx=ctx, dtype=dtype):
            cur = fq.qparams() if fq is not None else qp
            ctx["qp"] = cur
            arr = fake_quantize_array(env[a], cur)
            if arr.dtype != dtype:
                # the eager tape wraps this result in a Tensor, which
                # casts back to the session dtype — mirror that, or a
                # float32 run drifts by one rounding step
                arr = arr.astype(dtype)
            env[o] = arr
        return run
    if not prog._batched(op.out_shape):  # pragma: no cover - defensive
        from ..quantization.affine import fake_quantize_array

        def run(n, a=a, o=op.out, qp=qp):
            env[o] = fake_quantize_array(env[a], qp)
        return run
    # Fused in-place round trip.  ``fake_quantize_array`` detours through
    # int32, but round+clip already leaves exactly integral float64
    # values, so skipping the integer cast is bitwise-identical — while a
    # single scratch buffer replaces its eight temporaries.
    prog._register_buf(("fq_scratch", op.out), op.out_shape[1:])
    scratch_dtype = np.float64
    prog._bufs[("fq64", op.out)] = None

    def run(n, a=a, o=op.out, s=s, z=z, lo=qp.qmin, hi=qp.qmax):
        t = prog._bufs.get(("fq64", o))
        if t is None or len(t) < n:
            t = np.empty((max(n, prog._alloc_n),) + op.out_shape[1:],
                         dtype=scratch_dtype)
            prog._bufs[("fq64", o)] = t
        t = t[:n]
        np.divide(env[a], s, out=t)
        np.round(t, out=t)
        t += z
        np.clip(t, lo, hi, out=t)
        t -= z
        t *= s
        out = prog._slot(("fq_scratch", o), n)
        np.copyto(out, t)
        env[o] = out
    return run


@_register_bwd("fake_quant")
def _b_fake_quant(prog, op):
    a, = op.inputs
    qp = op.attrs["qp"]
    ndim = len(op.in_shapes[0])
    env = prog._env
    if not prog._variable_batch:
        # STE mask under the grid the forward half of THIS step used
        ctx = prog._ctx[op.out]

        def run(g, genv, gowned, n, a=a, qp=qp, ctx=ctx, ndim=ndim):
            cur = ctx.get("qp", qp)
            s = cur.scale_for(ndim)
            z = cur.zero_point_for(ndim)
            lo = (cur.qmin - z) * s
            hi = (cur.qmax - z) * s
            x = env[a]
            _gacc(genv, gowned, a, g * ((x >= lo) & (x <= hi)), True)
        return run
    s = qp.scale_for(ndim)
    z = qp.zero_point_for(ndim)
    lo = (qp.qmin - z) * s
    hi = (qp.qmax - z) * s

    def run(g, genv, gowned, n, a=a, lo=lo, hi=hi):
        x = env[a]
        _gacc(genv, gowned, a, g * ((x >= lo) & (x <= hi)), True)
    return run


# ---- convolution ------------------------------------------------------ #
def _conv_wmats(prog, op, ctx) -> None:
    """(Re)build the cached weight matrices for a conv node.

    The folded weight is constant across replays, so the
    ``weight.reshape(F, K)`` matrix (and the transposed copy the
    backward matmul consumes) is built once per compile/refresh instead
    of per step — the same arrays the eager kernel builds, so the BLAS
    calls stay bitwise-identical to the tape.
    """
    w = prog._env[op.inputs[1]]
    F, Cg, kh, kw = w.shape
    if op.attrs["groups"] == 1:
        w2 = np.ascontiguousarray(w.reshape(F, Cg * kh * kw))
        ctx["w2"] = w2
        ctx["w2T"] = np.ascontiguousarray(w2.T)
    else:
        G = op.attrs["groups"]
        wmat_g = w.reshape(G, F // G, Cg * kh * kw)
        ctx["wmat"] = wmat_g
        ctx["wmat_g"] = wmat_g          # gradient layout


@_register("conv2d")
def _f_conv2d(prog, op):
    x_id, w_id = op.inputs[0], op.inputs[1]
    dyn_w = w_id in prog._var_set
    if dyn_w and prog._variable_batch:
        raise GraphUnsupported("input-dependent conv weights are not replayable")
    b_id = op.inputs[2] if op.attrs["has_bias"] else None
    sh, sw = op.attrs["stride"]
    ph, pw = op.attrs["padding"]
    groups = op.attrs["groups"]
    _, C, H, W = op.in_shapes[0]
    F, Cg, kh, kw = op.in_shapes[1]
    oh, ow = op.out_shape[2], op.out_shape[3]
    env = prog._env
    ctx = prog._ctx[op.out]
    # Training programs keep the im2col scratch alive until the weight
    # gradient reads it back in the backward, so it stays private there;
    # forward-only programs pool it (contents die inside this closure).
    retain = not prog._variable_batch
    # Borders of the padded input are constant zeros: keep a pre-filled
    # padded buffer and write only the interior each replay (cheaper
    # than np.pad, bitwise-identical values).  The buffer is transient
    # (read back out inside this op only), so it is pooled across
    # same-geometry convs and across paired programs.
    if ph or pw:
        prog._register_buf(("conv_pad", op.out),
                           (C, H + 2 * ph, W + 2 * pw), fill=0.0,
                           pool_key=("conv_pad", C, H, W, ph, pw))

    def padded_input(n, x_id=x_id, o=op.out):
        if not (ph or pw):
            return env[x_id]
        pb = prog._slot(("conv_pad", o), n)
        pb[:, :, ph:ph + H, pw:pw + W] = env[x_id]
        return pb

    if groups == 1:
        # Tap-major layout (mirrors the eager kernel exactly): the
        # im2col window view is already (n, C, kh, kw, oh, ow), so the
        # scratch fill is a cheap straight copy, and (F, K) @ (n, K, P)
        # writes NCHW output with no transposes around the matmul.
        K = C * kh * kw
        P = oh * ow
        prog._register_buf(("conv_cols", op.out), (K, P),
                           pool_key=None if retain else ("conv_cols", K, P))
        prog._register_buf(op.out, (F, P))

        def run(n, x_id=x_id, b_id=b_id, o=op.out):
            if dyn_w or "w2" not in ctx:
                _conv_wmats(prog, op, ctx)
            cols, _ = _im2col(padded_input(n), kh, kw, sh, sw, 0, 0)
            scratch = prog._slot(("conv_cols", o), n)
            np.copyto(scratch.reshape(n, C, kh, kw, oh, ow), cols)
            obuf = prog._slot(o, n)
            np.matmul(ctx["w2"], scratch, out=obuf)
            if b_id is not None:
                obuf += env[b_id][:, None]
            env[o] = obuf.reshape(n, F, oh, ow)
    elif Cg == 1 and F == groups:
        # pure depthwise mirrors the eager tap-major path: the scratch
        # holds (C, kh*kw, P) windows filled by a straight copy, and the
        # contraction is a batched matvec
        K = kh * kw
        P = oh * ow
        prog._register_buf(("conv_cols", op.out), (C * K, P),
                           pool_key=None if retain else ("conv_cols",
                                                         C * K, P))
        prog._register_buf(op.out, (F, P))

        def run(n, x_id=x_id, b_id=b_id, o=op.out):
            if dyn_w or "wmat_g" not in ctx:
                _conv_wmats(prog, op, ctx)
            cols, _ = _im2col(padded_input(n), kh, kw, sh, sw, 0, 0)
            scratch = prog._slot(("conv_cols", o), n)
            np.copyto(scratch.reshape(n, C, kh, kw, oh, ow), cols)
            obuf = prog._slot(o, n)
            _conv_depthwise_fwd(scratch.reshape(n, C, K, P),
                                ctx["wmat_g"].reshape(C, K),
                                out=obuf.reshape(n, C, 1, P))
            out = obuf.reshape(n, F, oh, ow)
            if b_id is not None:
                out = out + env[b_id].reshape(1, F, 1, 1)
            env[o] = out
    else:
        G = groups
        Fg = F // G
        prog._register_buf(("conv_cols", op.out), (G, oh, ow, Cg * kh * kw))
        prog._register_buf(op.out, (G, Fg, oh, ow))

        def run(n, x_id=x_id, b_id=b_id, o=op.out):
            if dyn_w or "wmat" not in ctx:
                _conv_wmats(prog, op, ctx)
            cols, _ = _im2col(padded_input(n), kh, kw, sh, sw, 0, 0)
            colsg = cols.reshape(n, G, Cg, kh, kw, oh, ow)
            scratch = prog._slot(("conv_cols", o), n)
            np.copyto(scratch.reshape(n, G, oh, ow, Cg, kh, kw),
                      colsg.transpose(0, 1, 5, 6, 2, 3, 4))
            obuf = prog._slot(o, n)
            _conv_grouped_fwd(scratch, ctx["wmat"], obuf)
            out = obuf.reshape(n, F, oh, ow)
            if b_id is not None:
                out = out + env[b_id].reshape(1, F, 1, 1)
            env[o] = out
    return run


@_register_bwd("conv2d")
def _b_conv2d(prog, op):
    x_id, w_id = op.inputs[0], op.inputs[1]
    b_id = op.inputs[2] if op.attrs["has_bias"] else None
    var = prog._var_set
    sh, sw = op.attrs["stride"]
    ph, pw = op.attrs["padding"]
    groups = op.attrs["groups"]
    _, C, H, W = op.in_shapes[0]
    F, Cg, kh, kw = op.in_shapes[1]
    oh, ow = op.out_shape[2], op.out_shape[3]
    ctx = prog._ctx[op.out]
    # Tap-major X-padded backward (mirrors the eager kernel, all strides
    # and groups): the producing matmul/einsum emits window rows with
    # the stride-phase image's own pitch, so col2im collapses to one
    # contiguous shifted-slice add per tap (see
    # ``functional._col2im_flat``).  The accumulator is referenced from
    # the gradient environment after this closure returns, so it stays
    # private; the padded-gradient and window-row scratch are transient
    # and pooled.
    Xp = _col2im_xpad(W, pw, sw)
    QX = oh * Xp
    Hp, Wp = H + 2 * ph, W + 2 * pw
    Hq = -(-Hp // sh)
    phases = sh * sw
    prog._register_buf(("conv_gpad", op.out), (F, oh, Xp), fill=0.0,
                       pool_key=("conv_gpad", F, oh, Xp))
    prog._register_buf(("conv_dx", op.out), (C, phases, Hq * Xp))
    if phases > 1:
        prog._register_buf(("conv_dxi", op.out), (C, Hp, Wp))

    def flat_col2im(dcolsp, n, o=op.out):
        dxi = (prog._slot(("conv_dxi", o), n) if phases > 1 else None)
        return _col2im_flat(dcolsp.reshape(n, C, kh, kw, QX),
                            (n, C, H, W), kh, kw, sh, sw, ph, pw, oh, ow,
                            out=prog._slot(("conv_dx", o), n), dx_out=dxi)

    if groups == 1:
        K = C * kh * kw
        prog._register_buf(("conv_dcols", op.out), (K, QX),
                           pool_key=("conv_dcols", K, QX))
        # same shape gate as the eager _conv_dw_dense, with the batched
        # product landing in pooled scratch (bitwise-identical GEMMs)
        dw_bm = (oh * ow) * 4 >= K
        if w_id in var and dw_bm:
            prog._register_buf(("conv_dwm", op.out), (F, K),
                               pool_key=("conv_dwm", F, K))

        def run(g, genv, gowned, n, x_id=x_id, w_id=w_id, b_id=b_id,
                o=op.out):
            if b_id is not None and b_id in var:
                _gacc(genv, gowned, b_id, g.sum(axis=(0, 2, 3)), True)
            if w_id in var:
                g2 = np.ascontiguousarray(g).reshape(n, F, oh * ow)
                cols2 = prog._slot(("conv_cols", o), n)
                if dw_bm:
                    mm = prog._slot(("conv_dwm", o), n)
                    np.matmul(g2, cols2.transpose(0, 2, 1), out=mm)
                    dw = mm.sum(axis=0)
                else:
                    dw = _conv_dw_dense(g2, cols2)
                _gacc(genv, gowned, w_id, dw.reshape(F, Cg, kh, kw), True)
            if x_id in var:
                g2p = prog._slot(("conv_gpad", o), n)
                np.copyto(g2p[..., :ow], g)
                dcolsp = prog._slot(("conv_dcols", o), n)
                np.matmul(ctx["w2T"], g2p.reshape(n, F, QX), out=dcolsp)
                _gacc(genv, gowned, x_id, flat_col2im(dcolsp, n), False)
    else:
        G = groups
        Fg = F // G
        K = Cg * kh * kw
        dwise = Cg == 1 and F == G
        prog._register_buf(("conv_gdcols", op.out), (G, K, QX),
                           pool_key=("conv_gdcols", G, K, QX))

        def run(g, genv, gowned, n, x_id=x_id, w_id=w_id, b_id=b_id,
                o=op.out):
            if b_id is not None and b_id in var:
                _gacc(genv, gowned, b_id, g.sum(axis=(0, 2, 3)), True)
            gg = g.reshape(n, G, Fg, oh, ow)
            if w_id in var:
                cols2 = prog._slot(("conv_cols", o), n)
                if dwise:
                    g2 = np.ascontiguousarray(g).reshape(n, C, oh * ow)
                    dw = _conv_dw_depthwise(
                        cols2.reshape(n, C, K, oh * ow), g2)
                else:
                    dw = _conv_dw_grouped(gg, cols2)
                _gacc(genv, gowned, w_id, dw.reshape(F, Cg, kh, kw), True)
            if x_id in var:
                ggp = prog._slot(("conv_gpad", o), n)
                np.copyto(ggp.reshape(n, G, Fg, oh, Xp)[..., :ow], gg)
                dcolsp = prog._slot(("conv_gdcols", o), n)
                _conv_dcols_grouped(ggp.reshape(n, G, Fg, QX),
                                    ctx["wmat_g"], out=dcolsp)
                _gacc(genv, gowned, x_id, flat_col2im(dcolsp, n), False)
    return run


# ---- pooling ---------------------------------------------------------- #
@_register("max_pool2d")
def _f_max_pool2d(prog, op):
    a, = op.inputs
    kh, kw = op.attrs["kernel"]
    sh, sw = op.attrs["stride"]
    ph, pw = op.attrs["padding"]
    C = op.in_shapes[0][1]
    H, W = op.in_shapes[0][2], op.in_shapes[0][3]
    oh, ow = op.out_shape[2], op.out_shape[3]
    env = prog._env
    ctx = prog._ctx[op.out]
    prog._register_buf(op.out, op.out_shape[1:])
    if ph or pw:
        # constant -inf borders, interior rewritten each replay
        prog._register_buf(("pool_pad", op.out),
                           (C, H + 2 * ph, W + 2 * pw), fill=-np.inf)

    def run(n, a=a, o=op.out):
        xd = env[a]
        if ph or pw:
            pb = prog._slot(("pool_pad", o), n)
            pb[:, :, ph:ph + H, pw:pw + W] = xd
            xd = pb
        cols, _ = _im2col(xd, kh, kw, sh, sw, 0, 0)
        flat = cols.transpose(0, 1, 4, 5, 2, 3).reshape(n, C, oh, ow, kh * kw)
        arg = flat.argmax(axis=-1)
        ctx["arg"] = arg
        out = prog._slot(o, n)
        np.copyto(out, np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0])
        env[o] = out
    return run


@_register_bwd("max_pool2d")
def _b_max_pool2d(prog, op):
    a, = op.inputs
    kh, kw = op.attrs["kernel"]
    sh, sw = op.attrs["stride"]
    ph, pw = op.attrs["padding"]
    C = op.in_shapes[0][1]
    H, W = op.in_shapes[0][2], op.in_shapes[0][3]
    oh, ow = op.out_shape[2], op.out_shape[3]
    ctx = prog._ctx[op.out]

    def run(g, genv, gowned, n, a=a):
        arg = ctx["arg"]
        dflat = np.zeros((n, C, oh, ow, kh * kw), dtype=g.dtype)
        np.put_along_axis(dflat, arg[..., None], g[..., None], axis=-1)
        dcols = dflat.reshape(n, C, oh, ow, kh, kw).transpose(0, 1, 4, 5, 2, 3)
        _gacc(genv, gowned, a,
              _col2im(dcols, (n, C, H, W), kh, kw, sh, sw, ph, pw), True)
    return run


@_register("avg_pool2d")
def _f_avg_pool2d(prog, op):
    a, = op.inputs
    kh, kw = op.attrs["kernel"]
    sh, sw = op.attrs["stride"]
    ph, pw = op.attrs["padding"]
    env = prog._env
    prog._register_buf(op.out, op.out_shape[1:])

    def run(n, a=a, o=op.out):
        cols, _ = _im2col(env[a], kh, kw, sh, sw, ph, pw)
        out = prog._slot(o, n)
        cols.mean(axis=(2, 3), out=out)
        env[o] = out
    return run


@_register_bwd("avg_pool2d")
def _b_avg_pool2d(prog, op):
    a, = op.inputs
    kh, kw = op.attrs["kernel"]
    sh, sw = op.attrs["stride"]
    ph, pw = op.attrs["padding"]
    C = op.in_shapes[0][1]
    H, W = op.in_shapes[0][2], op.in_shapes[0][3]
    oh, ow = op.out_shape[2], op.out_shape[3]

    def run(g, genv, gowned, n, a=a):
        dcols = np.broadcast_to(
            g[:, :, None, None, :, :] / (kh * kw), (n, C, kh, kw, oh, ow)
        ).astype(g.dtype)
        _gacc(genv, gowned, a,
              _col2im(dcols, (n, C, H, W), kh, kw, sh, sw, ph, pw), True)
    return run


# ---- masked selection / attack-step primitives ------------------------ #
# The loop-recording layer (repro.attacks.loop) promotes the engine's
# keep-best selection and done-mask bookkeeping from per-step Python into
# traced ops: ``sign``/``maximum``/``minimum`` express the projected sign
# step, and ``select`` is the runtime-masked counterpart of ``where`` —
# its condition is a *program input* (the per-row continuation mask of a
# loop-carried state), not a compile-time attribute, so one program
# replays every step of a loop whose active set changes per pass.
@_register("sign")
def _f_sign(prog, op):
    a, = op.inputs
    env = prog._env
    return _ufunc_fwd(prog, op, lambda out: np.sign(env[a], out=out))


@_register_bwd("sign")
def _b_sign(prog, op):
    # sign is piecewise constant: the a.e. subgradient is exactly zero,
    # so no contribution flows upstream (matching the convention eager
    # frameworks use).
    def run(g, genv, gowned, n):
        pass
    return run


@_register("maximum")
def _f_maximum(prog, op):
    a, b = op.inputs
    env = prog._env
    return _ufunc_fwd(prog, op, lambda out: np.maximum(env[a], env[b], out=out))


@_register_bwd("maximum")
def _b_maximum(prog, op):
    a, b = op.inputs
    var = prog._var_set
    env = prog._env
    sa, sb = op.in_shapes

    def run(g, genv, gowned, n, a=a, b=b, sa=sa, sb=sb):
        pick = env[a] >= env[b]          # ties to the first arg (np.maximum)
        if a in var:
            ga = _unbroadcast(np.where(pick, g, 0.0),
                              _grad_target_shape(prog, sa, n))
            _gacc(genv, gowned, a, ga, True)
        if b in var:
            gb = _unbroadcast(np.where(pick, 0.0, g),
                              _grad_target_shape(prog, sb, n))
            _gacc(genv, gowned, b, gb, True)
    return run


@_register("minimum")
def _f_minimum(prog, op):
    a, b = op.inputs
    env = prog._env
    return _ufunc_fwd(prog, op, lambda out: np.minimum(env[a], env[b], out=out))


@_register_bwd("minimum")
def _b_minimum(prog, op):
    a, b = op.inputs
    var = prog._var_set
    env = prog._env
    sa, sb = op.in_shapes

    def run(g, genv, gowned, n, a=a, b=b, sa=sa, sb=sb):
        pick = env[a] <= env[b]          # ties to the first arg (np.minimum)
        if a in var:
            ga = _unbroadcast(np.where(pick, g, 0.0),
                              _grad_target_shape(prog, sa, n))
            _gacc(genv, gowned, a, ga, True)
        if b in var:
            gb = _unbroadcast(np.where(pick, 0.0, g),
                              _grad_target_shape(prog, sb, n))
            _gacc(genv, gowned, b, gb, True)
    return run


@_register("select")
def _f_select(prog, op):
    m, a, b = op.inputs
    env = prog._env
    prog._register_buf(op.out, op.out_shape[1:])

    def run(n, m=m, a=a, b=b, o=op.out):
        out = prog._slot(o, n)
        np.copyto(out, env[b])
        np.copyto(out, env[a], where=env[m])
        env[o] = out
    return run


@_register_bwd("select")
def _b_select(prog, op):
    m, a, b = op.inputs
    var = prog._var_set
    env = prog._env
    sa, sb = op.in_shapes[1], op.in_shapes[2]

    def run(g, genv, gowned, n, m=m, a=a, b=b, sa=sa, sb=sb):
        # the mask itself is non-differentiable; only the branches flow
        if a in var:
            ga = _unbroadcast(np.where(env[m], g, 0.0),
                              _grad_target_shape(prog, sa, n))
            _gacc(genv, gowned, a, ga, True)
        if b in var:
            gb = _unbroadcast(np.where(env[m], 0.0, g),
                              _grad_target_shape(prog, sb, n))
            _gacc(genv, gowned, b, gb, True)
    return run


# --------------------------------------------------------------------- #
# hand-traced kernel programs (multi-input, forward-only)
# --------------------------------------------------------------------- #
class CompiledKernel(_Program):
    """A forward-only program over several variable inputs.

    Built by emitting registered ops directly into a :class:`_Tracer`
    (no module forward involved), then lowered through the same
    ``_FWD_FACTORY`` closures, buffers and :class:`ScratchPool`
    discipline as :class:`CompiledForward`.  All inputs must be
    batch-major and share one leading batch axis; replays accept any
    batch size.  Used by the loop-recording layer to run the masked
    keep-best step update as one replay instead of fancy-indexed numpy.
    """

    def __init__(self, tracer: _Tracer, out_id: int, example: np.ndarray,
                 input_ids, pool: Optional[ScratchPool] = None):
        self._input_ids = tuple(input_ids)
        super().__init__(tracer, out_id, example, pool=pool,
                         var_roots=set(input_ids))
        for op in self._var_ops:
            if op.out_shape[:1] != (self._n0,):
                raise GraphUnsupported(
                    f"op {op.kind!r} output is not batch-major "
                    f"(shape {op.out_shape}); cannot replay variable batches")
        self._fwd_prog = [_FWD_FACTORY[op.kind](self, op)
                          for op in self._var_ops]
        self._ensure(self._n0)

    def replay(self, *inputs: np.ndarray, copy: bool = False) -> np.ndarray:
        """Run the kernel on same-length batch-major inputs (bound
        positionally to the traced inputs).  By default the result is a
        view into an internal buffer, valid until the next replay."""
        n = len(inputs[0])
        self._ensure(n)
        env = self._env
        for nid, arr in zip(self._input_ids, inputs):
            env[nid] = arr
        for run in self._fwd_prog:
            run(n)
        self.replays += 1
        out = env[self._out_id]
        return out.copy() if copy else out


def masked_step_reference(adv: np.ndarray, g: np.ndarray, live: np.ndarray,
                          alpha: np.ndarray, lo: np.ndarray, hi: np.ndarray
                          ) -> np.ndarray:
    """Eager reference of the masked projected sign step.

    ``lo``/``hi`` are the loop-invariant clip bounds
    ``clip(x - eps, 0, 1)`` / ``clip(x + eps, 0, 1)``; the single
    max-then-min clamp against them is bit-identical to the engine's
    two-stage ``project_linf`` (clamp composition is a selection among
    the same candidates, applied in np.clip's lower-then-upper order).
    Rows where ``live`` is False pass through unchanged.
    """
    stepped = np.minimum(np.maximum(adv + alpha * np.sign(g), lo), hi)
    return np.where(live, stepped, adv)


def compile_step_kernel(trailing: Tuple[int, ...], dtype,
                        pool: Optional[ScratchPool] = None) -> CompiledKernel:
    """Trace the masked attack-step update into a :class:`CompiledKernel`.

    Program (6 inputs, all batch-major)::

        out = select(live, minimum(maximum(adv + alpha * sign(g), lo), hi), adv)

    ``alpha`` and ``live`` carry one value per row (shape ``(n, 1, ...)``,
    ``live`` boolean); the rest share ``adv``'s full shape.  Per the
    compiled-stack contract the built kernel bit-validates itself against
    :func:`masked_step_reference` (at the trace batch size and a larger
    one, exercising buffer growth) before it is returned; any mismatch
    raises :class:`GraphUnsupported`.
    """
    dtype = np.dtype(dtype)
    one = (1,) * len(trailing)
    n0 = 2
    rng = np.random.default_rng(0)

    def example(n):
        adv = rng.random((n,) + trailing).astype(dtype)
        g = rng.normal(size=(n,) + trailing).astype(dtype)
        live = (rng.random((n,) + one) < 0.5)
        alpha = np.full((n,) + one, 0.01, dtype=dtype)
        lo = np.clip(adv - 0.03, 0.0, 1.0).astype(dtype, copy=False)
        hi = np.clip(adv + 0.03, 0.0, 1.0).astype(dtype, copy=False)
        return adv, g, live, alpha, lo, hi

    adv, g, live, alpha, lo, hi = example(n0)
    adv_t = Tensor(adv)
    tracer = _Tracer(adv_t)
    # Tensor() casts leaf data to the default dtype; only shapes matter
    # for tracing — replays bind the caller's real (bool mask) arrays.
    g_t, live_t, alpha_t, lo_t, hi_t = (Tensor(a)
                                        for a in (g, live, alpha, lo, hi))
    input_ids = [tracer.input_id] + [tracer._register(t)
                                     for t in (g_t, live_t, alpha_t, lo_t, hi_t)]

    def emit(kind, ins, data):
        out = Tensor(data)
        tracer.emit(kind, ins, out, None)
        return out

    s_t = emit("sign", [g_t], np.sign(g))
    d_t = emit("mul", [alpha_t, s_t], alpha * s_t.data)
    a_t = emit("add", [adv_t, d_t], adv + d_t.data)
    mx_t = emit("maximum", [a_t, lo_t], np.maximum(a_t.data, lo))
    mn_t = emit("minimum", [mx_t, hi_t], np.minimum(mx_t.data, hi))
    out_t = emit("select", [live_t, mn_t, adv_t],
                 np.where(live, mn_t.data, adv))

    kernel = CompiledKernel(tracer, tracer.ids[id(out_t)], adv, input_ids,
                            pool=pool)
    for n in (n0, 5):
        ins = example(n) if n != n0 else (adv, g, live, alpha, lo, hi)
        if not np.array_equal(kernel.replay(*ins), masked_step_reference(*ins)):
            raise GraphUnsupported(
                "compiled step kernel does not match the eager reference")
    return kernel
