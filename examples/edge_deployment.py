"""Edge deployment tour: extraction, the integer engine, and parity.

Not one of the paper's figures, but the substrate the case study rests
on.  Shows the full deployment lifecycle:

1. train -> QAT -> freeze -> compile to the integer engine;
2. verify QAT-vs-edge parity (the TFLite-vs-TF agreement the paper's
   methodology assumes);
3. play attacker: extract integer weights + scales from the artifact and
   rebuild a differentiable model that matches the deployed behaviour
   (the §4.3 extraction step);
4. compare artifact sizes (why operators quantize at all).

Run:  python examples/edge_deployment.py
"""

import numpy as np

from repro.data import generate_synth_digits
from repro.distillation import agreement
from repro.edge import compile_edge
from repro.models import build_model
from repro.nn import Tensor, set_default_dtype
from repro.quantization import (export_quantized_layers,
                                extract_deployed_model, model_size_bytes,
                                prepare_qat, qat_finetune)
from repro.training import evaluate_accuracy, fit, predict_labels


def main() -> None:
    set_default_dtype("float32")

    print("== 1. train + QAT + compile ==")
    train = generate_synth_digits(100, image_size=16, split_seed=1)
    val = generate_synth_digits(30, image_size=16, split_seed=2)
    model = build_model("lenet", num_classes=10, image_size=16, seed=0)
    fit(model, train.x, train.y, epochs=6, batch_size=32, lr=0.03, seed=1,
        x_val=val.x, y_val=val.y, log_fn=lambda s: print("  " + s))
    qat = prepare_qat(model, weight_bits=8, act_bits=8, per_channel=True)
    qat_finetune(qat, train.x, train.y, epochs=1, batch_size=32, lr=0.002)
    qat.freeze()
    edge = compile_edge(qat, 10)

    print("== 2. QAT-vs-edge parity ==")
    # predict() routes through the compiled per-shape edge programs
    # (zero-point folding, fused/LUT activations); they must match the
    # reference integer op loop bit for bit before anything is scored
    np.testing.assert_array_equal(edge.predict(val.x),
                                  edge.predict(val.x, compiled=False))
    print("  compiled edge programs bit-match the eager integer op loop")
    pe = edge.predict(val.x).argmax(1)
    pq = predict_labels(qat, val.x)
    print(f"  float acc {evaluate_accuracy(model, val.x, val.y):.1%} | "
          f"QAT acc {evaluate_accuracy(qat, val.x, val.y):.1%} | "
          f"edge acc {(pe == val.y).mean():.1%}")
    print(f"  QAT-vs-edge prediction agreement: {(pe == pq).mean():.1%} "
          "(integer path matches the fake-quant path)")

    print("== 3. attacker extraction (§4.3) ==")
    layers = export_quantized_layers(qat)
    for rec in layers:
        s = np.atleast_1d(rec.weight_qparams.scale)
        print(f"  {rec.name:10s} {rec.kind:7s} int8 weights "
              f"{str(rec.q_weight.shape):18s} scales: {len(s)} channel(s)")
    template = build_model("lenet", num_classes=10, image_size=16, seed=99)
    recon = extract_deployed_model(qat, template)
    print(f"  reconstructed-vs-deployed agreement: "
          f"{agreement(recon, qat, val.x):.1%} (no finetuning)")
    x = Tensor(val.x[:2], requires_grad=True)
    recon(x).sum().backward()
    print(f"  reconstruction is differentiable: input-grad norm "
          f"{np.abs(x.grad).sum():.3f}")

    print("== 4. artifact sizes ==")
    print(f"  fp32 parameters : {model_size_bytes(model):,} B")
    print(f"  int8 estimate   : {model_size_bytes(model, quantized_bits=8):,} B")
    print(f"  edge artifact   : {edge.footprint_bytes():,} B "
          "(int8 weights + int32 biases)")


if __name__ == "__main__":
    main()
