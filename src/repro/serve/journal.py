"""Write-ahead journal of accepted jobs for crash-recoverable serving.

The networked front end (:mod:`repro.serve.net`) promises idempotent
retries: a client that re-sends a request key must get the same bytes
back, even across a server crash.  The in-memory dedup window covers
the healthy case; this journal covers the crash.  The server appends an
``accept`` record (the *full* request — header and raw arrays) before
the job touches the session, and a ``complete`` record (the full
response payload) when the job's future settles.  A killed-and-restarted
server then :func:`scan`\\ s the journal:

- ``complete`` records reload the dedup window verbatim, so a retried
  key is answered with the *recorded* bytes — re-reporting is
  bit-identical by construction, not by recomputation;
- ``accept`` records without a matching ``complete`` are the jobs the
  crash interrupted; the server re-materializes and re-submits them,
  and determinism of the serving stack (same models, same inputs, same
  row-reproducible kernels) makes the recomputed results bit-identical
  to what the dead server would have sent.

Records are JSON lines — arrays ride as base64 of their raw bytes plus
``dtype``/``shape`` — and a torn final line (the signature of dying
mid-write) is ignored by :func:`scan`, standard WAL tail semantics.
Appends are flushed per record; pass ``sync=True`` to also ``fsync``
(real durability at real cost — tests exercising in-process crashes
don't need it).

Doctest — arrays round-trip exactly through the record codec::

    >>> import numpy as np
    >>> arrs = {"x": np.arange(6, dtype=np.float32).reshape(2, 3)}
    >>> back = unpack_arrays(pack_arrays(arrs))
    >>> np.array_equal(back["x"], arrs["x"]) and back["x"].dtype.str == '<f4'
    True
"""

from __future__ import annotations

import base64
import json
import os
from collections import OrderedDict
from typing import Any, Dict, List, Tuple

import numpy as np


def pack_arrays(arrays: Dict[str, np.ndarray]) -> List[Dict[str, Any]]:
    """JSON-serializable encoding of named arrays (raw bytes as base64)."""
    out = []
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        out.append({"name": name, "dtype": arr.dtype.str,
                    "shape": list(arr.shape),
                    "data": base64.b64encode(arr.tobytes()).decode("ascii")})
    return out


def unpack_arrays(packed: List[Dict[str, Any]]) -> Dict[str, np.ndarray]:
    out: Dict[str, np.ndarray] = {}
    for rec in packed:
        buf = base64.b64decode(rec["data"])
        out[rec["name"]] = np.frombuffer(buf, dtype=np.dtype(rec["dtype"])
                                         ).reshape(rec["shape"]).copy()
    return out


class Journal:
    """Append-only JSONL write-ahead log of accepted jobs and their
    completed responses, keyed by the client idempotency key."""

    def __init__(self, path: str, sync: bool = False):
        self.path = str(path)
        self.sync = bool(sync)
        self._fh = open(self.path, "a", encoding="utf-8")
        self.accepts = 0
        self.completes = 0

    def _append(self, record: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())

    def accept(self, key: str, header: Dict[str, Any],
               arrays: Dict[str, np.ndarray]) -> None:
        """Record the full request *before* it is submitted — the WAL
        ordering that makes an accepted job survive the crash."""
        self._append({"type": "accept", "key": key, "header": header,
                      "arrays": pack_arrays(arrays)})
        self.accepts += 1

    def complete(self, key: str, outcome: str, header: Dict[str, Any],
                 arrays: Dict[str, np.ndarray]) -> None:
        """Record the full response payload once the job settles."""
        self._append({"type": "complete", "key": key, "outcome": outcome,
                      "header": header, "arrays": pack_arrays(arrays)})
        self.completes += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    # -- recovery --------------------------------------------------------- #
    @staticmethod
    def scan(path: str) -> Tuple["OrderedDict", "OrderedDict"]:
        """``(incomplete, completed)`` in journal order.

        ``incomplete`` maps key -> (request header, request arrays) for
        accepts with no complete record — the jobs a crash interrupted.
        ``completed`` maps key -> (outcome, response header, response
        arrays).  A torn (undecodable) final line is skipped; a torn
        line anywhere *else* is real corruption and raises.
        """
        accepts: "OrderedDict" = OrderedDict()
        completed: "OrderedDict" = OrderedDict()
        if not os.path.exists(path):
            return accepts, completed
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break               # torn tail: the crash mid-write
                raise ValueError(
                    f"corrupt journal record at {path}:{i + 1}")
            if rec["type"] == "accept":
                accepts[rec["key"]] = (rec["header"],
                                       unpack_arrays(rec["arrays"]))
            elif rec["type"] == "complete":
                accepts.pop(rec["key"], None)
                completed[rec["key"]] = (rec["outcome"], rec["header"],
                                         unpack_arrays(rec["arrays"]))
        return accepts, completed

    @staticmethod
    def breakdown(path: str) -> Dict[str, int]:
        """Outcome counts over the journal's ``complete`` records — the
        ground truth the server's live accounting must match."""
        _, completed = Journal.scan(path)
        counts: Dict[str, int] = {}
        for outcome, _, _ in completed.values():
            counts[outcome] = counts.get(outcome, 0) + 1
        return counts

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
