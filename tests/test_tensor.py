"""Autograd engine: forward values, gradients, graph mechanics."""

import numpy as np
import pytest

from repro.nn import Tensor, concat, set_default_dtype, stack, where
from repro.nn.tensor import _unbroadcast

from .conftest import numerical_gradient


class TestForwardValues:
    def test_add_matches_numpy(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        assert np.allclose((Tensor(a) + Tensor(b)).data, a + b)

    def test_scalar_broadcast(self, rng):
        a = rng.normal(size=(3, 4))
        assert np.allclose((Tensor(a) + 2.0).data, a + 2.0)
        assert np.allclose((2.0 * Tensor(a)).data, 2.0 * a)
        assert np.allclose((1.0 - Tensor(a)).data, 1.0 - a)
        assert np.allclose((1.0 / Tensor(np.abs(a) + 1)).data, 1.0 / (np.abs(a) + 1))

    def test_matmul(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_reductions(self, rng):
        a = rng.normal(size=(3, 4, 5))
        t = Tensor(a)
        assert np.allclose(t.sum().data, a.sum())
        assert np.allclose(t.sum(axis=1).data, a.sum(axis=1))
        assert np.allclose(t.mean(axis=(0, 2)).data, a.mean(axis=(0, 2)))
        assert np.allclose(t.max(axis=2).data, a.max(axis=2))
        assert np.allclose(t.var(axis=1).data, a.var(axis=1))

    def test_elementwise_math(self, rng):
        a = rng.uniform(0.1, 2.0, size=(4, 4))
        t = Tensor(a)
        assert np.allclose(t.exp().data, np.exp(a))
        assert np.allclose(t.log().data, np.log(a))
        assert np.allclose(t.sqrt().data, np.sqrt(a))
        assert np.allclose(t.tanh().data, np.tanh(a))
        assert np.allclose(t.sigmoid().data, 1 / (1 + np.exp(-a)))
        assert np.allclose(t.relu().data, np.maximum(a, 0))
        assert np.allclose(t.abs().data, np.abs(a))

    def test_shape_ops(self, rng):
        a = rng.normal(size=(2, 3, 4))
        t = Tensor(a)
        assert t.reshape(6, 4).shape == (6, 4)
        assert t.transpose(2, 0, 1).shape == (4, 2, 3)
        assert t.flatten().shape == (2, 12)
        assert Tensor(rng.normal(size=(3, 4))).T.shape == (4, 3)

    def test_pad2d(self, rng):
        a = rng.normal(size=(1, 2, 3, 3))
        out = Tensor(a).pad2d((1, 2, 0, 1))
        assert out.shape == (1, 2, 6, 4)
        assert np.allclose(out.data[:, :, 1:4, 0:3], a)
        assert out.data[:, :, 0, :].sum() == 0

    def test_getitem_and_gather(self, rng):
        a = rng.normal(size=(4, 5))
        t = Tensor(a)
        assert np.allclose(t[1:3].data, a[1:3])
        idx = np.array([0, 4, 2, 1])
        assert np.allclose(t.gather_rows(idx).data, a[np.arange(4), idx])

    def test_clip(self):
        t = Tensor(np.array([-2.0, 0.5, 3.0]))
        assert np.allclose(t.clip(-1, 1).data, [-1, 0.5, 1])

    def test_concat_stack_where(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        assert np.allclose(concat([Tensor(a), Tensor(b)], axis=0).data,
                           np.concatenate([a, b], axis=0))
        assert np.allclose(stack([Tensor(a), Tensor(b)], axis=1).data,
                           np.stack([a, b], axis=1))
        cond = a > 0
        assert np.allclose(where(cond, Tensor(a), Tensor(b)).data,
                           np.where(cond, a, b))


class TestGradients:
    def check(self, build, *shapes, tol=1e-6, seed=0):
        """Numerically verify gradients of scalar build(*tensors)."""
        rng = np.random.default_rng(seed)
        arrays = [rng.normal(size=s) for s in shapes]
        tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
        out = build(*tensors)
        out.backward()
        for t in tensors:
            f = lambda t=t: float(build(*[Tensor(u.data) for u in tensors]).data)
            ng = numerical_gradient(f, t.data)
            assert np.abs(ng - t.grad).max() < tol, "gradient mismatch"

    def test_add_mul_chain(self):
        self.check(lambda a, b: ((a + b) * a - b / (b * b + 2)).sum(),
                   (3, 4), (3, 4))

    def test_broadcast_grads(self):
        self.check(lambda a, b: (a * b).sum(), (3, 4), (4,))
        self.check(lambda a, b: (a + b).sum(), (2, 3, 4), (1, 4))

    def test_matmul_grads(self):
        self.check(lambda a, b: (a @ b).sum(), (3, 4), (4, 5))

    def test_matvec_grads(self):
        self.check(lambda a, b: (a @ b).sum(), (3, 4), (4,))

    def test_reduction_grads(self):
        self.check(lambda a: a.sum(axis=1).max(axis=0).sum(), (3, 4), tol=1e-5)
        self.check(lambda a: a.mean(axis=(0, 1)).sum(), (3, 4))
        self.check(lambda a: a.var(axis=0).sum(), (5, 3), tol=1e-5)

    def test_unary_grads(self):
        self.check(lambda a: (a.tanh() * a.sigmoid() + (a * a + 1).log()
                              + (a * a + 0.1).sqrt()).sum(), (4, 3), tol=1e-5)

    def test_pow_grads(self):
        self.check(lambda a: ((a * a + 1.0) ** 1.5).sum(), (3, 3), tol=1e-5)

    def test_maximum_minimum_grads(self):
        self.check(lambda a, b: (a.maximum(b) + a.minimum(b * 0.5)).sum(),
                   (4, 4), (4, 4), tol=1e-5)

    def test_shape_op_grads(self):
        self.check(lambda a: a.reshape(6, 2).transpose(1, 0).sum(axis=1).max(),
                   (3, 4), tol=1e-5)

    def test_getitem_grad(self):
        self.check(lambda a: (a[1:3] * a[1:3]).sum(), (5, 4))

    def test_gather_rows_grad(self):
        idx = np.array([2, 0, 1])
        self.check(lambda a: (a.gather_rows(idx) ** 2).sum(), (3, 4))

    def test_concat_grad(self):
        self.check(lambda a, b: (concat([a, b], axis=1) ** 2).sum(),
                   (2, 3), (2, 2))

    def test_where_grad(self):
        cond = np.array([[True, False], [False, True]])
        self.check(lambda a, b: (where(cond, a, b) ** 2).sum(), (2, 2), (2, 2))

    def test_pad2d_grad(self):
        self.check(lambda a: (a.pad2d((1, 1, 1, 1)) ** 2).sum(), (1, 1, 3, 3))


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = a * a + a   # dy/da = 2a + 1 = 5
        out.backward()
        assert np.allclose(a.grad, [5.0])

    def test_diamond_graph(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * 2
        c = a * 3
        (b + c).backward()     # d/da (2a + 3a) = 5
        assert np.allclose(a.grad, [5.0])

    def test_backward_requires_scalar(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_with_explicit_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        out = a * 3
        out.backward(np.full((2, 2), 2.0))
        assert np.allclose(a.grad, np.full((2, 2), 6.0))

    def test_backward_shape_check(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward(np.ones(3))

    def test_no_grad_tensors_skip_graph(self):
        a = Tensor(np.ones(3))
        b = a * 2 + 1
        assert not b.requires_grad
        assert b._parents == ()

    def test_detach_cuts_tape(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = (a * 2).detach()
        c = b * 3
        assert not c.requires_grad

    def test_deep_graph_no_recursion_error(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = a
        for _ in range(5000):
            out = out + 0.001
        out.backward()
        assert np.allclose(a.grad, [1.0])

    def test_backward_on_non_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()

    def test_zero_grad(self):
        a = Tensor(np.ones(2), requires_grad=True)
        (a * a).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None


class TestDtypePolicy:
    def test_default_is_float64(self):
        assert Tensor(np.ones(2, dtype=np.int32)).dtype == np.float64

    def test_float32_policy_casts_everything(self):
        set_default_dtype("float32")
        assert Tensor(np.ones(2, dtype=np.float64)).dtype == np.float32
        assert (Tensor(np.ones(2)) * 2.0).dtype == np.float32

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            set_default_dtype("int8")


class TestUnbroadcast:
    def test_no_op_when_shapes_match(self, rng):
        g = rng.normal(size=(3, 4))
        assert _unbroadcast(g, (3, 4)) is g

    def test_sums_added_leading_dims(self, rng):
        g = rng.normal(size=(5, 3, 4))
        assert np.allclose(_unbroadcast(g, (3, 4)), g.sum(axis=0))

    def test_sums_size_one_dims(self, rng):
        g = rng.normal(size=(3, 4))
        assert np.allclose(_unbroadcast(g, (1, 4)), g.sum(axis=0, keepdims=True))
        assert np.allclose(_unbroadcast(g, (3, 1)), g.sum(axis=1, keepdims=True))
