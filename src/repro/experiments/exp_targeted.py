"""§6 targeted attack: steer the adapted face model toward chosen people.

Paper: "We evaluated the attack on 10 people and were able to target the
misclassification on average to a set of 8.3 people (out of the 150)" —
i.e. for a probe set of target identities, the attack lands the adapted
model's prediction on the intended target for most of them while the
original model stays correct.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..attacks import TargetedDIVA
from ..data import select_attack_set
from ..metrics import targeted_reach
from ..training import predict_labels
from .config import ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results


def run(cfg: Optional[ExperimentConfig] = None,
        pipeline: Optional[Pipeline] = None, n_targets: int = 10,
        verbose: bool = True) -> Dict:
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    orig = pipe.face_original()
    qat = pipe.face_quantized()
    _, val = pipe.face_datasets()
    atk_set = select_attack_set(
        val, [orig, qat], cfg.face_attack_per_identity,
        rng=np.random.default_rng(cfg.seed + 901))

    rng = np.random.default_rng(cfg.seed + 902)
    n_targets = min(n_targets, cfg.face_identities)
    targets = rng.choice(cfg.face_identities, size=n_targets, replace=False)

    reached = []
    per_target: Dict[int, Dict] = {}
    for tgt in targets:
        # exclude images whose true identity is the target
        keep = atk_set.y != tgt
        x, y = atk_set.x[keep], atk_set.y[keep]
        attack = TargetedDIVA(orig, qat, target_class=int(tgt), c=cfg.c,
                              eps=cfg.eps, alpha=cfg.alpha, steps=cfg.steps)
        x_adv = attack.generate(x, y)
        pred_a = predict_labels(qat, x_adv)
        pred_o = predict_labels(orig, x_adv)
        hits = (pred_a == tgt) & (pred_o == y)
        hit_rate = float(hits.mean())
        ok = hit_rate > 0
        reached.append(ok)
        per_target[int(tgt)] = {"hit_rate": hit_rate, "reachable": ok}

    results: Dict = {
        "targets_probed": int(n_targets),
        "targets_reachable": int(sum(reached)),
        "mean_hit_rate": float(np.mean([v["hit_rate"]
                                        for v in per_target.values()])),
        "per_target": per_target,
    }
    rows = [[t, f"{v['hit_rate']:.1%}", "yes" if v["reachable"] else "no"]
            for t, v in per_target.items()]
    table = format_table(["Target identity", "Hit rate", "Reachable"],
                         rows, title="§6 — targeted DIVA on the face model")
    results["table"] = table
    if verbose:
        print(table)
        print(f"Reachable targets: {results['targets_reachable']}"
              f"/{n_targets} (paper: 8.3/10 on average)")
    save_results("targeted", results)
    return results
