"""Public serialization format for adapted (QAT) models.

The artifact-cache uses pickle internally, but a deployable model needs
a documented, stable format — the equivalent of a ``.tflite`` flatbuffer.
This module defines one on ``numpy.savez_compressed``:

- every parameter and buffer of the wrapped model, under its state-dict
  key (same contract as :mod:`repro.nn.serialization`);
- for every fake-quant module, its observer ranges and frozen grid under
  reserved ``__fq__`` keys, so a loaded model quantizes identically
  without re-calibration.

Round trip: ``save_qat(model, path)`` then ``load_qat(builder, path)``
where ``builder()`` constructs an architecturally-identical float model.
"""

from __future__ import annotations

import os
from typing import Callable, Dict

import numpy as np

from ..nn.module import Module
from .fake_quant import FakeQuantize
from .qat import QATModel, prepare_qat

_FQ_PREFIX = "__fq__"
_META_PREFIX = "__meta__"


def save_qat(qat_model: QATModel, path: str) -> None:
    """Serialize an adapted model (weights + quantization state)."""
    payload: Dict[str, np.ndarray] = {}
    for key, value in qat_model.model.state_dict().items():
        payload[f"model.{key}"] = value
    for name, fq in qat_model.fake_quant_modules():
        obs = fq.observer
        if obs.initialized:
            payload[f"{_FQ_PREFIX}{name}.min"] = np.atleast_1d(
                np.asarray(obs.min_val, dtype=np.float64))
            payload[f"{_FQ_PREFIX}{name}.max"] = np.atleast_1d(
                np.asarray(obs.max_val, dtype=np.float64))
        payload[f"{_FQ_PREFIX}{name}.frozen"] = np.array(
            [1 if fq.frozen else 0])
    payload[f"{_META_PREFIX}weight_bits"] = np.array([qat_model.weight_bits])
    payload[f"{_META_PREFIX}act_bits"] = np.array([qat_model.act_bits])
    payload[f"{_META_PREFIX}has_input_fq"] = np.array(
        [1 if qat_model.input_fake_quant is not None else 0])
    per_channel = any(
        getattr(fq.observer, "axis", None) is not None
        for _, fq in qat_model.fake_quant_modules())
    payload[f"{_META_PREFIX}per_channel"] = np.array([1 if per_channel else 0])
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez_compressed(path, **payload)


def load_qat(float_builder: Callable[[], Module], path: str) -> QATModel:
    """Rebuild an adapted model from :func:`save_qat` output.

    ``float_builder`` must return a float model of the same architecture
    (weight values are irrelevant; they are overwritten).
    """
    with np.load(path) as npz:
        payload = {k: npz[k] for k in npz.files}
    weight_bits = int(payload.pop(f"{_META_PREFIX}weight_bits")[0])
    act_bits = int(payload.pop(f"{_META_PREFIX}act_bits")[0])
    has_input_fq = bool(payload.pop(f"{_META_PREFIX}has_input_fq")[0])
    per_channel = bool(payload.pop(f"{_META_PREFIX}per_channel")[0])

    qat = prepare_qat(float_builder(), weight_bits=weight_bits,
                      act_bits=act_bits, quantize_input=has_input_fq,
                      per_channel=per_channel)

    model_state = {k[len("model."):]: v for k, v in payload.items()
                   if k.startswith("model.")}
    qat.model.load_state_dict(model_state)

    fq_by_name = dict(qat.fake_quant_modules())
    frozen_names = []
    for key, value in payload.items():
        if not key.startswith(_FQ_PREFIX):
            continue
        name, field = key[len(_FQ_PREFIX):].rsplit(".", 1)
        if name not in fq_by_name:
            raise KeyError(f"serialized fake-quant {name!r} not found in "
                           "the rebuilt model; architecture mismatch?")
        fq = fq_by_name[name]
        if field == "min":
            fq.observer.min_val = value if value.size > 1 else np.float64(value[0])
        elif field == "max":
            fq.observer.max_val = value if value.size > 1 else np.float64(value[0])
        elif field == "frozen" and int(value[0]):
            frozen_names.append(name)
    for name in frozen_names:  # freeze only after ranges are restored
        fq_by_name[name].freeze()
    qat.eval()
    return qat
