"""Pruning pipelines: one-shot, gradual, and prune-then-quantize.

Reproduces the paper's two pruned-model families (§5.1): (1) Keras
weight pruning of the original model, finetuned back to accuracy, and
(2) the pruned model additionally quantized with the QAT pipeline while
preserving sparsity (masks stay installed through QAT, so pruned weights
remain exactly zero on the integer grid too).  Paper: "After pruning, the
model sizes were compressed to one third of their original size" —
i.e. ~2/3 sparsity, our default.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..nn import functional as F
from ..nn.module import Module
from ..nn.optim import Optimizer, SGD
from ..nn.tensor import Tensor
from ..quantization.qat import QATModel, prepare_qat, qat_finetune
from .magnitude import apply_masks, global_masks, layerwise_masks
from .schedule import PolynomialDecaySchedule


def prune_model(model: Module, sparsity: float = 0.67,
                scope: str = "layer") -> Module:
    """Clone ``model`` and install one-shot magnitude masks.

    ``scope`` is "layer" (per-layer threshold, the tfmot behaviour) or
    "global" (single threshold across layers).
    """
    clone = model.copy_structure()
    if scope == "layer":
        masks = layerwise_masks(clone, sparsity)
    elif scope == "global":
        masks = global_masks(clone, sparsity)
    else:
        raise ValueError(f"unknown scope {scope!r}")
    apply_masks(clone, masks)
    return clone


def prune_finetune(model: Module, x_train: np.ndarray, y_train: np.ndarray,
                   sparsity: float = 0.67, epochs: int = 3,
                   batch_size: int = 64, lr: float = 0.005,
                   momentum: float = 0.9, scope: str = "layer",
                   schedule: Optional[PolynomialDecaySchedule] = None,
                   optimizer: Optional[Optimizer] = None, seed: int = 0,
                   log_fn: Optional[Callable[[str], None]] = None) -> Module:
    """Prune-and-finetune: masks are (re)computed along the schedule while
    training recovers accuracy; surviving weights keep adapting.

    Without ``schedule`` the target sparsity is applied one-shot at step 0
    and finetuning only recovers accuracy under fixed masks.
    """
    clone = model.copy_structure()
    rng = np.random.default_rng(seed)
    opt = optimizer if optimizer is not None else SGD(
        clone.parameters(), lr=lr, momentum=momentum)
    n = len(x_train)
    steps_per_epoch = (n + batch_size - 1) // batch_size
    if schedule is None:
        schedule = PolynomialDecaySchedule(
            initial_sparsity=sparsity, final_sparsity=sparsity,
            begin_step=0, end_step=1)
    step = 0
    current_sparsity = -1.0
    for epoch in range(epochs):
        order = rng.permutation(n)
        total = 0.0
        clone.train()
        for start in range(0, n, batch_size):
            target = schedule.sparsity_at(step)
            if target != current_sparsity:
                masks = (layerwise_masks(clone, target) if scope == "layer"
                         else global_masks(clone, target))
                apply_masks(clone, masks)
                current_sparsity = target
            idx = order[start:start + batch_size]
            logits = clone(Tensor(x_train[idx]))
            loss = F.cross_entropy(logits, y_train[idx])
            opt.zero_grad()
            loss.backward()
            opt.step()
            total += float(loss.data) * len(idx)
            step += 1
        if log_fn:
            log_fn(f"prune epoch {epoch}: loss={total / n:.4f} "
                   f"sparsity={current_sparsity:.2f}")
        clone.eval()
    return clone


def prune_then_quantize(pruned: Module, x_train: np.ndarray,
                        y_train: np.ndarray, weight_bits: int = 8,
                        act_bits: int = 8, per_channel: bool = False,
                        qat_epochs: int = 1, qat_lr: float = 0.001,
                        seed: int = 0,
                        log_fn: Optional[Callable[[str], None]] = None
                        ) -> QATModel:
    """Quantize an already-pruned model, preserving sparsity through QAT.

    ``prepare_qat`` deep-copies the model *including* its masks, so the
    fake-quantized effective weight is (w * mask) snapped to the grid —
    zeros stay exactly zero (0 is always representable by construction).
    """
    q = prepare_qat(pruned, weight_bits=weight_bits, act_bits=act_bits,
                    per_channel=per_channel)
    qat_finetune(q, x_train, y_train, epochs=qat_epochs, lr=qat_lr,
                 rng=np.random.default_rng(seed), log_fn=log_fn)
    q.freeze()
    return q
