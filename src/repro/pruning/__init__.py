"""``repro.pruning`` — magnitude pruning adaptation (§5.6)."""

from .magnitude import (apply_masks, global_masks, layerwise_masks,
                        magnitude_mask, model_sparsity, prunable_layers)
from .prune import prune_finetune, prune_model, prune_then_quantize
from .schedule import ConstantSchedule, PolynomialDecaySchedule

__all__ = [
    "magnitude_mask", "layerwise_masks", "global_masks", "apply_masks",
    "model_sparsity", "prunable_layers",
    "prune_model", "prune_finetune", "prune_then_quantize",
    "PolynomialDecaySchedule", "ConstantSchedule",
]
