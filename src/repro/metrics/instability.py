"""Instability between two model versions (Cidon et al. 2021; Table 1).

Instability is the fraction of inputs on which two models disagree —
the quantity the paper shows is several times larger than what the
top-line accuracy gap suggests, and the raw material DIVA exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.module import Module
from ..training.evaluate import predict_labels


@dataclass
class InstabilityReport:
    """Table 1 row for one architecture."""

    original_accuracy: float
    adapted_accuracy: float
    orig_correct_adapted_incorrect: int
    orig_incorrect_adapted_correct: int
    disagree_both_incorrect: int
    total: int

    @property
    def instability(self) -> float:
        """Total fraction of samples where the two models disagree."""
        dis = (self.orig_correct_adapted_incorrect
               + self.orig_incorrect_adapted_correct
               + self.disagree_both_incorrect)
        return dis / self.total

    @property
    def deviation_instability(self) -> float:
        """Paper's Table-1 instability: deviations where exactly one
        model is correct, as a fraction of all samples."""
        dev = (self.orig_correct_adapted_incorrect
               + self.orig_incorrect_adapted_correct)
        return dev / self.total


def instability_report(original: Module, adapted: Module, x: np.ndarray,
                       y: np.ndarray, batch_size: int = 128) -> InstabilityReport:
    """Compute the Table 1 comparison on a labeled evaluation set."""
    y = np.asarray(y)
    po = predict_labels(original, x, batch_size)
    pa = predict_labels(adapted, x, batch_size)
    o_ok = po == y
    a_ok = pa == y
    return InstabilityReport(
        original_accuracy=float(o_ok.mean()),
        adapted_accuracy=float(a_ok.mean()),
        orig_correct_adapted_incorrect=int((o_ok & ~a_ok).sum()),
        orig_incorrect_adapted_correct=int((~o_ok & a_ok).sum()),
        disagree_both_incorrect=int((~o_ok & ~a_ok & (po != pa)).sum()),
        total=len(y),
    )


def prediction_agreement(model_a: Module, model_b: Module, x: np.ndarray,
                         batch_size: int = 128) -> float:
    """Label-agreement rate on unlabeled inputs."""
    pa = predict_labels(model_a, x, batch_size)
    pb = predict_labels(model_b, x, batch_size)
    return float((pa == pb).mean())
