"""Substrate micro-benchmarks (not a paper table; engineering numbers).

Times the hot kernels everything else is built on — conv forward/backward,
fake-quant, the integer edge engine vs float inference, attack step cost
(the paper's §5.2 'Attack speed' reports PGD and DIVA run at the same
per-step speed; DIVA's step is two model passes, so expect ~2x here).
"""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


@pytest.fixture(scope="module")
def conv_inputs():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 8, 16, 16)).astype(np.float32)
    w = rng.normal(size=(16, 8, 3, 3)).astype(np.float32)
    return x, w


def test_conv2d_forward(benchmark, conv_inputs):
    x, w = conv_inputs
    xt, wt = Tensor(x), Tensor(w)
    benchmark(lambda: F.conv2d(xt, wt, None, padding=1))


def test_conv2d_forward_backward(benchmark, conv_inputs):
    x, w = conv_inputs

    def step():
        xt = Tensor(x, requires_grad=True)
        wt = Tensor(w, requires_grad=True)
        F.conv2d(xt, wt, None, padding=1).sum().backward()
    benchmark(step)


def test_fake_quant_overhead(benchmark):
    from repro.quantization import FakeQuantize
    rng = np.random.default_rng(0)
    fq = FakeQuantize.for_activations()
    x = Tensor(rng.normal(size=(64, 8, 16, 16)).astype(np.float32))
    fq.train()
    fq(x)
    fq.freeze()
    benchmark(lambda: fq(x))


def test_attack_step_cost_pgd_vs_diva(benchmark, cfg, pipeline):
    """One DIVA step is one fwd+bwd through *two* models; the ratio to
    PGD's single-model step should be ~2x (paper reports parity because
    their GPUs batch both models together)."""
    from repro.attacks import DIVA, PGD
    orig = pipeline.original("resnet")
    quant = pipeline.quantized("resnet")
    atk = pipeline.attack_set([orig, quant], "bench-kernel")
    x, y = atk.x[:32], atk.y[:32]
    pgd = PGD(quant, steps=1)
    diva = DIVA(orig, quant, steps=1)
    benchmark(lambda: (pgd.gradient(x, y), diva.gradient(x, y)))


def test_edge_engine_inference(benchmark, cfg, pipeline):
    """Integer-path inference cost on the deployed face model."""
    edge = pipeline.face_edge()
    _, val = pipeline.face_datasets()
    x = val.x[:64]
    benchmark(lambda: edge.predict(x))


def test_float_inference_reference(benchmark, cfg, pipeline):
    """Float-path inference on the same face model, for comparison."""
    orig = pipeline.face_original()
    _, val = pipeline.face_datasets()
    x = val.x[:64]
    orig.eval()
    benchmark(lambda: orig(Tensor(x)))
