"""Robust training (§5.5): the minimax defense hardens models."""

import numpy as np
import pytest

from repro.defense import adversarial_fit, pgd_perturb, robust_accuracy
from repro.models import build_model
from repro.training import evaluate_accuracy, fit


EPS = 32.0 / 255.0


class TestPGDPerturb:
    def test_budget_respected(self, tiny_model, tiny_dataset):
        _, val = tiny_dataset
        adv = pgd_perturb(tiny_model, val.x[:8], val.y[:8], EPS, 4 / 255, 5)
        assert np.abs(adv - val.x[:8]).max() <= EPS + 1e-6
        assert adv.min() >= 0 and adv.max() <= 1

    def test_increases_loss(self, tiny_model, tiny_dataset):
        from repro.training import evaluate_loss
        _, val = tiny_dataset
        adv = pgd_perturb(tiny_model, val.x[:16], val.y[:16], EPS, 4 / 255, 5)
        clean = evaluate_loss(tiny_model, val.x[:16], val.y[:16])
        attacked = evaluate_loss(tiny_model, adv, val.y[:16])
        assert attacked > clean


class TestAdversarialFit:
    @pytest.fixture(scope="class")
    def robust_vs_standard(self, request):
        train, val = request.getfixturevalue("tiny_dataset")
        std = build_model("resnet", num_classes=6, width=4, seed=10)
        fit(std, train.x, train.y, epochs=4, batch_size=32, lr=0.03, seed=2)
        rob = build_model("resnet", num_classes=6, width=4, seed=10)
        fit(rob, train.x, train.y, epochs=2, batch_size=32, lr=0.03, seed=2)
        adversarial_fit(rob, train.x, train.y, epochs=2, batch_size=32,
                        eps=EPS, attack_steps=3, seed=3)
        return std, rob, val

    def test_robust_model_more_robust(self, robust_vs_standard):
        std, rob, val = robust_vs_standard
        x, y = val.x[:30], val.y[:30]
        acc_std = robust_accuracy(std, x, y, eps=EPS, alpha=4 / 255, steps=8)
        acc_rob = robust_accuracy(rob, x, y, eps=EPS, alpha=4 / 255, steps=8)
        assert acc_rob >= acc_std

    def test_robust_model_still_classifies(self, robust_vs_standard):
        _, rob, val = robust_vs_standard
        assert evaluate_accuracy(rob, val.x, val.y) > 1.0 / 6 + 0.1

    def test_robust_accuracy_below_clean(self, robust_vs_standard):
        _, rob, val = robust_vs_standard
        clean = evaluate_accuracy(rob, val.x[:30], val.y[:30])
        robust = robust_accuracy(rob, val.x[:30], val.y[:30], eps=EPS,
                                 alpha=4 / 255, steps=8)
        assert robust <= clean + 1e-9
