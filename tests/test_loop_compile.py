"""Whole-loop attack compilation: recorded loop vs step-at-a-time engine.

The contract under test (``repro.attacks.loop``): the recorded loop —
masked step kernel, direct program stepping, continuation-mask
early-exit — is **bit-identical** to the step-at-a-time engine
(``run_scheduled_steps``) for every routed attack, every sweep tile,
every batch composition, and every serve path; anything the loop cannot
express falls back to the engine loudly (a pinned-None plan), never
silently wrong.
"""

import numpy as np
import pytest

from repro.attacks import (CWLinf, DIVA, MomentumPGD, PGD, TargetedDIVA,
                           run_scheduled)
from repro.models import build_model
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.quantization import calibrate, prepare_qat
from repro.serve import (DeadlineToken, FaultInjector, FaultSpec,
                         ManualClock, ServeSession, inject)
from repro.training import predict_labels

FAULT_SEED = 0


@pytest.fixture(scope="module")
def pair():
    """Untrained resnet + frozen 8-bit adaptation with self-labels."""
    rng = np.random.default_rng(0)
    x = rng.random((16, 3, 12, 12), dtype=np.float32)
    orig = build_model("resnet", num_classes=6, width=4, seed=0)
    quant = prepare_qat(orig, weight_bits=8)
    calibrate(quant, x)
    quant.freeze()
    quant.eval()
    y = predict_labels(orig, x, batch_size=len(x))
    return orig, quant, x, y


def loop_entries(attack):
    """(key, plan) pairs of whole-loop entries in the attack's cache."""
    return [(k, e.plan) for k, e in attack.plan_cache.items()
            if isinstance(k, tuple) and k and k[0] == "attack-loop"]


def loop_ran(attack):
    ent = loop_entries(attack)
    return bool(ent) and ent[0][1] is not None and ent[0][1].runs > 0


class _SpyModel(Module):
    """Counts forward calls through a wrapped model."""

    def __init__(self, inner):
        super().__init__()
        self.inner = inner
        self.calls = 0

    def forward(self, x):
        self.calls += 1
        return self.inner(x)


class _Untraceable(Module):
    """Eager-differentiable but refuses tracing: ``abs`` is a tape op
    with no compiled lowering, so ``compile_model`` returns None."""

    def __init__(self, inner):
        super().__init__()
        self.inner = inner

    def forward(self, x):
        return self.inner(x).abs()


class _NeverSucceedsPGD(PGD):
    def success_from_logits(self, aux, y):
        return None if aux is None else np.zeros(len(y), dtype=bool)

    def is_success(self, x_adv, y):
        return np.zeros(len(x_adv), dtype=bool)


class _NeverSucceedsMomentumPGD(MomentumPGD):
    def success_from_logits(self, aux, y):
        return None if aux is None else np.zeros(len(y), dtype=bool)

    def is_success(self, x_adv, y):
        return np.zeros(len(x_adv), dtype=bool)


class _FullBatchPGD(PGD):
    """PGD forced onto the legacy per-batch keep-best loop."""

    shrink_done = False


class TestLoopParity:
    """Looped vs step-at-a-time: bit-identical outputs, loop engaged."""

    @pytest.mark.parametrize("eps,alpha", [(0.03, 0.01), (0.1, 0.05)])
    @pytest.mark.parametrize("keep_best", [True, False])
    def test_pgd(self, pair, eps, alpha, keep_best):
        orig, quant, x, y = pair
        a = PGD(quant, eps=eps, alpha=alpha, steps=7, keep_best=keep_best)
        got = a.generate(x, y)
        b = PGD(quant, eps=eps, alpha=alpha, steps=7, keep_best=keep_best)
        b.use_loop = False
        ref = b.generate(x, y)
        assert np.array_equal(got, ref)
        assert loop_ran(a) and not loop_entries(b)

    @pytest.mark.parametrize("c", [0.5, 2.0])
    def test_diva(self, pair, c):
        orig, quant, x, y = pair
        a = DIVA(orig, quant, c=c, steps=7)
        got = a.generate(x, y)
        b = DIVA(orig, quant, c=c, steps=7)
        b.use_loop = False
        assert np.array_equal(got, b.generate(x, y))
        assert loop_ran(a)

    def test_targeted_diva(self, pair):
        orig, quant, x, y = pair
        a = TargetedDIVA(orig, quant, target_class=2, steps=6)
        got = a.generate(x, y)
        b = TargetedDIVA(orig, quant, target_class=2, steps=6)
        b.use_loop = False
        assert np.array_equal(got, b.generate(x, y))
        assert loop_ran(a)

    @pytest.mark.parametrize("kappa", [0.0, 1.0])
    def test_cw(self, pair, kappa):
        orig, quant, x, y = pair
        a = CWLinf(quant, steps=7, kappa=kappa)
        got = a.generate(x, y)
        b = CWLinf(quant, steps=7, kappa=kappa)
        b.use_loop = False
        assert np.array_equal(got, b.generate(x, y))
        assert loop_ran(a)

    def test_sweep_tiles(self, pair):
        """generate_sweep: per-row (eps, alpha, c) vectors through the
        recorded loop match the engine tile for tile."""
        orig, quant, x, y = pair
        variants = [{"c": 0.5}, {"c": 1.0, "eps": 0.05},
                    {"c": 2.0, "alpha": 0.02}]
        a = DIVA(orig, quant, steps=6)
        got = a.generate_sweep(x[:8], y[:8], variants)
        b = DIVA(orig, quant, steps=6)
        b.use_loop = False
        ref = b.generate_sweep(x[:8], y[:8], variants)
        assert len(got) == len(ref) == len(variants)
        for g, r in zip(got, ref):
            assert np.array_equal(g, r)
        assert loop_ran(a)

    def test_small_capacity_refill(self, pair):
        """Slot refill + retirement compaction with capacity < batch."""
        orig, quant, x, y = pair
        a = PGD(quant, eps=0.1, alpha=0.02, steps=9)
        got = a.generate(x, y, batch_size=4)
        b = PGD(quant, eps=0.1, alpha=0.02, steps=9)
        b.use_loop = False
        assert np.array_equal(got, b.generate(x, y, batch_size=4))
        assert loop_ran(a)
        # the masking path was actually exercised: some rows succeeded
        assert a.is_success(got, y).any()


class TestEarlyExitMasking:
    def test_successful_rows_hold_their_first_success(self, pair):
        """A keep-best row retires at its first success: stepping it
        further (keep_best=False) changes bytes, proving the mask (not
        luck) held the iterate."""
        orig, quant, x, y = pair
        a = PGD(quant, eps=0.1, alpha=0.02, steps=10)
        got = a.generate(x, y)
        assert loop_ran(a)
        c = PGD(quant, eps=0.1, alpha=0.02, steps=10, keep_best=False)
        free = c.generate(x, y)
        ok = a.is_success(got, y)
        assert ok.any()
        # every successful row is genuinely adversarial and in-budget
        assert np.abs(got - x).max() <= 0.1 + 1e-6
        # at least one early-retired row differs from the free-running one
        assert any(not np.array_equal(got[i], free[i])
                   for i in np.flatnonzero(ok))

    def test_loop_pays_exactly_steps_gradient_passes(self, pair):
        """Warm loop, never-succeeding rows: program replays == steps —
        no trailing success forward, no hidden extra passes."""
        orig, quant, x, y = pair
        steps = 7
        a = _NeverSucceedsPGD(quant, eps=0.5, alpha=0.01, steps=steps)
        a.generate(x[:8], y[:8])                      # warm the plans
        assert loop_ran(a)
        ex = a._compiled(quant, x[:8])
        before = ex.replays
        a.generate(x[:8], y[:8])
        assert ex.replays - before == steps


class TestFallbackPurity:
    def test_untraceable_model_runs_engine(self, pair):
        """No compiled programs -> no loop spec -> engine, bit-equal."""
        orig, quant, x, y = pair
        model = _Untraceable(quant)
        a = PGD(model, steps=3)
        got = a.generate(x[:6], y[:6])
        b = PGD(model, steps=3)
        b.use_loop = False
        assert np.array_equal(got, b.generate(x[:6], y[:6]))
        assert not loop_entries(a)

    def test_momentum_refuses_loop(self, pair):
        """Velocity is loop-carried state the recorded loop does not
        model: MomentumPGD must never route through it."""
        orig, quant, x, y = pair
        a = MomentumPGD(quant, steps=4)
        b = MomentumPGD(quant, steps=4)
        b.use_loop = False
        assert np.array_equal(a.generate(x[:8], y[:8]),
                              b.generate(x[:8], y[:8]))
        assert not loop_entries(a)

    def test_refused_trace_pins_loud_fallback(self, pair, monkeypatch):
        """A kernel that refuses tracing pins a None plan (the loud
        fallback) and the engine result comes back untouched."""
        import repro.attacks.loop as loop_mod
        from repro.nn.graph import GraphUnsupported

        def refuse(*args, **kwargs):
            raise GraphUnsupported("refused for test")

        monkeypatch.setattr(loop_mod, "compile_step_kernel", refuse)
        orig, quant, x, y = pair
        a = PGD(quant, steps=4)
        got = a.generate(x[:8], y[:8])
        ent = loop_entries(a)
        assert len(ent) == 1 and ent[0][1] is None   # pinned, not absent
        b = PGD(quant, steps=4)
        b.use_loop = False
        assert np.array_equal(got, b.generate(x[:8], y[:8]))

    def test_use_loop_off_leaves_no_trace(self, pair):
        orig, quant, x, y = pair
        a = PGD(quant, steps=3)
        a.use_loop = False
        a.generate(x[:4], y[:4])
        assert not loop_entries(a)

    def test_validation_mismatch_falls_back(self, pair, monkeypatch):
        """A loop that disagrees with the engine on the validation slice
        must pin the fallback, not ship wrong bytes."""
        import repro.attacks.loop as loop_mod
        real = loop_mod._run_loop

        def corrupted(attack, spec, kernel, x, y, adv, *args, **kwargs):
            out = real(attack, spec, kernel, x, y, adv, *args, **kwargs)
            if kwargs.get("steps") is not None:      # validation run only
                adv += np.float32(1e-3)
            return adv

        monkeypatch.setattr(loop_mod, "_run_loop", corrupted)
        orig, quant, x, y = pair
        a = PGD(quant, steps=4)
        got = a.generate(x[:8], y[:8])
        ent = loop_entries(a)
        assert len(ent) == 1 and ent[0][1] is None
        b = PGD(quant, steps=4)
        b.use_loop = False
        assert np.array_equal(got, b.generate(x[:8], y[:8]))


class TestPassCountRegression:
    """Satellite bugfix: generate and run_scheduled share done-mask
    semantics; single-step keep-best runs cost exactly one pass on
    *both* loops (the legacy per-batch keep-best loop historically paid
    a trailing success forward)."""

    def test_legacy_keep_best_loop_passes_exactly_steps(self, pair):
        orig, quant, x, y = pair
        steps = 5
        spy = _SpyModel(quant)
        atk = _NeverSucceedsMomentumPGD(spy, steps=steps, eps=0.1,
                                        alpha=0.01)
        atk.use_compiled = False
        atk.generate(x[:8], y[:8])
        assert spy.calls == steps

    def test_fgsm_as_single_step_pgd_costs_one_pass_both_loops(self, pair):
        orig, quant, x, y = pair
        # float32-exact eps/alpha: the scheduled engine carries them as
        # per-row float32 vectors, the legacy loop as python scalars
        spy_sched = _SpyModel(quant)
        sched = PGD(spy_sched, eps=0.125, alpha=0.125, steps=1)
        sched.use_compiled = False
        got_sched = sched.generate(x[:8], y[:8])
        spy_legacy = _SpyModel(quant)
        legacy = _FullBatchPGD(spy_legacy, eps=0.125, alpha=0.125, steps=1)
        legacy.use_compiled = False
        got_legacy = legacy.generate(x[:8], y[:8])
        # identical done-mask semantics for rows succeeding on step 0:
        # same bytes, and exactly one gradient pass on either loop
        assert np.array_equal(got_sched, got_legacy)
        assert spy_sched.calls == 1
        assert spy_legacy.calls == 1


class TestChunkedDeadlineReplay:
    def test_loop_chunk_bounds_polling(self, pair):
        """loop_chunk=k polls the deadline once per k gradient passes;
        an unexpiring deadline leaves the bytes bit-identical to the
        engine regardless of cadence."""
        orig, quant, x, y = pair
        clock = ManualClock()

        def run(chunk, use_loop):
            atk = PGD(quant, eps=0.05, alpha=0.01, steps=9)
            atk.loop_chunk = chunk
            atk.use_loop = use_loop
            n = 8
            atk.generate(x[:n], y[:n])               # warm (loop needs it)
            tok = DeadlineToken.for_rows([1e9] * n, clock)
            polls = []
            real = tok.poll
            tok.poll = lambda rows: polls.append(len(rows)) or real(rows)
            eps = np.full(n, atk.eps, dtype=x.dtype)
            alpha = np.full(n, atk.alpha, dtype=x.dtype)
            check = np.full(n, True)
            adv = run_scheduled(atk, x[:n], y[:n], atk._init(x[:n]), eps,
                                alpha, check, None, capacity=16,
                                deadline=tok)
            return adv, len(polls), atk

        ref, engine_polls, _ = run(1, use_loop=False)
        got1, polls1, a1 = run(1, use_loop=True)
        got3, polls3, a3 = run(3, use_loop=True)
        assert np.array_equal(ref, got1) and np.array_equal(ref, got3)
        assert loop_ran(a1) and loop_ran(a3)
        assert polls1 == engine_polls                # default: engine cadence
        assert 0 < polls3 < polls1                   # chunked: fewer polls

    def test_cold_deadline_takes_engine(self, pair):
        """A deadline arriving before any loop plan exists must run the
        engine (poll-before-build cadence) and warm nothing."""
        orig, quant, x, y = pair
        clock = ManualClock()
        atk = PGD(quant, eps=0.05, alpha=0.01, steps=4)
        n = 6
        tok = DeadlineToken.for_rows([1e9] * n, clock)
        eps = np.full(n, atk.eps, dtype=x.dtype)
        alpha = np.full(n, atk.alpha, dtype=x.dtype)
        check = np.full(n, True)
        atk._refresh_compiled()
        run_scheduled(atk, x[:n], y[:n], atk._init(x[:n]), eps, alpha,
                      check, None, capacity=16, deadline=tok)
        assert not loop_entries(atk)


class TestServeParity:
    def test_coalesced_dispatch_rides_the_loop(self, pair):
        """Two compatible jobs coalesce into one recorded-loop dispatch;
        each job's slice matches a solo engine run bit for bit."""
        orig, quant, x, y = pair
        session = ServeSession(capacity=32)
        f1 = session.submit_attack(PGD(quant, eps=0.03, alpha=0.01, steps=4),
                                   x[:6], y[:6])
        f2 = session.submit_attack(PGD(quant, eps=0.08, alpha=0.02, steps=4),
                                   x[6:12], y[6:12])
        got1, got2 = f1.result(), f2.result()
        ref1 = PGD(quant, eps=0.03, alpha=0.01, steps=4)
        ref1.use_loop = False
        ref2 = PGD(quant, eps=0.08, alpha=0.02, steps=4)
        ref2.use_loop = False
        assert np.array_equal(got1, ref1.generate(x[:6], y[:6]))
        assert np.array_equal(got2, ref2.generate(x[6:12], y[6:12]))
        loop = [(k, e.plan) for k, e in session.plan_cache.items()
                if isinstance(k, tuple) and k and k[0] == "attack-loop"]
        assert loop and loop[0][1] is not None and loop[0][1].runs > 0

    def test_eager_rung_bypasses_loop(self, pair):
        """The scheduler's eager retry rung (use_compiled forced off)
        must not touch the loop even when its plan is warm."""
        orig, quant, x, y = pair
        a = PGD(quant, steps=3)
        a.generate(x[:4], y[:4])                      # warm loop plan
        assert loop_ran(a)
        runs_before = loop_entries(a)[0][1].runs
        prior = a.use_compiled
        a.use_compiled = False
        try:
            got = a.generate(x[:4], y[:4])
        finally:
            a.use_compiled = prior
        assert loop_entries(a)[0][1].runs == runs_before
        b = PGD(quant, steps=3)
        b.use_compiled = False
        assert np.array_equal(got, b.generate(x[:4], y[:4]))


class TestChaosParity:
    def test_deadline_outcome_records_match_engine_under_faults(self, pair):
        """Satellite: chunked replay honors DeadlineToken with the
        engine's exact poll cadence — under step-latency faults the
        looped arm and the step-at-a-time arm produce identical bytes,
        outcomes, expired-row counts and per-row step counts."""
        orig, quant, x, y = pair

        def arm(use_loop):
            clock = ManualClock()
            inj = FaultInjector([FaultSpec("attack.step", "latency",
                                           rate=1.0, delay_s=0.2)],
                                seed=FAULT_SEED, clock=clock)
            session = ServeSession(capacity=16, clock=clock)
            warm = PGD(quant, steps=3)
            warm.use_loop = use_loop
            session.submit_attack(warm, x[:4], y[:4]).result()
            atk = PGD(quant, steps=8)
            atk.use_loop = use_loop
            fut = session.submit_attack(atk, x[:4], y[:4], deadline_s=0.5)
            with inject(inj):
                out = fut.result()
            return out, fut, session

        out_l, fut_l, sess_l = arm(True)
        out_e, fut_e, _ = arm(False)
        assert fut_l.outcome == fut_e.outcome == "deadline-degraded"
        assert np.array_equal(out_l, out_e)
        assert fut_l.info["expired_rows"] == fut_e.info["expired_rows"]
        assert np.array_equal(fut_l.info["steps_done"],
                              fut_e.info["steps_done"])
        loop = [(k, e.plan) for k, e in sess_l.plan_cache.items()
                if isinstance(k, tuple) and k and k[0] == "attack-loop"]
        assert loop and loop[0][1] is not None and loop[0][1].runs >= 2
