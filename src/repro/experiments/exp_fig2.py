"""Figure 2 (made quantitative): decision-boundary divergence maps.

Fig 2 in the paper is a conceptual sketch of coarsened boundaries.  We
probe it directly: random 2D slices of input space around natural images
are classified by both models; the disagreement fraction measures the
sliver DIVA exploits, and slices through DIVA's perturbation direction
show a larger disagreement share than random slices.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..analysis import probe_boundary_plane, random_directions
from ..attacks import DIVA
from .config import ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results


def run(cfg: Optional[ExperimentConfig] = None,
        pipeline: Optional[Pipeline] = None, arch: str = "resnet",
        n_images: int = 8, resolution: int = 15, verbose: bool = True) -> Dict:
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)
    orig = pipe.original(arch)
    quant = pipe.quantized(arch)
    atk_set = pipe.attack_set([orig, quant], f"fig2-{arch}")
    n_images = min(n_images, len(atk_set))
    rng = np.random.default_rng(cfg.seed + 200)

    attack = DIVA(orig, quant, c=cfg.c, eps=cfg.eps, alpha=cfg.alpha,
                  steps=cfg.steps)
    x_adv = attack.generate(atk_set.x[:n_images], atk_set.y[:n_images])

    random_frac, diva_frac = [], []
    for i in range(n_images):
        img = atk_set.x[i]
        d1, d2 = random_directions(img.shape, rng)
        m_rand = probe_boundary_plane(orig, quant, img, d1, d2,
                                      radius=cfg.eps * 2, resolution=resolution)
        random_frac.append(m_rand.disagreement_fraction)
        # slice spanned by the DIVA perturbation and a random orthogonal
        delta = (x_adv[i] - img).astype(np.float64)
        norm = np.linalg.norm(delta)
        if norm == 0:
            continue
        dd = delta / norm
        d2b = rng.normal(size=img.shape)
        d2b -= (d2b * dd).sum() * dd
        d2b /= np.linalg.norm(d2b)
        m_diva = probe_boundary_plane(orig, quant, img, dd, d2b,
                                      radius=norm * 1.5, resolution=resolution)
        diva_frac.append(m_diva.disagreement_fraction)

    results: Dict = {
        "arch": arch,
        "n_images": n_images,
        "random_plane_disagreement": float(np.mean(random_frac)),
        "diva_plane_disagreement": float(np.mean(diva_frac)),
        "per_image_random": [float(v) for v in random_frac],
        "per_image_diva": [float(v) for v in diva_frac],
    }
    table = format_table(
        ["slice type", "mean model-disagreement fraction"],
        [["random plane", f"{results['random_plane_disagreement']:.1%}"],
         ["plane through DIVA direction", f"{results['diva_plane_disagreement']:.1%}"]],
        title="Figure 2 (quantified) — boundary divergence around natural images")
    results["table"] = table
    if verbose:
        print(table)
    save_results("fig2", results)
    return results
