"""Pruning: masks, schedules, finetune pipelines, prune-then-quantize."""

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import Tensor
from repro.pruning import (ConstantSchedule, PolynomialDecaySchedule,
                           apply_masks, global_masks, layerwise_masks,
                           magnitude_mask, model_sparsity, prunable_layers,
                           prune_finetune, prune_model, prune_then_quantize)


class TestMagnitudeMask:
    def test_target_sparsity_hit(self, rng):
        w = rng.normal(size=(100, 100))
        mask = magnitude_mask(w, 0.7)
        assert np.isclose(1 - mask.mean(), 0.7, atol=0.001)

    def test_keeps_largest(self, rng):
        w = np.array([[0.1, -5.0], [0.01, 2.0]])
        mask = magnitude_mask(w, 0.5)
        assert mask.tolist() == [[0.0, 1.0], [0.0, 1.0]]

    def test_zero_sparsity_keeps_all(self, rng):
        w = rng.normal(size=(5, 5))
        assert magnitude_mask(w, 0.0).all()

    def test_invalid_sparsity(self, rng):
        with pytest.raises(ValueError):
            magnitude_mask(np.ones(4), 1.0)
        with pytest.raises(ValueError):
            magnitude_mask(np.ones(4), -0.1)

    def test_ties_resolved_deterministically(self):
        w = np.ones(10)   # all-equal magnitudes
        mask = magnitude_mask(w, 0.5)
        assert mask.sum() == 5
        assert np.array_equal(mask, magnitude_mask(w, 0.5))


class TestMaskScopes:
    def test_layerwise_each_layer_at_target(self, tiny_model):
        masks = layerwise_masks(tiny_model, 0.5)
        for name, mask in masks.items():
            assert abs((1 - mask.mean()) - 0.5) < 0.1

    def test_global_overall_at_target(self, tiny_model):
        masks = global_masks(tiny_model, 0.5)
        total = sum(m.size for m in masks.values())
        zeros = sum((m == 0).sum() for m in masks.values())
        assert abs(zeros / total - 0.5) < 0.02

    def test_apply_masks_unknown_layer_raises(self, tiny_model):
        with pytest.raises(KeyError):
            apply_masks(tiny_model.copy_structure(), {"nope": np.ones(1)})

    def test_model_sparsity_reporting(self, tiny_model):
        clone = prune_model(tiny_model, sparsity=0.6)
        assert abs(model_sparsity(clone) - 0.6) < 0.05


class TestSchedules:
    def test_polynomial_endpoints(self):
        s = PolynomialDecaySchedule(0.0, 0.8, begin_step=10, end_step=110)
        assert s.sparsity_at(0) == 0.0
        assert s.sparsity_at(10) == 0.0
        assert np.isclose(s.sparsity_at(110), 0.8)
        assert np.isclose(s.sparsity_at(99999), 0.8)

    def test_polynomial_monotone(self):
        s = PolynomialDecaySchedule(0.1, 0.9, 0, 100)
        vals = [s.sparsity_at(t) for t in range(0, 101, 10)]
        assert all(b >= a - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_polynomial_validation(self):
        with pytest.raises(ValueError):
            PolynomialDecaySchedule(0.9, 0.5, 0, 10)
        with pytest.raises(ValueError):
            PolynomialDecaySchedule(0.0, 0.5, 10, 10)

    def test_constant(self):
        s = ConstantSchedule(0.4)
        assert s.sparsity_at(0) == 0.4 and s.sparsity_at(1000) == 0.4


class TestPrunePipelines:
    def test_prune_model_leaves_source_untouched(self, tiny_model):
        prune_model(tiny_model, 0.5)
        assert all(m.weight_mask is None for _, m in prunable_layers(tiny_model))

    def test_prune_model_changes_predictions_somewhat(self, tiny_model,
                                                      tiny_dataset):
        _, val = tiny_dataset
        pruned = prune_model(tiny_model, 0.67)
        a = tiny_model(Tensor(val.x[:8])).data
        b = pruned(Tensor(val.x[:8])).data
        assert not np.allclose(a, b)

    def test_prune_finetune_recovers_accuracy(self, tiny_model, tiny_dataset):
        from repro.training import evaluate_accuracy
        train, val = tiny_dataset
        oneshot = prune_model(tiny_model, 0.67)
        oneshot.eval()
        tuned = prune_finetune(tiny_model, train.x, train.y, sparsity=0.67,
                               epochs=2, batch_size=32)
        acc_oneshot = evaluate_accuracy(oneshot, val.x, val.y)
        acc_tuned = evaluate_accuracy(tuned, val.x, val.y)
        assert acc_tuned >= acc_oneshot - 0.05

    def test_prune_finetune_keeps_sparsity(self, tiny_model, tiny_dataset):
        train, _ = tiny_dataset
        tuned = prune_finetune(tiny_model, train.x, train.y, sparsity=0.6,
                               epochs=1, batch_size=32)
        assert model_sparsity(tuned) >= 0.55

    def test_gradual_schedule_path(self, tiny_model, tiny_dataset):
        train, _ = tiny_dataset
        sched = PolynomialDecaySchedule(0.0, 0.6, begin_step=0, end_step=3)
        tuned = prune_finetune(tiny_model, train.x, train.y, epochs=1,
                               batch_size=32, schedule=sched)
        assert model_sparsity(tuned) >= 0.55

    def test_prune_then_quantize_preserves_zeros(self, tiny_model,
                                                 tiny_dataset):
        train, _ = tiny_dataset
        pruned = prune_finetune(tiny_model, train.x, train.y, sparsity=0.67,
                                epochs=1, batch_size=32)
        pq = prune_then_quantize(pruned, train.x, train.y, qat_epochs=1)
        from repro.nn.layers import Conv2d, Linear
        for _, mod in pq.model.named_modules():
            if isinstance(mod, (Conv2d, Linear)) and mod.weight_mask is not None:
                eff = mod.effective_weight().data
                assert (eff[mod.weight_mask == 0] == 0).all()

    def test_unknown_scope_raises(self, tiny_model):
        with pytest.raises(ValueError):
            prune_model(tiny_model, 0.5, scope="bogus")
