"""Extended activations, normalization layers, and losses — values and
gradient checks."""

import numpy as np
import pytest

from repro.nn import (ELU, GELU, GroupNorm, HardSwish, InstanceNorm2d,
                      LayerNorm, LeakyReLU, Swish, Tensor, elu, gelu,
                      hard_sigmoid, hard_swish, leaky_relu, softplus, swish)
from repro.nn import losses as L

from .conftest import numerical_gradient


def gradcheck(fn, shape, tol=1e-5, seed=0, positive=False):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    if positive:
        x = np.abs(x) + 0.1
    xt = Tensor(x.copy(), requires_grad=True)
    fn(xt).sum().backward()
    f = lambda: float(fn(Tensor(xt.data)).data.sum())
    err = np.abs(numerical_gradient(f, xt.data) - xt.grad).max()
    assert err < tol, f"gradcheck failed: {err}"


class TestActivations:
    def test_leaky_relu_values(self):
        x = Tensor(np.array([-2.0, 0.0, 3.0]))
        assert np.allclose(leaky_relu(x, 0.1).data, [-0.2, 0.0, 3.0])

    def test_leaky_relu_grad(self):
        gradcheck(lambda x: leaky_relu(x, 0.1), (4, 3))

    def test_elu_values(self):
        x = Tensor(np.array([-1.0, 2.0]))
        out = elu(x, 1.0)
        assert np.isclose(out.data[0], np.exp(-1) - 1)
        assert np.isclose(out.data[1], 2.0)

    def test_elu_grad(self):
        gradcheck(lambda x: elu(x), (4, 3))

    def test_softplus_matches_reference(self, rng):
        x = rng.normal(size=20) * 5
        out = softplus(Tensor(x)).data
        assert np.allclose(out, np.log1p(np.exp(-np.abs(x))) + np.maximum(x, 0),
                           atol=1e-10)

    def test_softplus_no_overflow(self):
        out = softplus(Tensor(np.array([1000.0, -1000.0])))
        assert np.isfinite(out.data).all()

    def test_gelu_values(self):
        # GELU(0)=0; GELU(x) ~ x for large x; ~0 for very negative x
        out = gelu(Tensor(np.array([0.0, 10.0, -10.0])))
        assert np.isclose(out.data[0], 0.0)
        assert np.isclose(out.data[1], 10.0, atol=1e-3)
        assert np.isclose(out.data[2], 0.0, atol=1e-3)

    def test_gelu_grad(self):
        gradcheck(gelu, (3, 5), tol=1e-4)

    def test_swish_grad(self):
        gradcheck(swish, (3, 4))

    def test_hard_sigmoid_range(self, rng):
        out = hard_sigmoid(Tensor(rng.normal(size=50) * 10)).data
        assert out.min() >= 0 and out.max() <= 1

    def test_hard_swish_matches_composition(self, rng):
        x = rng.normal(size=10)
        a = hard_swish(Tensor(x)).data
        b = x * np.clip(x / 6 + 0.5, 0, 1)
        assert np.allclose(a, b)

    def test_layer_wrappers(self, rng):
        x = Tensor(rng.normal(size=(2, 4)))
        for layer in (LeakyReLU(), ELU(), GELU(), Swish(), HardSwish()):
            assert layer(x).shape == (2, 4)


class TestNormLayers:
    def test_layernorm_normalizes_rows(self, rng):
        ln = LayerNorm(8)
        out = ln(Tensor(rng.normal(3.0, 2.0, size=(16, 8))))
        assert np.allclose(out.data.mean(axis=-1), 0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1, atol=1e-2)

    def test_layernorm_batch_independent(self, rng):
        ln = LayerNorm(6)
        x = rng.normal(size=(4, 6))
        full = ln(Tensor(x)).data
        single = np.concatenate([ln(Tensor(x[i:i + 1])).data for i in range(4)])
        assert np.allclose(full, single, atol=1e-10)

    def test_groupnorm_shapes_and_stats(self, rng):
        gn = GroupNorm(2, 8)
        out = gn(Tensor(rng.normal(5.0, 3.0, size=(3, 8, 4, 4))))
        assert out.shape == (3, 8, 4, 4)
        grouped = out.data.reshape(3, 2, 4 * 4 * 4)
        assert np.allclose(grouped.mean(axis=-1), 0, atol=1e-6)

    def test_groupnorm_validation(self):
        with pytest.raises(ValueError):
            GroupNorm(3, 8)

    def test_instancenorm_is_per_channel(self, rng):
        inorm = InstanceNorm2d(4)
        out = inorm(Tensor(rng.normal(2.0, 1.5, size=(2, 4, 5, 5))))
        assert np.allclose(out.data.mean(axis=(2, 3)), 0, atol=1e-6)

    def test_norm_gradients_flow(self, rng):
        for layer, shape in [(LayerNorm(6), (4, 6)),
                             (GroupNorm(2, 4), (2, 4, 3, 3))]:
            x = Tensor(rng.normal(size=shape), requires_grad=True)
            layer(x).sum().backward()
            assert x.grad is not None
            assert layer.weight.grad is not None


class TestLosses:
    def test_label_smoothing_reduces_to_ce_at_zero(self, rng):
        from repro.nn import functional as F
        z = Tensor(rng.normal(size=(5, 4)))
        y = np.array([0, 1, 2, 3, 0])
        a = float(L.label_smoothing_cross_entropy(z, y, smoothing=0.0).data)
        b = float(F.cross_entropy(z, y).data)
        assert np.isclose(a, b)

    def test_label_smoothing_penalizes_overconfidence(self):
        y = np.array([0])
        confident = Tensor(np.array([[50.0, 0.0, 0.0]]))
        soft = Tensor(np.array([[3.0, 0.0, 0.0]]))
        ls = lambda z: float(L.label_smoothing_cross_entropy(z, y, 0.2).data)
        # with smoothing, extreme confidence costs more than moderate
        assert ls(confident) > ls(soft)

    def test_label_smoothing_validation(self, rng):
        z = Tensor(rng.normal(size=(2, 3)))
        with pytest.raises(ValueError):
            L.label_smoothing_cross_entropy(z, np.array([0, 1]), smoothing=1.0)

    def test_bce_matches_reference(self, rng):
        z = rng.normal(size=10) * 3
        t = (rng.random(10) > 0.5).astype(float)
        got = float(L.binary_cross_entropy_with_logits(Tensor(z), t).data)
        p = 1 / (1 + np.exp(-z))
        want = -(t * np.log(p) + (1 - t) * np.log(1 - p)).mean()
        assert np.isclose(got, want, atol=1e-8)

    def test_bce_gradcheck(self, rng):
        t = (rng.random(6) > 0.5).astype(float)
        gradcheck(lambda z: L.binary_cross_entropy_with_logits(z, t), (6,))

    def test_multi_margin_zero_when_separated(self):
        z = Tensor(np.array([[10.0, 0.0, 0.0]]))
        loss = L.multi_margin_loss(z, np.array([0]), margin=1.0)
        assert float(loss.data) == 0.0

    def test_multi_margin_positive_when_violated(self):
        z = Tensor(np.array([[0.0, 10.0, 0.0]]))
        assert float(L.multi_margin_loss(z, np.array([0])).data) > 0

    def test_huber_quadratic_then_linear(self):
        pred = Tensor(np.array([0.5, 10.0]))
        target = np.zeros(2)
        per = L.huber_loss(pred, target, delta=1.0, reduction="none").data
        assert np.isclose(per[0], 0.5 * 0.25)          # quadratic region
        assert np.isclose(per[1], 1.0 * (10 - 0.5))    # linear region

    def test_huber_gradcheck(self, rng):
        t = rng.normal(size=(5,))
        gradcheck(lambda p: L.huber_loss(p, t, delta=0.7), (5,), tol=1e-4)
