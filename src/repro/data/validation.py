"""Attack-set selection, following the paper's protocol (§5.1).

"When selecting these 3,000 validation images, we ensure that they are
correctly classified by all relevant models and architectures", balanced
over classes.  Evaluating attacks only on samples every involved model
already gets right is what makes the success metrics well-defined: a
success must be *caused* by the perturbation, not a pre-existing error.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn.module import Module
from ..training.evaluate import predict_labels
from .datasets import ArrayDataset


def correctly_classified_mask(models: Sequence[Module], x: np.ndarray,
                              y: np.ndarray, batch_size: int = 128) -> np.ndarray:
    """Boolean mask of samples every model in ``models`` classifies right."""
    mask = np.ones(len(x), dtype=bool)
    for model in models:
        preds = predict_labels(model, x, batch_size=batch_size)
        mask &= preds == y
    return mask


def select_attack_set(dataset: ArrayDataset, models: Sequence[Module],
                      per_class: int, rng: Optional[np.random.Generator] = None,
                      batch_size: int = 128) -> ArrayDataset:
    """Class-balanced subset correctly classified by all ``models``.

    Takes up to ``per_class`` samples per class from the eligible pool.
    Classes with an empty eligible pool are skipped (matches the paper's
    "average of three images per class" phrasing — coverage is
    best-effort under correctness constraints).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    ok = correctly_classified_mask(models, dataset.x, dataset.y, batch_size)
    picks: List[np.ndarray] = []
    for cls in range(dataset.num_classes):
        pool = np.flatnonzero(ok & (dataset.y == cls))
        if len(pool) == 0:
            continue
        take = min(per_class, len(pool))
        picks.append(rng.choice(pool, size=take, replace=False))
    if not picks:
        raise RuntimeError("no sample is correctly classified by all models")
    idx = np.sort(np.concatenate(picks))
    return dataset.subset(idx)
