"""Figure 7: sweeping the balance hyper-parameter c (§5.3).

Paper: whitebox DIVA swept over c in {0, 0.001, 0.01, 0.1, 1, 5, 10};
top-1 success peaks per architecture (96.9/94.4/97.7% at c = 10/1/0.1),
stays high across c in [0.001, 1], and PGD's flat baseline sits far
below.  Also reproduced: raising c buys attack-only success at the
expense of evasive success (the §5.3 cost trade).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..attacks import DIVA, PGD
from ..metrics import evaluate_attack
from .config import ARCHITECTURES, ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results

DEFAULT_C_VALUES = (0.0, 0.001, 0.01, 0.1, 1.0, 5.0, 10.0)


def run(cfg: Optional[ExperimentConfig] = None,
        pipeline: Optional[Pipeline] = None,
        c_values: tuple = DEFAULT_C_VALUES, verbose: bool = True) -> Dict:
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)

    results: Dict = {"c_values": list(c_values), "per_arch": {}}
    for arch in ARCHITECTURES:
        orig = pipe.original(arch)
        quant = pipe.quantized(arch)
        atk_set = pipe.attack_set([orig, quant], f"fig7-{arch}")
        kw = dict(eps=cfg.eps, alpha=cfg.alpha, steps=cfg.steps)
        # the whole c grid is one vectorized sweep: every (c, sample)
        # pair is a work item sharing the same compiled program pair
        # (c = 0 degenerates to pure evasion and scores lowest, as in
        # the paper)
        advs = DIVA(orig, quant, c=cfg.c, **kw).generate_sweep(
            atk_set.x, atk_set.y, [{"c": float(c)} for c in c_values])
        top1: List[float] = []
        attack_only: List[float] = []
        for x_adv in advs:
            rep = evaluate_attack(orig, quant, x_adv, atk_set.y, topk=cfg.topk)
            top1.append(rep.top1_success_rate)
            attack_only.append(rep.attack_only_success_rate)
        x_pgd = PGD(quant, **kw).generate(atk_set.x, atk_set.y)
        rep_pgd = evaluate_attack(orig, quant, x_pgd, atk_set.y, topk=cfg.topk)
        results["per_arch"][arch] = {
            "diva_top1": top1,
            "diva_attack_only": attack_only,
            "pgd_top1": rep_pgd.top1_success_rate,
            "best_c": c_values[int(max(range(len(top1)), key=top1.__getitem__))],
        }

    rows = []
    for arch in ARCHITECTURES:
        r = results["per_arch"][arch]
        rows.append([arch] + [f"{v:.1%}" for v in r["diva_top1"]]
                    + [f"{r['pgd_top1']:.1%}"])
    table = format_table(
        ["Architecture"] + [f"c={c}" for c in c_values] + ["PGD"],
        rows, title="Figure 7 — whitebox DIVA top-1 success, varying c")
    results["table"] = table
    if verbose:
        print(table)
    save_results("fig7", results)
    return results
