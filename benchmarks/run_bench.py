#!/usr/bin/env python
"""Run the pytest-benchmark kernel suite and write ``BENCH_<sha>.json``.

Thin wrapper over :mod:`repro.benchrunner` (also exposed as the
``repro-bench`` console script and ``make bench``) so the perf
trajectory can be produced straight from a checkout::

    PYTHONPATH=src python benchmarks/run_bench.py [--all] [--out PATH]
"""

import sys

from repro.benchrunner import main

if __name__ == "__main__":
    sys.exit(main())
