"""Knowledge distillation and surrogate construction."""

import numpy as np
import pytest

from repro.distillation import agreement, distill, distillation_loss, soften
from repro.models import build_model
from repro.nn import Tensor


class TestSoften:
    def test_high_temperature_flattens(self, rng):
        z = rng.normal(size=(4, 6)) * 5
        p1 = soften(z, 1.0)
        p20 = soften(z, 20.0)
        assert p20.max() < p1.max()
        assert np.allclose(p20.sum(axis=1), 1.0)

    def test_temperature_one_is_softmax(self, rng):
        z = rng.normal(size=(3, 4))
        e = np.exp(z - z.max(1, keepdims=True))
        assert np.allclose(soften(z, 1.0), e / e.sum(1, keepdims=True))


class TestDistillationLoss:
    def test_zero_when_student_matches_teacher(self, rng):
        z = rng.normal(size=(5, 4))
        loss = distillation_loss(Tensor(z), z, temperature=2.0, alpha=1.0)
        assert float(loss.data) < 1e-6

    def test_positive_when_different(self, rng):
        loss = distillation_loss(Tensor(rng.normal(size=(5, 4))),
                                 rng.normal(size=(5, 4)))
        assert float(loss.data) > 0

    def test_alpha_blends_terms(self, rng):
        s = Tensor(rng.normal(size=(4, 3)))
        t = rng.normal(size=(4, 3))
        full_soft = float(distillation_loss(s, t, alpha=1.0).data)
        full_hard = float(distillation_loss(s, t, alpha=0.0).data)
        mid = float(distillation_loss(s, t, alpha=0.5).data)
        assert np.isclose(mid, 0.5 * full_soft + 0.5 * full_hard, rtol=1e-6)

    def test_gradients_flow(self, rng):
        s = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        distillation_loss(s, rng.normal(size=(4, 3))).backward()
        assert s.grad is not None


class TestDistill:
    def test_student_learns_teacher(self, tiny_model, tiny_dataset):
        train, val = tiny_dataset
        student = build_model("resnet", num_classes=6, width=4, seed=42)
        before = agreement(tiny_model, student, val.x)
        distill(tiny_model, student, train.x, epochs=8, lr=3e-3,
                temperature=2.0, alpha=0.5)
        after = agreement(tiny_model, student, val.x)
        assert after > before
        assert after > 0.45

    def test_agreement_bounds(self, tiny_model):
        x = np.random.default_rng(0).random((10, 3, 12, 12)).astype(np.float32)
        a = agreement(tiny_model, tiny_model, x)
        assert a == 1.0


class TestSurrogatePipelines:
    def test_semi_blackbox_bundle(self, tiny_model, tiny_quantized,
                                  tiny_dataset):
        from repro.attacks import semi_blackbox_diva
        from repro.data import select_attack_set
        train, val = tiny_dataset
        template = build_model("resnet", num_classes=6, width=4, seed=7)
        bundle = semi_blackbox_diva(tiny_quantized, template, train.x[:80],
                                    eps=32 / 255, alpha=4 / 255, steps=8,
                                    distill_epochs=2)
        assert bundle.surrogate_adapted is None
        # extraction-seeded surrogate should imitate the adapted model well
        assert agreement(bundle.surrogate_original, tiny_quantized,
                         val.x) > 0.6
        atk = select_attack_set(val, [tiny_model, tiny_quantized], per_class=2)
        x_adv = bundle.attack.generate(atk.x, atk.y)
        assert x_adv.shape == atk.x.shape
        assert np.abs(x_adv - atk.x).max() <= 32 / 255 + 1e-6

    def test_semi_blackbox_seeds_from_extraction(self, tiny_quantized,
                                                 tiny_dataset):
        from repro.attacks.surrogate import build_surrogate_original
        train, _ = tiny_dataset
        template = build_model("resnet", num_classes=6, width=4, seed=7)
        surr = build_surrogate_original(tiny_quantized, template,
                                        train.x[:40], distill_epochs=0)
        # zero-epoch distillation: weights must equal the extraction
        from repro.nn.layers import Conv2d, Linear
        for name, mod in tiny_quantized.model.named_modules():
            if isinstance(mod, (Conv2d, Linear)):
                got = dict(surr.named_modules())[name].weight.data
                want = mod.effective_weight().data
                assert np.allclose(got, want, atol=1e-6)

    def test_blackbox_bundle(self, tiny_model, tiny_quantized, tiny_dataset):
        from repro.attacks import blackbox_diva
        train, val = tiny_dataset
        template = build_model("resnet", num_classes=6, width=4, seed=8)
        bundle = blackbox_diva(tiny_quantized, template, train.x[:80],
                               eps=32 / 255, alpha=4 / 255, steps=6,
                               distill_epochs=2, qat_epochs=1)
        assert bundle.surrogate_adapted is not None
        # surrogate adapted is frozen and runs
        out = bundle.surrogate_adapted(Tensor(val.x[:4]))
        assert out.shape == (4, 6)
