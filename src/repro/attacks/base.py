"""Shared attack machinery: L-inf projection, input gradients, batching.

All attacks operate on pixel arrays in [0, 1] (NCHW) and return perturbed
arrays of the same shape.  The attack budget follows the paper: L-inf
bound ``eps`` (default 8/255), per-step size ``alpha`` (default 1/255),
``steps`` iterations (default 20), natural-sample initialization.

Hot-loop economics (the §5.2 "attack speed" axis): a naive keep-best
loop pays the gradient pass *and* a separate success-check forward per
step — 4 model passes/step for DIVA, 2 for PGD.  The loop here instead
reuses the logits that the gradient pass already produced
(:meth:`Attack.gradient_with_logits` / :meth:`Attack.success_from_logits`),
checks iterate *t* at the start of iteration *t+1*, and pays one single
trailing forward for the final iterate — so DIVA is back to 2 model
passes/step and PGD to 1, with bit-identical iterates.  Samples that
already succeeded are dropped from subsequent gradient batches
(``shrink_done``).  Subclasses additionally compile their frozen models
into a replayable program (:mod:`repro.nn.graph`) and fall back to the
eager tape whenever compilation is unsupported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn.module import Module
from ..nn.tensor import Tensor

PIXEL_MIN = 0.0
PIXEL_MAX = 1.0
DEFAULT_EPS = 8.0 / 255.0
DEFAULT_ALPHA = 1.0 / 255.0
DEFAULT_STEPS = 20


def project_linf(x_adv: np.ndarray, x_orig: np.ndarray, eps: float) -> np.ndarray:
    """Project onto the L-inf ball of radius ``eps`` around ``x_orig``,
    then clamp to the valid pixel range."""
    out = np.clip(x_adv, x_orig - eps, x_orig + eps)
    return np.clip(out, PIXEL_MIN, PIXEL_MAX)


def linf_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-sample L-inf distance of (N, ...) batches."""
    return np.abs(a - b).reshape(len(a), -1).max(axis=1)


def input_gradient(loss_builder: Callable[[Tensor], Tensor],
                   x: np.ndarray) -> np.ndarray:
    """Gradient of a scalar loss w.r.t. the input pixels.

    ``loss_builder`` maps the input tensor to a scalar loss; per-sample
    losses must be summed (samples are independent, so the summed
    gradient equals stacked per-sample gradients).
    """
    xt = Tensor(x, requires_grad=True)
    loss = loss_builder(xt)
    loss.backward()
    return xt.grad.copy()


def softmax_np(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis (plain numpy)."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def softmax_vjp(probs: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Vector-Jacobian product of softmax: d(v . p)/d(logits).

    Given ``p = softmax(z)`` and an upstream gradient ``v`` w.r.t. the
    probabilities, returns the gradient w.r.t. the logits:
    ``p * (v - sum(p * v))`` per row.
    """
    return probs * (v - (probs * v).sum(axis=-1, keepdims=True))


def compile_model(model, example: np.ndarray):
    """Best-effort compiled forward for a frozen model; None on fallback."""
    from ..nn.graph import compile_forward_or_none
    return compile_forward_or_none(model, example)


@dataclass
class AttackTrace:
    """Optional per-step snapshots for step-sweep figures (Fig 6d).

    ``snapshots[t]`` holds the adversarial batch after ``t + 1`` steps.
    """

    snapshots: List[np.ndarray] = field(default_factory=list)

    def record(self, x_adv: np.ndarray) -> None:
        self.snapshots.append(x_adv.copy())


class Attack:
    """Base class: iterate sign-gradient steps under an L-inf budget.

    With ``keep_best`` (default), each sample's *first iterate satisfying
    the attack's own success criterion* is kept and returned even if later
    steps overshoot — standard strong-attack practice, and consistent with
    the paper's monotone success-vs-steps curves (Fig 6d).  Attacks define
    success via :meth:`is_success`; the base class has no criterion, so it
    falls back to returning the final iterate.

    Subclasses that can derive success from the logits of their own
    gradient pass implement :meth:`gradient_with_logits` /
    :meth:`success_from_logits` / :meth:`success_logits`; the loop then
    skips the per-step success forwards entirely.  Subclasses that only
    implement :meth:`gradient` / :meth:`is_success` keep the classic
    (slower) behaviour unchanged.
    """

    #: drop already-successful samples from subsequent gradient batches;
    #: attacks with full-batch gradient state (momentum) turn this off.
    shrink_done = True

    def __init__(self, eps: float = DEFAULT_EPS, alpha: float = DEFAULT_ALPHA,
                 steps: int = DEFAULT_STEPS, random_start: bool = False,
                 keep_best: bool = True, seed: int = 0):
        if eps <= 0 or alpha <= 0 or steps < 1:
            raise ValueError("eps/alpha must be positive and steps >= 1")
        self.eps = float(eps)
        self.alpha = float(alpha)
        self.steps = int(steps)
        self.random_start = bool(random_start)
        self.keep_best = bool(keep_best)
        self.seed = seed
        #: set False to force the eager-tape path (e.g. for counting
        #: model calls, or when model weights mutate mid-generate).
        self.use_compiled = True
        self._exec_cache: Dict[Any, Any] = {}

    # ------------------------------------------------------------------ #
    # subclass surface
    # ------------------------------------------------------------------ #
    def gradient(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-batch gradient of the attack objective."""
        raise NotImplementedError  # pragma: no cover - abstract

    def gradient_with_logits(self, x_adv: np.ndarray, y: np.ndarray
                             ) -> Tuple[np.ndarray, Any]:
        """Gradient plus whatever logits the pass produced (or None).

        The second element is an attack-defined payload consumed only by
        :meth:`success_from_logits`; None means "no logits available,
        fall back to :meth:`is_success`".
        """
        return self.gradient(x_adv, y), None

    def success_logits(self, x_adv: np.ndarray, y: np.ndarray) -> Any:
        """Forward-only logits payload for a success check (or None)."""
        return None

    def success_from_logits(self, aux: Any, y: np.ndarray) -> Optional[np.ndarray]:
        """Success mask derived from a logits payload, or None."""
        return None

    def is_success(self, x_adv: np.ndarray, y: np.ndarray) -> Optional[np.ndarray]:
        """Per-sample success mask under this attack's own objective, or
        None when the attack defines no early-success criterion."""
        return None

    # ------------------------------------------------------------------ #
    # compiled-executor plumbing
    # ------------------------------------------------------------------ #
    def _compiled(self, model, x: np.ndarray):
        """Cached compiled executor for ``model`` (None = eager fallback)."""
        if not self.use_compiled:
            return None
        key = (id(model), x.shape[1:])
        if key not in self._exec_cache:
            self._exec_cache[key] = compile_model(model, x)
        return self._exec_cache[key]

    def _refresh_compiled(self) -> None:
        for ex in self._exec_cache.values():
            if ex is not None:
                ex.refresh()

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def _init(self, x: np.ndarray) -> np.ndarray:
        """Starting point: natural sample, or uniform noise in the ball.

        The paper initializes from the natural sample — "random start is
        less effective in a single run" (§5.1).
        """
        if not self.random_start:
            return x.copy()
        rng = np.random.default_rng(self.seed)
        noise = rng.uniform(-self.eps, self.eps, size=x.shape).astype(x.dtype)
        return project_linf(x + noise, x, self.eps)

    def _success_mask(self, aux: Any, x_sub: np.ndarray,
                      y_sub: np.ndarray) -> Optional[np.ndarray]:
        if aux is None:
            # gradient pass produced no logits (e.g. query-based
            # estimators): try a forward-only payload before falling all
            # the way back to the pixel-level check
            aux = self.success_logits(x_sub, y_sub)
        if aux is not None:
            mask = self.success_from_logits(aux, y_sub)
            if mask is not None:
                return np.asarray(mask)
        mask = self.is_success(x_sub, y_sub)
        return None if mask is None else np.asarray(mask)

    def _step(self, adv_rows: np.ndarray, x_rows: np.ndarray,
              g_rows: np.ndarray) -> np.ndarray:
        stepped = adv_rows + self.alpha * np.sign(g_rows)
        return project_linf(stepped, x_rows, self.eps).astype(x_rows.dtype)

    def _run_plain(self, xb: np.ndarray, yb: np.ndarray, adv: np.ndarray,
                   snaps: Optional[List[np.ndarray]]) -> np.ndarray:
        for _ in range(self.steps):
            g, _ = self.gradient_with_logits(adv, yb)
            adv = self._step(adv, xb, g)
            if snaps is not None:
                snaps.append(adv)
        return adv

    def _run_keep_best(self, xb: np.ndarray, yb: np.ndarray, adv: np.ndarray,
                       snaps: Optional[List[np.ndarray]]) -> np.ndarray:
        """Keep-best loop with shifted success checks.

        Iterate ``adv_t`` is checked with the logits of the gradient pass
        that starts iteration ``t`` (the pass needed to produce
        ``adv_{t+1}`` anyway); the final iterate pays one trailing
        forward.  The sequence of checked iterates — and every produced
        sample — is identical to checking right after each step.
        """
        held = adv.copy()
        done = np.zeros(len(xb), dtype=bool)

        def merged() -> np.ndarray:
            return np.where(done[:, None, None, None], held, adv)

        def check(active: np.ndarray, aux: Any) -> Optional[np.ndarray]:
            """Update held/done for adv[active]; returns the mask (or None)."""
            mask = self._success_mask(aux, adv[active], yb[active])
            if mask is not None:
                # only first successes count: rows already done keep the
                # iterate that first satisfied the criterion
                newly = active[mask & ~done[active]]
                held[newly] = adv[newly]
                done[newly] = True
            return mask

        for t in range(self.steps):
            active = np.flatnonzero(~done) if self.shrink_done else \
                np.arange(len(xb))
            if active.size == 0:
                if snaps is not None:
                    frozen = merged()
                    while len(snaps) < self.steps:
                        snaps.append(frozen)
                return merged()
            g, aux = self.gradient_with_logits(adv[active], yb[active])
            if t > 0:
                mask = check(active, aux)
                if snaps is not None:
                    snaps.append(merged())
                if mask is not None and self.shrink_done:
                    active, g = active[~mask], g[~mask]
            if active.size:
                adv[active] = self._step(adv[active], xb[active], g)
        # trailing check of the final iterate
        active = np.flatnonzero(~done)
        if active.size:
            check(active, self.success_logits(adv[active], yb[active]))
        if snaps is not None:
            snaps.append(merged())
        return merged()

    def generate(self, x: np.ndarray, y: np.ndarray,
                 trace: Optional[AttackTrace] = None,
                 batch_size: int = 64) -> np.ndarray:
        """Craft adversarial examples for the whole batch.

        Ascends the subclass objective with sign steps, projecting back
        into the eps-ball each iteration (Eq. 3 of the paper).
        """
        y = np.asarray(y)
        self._refresh_compiled()
        outs = []
        step_snaps: List[List[np.ndarray]] = [[] for _ in range(self.steps)]
        for start in range(0, len(x), batch_size):
            xb = x[start:start + batch_size]
            yb = y[start:start + batch_size]
            adv = self._init(xb)
            snaps: Optional[List[np.ndarray]] = [] if trace is not None else None
            if self.keep_best:
                final = self._run_keep_best(xb, yb, adv, snaps)
            else:
                final = self._run_plain(xb, yb, adv, snaps)
            outs.append(final)
            if trace is not None:
                for t in range(self.steps):
                    step_snaps[t].append(snaps[t])
        if trace is not None:
            for t in range(self.steps):
                trace.record(np.concatenate(step_snaps[t], axis=0))
        return np.concatenate(outs, axis=0)
