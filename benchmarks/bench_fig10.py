"""Figure 10 / §6 — the face-recognition case study on the integer edge
engine.

Paper: fp32 99.4% vs int8 99.0% accuracy; DIVA ~98% top-1 evasive
success, far above PGD; smaller top-5 gap than ImageNet (150 classes).
"""

from .conftest import run_once


def test_fig10(benchmark, cfg, pipeline):
    from repro.experiments import exp_fig10
    res = run_once(benchmark, lambda: exp_fig10.run(cfg, pipeline=pipeline))
    # edge int8 accuracy close to fp32 (the paper's 99.4 vs 99.0 shape)
    assert res["edge_accuracy"] >= res["original_accuracy"] - 0.15
    # DIVA dominates PGD on the deployed artifact
    assert res["diva"]["top1"] > res["pgd"]["top1"]
    assert res["diva"]["confidence_delta"] > res["pgd"]["confidence_delta"]
