"""Range observers that drive quantization-parameter selection.

Observers watch tensors flowing through the network (during calibration or
QAT) and summarize their dynamic range; ``compute_qparams`` then converts
the range into :class:`~repro.quantization.affine.QuantParams`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .affine import QuantParams, choose_qparams, int_range


class Observer:
    """Base observer: tracks a range and exports quantization params."""

    def __init__(self, bits: int = 8, signed: bool = True, symmetric: bool = False,
                 axis: Optional[int] = None):
        self.bits = bits
        self.signed = signed
        self.symmetric = symmetric
        self.axis = axis
        self.qmin, self.qmax = int_range(bits, signed)
        self.min_val: Optional[np.ndarray] = None
        self.max_val: Optional[np.ndarray] = None

    def _reduce(self, x: np.ndarray):
        if self.axis is None:
            return np.float64(x.min()), np.float64(x.max())
        moved = np.moveaxis(x, self.axis, 0).reshape(x.shape[self.axis], -1)
        return moved.min(axis=1).astype(np.float64), moved.max(axis=1).astype(np.float64)

    def observe(self, x: np.ndarray) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def reset(self) -> None:
        self.min_val = None
        self.max_val = None

    @property
    def initialized(self) -> bool:
        return self.min_val is not None

    def compute_qparams(self) -> QuantParams:
        if not self.initialized:
            raise RuntimeError("observer has seen no data; run calibration first")
        return choose_qparams(self.min_val, self.max_val, self.qmin, self.qmax,
                              symmetric=self.symmetric, axis=self.axis)

    def state(self) -> dict:
        return {"min_val": self.min_val, "max_val": self.max_val}

    def load_state(self, state: dict) -> None:
        self.min_val = state["min_val"]
        self.max_val = state["max_val"]


class MinMaxObserver(Observer):
    """Running global min/max over everything observed."""

    def observe(self, x: np.ndarray) -> None:
        mn, mx = self._reduce(x)
        if self.min_val is None:
            self.min_val, self.max_val = mn, mx
        else:
            self.min_val = np.minimum(self.min_val, mn)
            self.max_val = np.maximum(self.max_val, mx)


class MovingAverageMinMaxObserver(Observer):
    """EMA of per-batch min/max — the observer tfmot QAT uses for
    activations; robust to single-batch outliers."""

    def __init__(self, bits: int = 8, signed: bool = True, symmetric: bool = False,
                 axis: Optional[int] = None, momentum: float = 0.1):
        super().__init__(bits, signed, symmetric, axis)
        self.momentum = momentum

    def observe(self, x: np.ndarray) -> None:
        mn, mx = self._reduce(x)
        if self.min_val is None:
            self.min_val, self.max_val = mn, mx
        else:
            m = self.momentum
            self.min_val = (1 - m) * self.min_val + m * mn
            self.max_val = (1 - m) * self.max_val + m * mx


class PerChannelMinMaxObserver(MinMaxObserver):
    """Per-channel min/max; default for conv/linear weights (axis 0)."""

    def __init__(self, bits: int = 8, signed: bool = True, symmetric: bool = True,
                 axis: int = 0):
        super().__init__(bits, signed, symmetric, axis=axis)


class HistogramObserver(Observer):
    """Histogram-based range selection that clips extreme tails.

    Accumulates a fixed-width histogram of observed values and picks the
    narrowest range retaining ``coverage`` of the mass — a simple
    percentile calibrator, useful for PTQ on heavy-tailed activations.
    """

    def __init__(self, bits: int = 8, signed: bool = True, symmetric: bool = False,
                 n_bins: int = 512, coverage: float = 0.999):
        super().__init__(bits, signed, symmetric, axis=None)
        self.n_bins = n_bins
        self.coverage = coverage
        self._counts: Optional[np.ndarray] = None
        self._lo = 0.0
        self._hi = 0.0

    def observe(self, x: np.ndarray) -> None:
        flat = np.asarray(x, dtype=np.float64).ravel()
        lo, hi = float(flat.min()), float(flat.max())
        if self._counts is None:
            self._lo, self._hi = lo, hi if hi > lo else lo + 1e-9
            self._counts = np.histogram(flat, bins=self.n_bins,
                                        range=(self._lo, self._hi))[0].astype(np.float64)
        else:
            new_lo, new_hi = min(lo, self._lo), max(hi, self._hi)
            if new_lo < self._lo or new_hi > self._hi:
                # rebin existing counts into the widened range
                centers = np.linspace(self._lo, self._hi, self.n_bins + 1)
                centers = 0.5 * (centers[:-1] + centers[1:])
                counts = np.histogram(centers, bins=self.n_bins,
                                      range=(new_lo, new_hi),
                                      weights=self._counts)[0]
                self._counts = counts
                self._lo, self._hi = new_lo, new_hi
            self._counts += np.histogram(flat, bins=self.n_bins,
                                         range=(self._lo, self._hi))[0]
        self._update_range()

    def _update_range(self) -> None:
        total = self._counts.sum()
        if total == 0:
            return
        cdf = np.cumsum(self._counts) / total
        tail = (1.0 - self.coverage) / 2.0
        edges = np.linspace(self._lo, self._hi, self.n_bins + 1)
        lo_idx = int(np.searchsorted(cdf, tail))
        hi_idx = int(np.searchsorted(cdf, 1.0 - tail))
        hi_idx = min(hi_idx, self.n_bins - 1)
        self.min_val = np.float64(edges[lo_idx])
        self.max_val = np.float64(edges[hi_idx + 1])
