"""Compiled training steps: bit-parity with the eager tape, model-pass
accounting, fallback behaviour, and the tap-major grouped/strided conv
backward kernels both executors share."""

import numpy as np
import pytest

from repro.distillation import distill
from repro.distillation.losses import distillation_loss
from repro.models import build_model
from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.functional import _col2im
from repro.nn.graph import GraphUnsupported
from repro.nn.module import Module
from repro.nn.optim import SGD, Adam
from repro.nn.train_graph import (compile_train_step,
                                  compile_train_step_or_none)
from repro.quantization import calibrate, prepare_qat, qat_finetune
from repro.training import fit, predict_logits


def _batches(shape, steps, classes=6, seed=0):
    rng = np.random.default_rng(seed)
    xs = rng.random((steps,) + shape)
    ys = rng.integers(0, classes, size=(steps, shape[0]))
    return xs, ys


def _state_equal(a, b):
    sa, sb = a.state_dict(), b.state_dict()
    assert sorted(sa) == sorted(sb)
    for k in sa:
        np.testing.assert_array_equal(sa[k], sb[k], err_msg=k)


class TestStepBitParity:
    """Compiled steps must produce bit-identical parameters *and*
    buffers (BN running statistics ride on the effect channel)."""

    def _run(self, name, kwargs, shape, opt_fn, loss="ce", steps=5):
        xs, ys = _batches(shape, steps)
        if loss == "kd":
            rng = np.random.default_rng(1)
            targets = rng.normal(size=(steps, shape[0], 6))

            def loss_fn(logits, t):
                return distillation_loss(logits, t, temperature=4.0, alpha=0.7)
        else:
            targets = ys
            loss_fn = F.cross_entropy

        eager = build_model(name, **kwargs)
        eager.train()
        opt_e = opt_fn(eager.parameters())
        for t in range(steps):
            l = loss_fn(eager(Tensor(xs[t])), targets[t])
            opt_e.zero_grad()
            l.backward()
            opt_e.step()

        comp = build_model(name, **kwargs)
        comp.train()
        opt_c = opt_fn(comp.parameters())
        prog = compile_train_step(comp, loss_fn, xs[0], targets[0], opt_c)
        for t in range(steps):
            prog.step(xs[t], targets[t])
        _state_equal(eager, comp)

    def test_resnet_sgd_momentum_weight_decay(self):
        self._run("resnet", dict(num_classes=6, width=4), (8, 3, 12, 12),
                  lambda p: SGD(p, lr=0.02, momentum=0.9, weight_decay=1e-4))

    def test_resnet_sgd_nesterov(self):
        self._run("resnet", dict(num_classes=6, width=4), (8, 3, 12, 12),
                  lambda p: SGD(p, lr=0.02, momentum=0.9, nesterov=True))

    def test_resnet_adam(self):
        self._run("resnet", dict(num_classes=6, width=4), (8, 3, 12, 12),
                  lambda p: Adam(p, lr=1e-3, weight_decay=1e-2))

    def test_mobilenet_grouped_and_strided_backward(self):
        """MobileNet exercises the depthwise (grouped) conv backward at
        strides 1 and 2 — the tap-major rewrite must keep the compiled
        and eager kernels bit-identical."""
        self._run("mobilenet", dict(num_classes=6, width=4), (8, 3, 12, 12),
                  lambda p: SGD(p, lr=0.02, momentum=0.9, weight_decay=1e-4))

    def test_distillation_loss_head(self):
        self._run("mobilenet", dict(num_classes=6, width=4), (8, 3, 12, 12),
                  lambda p: Adam(p, lr=1e-3), loss="kd")

    def test_qat_model_with_live_observers(self):
        """QAT training moves the quantization grid every step; compiled
        replays must re-read the grid and replay observer updates."""
        xs, ys = _batches((8, 3, 12, 12), 4)

        def make():
            q = prepare_qat(build_model("resnet", num_classes=6, width=4,
                                        seed=3), weight_bits=8)
            calibrate(q, xs[0])
            q.train()
            return q

        eager = make()
        opt_e = SGD(eager.parameters(), lr=0.01, momentum=0.9)
        for t in range(4):
            l = F.cross_entropy(eager(Tensor(xs[t])), ys[t])
            opt_e.zero_grad()
            l.backward()
            opt_e.step()

        comp = make()
        opt_c = SGD(comp.parameters(), lr=0.01, momentum=0.9)
        prog = compile_train_step(comp, F.cross_entropy, xs[0], ys[0], opt_c)
        for t in range(4):
            prog.step(xs[t], ys[t])
        _state_equal(eager, comp)
        for (_, fe), (_, fc) in zip(eager.fake_quant_modules(),
                                    comp.fake_quant_modules()):
            np.testing.assert_array_equal(fe.observer.min_val,
                                          fc.observer.min_val)
            np.testing.assert_array_equal(fe.observer.max_val,
                                          fc.observer.max_val)

    def test_stale_gradients_do_not_poison_validation(self):
        """A preceding training loop leaves its last batch's gradients
        on the parameters (and ``copy_structure`` deep-copies them into
        QAT clones); compile-time validation must not let them
        contaminate its eager reference pass and reject a perfectly
        good program."""
        xs, ys = _batches((8, 3, 12, 12), 2)
        m = build_model("resnet", num_classes=6, width=4, seed=2)
        m.train()
        loss = F.cross_entropy(m(Tensor(xs[0])), ys[0])
        loss.backward()             # stale grads left in place
        q = prepare_qat(m, weight_bits=8)
        calibrate(q, xs[0])
        q.train()
        prog = compile_train_step(q, F.cross_entropy, xs[1], ys[1],
                                  SGD(q.parameters(), lr=0.01))
        assert prog is not None     # would raise GraphUnsupported before

    def test_wrong_batch_size_refused(self):
        xs, ys = _batches((8, 3, 12, 12), 1)
        m = build_model("resnet", num_classes=6, width=4)
        m.train()
        prog = compile_train_step(m, F.cross_entropy, xs[0], ys[0],
                                  SGD(m.parameters(), lr=0.01))
        assert prog.batch_size == 8
        with pytest.raises(ValueError, match="pinned"):
            prog.step(xs[0][:4], ys[0][:4])

    def test_mode_change_refused(self):
        xs, ys = _batches((8, 3, 12, 12), 1)
        m = build_model("resnet", num_classes=6, width=4)
        m.train()
        prog = compile_train_step(m, F.cross_entropy, xs[0], ys[0],
                                  SGD(m.parameters(), lr=0.01))
        m.eval()
        with pytest.raises(RuntimeError, match="mode changed"):
            prog.step(xs[0], ys[0])


class TestDriverParity:
    """fit / distill / qat_finetune give bit-identical results whether
    the compiled path engaged or not — including ragged tail batches,
    which always use the eager tape."""

    def _data(self, n=40, classes=6, seed=0):
        rng = np.random.default_rng(seed)
        return (rng.random((n, 3, 12, 12)),
                rng.integers(0, classes, size=n))

    def test_fit_matches_eager_with_tail_batch(self):
        x, y = self._data(40)          # batch 16 -> tail of 8
        kw = dict(epochs=2, batch_size=16, lr=0.02, seed=5)
        m_c = build_model("resnet", num_classes=6, width=4, seed=2)
        r_c = fit(m_c, x, y, **kw)
        m_e = build_model("resnet", num_classes=6, width=4, seed=2)
        r_e = fit(m_e, x, y, use_compiled=False, **kw)
        _state_equal(m_c, m_e)
        assert r_c.train_loss == r_e.train_loss

    def test_distill_matches_eager(self):
        x, _ = self._data(32, seed=3)
        teacher = build_model("resnet", num_classes=6, width=4, seed=1)
        teacher.eval()
        kw = dict(epochs=2, batch_size=16, lr=1e-3, seed=2)
        s_c = distill(teacher, build_model("mobilenet", num_classes=6,
                                           width=4, seed=4), x, **kw)
        s_e = distill(teacher, build_model("mobilenet", num_classes=6,
                                           width=4, seed=4), x,
                      use_compiled=False, **kw)
        _state_equal(s_c, s_e)

    def test_shape_changing_augment_falls_back_per_batch(self):
        """An augment callable may change the trailing shape (crops);
        the compiled-step dispatch must route such batches to the eager
        tape instead of crashing on the pinned trace shape."""
        x, y = self._data(32)
        m = build_model("resnet", num_classes=6, width=4, seed=2)
        r = fit(m, x, y, epochs=1, batch_size=16, lr=0.02, seed=3,
                augment=lambda b, rng: b[:, :, :10, :10])
        assert len(r.train_loss) == 1

    def test_qat_finetune_matches_eager(self):
        x, y = self._data(32, seed=7)

        def make():
            q = prepare_qat(build_model("resnet", num_classes=6, width=4,
                                        seed=0), weight_bits=8)
            calibrate(q, x[:16])
            return q

        kw = dict(epochs=2, batch_size=16, lr=0.005)
        q_c = qat_finetune(make(), x, y, **kw)
        q_e = qat_finetune(make(), x, y, use_compiled=False, **kw)
        _state_equal(q_c, q_e)


class SpyModel(Module):
    """Counts forward calls through a wrapped model."""

    def __init__(self, inner):
        super().__init__()
        self.inner = inner
        self.calls = 0

    def forward(self, x):
        self.calls += 1
        return self.inner(x)


class TestModelPassAccounting:
    def test_compiled_steps_never_reenter_the_module(self):
        """Tracing + compile-time validation cost two forwards; after
        that, N training steps perform zero module calls."""
        xs, ys = _batches((8, 3, 12, 12), 6)
        spy = SpyModel(build_model("resnet", num_classes=6, width=4))
        spy.train()
        prog = compile_train_step(spy, F.cross_entropy, xs[0], ys[0],
                                  SGD(spy.parameters(), lr=0.01))
        compile_calls = spy.calls
        assert compile_calls <= 2       # trace + eager validation pass
        for t in range(6):
            prog.step(xs[t], ys[t])
        assert spy.calls == compile_calls

    def test_eager_step_costs_one_pass_per_batch(self):
        xs, ys = _batches((8, 3, 12, 12), 3)
        spy = SpyModel(build_model("resnet", num_classes=6, width=4))
        spy.train()
        opt = SGD(spy.parameters(), lr=0.01)
        for t in range(3):
            l = F.cross_entropy(spy(Tensor(xs[t])), ys[t])
            opt.zero_grad()
            l.backward()
            opt.step()
        assert spy.calls == 3


class TestFallback:
    class Slicey(Module):
        """Uses __getitem__, which is not in the traced-op registry."""

        def __init__(self):
            super().__init__()
            self.fc = __import__("repro.nn.layers", fromlist=["Linear"]
                                 ).Linear(8, 4)

        def forward(self, x):
            return self.fc(x[:, :8])

    def test_unsupported_op_raises_loudly(self):
        rng = np.random.default_rng(0)
        m = self.Slicey()
        m.train()
        with pytest.raises(GraphUnsupported):
            compile_train_step(m, F.cross_entropy, rng.random((4, 16)),
                               rng.integers(0, 4, size=4),
                               SGD(m.parameters(), lr=0.01))

    def test_or_none_swallows_and_fit_still_trains(self):
        rng = np.random.default_rng(0)
        x = rng.random((24, 16))
        y = rng.integers(0, 4, size=24)

        m = self.Slicey()
        m.train()
        assert compile_train_step_or_none(
            m, F.cross_entropy, x[:8], y[:8],
            SGD(m.parameters(), lr=0.01)) is None

        def run(use_compiled):
            np.random.seed(0)
            mm = self.Slicey()
            fit(mm, x, y, epochs=2, batch_size=8, lr=0.05, seed=1,
                use_compiled=use_compiled)
            return mm

        # the failed compile attempt must leave no state behind: the
        # fallback run is bitwise the run that never tried
        _state_equal(run(True), run(False))

    def test_dropout_model_falls_back_not_corrupts(self):
        """Dropout redraws its mask per step; tracing would freeze one
        mask, so validation must reject the program AND restore the
        module RNG so the eager fallback stays deterministic."""
        from repro.nn.layers import Dropout, Linear

        class Dropy(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(16, 16)
                self.drop = Dropout(p=0.5, seed=3)
                self.fc2 = Linear(16, 4)

            def forward(self, x):
                return self.fc2(self.drop(self.fc1(x).relu()))

        rng = np.random.default_rng(0)
        x = rng.random((24, 16))
        y = rng.integers(0, 4, size=24)

        def run(use_compiled):
            m = Dropy()
            fit(m, x, y, epochs=2, batch_size=8, lr=0.05, seed=1,
                use_compiled=use_compiled)
            return m

        _state_equal(run(True), run(False))


class TestTapMajorColim:
    """The generalized phase-major X-padded flat col2im must match the
    legacy strided col2im scatter for every stride/group/padding the
    models use (and then some)."""

    CONFIGS = [
        # (C, F, k, stride, padding, groups, H)
        (3, 5, 3, 1, 1, 1, 10),       # dense stride 1 (unchanged path)
        (3, 5, 3, 2, 1, 1, 12),       # dense stride 2 (stage entry)
        (4, 6, 3, 2, 0, 1, 9),        # dense stride 2, no padding
        (6, 6, 1, 2, 0, 1, 8),        # 1x1 projection shortcut
        (4, 4, 3, 1, 1, 4, 10),       # depthwise stride 1
        (4, 4, 3, 2, 1, 4, 12),       # depthwise stride 2 (MobileNet)
        (6, 9, 3, 3, 2, 3, 11),       # grouped Fg>1, stride 3
        (4, 6, 5, 2, 2, 2, 10),       # 5x5 grouped, stride 2
    ]

    @staticmethod
    def _legacy_dx(xd, wd, g, stride, padding, groups):
        N, C, H, W = xd.shape
        Fo, Cg, kh, kw = wd.shape
        sh = sw = stride
        ph = pw = padding
        oh = (H + 2 * ph - kh) // sh + 1
        ow = (W + 2 * pw - kw) // sw + 1
        if groups == 1:
            K = C * kh * kw
            w2T = np.ascontiguousarray(wd.reshape(Fo, K).T)
            dcols = np.matmul(
                w2T, np.ascontiguousarray(g).reshape(N, Fo, oh * ow)
            ).reshape(N, C, kh, kw, oh, ow)
            return _col2im(dcols, xd.shape, kh, kw, sh, sw, ph, pw)
        G, Fg = groups, Fo // groups
        gg = g.reshape(N, G, Fg, oh, ow)
        wmat = wd.reshape(G, Fg, Cg * kh * kw)
        dcols2 = np.einsum("ngfxy,gfk->ngxyk", gg, wmat, optimize=True)
        dcols = dcols2.reshape(N, G, oh, ow, Cg, kh, kw)
        dcols = dcols.transpose(0, 1, 4, 5, 6, 2, 3).reshape(
            N, C, kh, kw, oh, ow)
        return _col2im(dcols, xd.shape, kh, kw, sh, sw, ph, pw)

    @pytest.mark.parametrize("C,Fo,k,stride,padding,groups,H", CONFIGS)
    def test_eager_backward_matches_legacy(self, C, Fo, k, stride, padding,
                                           groups, H):
        rng = np.random.default_rng(0)
        xd = rng.normal(size=(2, C, H, H))
        wd = rng.normal(size=(Fo, C // groups, k, k))
        xt = Tensor(xd, requires_grad=True)
        wt = Tensor(wd, requires_grad=True)
        out = F.conv2d(xt, wt, None, stride=stride, padding=padding,
                       groups=groups)
        g = rng.normal(size=out.shape)
        out.backward(g)
        ref = self._legacy_dx(xd, wd, g, stride, padding, groups)
        # same additions per destination element in the same tap order,
        # plus interleaved exact zeros -> equal values (== treats -0.0
        # and 0.0 alike); grouped Fg>1 sums over filters inside the
        # einsum, so allow one-ulp slack there
        if Fo // groups == 1 or groups == 1:
            np.testing.assert_array_equal(xt.grad, ref)
        else:
            np.testing.assert_allclose(xt.grad, ref, rtol=1e-13, atol=1e-14)

    @pytest.mark.parametrize("C,Fo,k,stride,padding,groups,H", CONFIGS)
    def test_compiled_input_grad_matches_eager(self, C, Fo, k, stride,
                                               padding, groups, H):
        """The forward executor's conv backward shares the flat path."""
        from repro.nn.graph import compile_forward
        from repro.nn.layers import Conv2d

        class M(Module):
            def __init__(self):
                super().__init__()
                self.conv = Conv2d(C, Fo, k, stride=stride, padding=padding,
                                   groups=groups, bias=False,
                                   rng=np.random.default_rng(1))

            def forward(self, x):
                return self.conv(x).sum(axis=(2, 3))

        m = M()
        m.eval()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, C, H, H))
        ex = compile_forward(m, x)
        xt = Tensor(x, requires_grad=True)
        out = m(xt)
        seed = rng.normal(size=out.shape)
        out.backward(seed)
        got, gx = ex.value_and_input_grad(x, seed)
        np.testing.assert_array_equal(got, out.data)
        np.testing.assert_array_equal(gx, xt.grad)


class TestFusedOptimizers:
    """apply_gradients must be bit-identical to assign-grads-then-step."""

    @pytest.mark.parametrize("opt_fn", [
        lambda p: SGD(p, lr=0.05),
        lambda p: SGD(p, lr=0.05, momentum=0.9, weight_decay=1e-3),
        lambda p: SGD(p, lr=0.05, momentum=0.9, nesterov=True),
        lambda p: Adam(p, lr=1e-2),
        lambda p: Adam(p, lr=1e-2, weight_decay=1e-2),
        lambda p: Adam(p, lr=1e-2, weight_decay=1e-2, decoupled=False),
    ])
    def test_matches_step(self, opt_fn):
        from repro.nn.module import Parameter
        rng = np.random.default_rng(0)
        shapes = [(4, 3), (7,), (2, 3, 3, 3)]
        pa = [Parameter(rng.normal(size=s)) for s in shapes]
        pb = [Parameter(p.data.copy()) for p in pa]
        oa, ob = opt_fn(pa), opt_fn(pb)
        for _ in range(4):
            grads = [rng.normal(size=s) for s in shapes]
            for p, g in zip(pa, grads):
                p.grad = g.copy()
            oa.step()
            ob.apply_gradients([(p, g.copy()) for p, g in zip(pb, grads)])
            for p, q in zip(pa, pb):
                np.testing.assert_array_equal(p.data, q.data)


class TestPredictLogitsCompiled:
    def test_large_input_uses_replay_and_matches_eager(self):
        model = build_model("resnet", num_classes=6, width=4)
        model.eval()
        rng = np.random.default_rng(0)
        x = rng.random((100, 3, 12, 12))
        got = predict_logits(model, x, batch_size=8)    # > 12 batches
        ref = np.concatenate([model(Tensor(x[i:i + 8])).data
                              for i in range(0, 100, 8)])
        np.testing.assert_allclose(got, ref, rtol=0, atol=1e-12)

    def test_spy_shows_compiled_path_taken(self):
        spy = SpyModel(build_model("resnet", num_classes=6, width=4))
        spy.eval()
        rng = np.random.default_rng(0)
        x = rng.random((104, 3, 12, 12))
        predict_logits(spy, x, batch_size=8)    # 13 batches of work
        # trace + validation only, not one call per batch
        assert spy.calls <= 3

    def test_small_input_stays_eager(self):
        spy = SpyModel(build_model("resnet", num_classes=6, width=4))
        spy.eval()
        rng = np.random.default_rng(0)
        x = rng.random((24, 3, 12, 12))
        predict_logits(spy, x, batch_size=8)    # 3 batches: below break-even
        assert spy.calls == 3                   # one eager pass per batch
