"""Figure 7 — the c sweep (§5.3).

Paper: success stays high across a wide c band, collapses at c = 0, and
DIVA beats the flat PGD baseline everywhere in the band.
"""

from .conftest import run_once


def test_fig7(benchmark, cfg, pipeline):
    from repro.experiments import exp_fig7
    res = run_once(benchmark, lambda: exp_fig7.run(cfg, pipeline=pipeline))
    for arch, r in res["per_arch"].items():
        top1 = dict(zip(res["c_values"], r["diva_top1"]))
        assert max(top1.values()) > r["pgd_top1"], arch
        assert top1[0.0] <= max(top1.values()), arch
        # attack-only success grows with c (the §5.3 trade)
        ao = r["diva_attack_only"]
        assert ao[-1] >= ao[0] - 0.05, arch
