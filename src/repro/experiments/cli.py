"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    repro-exp table1                 # Table 1 at paper-scale config
    repro-exp fig6 --smoke           # Fig 6 at the tiny test scale
    repro-exp all                    # the full grid (minutes on CPU)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from ..nn import set_default_dtype
from .config import ExperimentConfig
from .pipeline import Pipeline


def _registry() -> Dict[str, Callable]:
    from . import (exp_ablations, exp_distilled, exp_dssim, exp_fig1,
                   exp_fig2, exp_fig4, exp_fig6, exp_fig7, exp_fig8,
                   exp_fig10, exp_sec54, exp_sec55, exp_table1, exp_table2,
                   exp_targeted)
    return {
        "table1": exp_table1.run,
        "fig1": exp_fig1.run,
        "fig2": exp_fig2.run,
        "fig4": exp_fig4.run,
        "fig6": exp_fig6.run,
        "fig6d": exp_fig6.run_steps,
        "table2": exp_table2.run,
        "fig7": exp_fig7.run,
        "dssim": exp_dssim.run,
        "sec54": exp_sec54.run,
        "sec55": exp_sec55.run,
        "fig8": exp_fig8.run,
        "fig10": exp_fig10.run,
        "targeted": exp_targeted.run,
        "ablation-bits": exp_ablations.run_bits,
        "ablation-eps": exp_ablations.run_eps,
        "ablation-keep-best": exp_ablations.run_keep_best,
        "ablation-per-channel": exp_ablations.run_per_channel,
        "distilled": exp_distilled.run,
    }


def main(argv=None) -> int:
    registry = _registry()
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(registry) + ["all", "report"],
                        help="which table/figure to regenerate, or "
                             "'report' to rebuild EXPERIMENTS.md from "
                             "existing results")
    parser.add_argument("--smoke", action="store_true",
                        help="run at the tiny test scale (fast, inaccurate)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    set_default_dtype("float32")
    if args.experiment == "report":
        from .report import write_report
        print(f"wrote {write_report()}")
        return 0

    base = (ExperimentConfig.smoke() if args.smoke
            else ExperimentConfig.paper_scale())
    import dataclasses
    cfg = dataclasses.replace(base, seed=args.seed)
    pipe = Pipeline(cfg)

    names = sorted(registry) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        print(f"=== {name} ===")
        registry[name](cfg, pipeline=pipe)
        print(f"[{name} done in {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
