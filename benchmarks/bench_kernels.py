"""Substrate micro-benchmarks (not a paper table; engineering numbers).

Times the hot kernels everything else is built on — conv forward/backward,
fake-quant, compiled replay vs. the eager tape, the integer edge engine
vs float inference, and end-to-end attack stepping.  The paper's §5.2
'Attack speed' reports PGD and DIVA running at the same per-step speed
because their GPUs batch both models together; this reproduction gets
its per-step parity budget from the compiled executor
(:mod:`repro.nn.graph`) plus shared-forward success checks in
``Attack.generate`` — one fused pass per model per step, so DIVA costs
two model passes per step (down from four in the naive loop) and PGD
costs one.  ``repro.benchrunner`` (``make bench``) runs this suite and
records a ``BENCH_<sha>.json`` perf trajectory; attack workloads are
benchmarked in float32, the deployment dtype.

The attack-step and replay benches build registry models directly
(speed does not depend on trained weights), so they run without the
session ``pipeline`` fixture's training cost.
"""

import time

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


@pytest.fixture(scope="module")
def conv_inputs():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 8, 16, 16)).astype(np.float32)
    w = rng.normal(size=(16, 8, 3, 3)).astype(np.float32)
    return x, w


@pytest.fixture(scope="module")
def attack_models():
    """Untrained resnet + its frozen 8-bit adaptation, bench-sized.

    Labels are the original model's own predictions: every sample starts
    un-succeeded (the original is "correct" by construction and the 8-bit
    twin mostly agrees), so the keep-best loop's early-success dropout
    reflects genuine attack progress instead of random-label degeneracy
    inflating steps/sec.
    """
    from repro.models import build_model
    from repro.quantization import calibrate, prepare_qat
    from repro.training import predict_labels
    rng = np.random.default_rng(0)
    x = rng.random((16, 3, 16, 16)).astype(np.float32)
    orig = build_model("resnet", num_classes=10, width=8, seed=0)
    orig.eval()
    quant = prepare_qat(orig, weight_bits=8)
    calibrate(quant, x)
    quant.freeze()
    quant.eval()
    y = predict_labels(orig, x)
    return orig, quant, x, y


def test_conv2d_forward(benchmark, conv_inputs):
    x, w = conv_inputs
    xt, wt = Tensor(x), Tensor(w)
    benchmark(lambda: F.conv2d(xt, wt, None, padding=1))


@pytest.mark.parametrize("stride", [1, 2])
def test_conv2d_depthwise_backward(benchmark, stride):
    """MobileNet's hot kernel: depthwise conv forward+backward on the
    tap-major X-padded flat-col2im path, with the legacy strided-col2im
    formulation timed inline for the trajectory (``legacy_ns``)."""
    from repro.nn.functional import _col2im
    rng = np.random.default_rng(0)
    C, H = 16, 16
    x = rng.normal(size=(64, C, H, H)).astype(np.float32)
    w = rng.normal(size=(C, 1, 3, 3)).astype(np.float32)

    def step():
        xt = Tensor(x, requires_grad=True)
        wt = Tensor(w, requires_grad=True)
        F.conv2d(xt, wt, None, stride=stride, padding=1,
                 groups=C).sum().backward()
        return xt.grad

    def legacy_dx():
        # the pre-rewrite input-gradient path: einsum to window-major,
        # transpose-materialize, per-tap strided col2im scatter
        kh = kw = 3
        oh = ow = (H + 2 - kh) // stride + 1
        g = np.ones((64, C, oh, ow), dtype=np.float32)
        gg = g.reshape(64, C, 1, oh, ow)
        wmat = w.reshape(C, 1, kh * kw)
        dcols2 = np.einsum("ngfxy,gfk->ngxyk", gg, wmat, optimize=True)
        dcols = dcols2.reshape(64, C, oh, ow, 1, kh, kw)
        dcols = dcols.transpose(0, 1, 4, 5, 6, 2, 3).reshape(
            64, C, kh, kw, oh, ow)
        return _col2im(dcols, x.shape, kh, kw, stride, stride, 1, 1)

    step()
    reps = 5
    t0 = time.perf_counter()
    for _ in range(reps):
        legacy_dx()
    legacy_s = (time.perf_counter() - t0) / reps

    benchmark(step)
    benchmark.extra_info["legacy_col2im_dx_ns"] = legacy_s * 1e9
    benchmark.extra_info["stride"] = stride


@pytest.fixture(scope="module")
def train_batch():
    rng = np.random.default_rng(0)
    x = rng.random((64, 3, 16, 16)).astype(np.float32)
    y = rng.integers(0, 10, size=64)
    return x, y


_TRAIN_ARM = """
import sys, time, statistics
import numpy as np
from repro.nn import set_default_dtype
set_default_dtype(np.float32)
from repro.models import build_model
from repro.nn import functional as F
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor
from repro.nn.train_graph import compile_train_step
mode, name = sys.argv[1], sys.argv[2]
rng = np.random.default_rng(0)
x = rng.random((64, 3, 16, 16)).astype(np.float32)
y = rng.integers(0, 10, size=64)
model = build_model(name, num_classes=10, width=8, seed=0)
model.train()
opt = SGD(model.parameters(), lr=0.01, momentum=0.9, weight_decay=1e-4)
if mode == "compiled":
    prog = compile_train_step(model, F.cross_entropy, x, y, opt)
    step = lambda: prog.step(x, y)
else:
    def step():
        loss = F.cross_entropy(model(Tensor(x)), y)
        opt.zero_grad()
        loss.backward()
        opt.step()
for _ in range(10):
    step()
chunks = []
for _ in range(8):
    t0 = time.perf_counter()
    for _ in range(5):
        step()
    chunks.append((time.perf_counter() - t0) / 5)
print(statistics.median(chunks))
"""


def _train_arm_seconds(mode, name):
    """Warm per-step seconds for one training arm, measured in its own
    process: a training job owns its process in practice, and in-process
    A/B timing lets the two arms share allocator state (the arm that
    runs second inherits the other's warm heap, skewing the ratio either
    way)."""
    import subprocess
    import sys
    out = subprocess.run([sys.executable, "-c", _TRAIN_ARM, mode, name],
                         capture_output=True, text=True, check=True)
    return float(out.stdout.strip().splitlines()[-1])


def _bench_train_step(benchmark, name, x, y):
    """Compiled-vs-eager training step (float32, batch 64); both arms
    run process-isolated, and the compiled step additionally runs under
    pytest-benchmark in this process for the kernel table."""
    from repro.models import build_model
    from repro.nn.optim import SGD
    from repro.nn.train_graph import compile_train_step

    eager_s = _train_arm_seconds("eager", name)
    compiled_s = _train_arm_seconds("compiled", name)

    model = build_model(name, num_classes=10, width=8, seed=0)
    model.train()
    opt = SGD(model.parameters(), lr=0.01, momentum=0.9, weight_decay=1e-4)
    prog = compile_train_step(model, F.cross_entropy, x, y, opt)
    for _ in range(3):
        prog.step(x, y)
    benchmark(lambda: prog.step(x, y))
    benchmark.extra_info["model"] = name
    benchmark.extra_info["eager_step_ms"] = eager_s * 1e3
    benchmark.extra_info["compiled_step_ms"] = compiled_s * 1e3
    benchmark.extra_info["train_step_speedup"] = eager_s / compiled_s
    benchmark.extra_info["batch"] = len(x)


def test_train_step_resnet(benchmark, train_batch):
    x, y = train_batch
    _bench_train_step(benchmark, "resnet", x, y)


def test_train_step_mobilenet(benchmark, train_batch):
    x, y = train_batch
    _bench_train_step(benchmark, "mobilenet", x, y)


def test_distill_epoch(benchmark, train_batch):
    """One *marginal* distillation inner epoch (the §4.3 surrogate loop)
    through the compiled train step, against the same epoch on the eager
    tape.  The one-off compile + parity validation (~3 batch passes) is
    excluded — it amortizes over a real 8-epoch ``distill`` run — so this
    measures the steady-state inner-loop cost the surrogate pipelines
    actually pay."""
    from repro.distillation.losses import distillation_loss
    from repro.models import build_model
    from repro.nn.optim import Adam
    from repro.nn.train_graph import compile_train_step
    from repro.training import predict_logits

    rng = np.random.default_rng(1)
    images = rng.random((512, 3, 16, 16)).astype(np.float32)
    teacher = build_model("resnet", num_classes=10, width=8, seed=0)
    teacher.eval()
    teacher_logits = predict_logits(teacher, images)
    order = np.random.default_rng(2).permutation(len(images))

    def kd_loss(logits, t_logits):
        return distillation_loss(logits, t_logits, temperature=4.0,
                                 alpha=0.7)

    student_e = build_model("mobilenet", num_classes=10, width=8, seed=1)
    student_e.train()
    opt_e = Adam(student_e.parameters(), lr=1e-3)

    def eager_epoch():
        for start in range(0, len(images), 64):
            idx = order[start:start + 64]
            logits = student_e(Tensor(images[idx]))
            loss = kd_loss(logits, teacher_logits[idx])
            opt_e.zero_grad()
            loss.backward()
            opt_e.step()

    eager_epoch()
    reps = 3
    t0 = time.perf_counter()
    for _ in range(reps):
        eager_epoch()
    eager_s = (time.perf_counter() - t0) / reps

    student_c = build_model("mobilenet", num_classes=10, width=8, seed=1)
    student_c.train()
    opt_c = Adam(student_c.parameters(), lr=1e-3)
    prog = compile_train_step(student_c, kd_loss, images[:64],
                              teacher_logits[:64], opt_c)

    def compiled_epoch():
        for start in range(0, len(images), 64):
            idx = order[start:start + 64]
            prog.step(images[idx], teacher_logits[idx])

    compiled_epoch()
    benchmark(compiled_epoch)
    compiled_s = benchmark.stats.stats.median
    benchmark.extra_info["eager_epoch_ms"] = eager_s * 1e3
    benchmark.extra_info["compiled_epoch_ms"] = compiled_s * 1e3
    benchmark.extra_info["distill_epoch_speedup"] = eager_s / compiled_s
    benchmark.extra_info["images"] = len(images)
    # unlike the train_step entries, both arms share this process's
    # heap, so the ratio is conservative (cross-arm allocator warmth
    # favors whichever arm runs second — here, the compiled one is
    # benchmarked after the eager timing, but on buffers it owns anyway)
    benchmark.extra_info["protocol"] = "in-process"


_EDGE_ARM = """
import sys, time, statistics
import numpy as np
from repro.models import build_model
from repro.quantization import prepare_qat, calibrate
from repro.edge import compile_edge
mode = sys.argv[1]
rng = np.random.default_rng(0)
x = rng.random((256, 3, 32, 32)).astype(np.float32)
model = build_model("vggface", num_identities=50, image_size=32, width=8,
                    seed=0)
model.eval()
q = prepare_qat(model, weight_bits=8, act_bits=8, per_channel=True)
calibrate(q, x[:64])
q.freeze()
edge = compile_edge(q, 50)
compiled = mode == "compiled"
edge.predict(x, compiled=compiled)            # warm (and compile) the path
chunks = []
for _ in range(7):
    t0 = time.perf_counter()
    edge.predict(x, compiled=compiled)
    chunks.append(time.perf_counter() - t0)
print(statistics.median(chunks))
"""


def _edge_arm_seconds(mode):
    """Warm int8 predict seconds for one engine arm in its own process
    (same isolation rationale as the train-step arms)."""
    import subprocess
    import sys
    out = subprocess.run([sys.executable, "-c", _EDGE_ARM, mode],
                         capture_output=True, text=True, check=True)
    return float(out.stdout.strip().splitlines()[-1])


def test_edge_infer(benchmark):
    """Compiled vs eager integer edge inference (VGGFaceNet int8,
    batch 256, float32 pixels): the §6 deployed-artifact scoring cost
    every face experiment and semi-blackbox query pays.  Both arms run
    process-isolated; the compiled program additionally runs under
    pytest-benchmark in this process for the kernel table."""
    from repro.edge import compile_edge
    from repro.models import build_model
    from repro.quantization import calibrate, prepare_qat

    eager_s = _edge_arm_seconds("eager")
    compiled_s = _edge_arm_seconds("compiled")

    rng = np.random.default_rng(0)
    x = rng.random((256, 3, 32, 32)).astype(np.float32)
    model = build_model("vggface", num_identities=50, image_size=32,
                        width=8, seed=0)
    model.eval()
    q = prepare_qat(model, weight_bits=8, act_bits=8, per_channel=True)
    calibrate(q, x[:64])
    q.freeze()
    edge = compile_edge(q, 50)
    np.testing.assert_array_equal(edge.predict(x),
                                  edge.predict(x, compiled=False))
    benchmark(lambda: edge.predict(x))
    benchmark.extra_info["model"] = "vggface"
    benchmark.extra_info["edge_eager_ms"] = eager_s * 1e3
    benchmark.extra_info["edge_compiled_ms"] = compiled_s * 1e3
    benchmark.extra_info["edge_infer_speedup"] = eager_s / compiled_s
    benchmark.extra_info["batch"] = len(x)


_SERVE_ARM = """
import sys, time, statistics
from repro.serve import (ServeSession, build_workload, mixed_workload_spec,
                         replay_sequential, replay_serve)
mode = sys.argv[1]
w = build_workload(mixed_workload_spec(scale=3))
# Long-lived state is symmetric: the EdgeModel (and its program cache)
# persists across bursts in both arms, and per-request attack instances
# are rebuilt every burst in both arms.  What differs is exactly what
# the layers differ in: the sequential arm's per-request handlers each
# compile privately (the pre-serve reality), while the served arm holds
# ONE session whose shared PlanCache persists across bursts (the
# serving reality).
if mode == "serve":
    session = ServeSession(capacity=64)
    fn = lambda: replay_serve(w, session=session)
else:
    fn = lambda: replay_sequential(w)
fn()    # warm BLAS/page caches
chunks = []
for _ in range(7):
    t0 = time.perf_counter()
    fn()
    chunks.append(time.perf_counter() - t0)
print(statistics.median(chunks))
"""


def _serve_arm_seconds(mode):
    """Median seconds to serve one recorded mixed-workload burst in its
    own process (same isolation rationale as the train-step arms)."""
    import subprocess
    import sys
    out = subprocess.run([sys.executable, "-c", _SERVE_ARM, mode],
                         capture_output=True, text=True, check=True)
    return float(out.stdout.strip().splitlines()[-1])


def test_serve_throughput(benchmark):
    """Recorded mixed workload (attack jobs + edge inference, interleaved
    arrival, small per-request batches) served through ``ServeSession``
    vs each job run alone in arrival order — the pre-serve baseline.

    Both arms run process-isolated with symmetric long-lived state
    (models persist, per-request attack instances are rebuilt every
    burst in both).  The regimes differ where the layers differ: the
    sequential arm's per-request handlers compile privately every burst
    (the pre-serve reality), the served arm's one long-lived session
    amortizes its shared ``PlanCache`` across bursts and coalesces
    compatible jobs into shared passes.  Per-job results are
    bit-identical between the arms (asserted in-process below).
    """
    from repro.serve import (build_workload, mixed_workload_spec,
                             replay_serve, verify_parity)

    seq_s = _serve_arm_seconds("sequential")
    serve_s = _serve_arm_seconds("serve")

    w = build_workload(mixed_workload_spec(scale=3))
    parity = verify_parity(w)           # hard bit-parity gate
    benchmark(lambda: replay_serve(w))
    benchmark.extra_info["serve_jobs"] = len(w.jobs)
    benchmark.extra_info["serve_rows"] = w.rows
    benchmark.extra_info["serve_sequential_ms"] = seq_s * 1e3
    benchmark.extra_info["serve_ms"] = serve_s * 1e3
    benchmark.extra_info["serve_throughput_speedup"] = seq_s / serve_s
    benchmark.extra_info["serve_dispatches"] = parity["dispatches"]
    benchmark.extra_info["serve_coalesced"] = parity["coalesced_dispatches"]


_POOL_ARM = """
import sys, time, statistics
from repro.serve import ServeSession, build_workload, mixed_workload_spec, \\
    replay_serve
mode = sys.argv[1]
w = build_workload(mixed_workload_spec(scale=3))
# Both arms hold ONE long-lived session; the only difference is the
# dispatch backend behind it — the legacy single-threaded scheduler vs
# the worker pool (4 lanes, sharded caches/breakers, seeded stealing).
workers = None if mode == "scheduler" else int(mode)
session = ServeSession(capacity=64, workers=workers)
fn = lambda: replay_serve(w, session=session)
fn()    # warm plans/BLAS in both arms
chunks = []
for _ in range(7):
    t0 = time.perf_counter()
    fn()
    chunks.append(time.perf_counter() - t0)
print(statistics.median(chunks))
"""


def _pool_arm_seconds(mode):
    import subprocess
    import sys
    out = subprocess.run([sys.executable, "-c", _POOL_ARM, mode],
                         capture_output=True, text=True, check=True)
    return float(out.stdout.strip().splitlines()[-1])


def test_parallel_serving(benchmark):
    """The same recorded burst through one session on the legacy
    single-threaded scheduler vs the worker pool (``workers=4``) —
    process-isolated arms, symmetric long-lived state.

    The pool's contract is bytes-first: per-job results must be
    bit-identical to sequential dispatch at every worker count (the
    in-process ``verify_parity`` gate below fails the bench otherwise).
    Wall-time is reported, not asserted — on a single-CPU container the
    pool's win is bounded by BLAS already saturating the core, and the
    number records exactly that.
    """
    from repro.serve import (ServeSession, build_workload,
                             mixed_workload_spec, replay_serve,
                             verify_parity)

    seq_s = _pool_arm_seconds("scheduler")
    pool_s = _pool_arm_seconds("4")

    w = build_workload(mixed_workload_spec(scale=3))
    parity = verify_parity(w, workers=4)        # hard bit-parity gate
    session = ServeSession(capacity=64, workers=4)
    benchmark(lambda: replay_serve(w, session=session))
    pool = session.stats["pool"]
    benchmark.extra_info["parallel_jobs"] = len(w.jobs)
    benchmark.extra_info["parallel_rows"] = w.rows
    benchmark.extra_info["parallel_workers"] = 4
    benchmark.extra_info["parallel_scheduler_ms"] = seq_s * 1e3
    benchmark.extra_info["parallel_pool_ms"] = pool_s * 1e3
    benchmark.extra_info["parallel_pool_speedup"] = seq_s / pool_s
    benchmark.extra_info["parallel_dispatches"] = parity["dispatches"]
    benchmark.extra_info["parallel_waves"] = pool["waves"]
    benchmark.extra_info["parallel_steals"] = pool["steals"]


_ATTACK_LOOP_ARM = """
import sys, time, statistics
import numpy as np
from repro.attacks import CWLinf, DIVA
from repro.models import build_model
from repro.quantization import calibrate, prepare_qat
from repro.training import predict_labels
mode, which, reps = sys.argv[1], sys.argv[2], int(sys.argv[3])
rng = np.random.default_rng(0)
x = rng.random((16, 3, 16, 16)).astype(np.float32)
orig = build_model("resnet", num_classes=10, width=8, seed=0)
orig.eval()
quant = prepare_qat(orig, weight_bits=8)
calibrate(quant, x)
quant.freeze(); quant.eval()
y = predict_labels(orig, x)
atk = (DIVA(orig, quant, steps=50) if which == "diva"
       else CWLinf(quant, steps=50))
if mode == "per_step":
    atk.use_loop = False
elif mode == "eager":
    atk.use_compiled = False
atk.generate(x, y)              # warm: programs, loop plan, BLAS caches
times = []
for _ in range(reps):
    t0 = time.perf_counter()
    atk.generate(x, y)
    times.append(time.perf_counter() - t0)
print(statistics.median(times))
"""


def _attack_loop_arm_seconds(mode, which, reps=5):
    """Median seconds for one 50-step, 16-row ``generate`` in its own
    process (same isolation rationale as the train-step arms: each arm
    gets cold allocator/caches and warms itself)."""
    import subprocess
    import sys
    out = subprocess.run([sys.executable, "-c", _ATTACK_LOOP_ARM, mode,
                          which, str(reps)],
                         capture_output=True, text=True, check=True)
    return float(out.stdout.strip().splitlines()[-1])


@pytest.mark.parametrize("which", ["diva", "cw"])
def test_attack_loop(benchmark, which, attack_models):
    """Whole-loop recorded replay vs per-step compiled vs eager.

    Three process-isolated arms run the same 50-step keep-best job:
    ``looped`` (the recorded masked loop of ``repro.attacks.loop``),
    ``per_step`` (``use_loop`` off: the step-at-a-time engine over
    compiled gradient passes), ``eager`` (``use_compiled`` off: the
    tape).  All three produce bit-identical bytes (asserted in-process
    below); the arms differ only in loop bookkeeping and — for attacks
    that reach gradient fixed points, like CW past its hinge — the
    loop's fixed-point fast-forward.  ``steps_per_sec`` is nominal
    requested work (rows x steps / wall), so early exit helps every arm
    equally and fast-forward shows up honestly as throughput.
    """
    from repro.attacks import CWLinf, DIVA
    orig, quant, x, y = attack_models
    steps, rows = 50, len(x)

    # CW's arms are ~6x shorter than DIVA's (one program, early fixed
    # point), so a single slow rep swings the median hard; buy stability
    # with more reps where reps are cheap.
    reps = 11 if which == "cw" else 5
    looped_s = _attack_loop_arm_seconds("looped", which, reps=reps)
    per_step_s = _attack_loop_arm_seconds("per_step", which, reps=reps)
    eager_s = _attack_loop_arm_seconds("eager", which, reps=3)

    def make():
        return (DIVA(orig, quant, steps=steps) if which == "diva"
                else CWLinf(quant, steps=steps))

    a = make()
    got = a.generate(x, y)
    b = make()
    b.use_loop = False
    assert np.array_equal(got, b.generate(x, y))    # hard bit-parity gate
    benchmark(lambda: a.generate(x, y))
    benchmark.extra_info["attack"] = which
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["steps"] = steps
    benchmark.extra_info["loop_looped_ms"] = looped_s * 1e3
    benchmark.extra_info["loop_per_step_ms"] = per_step_s * 1e3
    benchmark.extra_info["loop_eager_ms"] = eager_s * 1e3
    benchmark.extra_info["loop_steps_per_sec"] = rows * steps / looped_s
    benchmark.extra_info["loop_vs_per_step_speedup"] = per_step_s / looped_s
    benchmark.extra_info["loop_vs_eager_speedup"] = eager_s / looped_s


def test_conv2d_forward_backward(benchmark, conv_inputs):
    x, w = conv_inputs

    def step():
        xt = Tensor(x, requires_grad=True)
        wt = Tensor(w, requires_grad=True)
        F.conv2d(xt, wt, None, padding=1).sum().backward()
    benchmark(step)


def test_fake_quant_overhead(benchmark):
    from repro.quantization import FakeQuantize
    rng = np.random.default_rng(0)
    fq = FakeQuantize.for_activations()
    x = Tensor(rng.normal(size=(64, 8, 16, 16)).astype(np.float32))
    fq.train()
    fq(x)
    fq.freeze()
    benchmark(lambda: fq(x))


def test_eager_forward_reference(benchmark, attack_models):
    """Eager-tape resnet forward on the bench batch — the baseline the
    compiled replay is compared against (ratio computed by
    ``repro.benchrunner`` from the two medians)."""
    orig, _, x, _ = attack_models
    xt = Tensor(x)
    benchmark(lambda: orig(xt))


def test_compiled_replay_vs_eager_forward(benchmark, attack_models):
    """Compiled resnet replay of the same forward."""
    from repro.nn.graph import compile_forward
    orig, _, x, _ = attack_models
    ex = compile_forward(orig, x)
    benchmark(lambda: ex.replay(x, copy=False))


def test_attack_step_cost_pgd_vs_diva(benchmark, attack_models):
    """End-to-end ``generate`` stepping cost.

    One DIVA step is one *fused* forward+input-gradient through two
    models (the §5.2 budget); PGD is the same through one.  The
    benchmark callable runs DIVA; PGD steps/sec is measured inline and
    both are recorded in extra_info for the BENCH trajectory.
    """
    from repro.attacks import DIVA, PGD
    orig, quant, x, y = attack_models
    steps = 10
    diva = DIVA(orig, quant, steps=steps)
    pgd = PGD(quant, steps=steps)
    diva.generate(x[:4], y[:4])     # compile + warm buffers
    pgd.generate(x[:4], y[:4])

    t0 = time.perf_counter()
    reps = 3
    for _ in range(reps):
        pgd.generate(x, y)
    pgd_steps_per_sec = steps * reps / (time.perf_counter() - t0)

    benchmark(lambda: diva.generate(x, y))
    median = benchmark.stats.stats.median
    benchmark.extra_info["diva_steps_per_sec"] = steps / median
    benchmark.extra_info["pgd_steps_per_sec"] = pgd_steps_per_sec
    benchmark.extra_info["diva_step_ns"] = median / steps * 1e9
    benchmark.extra_info["keep_best"] = True
    benchmark.extra_info["batch"] = len(x)


def test_attack_sweep_vs_sequential(benchmark, attack_models):
    """A 4-point (eps, c) grid: one ``generate_sweep`` against the
    pre-engine per-configuration pattern (a fresh DIVA instance per grid
    point, each compiling and stepping its own programs — the loop that
    exp_fig7 / exp_sec55 / exp_table2 ran before the paired engine).
    Both arms include program compilation, and the sweep's per-variant
    outputs are asserted identical to the sequential ones.
    """
    from repro.attacks import DIVA
    orig, quant, x, y = attack_models
    steps = 10
    grid = [{"c": 0.1}, {"c": 1.0}, {"eps": 16 / 255, "alpha": 2 / 255},
            {"c": 5.0}]

    def sequential():
        outs = []
        for v in grid:
            atk = DIVA(orig, quant, c=v.get("c", 1.0),
                       eps=v.get("eps", 8 / 255),
                       alpha=v.get("alpha", 1 / 255), steps=steps)
            outs.append(atk.generate(x, y))
        return outs

    def sweep():
        return DIVA(orig, quant, c=1.0, eps=8 / 255, alpha=1 / 255,
                    steps=steps).generate_sweep(x, y, grid)

    ref = sequential()          # also warms BLAS/page caches
    got = sweep()
    for a, b in zip(ref, got):
        np.testing.assert_array_equal(a, b)

    reps = 3
    t0 = time.perf_counter()
    for _ in range(reps):
        sequential()
    seq_s = (time.perf_counter() - t0) / reps

    benchmark(sweep)
    sweep_s = benchmark.stats.stats.median
    benchmark.extra_info["sweep_ms"] = sweep_s * 1e3
    benchmark.extra_info["sequential_ms"] = seq_s * 1e3
    benchmark.extra_info["sweep_speedup"] = seq_s / sweep_s
    benchmark.extra_info["grid_points"] = len(grid)


def test_edge_engine_inference(benchmark, cfg, pipeline):
    """Integer-path inference cost on the deployed face model."""
    edge = pipeline.face_edge()
    _, val = pipeline.face_datasets()
    x = val.x[:64]
    benchmark(lambda: edge.predict(x))


def test_float_inference_reference(benchmark, cfg, pipeline):
    """Float-path inference on the same face model, for comparison."""
    orig = pipeline.face_original()
    _, val = pipeline.face_datasets()
    x = val.x[:64]
    orig.eval()
    benchmark(lambda: orig(Tensor(x)))


_FLOAT_COALESCE_ARM = """
import sys, time, statistics
import numpy as np
from repro.nn import rowrep, set_default_dtype
set_default_dtype(np.float32)
from repro.models import build_model
from repro.serve import ServeSession
from repro.training import predict_logits
mode = sys.argv[1]
rng = np.random.default_rng(0)
model = build_model("resnet", num_classes=10, width=8, seed=0)
model.eval()
# many small per-tenant scoring requests against one served float model
# (the request mix the coalescer exists for)
sizes = [5, 16, 9, 24, 7, 12, 18, 6, 21, 10, 8, 14] * 2
batches = [rng.random((n, 3, 16, 16)).astype(np.float32) for n in sizes]
if mode == "integer":
    # the integer reference: the same request mix against an int8 edge
    # artifact (feed-forward lenet; resnets are not edge-compilable),
    # whose exact arithmetic always coalesced freely
    from repro.edge import compile_edge
    from repro.quantization import calibrate, prepare_qat
    lenet = build_model("lenet", num_classes=10, in_channels=3,
                        image_size=16, width=8, seed=1)
    lenet.eval()
    q = prepare_qat(lenet, weight_bits=8, act_bits=8, per_channel=True)
    calibrate(q, np.concatenate(batches[:3], axis=0))
    q.freeze()
    target = compile_edge(q, 10)
else:
    target = model
if mode == "sequential":
    # per-request handling, pre-coalescing: each job scores its own rows
    # under the row-reproducible mode (the solo float reference)
    def fn():
        out = []
        for x in batches:
            with rowrep.row_reproducible():
                out.append(predict_logits(model, x))
        return out
else:
    session = ServeSession(capacity=64)
    def fn():
        futs = [session.submit_predict(target, x) for x in batches]
        return [f.result() for f in futs]
fn()    # warm plans and BLAS caches
times = []
for _ in range(7):
    t0 = time.perf_counter()
    fn()
    times.append(time.perf_counter() - t0)
print(statistics.median(times))
"""


def _float_coalesce_arm_seconds(mode):
    """Median seconds to serve one float-predict burst in its own
    process (same isolation rationale as the train-step arms)."""
    import subprocess
    import sys
    out = subprocess.run([sys.executable, "-c", _FLOAT_COALESCE_ARM, mode],
                         capture_output=True, text=True, check=True)
    return float(out.stdout.strip().splitlines()[-1])


def test_float_coalesce(benchmark):
    """Float-predict burst (24 small jobs, one resnet) served coalesced
    vs each job alone — the float analogue of ``test_serve_throughput``.

    Float coalescing was impossible before the row-reproducible GEMM
    mode: BLAS per-row bits change with batch composition, so merging
    tenants' rows changed results.  With the mode on, the coalesced arm
    merges every compatible job into shared compiled passes; the
    sequential arm runs each job's rows alone under the same mode (the
    bit-reference).  The ``integer`` arm serves the identical request
    mix against an int8 edge artifact (feed-forward lenet) — the
    exact-arithmetic path whose coalescing freedom the float path now
    matches.  Per-job bytes are asserted identical across
    coalesced/solo/sequential in-process below.
    """
    from repro.models import build_model
    from repro.nn import rowrep
    from repro.serve import ServeSession
    from repro.training import predict_logits

    seq_s = _float_coalesce_arm_seconds("sequential")
    co_s = _float_coalesce_arm_seconds("coalesced")
    int_s = _float_coalesce_arm_seconds("integer")

    # in-process hard parity gate: coalesced == solo == sequential rr
    rng = np.random.default_rng(0)
    model = build_model("resnet", num_classes=10, width=8, seed=0)
    model.eval()
    batches = [rng.random((n, 3, 16, 16)).astype(np.float32)
               for n in (5, 16, 9, 24)]
    refs = []
    for x in batches:
        with rowrep.row_reproducible():
            refs.append(predict_logits(model, x))
    for coalesce in (True, False):
        session = ServeSession(capacity=64, float_coalesce=coalesce)
        futs = [session.submit_predict(model, x) for x in batches]
        for ref, fut in zip(refs, futs):
            np.testing.assert_array_equal(fut.result(), ref)

    session = ServeSession(capacity=64)

    def burst():
        futs = [session.submit_predict(model, x) for x in batches]
        return [f.result() for f in futs]

    burst()
    benchmark(burst)
    benchmark.extra_info["float_jobs"] = 24
    benchmark.extra_info["float_rows"] = sum(
        [5, 16, 9, 24, 7, 12, 18, 6, 21, 10, 8, 14] * 2)
    benchmark.extra_info["float_sequential_ms"] = seq_s * 1e3
    benchmark.extra_info["float_coalesced_ms"] = co_s * 1e3
    benchmark.extra_info["float_integer_ms"] = int_s * 1e3
    benchmark.extra_info["float_coalesce_speedup"] = seq_s / co_s


def test_rowrep_gemm_overhead(benchmark):
    """Fixed-order blocked accumulation vs raw BLAS at the serving
    GEMM shape (full 256-row blocks, classifier-head fan-out).

    The row-reproducible mode buys composition-independent bits by
    pinning the accumulation order; this measures what that costs when
    the blocking is respected (coalesced dispatches always are — the
    scheduler merges small jobs into full blocks).  Ragged sub-block
    batches pay more (tail padding), which is exactly the cost
    coalescing amortizes away.
    """
    from repro.nn import rowrep
    rng = np.random.default_rng(0)
    a = rng.standard_normal((2 * rowrep.ROW_BLOCK, 512)).astype(np.float32)
    b = rng.standard_normal((512, 10)).astype(np.float32)
    out = np.empty((len(a), 10), dtype=np.float32)

    def raw():
        np.matmul(a, b, out=out)

    def rr():
        rowrep.rr_matmul(a, b, out=out)

    raw(), rr()                              # warm scratch + BLAS caches
    reps, chunk = 30, 20

    def median_s(fn):
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            for _ in range(chunk):
                fn()
            times.append((time.perf_counter() - t0) / chunk)
        times.sort()
        return times[len(times) // 2]

    raw_s = median_s(raw)
    rr_s = median_s(rr)
    benchmark(rr)
    benchmark.extra_info["rowrep_rows"] = len(a)
    benchmark.extra_info["rowrep_raw_ns"] = raw_s * 1e9
    benchmark.extra_info["rowrep_rr_ns"] = rr_s * 1e9
    benchmark.extra_info["rowrep_overhead_pct"] = (rr_s / raw_s - 1) * 100


_NET_SERVING_ARM = """
import sys, time, statistics
from repro.serve import (ManualClock, ServeSession, assign_arrivals,
                         build_workload, mixed_workload_spec, replay_serve)
from repro.serve.net import ServeClient, ServeServer, replay_net
mode = sys.argv[1]
spec = assign_arrivals(mixed_workload_spec(scale=2), rate_hz=500.0)
w = build_workload(spec)
# Long-lived state is symmetric: ONE session (and its shared PlanCache)
# persists across bursts in both arms.  The arms differ only at the
# boundary: in-process submit/drain calls vs the full frame protocol
# over a loopback socket with the retrying idempotent client (pump
# mode, shared manual clock, so no real waits enter the measurement).
if mode == "net":
    clock = ManualClock()
    session = ServeSession(capacity=64, clock=clock)
    server = ServeServer(session, spec=w.spec,
                         models=(w.original, w.adapted, w.edge))
    client = ServeClient(server.host, server.port, clock=clock,
                         attempt_timeout_s=5.0, pump=server.poll)
    fn = lambda: replay_net(w, client, rate=100.0)
else:
    session = ServeSession(capacity=64)
    fn = lambda: replay_serve(w, session=session)
fn()    # warm BLAS/page caches and the plan cache
chunks = []
for _ in range(5):
    t0 = time.perf_counter()
    fn()
    chunks.append(time.perf_counter() - t0)
print(statistics.median(chunks))
"""


def _net_serving_arm_seconds(mode):
    """Median seconds per mixed burst, in its own process (same
    isolation rationale as the other end-to-end arms)."""
    import subprocess
    import sys
    out = subprocess.run([sys.executable, "-c", _NET_SERVING_ARM, mode],
                         capture_output=True, text=True, check=True)
    return float(out.stdout.strip().splitlines()[-1])


def test_net_serving(benchmark):
    """The socket boundary's toll: the recorded mixed workload served
    through the networked front end (frame protocol, loopback TCP,
    idempotency bookkeeping, journal-free) vs the same session driven
    in-process — the cost of moving from a library to a service.

    Both arms are process-isolated with one long-lived session each;
    the net arm adds encode/CRC/socket/decode per request and response
    plus the client's retry machinery (which never fires here — the
    clean-path overhead is the point).  The hard gates run in-process:
    every ok result bit-identical to the solo run over the wire, clean
    and under seeded drop/duplicate/delay/truncate frame chaos; the
    chaos arm's retry/dedup counts land in the trajectory so retries
    silently turning into re-executions would show as a perf cliff.
    """
    from repro.serve import (ManualClock, ServeSession, assign_arrivals,
                             build_workload, default_net_chaos_specs,
                             mixed_workload_spec)
    from repro.serve.net import (ServeClient, ServeServer, replay_net,
                                 verify_net_parity)
    from repro.serve.workload import replay_sequential

    inproc_s = _net_serving_arm_seconds("inproc")
    net_s = _net_serving_arm_seconds("net")

    spec = assign_arrivals(mixed_workload_spec(scale=2), rate_hz=500.0)
    w = build_workload(spec)
    reference = replay_sequential(w)["results"]
    verify_net_parity(w, rate=100.0, reference=reference)   # clean gate
    chaos = verify_net_parity(w, fault_specs=default_net_chaos_specs(),
                              seed=0, rate=100.0, reference=reference)

    clock = ManualClock()
    session = ServeSession(capacity=64, clock=clock)
    server = ServeServer(session, spec=w.spec,
                         models=(w.original, w.adapted, w.edge))
    client = ServeClient(server.host, server.port, clock=clock,
                         attempt_timeout_s=5.0, pump=server.poll)
    try:
        benchmark(lambda: replay_net(w, client, rate=100.0))
    finally:
        client.close()
        server.shutdown()
    benchmark.extra_info["net_jobs"] = len(w.jobs)
    benchmark.extra_info["net_rows"] = w.rows
    benchmark.extra_info["net_inproc_ms"] = inproc_s * 1e3
    benchmark.extra_info["net_loopback_ms"] = net_s * 1e3
    benchmark.extra_info["net_boundary_overhead_pct"] = \
        (net_s / inproc_s - 1) * 100
    benchmark.extra_info["net_chaos_retried"] = chaos["retried"]
    benchmark.extra_info["net_chaos_deduped"] = chaos["deduped"]
    benchmark.extra_info["net_chaos_ok"] = \
        chaos["outcome_counts"].get("ok", 0)
