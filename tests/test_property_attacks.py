"""Property-based tests for attack invariants (projection, masks,
pruning)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.attacks import linf_distance, project_linf
from repro.pruning import magnitude_mask

SETTINGS = dict(max_examples=40, deadline=None)

images = hnp.arrays(
    dtype=np.float64, shape=st.tuples(st.integers(1, 3), st.integers(1, 2),
                                      st.integers(2, 6), st.integers(2, 6)),
    elements=st.floats(0, 1, allow_nan=False, width=64))


@given(images, st.floats(0.01, 0.5))
@settings(**SETTINGS)
def test_projection_always_in_ball_and_range(x, eps):
    rng = np.random.default_rng(0)
    adv = x + rng.normal(0, 1.0, size=x.shape)
    proj = project_linf(adv, x, eps)
    assert linf_distance(proj, x).max() <= eps + 1e-9
    assert proj.min() >= 0.0 and proj.max() <= 1.0


@given(images, st.floats(0.01, 0.5))
@settings(**SETTINGS)
def test_projection_idempotent(x, eps):
    rng = np.random.default_rng(1)
    adv = x + rng.normal(0, 0.3, size=x.shape)
    once = project_linf(adv, x, eps)
    twice = project_linf(once, x, eps)
    assert np.allclose(once, twice)


@given(hnp.arrays(dtype=np.float64, shape=st.tuples(st.integers(2, 20),
                                                    st.integers(2, 20)),
                  elements=st.floats(-10, 10, allow_nan=False, width=64)),
       st.floats(0.0, 0.95))
@settings(**SETTINGS)
def test_mask_sparsity_never_exceeds_target_by_much(w, sparsity):
    mask = magnitude_mask(w, sparsity)
    realized = 1.0 - mask.mean()
    # floor(k) semantics: realized sparsity <= requested
    assert realized <= sparsity + 1e-9


@given(hnp.arrays(dtype=np.float64, shape=st.integers(4, 100),
                  elements=st.floats(-10, 10, allow_nan=False, width=64)))
@settings(**SETTINGS)
def test_mask_keeps_largest_magnitudes(w):
    mask = magnitude_mask(w, 0.5)
    kept = np.abs(w[mask == 1])
    dropped = np.abs(w[mask == 0])
    if len(kept) and len(dropped):
        assert kept.min() >= dropped.max() - 1e-12
