"""Fake quantization with a straight-through estimator.

The forward pass snaps values to the integer grid (quantize-dequantize);
the backward pass passes gradients straight through inside the
representable range and zeroes them outside (the clamped STE of Bengio et
al. 2013, used by QAT).  This is the mechanism that makes the adapted
model differentiable — the property §6 of the paper relies on ("Tflite
supports only inference ... we use QAT's gradients").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import tensor as _tensor
from ..nn.module import Module
from ..nn.tensor import Tensor
from .affine import QuantParams, fake_quantize_array
from .observers import (MinMaxObserver, MovingAverageMinMaxObserver, Observer,
                        PerChannelMinMaxObserver)


def fake_quant_ste(x: Tensor, qp: QuantParams,
                   module: Optional["FakeQuantize"] = None) -> Tensor:
    """Differentiable fake-quantize of ``x`` under params ``qp``.

    ``module`` — when the call comes from a :class:`FakeQuantize` —
    travels with the traced op so the training-step compiler can re-read
    a moving quantization grid on every replay; the forward executor
    keeps folding the snapshot ``qp``.
    """
    data = fake_quantize_array(x.data, qp)
    out = Tensor(data, requires_grad=x.requires_grad,
                 _parents=(x,) if x.requires_grad else ())
    if x.requires_grad:
        s = qp.scale_for(x.data.ndim)
        z = qp.zero_point_for(x.data.ndim)
        lo = (qp.qmin - z) * s
        hi = (qp.qmax - z) * s
        mask = (x.data >= lo) & (x.data <= hi)

        def _bw(g, x=x, m=mask):
            if x.requires_grad:
                x._accumulate(g * m, owned=True)
        out._backward = _bw
    if _tensor._GRAPH_TRACER is not None:
        _tensor._GRAPH_TRACER.emit("fake_quant", (x,), out,
                                   {"qp": qp, "fq": module})
    return out


class FakeQuantize(Module):
    """Observer + fake-quant op as a module.

    While ``training`` and ``observer_enabled``, each forward updates the
    observer with the incoming statistics; the quantization grid is then
    recomputed from the observer. Calling :meth:`freeze` pins the grid
    (equivalent to converting for deployment).
    """

    def __init__(self, observer: Optional[Observer] = None):
        super().__init__()
        self.observer = observer if observer is not None else \
            MovingAverageMinMaxObserver(bits=8, signed=True, symmetric=False)
        self.observer_enabled = True
        self.fake_quant_enabled = True
        self._frozen_qparams: Optional[QuantParams] = None

    # -- construction helpers ------------------------------------------- #
    @classmethod
    def for_weights(cls, bits: int = 8, per_channel: bool = True) -> "FakeQuantize":
        """Symmetric signed quantizer, per-channel by default (axis 0)."""
        if per_channel:
            obs = PerChannelMinMaxObserver(bits=bits, signed=True, symmetric=True, axis=0)
        else:
            obs = MinMaxObserver(bits=bits, signed=True, symmetric=True)
        return cls(obs)

    @classmethod
    def for_activations(cls, bits: int = 8, momentum: float = 0.1) -> "FakeQuantize":
        """Asymmetric signed per-tensor quantizer with EMA observer."""
        return cls(MovingAverageMinMaxObserver(bits=bits, signed=True,
                                               symmetric=False, momentum=momentum))

    # -- control --------------------------------------------------------- #
    def freeze(self) -> None:
        """Pin the current grid; observers stop mattering afterwards."""
        self._frozen_qparams = self.observer.compute_qparams()
        self.observer_enabled = False

    def unfreeze(self) -> None:
        self._frozen_qparams = None
        self.observer_enabled = True

    @property
    def frozen(self) -> bool:
        return self._frozen_qparams is not None

    def qparams(self) -> QuantParams:
        if self._frozen_qparams is not None:
            return self._frozen_qparams
        return self.observer.compute_qparams()

    # -- forward ---------------------------------------------------------- #
    def _observe(self, xd: np.ndarray) -> None:
        """Observer update as a replayable effect: the training-step
        compiler records this exact callable so compiled steps move the
        grid precisely the way eager steps do."""
        self.observer.observe(xd)

    def forward(self, x: Tensor) -> Tensor:
        if self.observer_enabled and self.training and not self.frozen:
            self._observe(x.data)
            if _tensor._GRAPH_TRACER is not None:
                _tensor._GRAPH_TRACER.emit_effect(self._observe, x)
        if not self.fake_quant_enabled:
            return x
        if not self.frozen and not self.observer.initialized:
            # first ever call in eval mode before any observation: identity
            if not self.training:
                return x
        return fake_quant_ste(x, self.qparams(), module=self)

    def __repr__(self):
        kind = type(self.observer).__name__
        return f"FakeQuantize({kind}, bits={self.observer.bits}, frozen={self.frozen})"
