"""Training loop and batched evaluation."""

import numpy as np
import pytest

from repro.models import build_model
from repro.training import (evaluate_accuracy, evaluate_loss,
                            evaluate_topk_accuracy, fit, predict_labels,
                            predict_logits, predict_probs)


class TestFit:
    def test_loss_decreases(self, tiny_dataset):
        train, _ = tiny_dataset
        model = build_model("resnet", num_classes=6, width=4, seed=2)
        result = fit(model, train.x, train.y, epochs=3, batch_size=32,
                     lr=0.03, seed=0)
        assert result.train_loss[-1] < result.train_loss[0]

    def test_deterministic_given_seed(self, tiny_dataset):
        train, val = tiny_dataset
        outs = []
        for _ in range(2):
            model = build_model("resnet", num_classes=6, width=4, seed=2)
            fit(model, train.x, train.y, epochs=1, batch_size=32, lr=0.02,
                seed=7)
            outs.append(predict_logits(model, val.x[:4]))
        assert np.allclose(outs[0], outs[1])

    def test_val_history_recorded(self, tiny_dataset):
        train, val = tiny_dataset
        model = build_model("resnet", num_classes=6, width=4, seed=2)
        result = fit(model, train.x, train.y, epochs=2, batch_size=32,
                     lr=0.02, x_val=val.x, y_val=val.y)
        assert len(result.val_accuracy) == 2
        assert result.final_val_accuracy == result.val_accuracy[-1]

    def test_learns_above_chance(self, tiny_dataset):
        train, val = tiny_dataset
        model = build_model("resnet", num_classes=6, width=4, seed=2)
        fit(model, train.x, train.y, epochs=5, batch_size=32, lr=0.03)
        assert evaluate_accuracy(model, val.x, val.y) > 1 / 6 + 0.15

    def test_augmentation_hook_called(self, tiny_dataset):
        train, _ = tiny_dataset
        calls = []

        def aug(xb, rng):
            calls.append(len(xb))
            return xb
        model = build_model("resnet", num_classes=6, width=4, seed=2)
        fit(model, train.x, train.y, epochs=1, batch_size=32, augment=aug)
        assert sum(calls) == len(train.x)

    def test_model_left_in_eval_mode(self, tiny_dataset):
        train, _ = tiny_dataset
        model = build_model("resnet", num_classes=6, width=4, seed=2)
        fit(model, train.x, train.y, epochs=1, batch_size=32)
        assert not model.training


class TestEvaluate:
    def test_probs_normalized(self, tiny_model, tiny_dataset):
        _, val = tiny_dataset
        p = predict_probs(tiny_model, val.x[:10])
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_batching_invariant(self, tiny_model, tiny_dataset):
        _, val = tiny_dataset
        a = predict_logits(tiny_model, val.x[:10], batch_size=3)
        b = predict_logits(tiny_model, val.x[:10], batch_size=10)
        assert np.allclose(a, b)

    def test_topk_at_least_top1(self, tiny_model, tiny_dataset):
        _, val = tiny_dataset
        top1 = evaluate_accuracy(tiny_model, val.x, val.y)
        top3 = evaluate_topk_accuracy(tiny_model, val.x, val.y, k=3)
        assert top3 >= top1

    def test_topk_full_is_one(self, tiny_model, tiny_dataset):
        _, val = tiny_dataset
        assert evaluate_topk_accuracy(tiny_model, val.x, val.y, k=6) == 1.0

    def test_loss_positive(self, tiny_model, tiny_dataset):
        _, val = tiny_dataset
        assert evaluate_loss(tiny_model, val.x, val.y) > 0
