"""PGD (Madry et al.) and Momentum PGD (Dong et al.) — the paper's
primary and secondary baselines.

The baseline configuration follows §5.1: the PGD attack targets *the
adapted model* (the attacker wants the edge device to mispredict);
evasiveness against the original model is whatever transfer happens to
give — which Fig 1 shows is poor, motivating DIVA.

The gradient runs through the compiled executor when the model is
traceable (falling back to the eager tape otherwise), and the logits it
produces double as the keep-best success check — one model pass per
step instead of two.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import (Attack, DEFAULT_ALPHA, DEFAULT_EPS, DEFAULT_STEPS,
                   input_gradient, softmax_np)


def _ce_sum_seed(logits: np.ndarray, y: np.ndarray) -> np.ndarray:
    """d(sum cross-entropy)/d(logits) = softmax - onehot."""
    seed = softmax_np(logits)
    seed[np.arange(len(y)), y] -= 1.0
    return seed


class PGD(Attack):
    """Projected gradient descent on cross-entropy of the target model."""

    def __init__(self, model: Module, eps: float = DEFAULT_EPS,
                 alpha: float = DEFAULT_ALPHA, steps: int = DEFAULT_STEPS,
                 random_start: bool = False, keep_best: bool = True,
                 seed: int = 0):
        super().__init__(eps, alpha, steps, random_start, keep_best, seed)
        self.model = model
        self.model.eval()

    def serve_signature(self):
        """Merge PGD jobs targeting the same model with the same step
        count (eps/alpha/keep_best are per-item in the scheduler)."""
        return (type(self).__qualname__, id(self.model), self.steps)

    def _loop_spec(self, x: np.ndarray):
        """Whole-loop recipe: one compiled program, CE-sum seeds.

        Refused for subclasses that change the gradient (MomentumPGD's
        velocity is loop-carried state the recorded loop does not model)
        or the step rule, and when the model does not compile.
        """
        from .base import Attack
        from .loop import LoopSpec
        if (type(self).gradient_with_logits is not PGD.gradient_with_logits
                or type(self)._step is not Attack._step):
            return None
        ex = self._compiled(self.model, x)
        if ex is None:
            return None
        return LoopSpec(
            programs=[ex],
            seeds=lambda outs, y, variant: [_ce_sum_seed(outs[0], y)],
            aux_of=lambda outs: outs[0])

    def gradient(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.gradient_with_logits(x_adv, y)[0]

    def gradient_with_logits(self, x_adv: np.ndarray, y: np.ndarray,
                             variant: Optional[Dict[str, np.ndarray]] = None,
                             ) -> Tuple[np.ndarray, Any]:
        y = np.asarray(y)
        ex = self._compiled(self.model, x_adv)
        if ex is not None:
            logits, g = ex.value_and_input_grad(
                x_adv, lambda z: _ce_sum_seed(z, y))
            return g, logits
        cap = {}

        def loss(xt: Tensor) -> Tensor:
            z = self.model(xt)
            cap["logits"] = z.data
            return F.cross_entropy(z, y, reduction="sum")
        return input_gradient(loss, x_adv), cap["logits"]

    def success_logits(self, x_adv: np.ndarray, y: np.ndarray) -> Any:
        ex = self._compiled(self.model, x_adv)
        if ex is not None:
            return ex.replay(x_adv, copy=False)
        return self.model(Tensor(x_adv)).data

    def success_from_logits(self, aux: Any, y: np.ndarray) -> Optional[np.ndarray]:
        """PGD's own goal: the target model mispredicts."""
        if aux is None:
            return None
        return aux.argmax(axis=1) != np.asarray(y)

    def is_success(self, x_adv: np.ndarray, y: np.ndarray) -> np.ndarray:
        from ..training.evaluate import predict_labels
        return predict_labels(self.model, x_adv, batch_size=len(x_adv)) != y


class MomentumPGD(PGD):
    """PGD with gradient momentum (MI-FGSM).

    Accumulates an L1-normalized gradient moving average; §5.4 evaluates
    it with ``mu = 0.5``.  The velocity is full-batch state, so the loop
    must not shrink the batch as samples succeed.
    """

    shrink_done = False

    def __init__(self, model: Module, eps: float = DEFAULT_EPS,
                 alpha: float = DEFAULT_ALPHA, steps: int = DEFAULT_STEPS,
                 mu: float = 0.5, random_start: bool = False,
                 keep_best: bool = True, seed: int = 0):
        super().__init__(model, eps, alpha, steps, random_start, keep_best, seed)
        self.mu = float(mu)
        self._velocity = None

    def _init(self, x: np.ndarray) -> np.ndarray:
        self._velocity = np.zeros_like(x)   # reset per batch
        return super()._init(x)

    def gradient_with_logits(self, x_adv: np.ndarray, y: np.ndarray,
                             variant: Optional[Dict[str, np.ndarray]] = None,
                             ) -> Tuple[np.ndarray, Any]:
        g, aux = super().gradient_with_logits(x_adv, y, variant)
        norm = np.abs(g).reshape(len(g), -1).mean(axis=1)
        norm = np.maximum(norm, 1e-12).reshape(-1, *([1] * (g.ndim - 1)))
        self._velocity = self.mu * self._velocity + g / norm
        return self._velocity, aux
