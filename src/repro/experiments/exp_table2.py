"""Table 2: evasion cost — success *solely against the adapted model*.

The paper generates DIVA samples as usual (joint objective) but scores
them only on whether the adapted model flips, comparing against PGD's
flip rate: quantization — PGD 98.4-98.7% vs DIVA 95.1-97.0% (1.7-3.6%
cost); pruning — both 100%; pruning+quantization — PGD 98.4-99.7% vs
DIVA 98-99.7%.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..attacks import DIVA, PGD
from ..metrics import evaluate_attack
from .config import ARCHITECTURES, ExperimentConfig
from .pipeline import Pipeline
from .tables import format_table, save_results


def run(cfg: Optional[ExperimentConfig] = None,
        pipeline: Optional[Pipeline] = None, include_pruning: bool = True,
        verbose: bool = True) -> Dict:
    cfg = cfg if cfg is not None else ExperimentConfig.paper_scale()
    pipe = pipeline if pipeline is not None else Pipeline(cfg)

    results: Dict = {"quantized": {}, "pruned": {}, "pruned_quantized": {}}
    tracks = [("quantized", lambda a: pipe.quantized(a))]
    if include_pruning:
        tracks += [("pruned", lambda a: pipe.pruned(a)),
                   ("pruned_quantized", lambda a: pipe.pruned_quantized(a))]

    rows = []
    for track, getter in tracks:
        for arch in ARCHITECTURES:
            orig = pipe.original(arch)
            adapted = getter(arch)
            atk_set = pipe.attack_set([orig, adapted], f"table2-{track}-{arch}")
            kw = dict(eps=cfg.eps, alpha=cfg.alpha, steps=cfg.steps)
            x_pgd = PGD(adapted, **kw).generate(atk_set.x, atk_set.y)
            # §5.3: a large c shifts DIVA toward pure attack success,
            # shrinking the evasion cost at the expense of evasiveness —
            # both c points run as one sweep on the shared program pair
            x_diva, x_diva10 = DIVA(orig, adapted, c=cfg.c, **kw).generate_sweep(
                atk_set.x, atk_set.y, [{}, {"c": 10.0}])
            rp = evaluate_attack(orig, adapted, x_pgd, atk_set.y, topk=cfg.topk)
            rd = evaluate_attack(orig, adapted, x_diva, atk_set.y, topk=cfg.topk)
            rd10 = evaluate_attack(orig, adapted, x_diva10, atk_set.y,
                                   topk=cfg.topk)
            results[track][arch] = {
                "pgd_attack_only": rp.attack_only_success_rate,
                "diva_attack_only": rd.attack_only_success_rate,
                "diva_c10_attack_only": rd10.attack_only_success_rate,
                "evasion_cost": rp.attack_only_success_rate
                                - rd.attack_only_success_rate,
                "evasion_cost_c10": rp.attack_only_success_rate
                                    - rd10.attack_only_success_rate,
            }
            rows.append([track, arch,
                         f"{rp.attack_only_success_rate:.1%}",
                         f"{rd.attack_only_success_rate:.1%}",
                         f"{rd10.attack_only_success_rate:.1%}",
                         f"{rp.attack_only_success_rate - rd.attack_only_success_rate:+.1%}"])

    table = format_table(
        ["Adaptation", "Architecture", "PGD attack-only",
         "DIVA attack-only", "DIVA c=10", "Evasion cost (c=1)"],
        rows, title="Table 2 — attack success solely against adapted models")
    results["table"] = table
    if verbose:
        print(table)
    save_results("table2", results)
    return results
