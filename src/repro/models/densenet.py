"""DenseNet (Huang et al.) scaled for small-image experiments.

Dense connectivity (feature concatenation) + transition downsampling —
the third architecture family in the paper's evaluation (DenseNet121).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import functional as F
from ..nn.layers import (AvgPool2d, BatchNorm2d, Conv2d, GlobalAvgPool2d,
                         Linear, ReLU)
from ..nn.module import Module, ModuleList
from ..nn.tensor import Tensor, concat


class DenseLayer(Module):
    """BN-ReLU-Conv3x3 producing ``growth`` new channels."""

    def __init__(self, in_ch: int, growth: int, rng: np.random.Generator):
        super().__init__()
        self.bn = BatchNorm2d(in_ch)
        self.relu = ReLU()
        self.conv = Conv2d(in_ch, growth, 3, padding=1, rng=rng, bias=False)

    def forward(self, x: Tensor) -> Tensor:
        return self.conv(self.relu(self.bn(x)))


class DenseBlock(Module):
    """``n_layers`` DenseLayers, each consuming the concat of all priors."""

    def __init__(self, in_ch: int, growth: int, n_layers: int,
                 rng: np.random.Generator):
        super().__init__()
        layers = []
        ch = in_ch
        for _ in range(n_layers):
            layers.append(DenseLayer(ch, growth, rng))
            ch += growth
        self.layers = ModuleList(layers)
        self.out_channels = ch

    def forward(self, x: Tensor) -> Tensor:
        feats = x
        for layer in self.layers:
            new = layer(feats)
            feats = concat([feats, new], axis=1)
        return feats


class Transition(Module):
    """1x1 conv (channel compression) + 2x2 average pooling."""

    def __init__(self, in_ch: int, out_ch: int, rng: np.random.Generator):
        super().__init__()
        self.bn = BatchNorm2d(in_ch)
        self.relu = ReLU()
        self.conv = Conv2d(in_ch, out_ch, 1, rng=rng, bias=False)
        self.pool = AvgPool2d(2)

    def forward(self, x: Tensor) -> Tensor:
        return self.pool(self.conv(self.relu(self.bn(x))))


class DenseNet(Module):
    """Small-image DenseNet: stem, dense blocks with transitions, GAP head."""

    def __init__(self, num_classes: int = 10, growth: int = 4,
                 block_layers: Optional[List[int]] = None, width: int = 8,
                 compression: float = 0.5, in_channels: int = 3, seed: int = 0):
        super().__init__()
        block_layers = block_layers if block_layers is not None else [2, 2]
        rng = np.random.default_rng(seed)
        self.num_classes = num_classes
        self.growth = growth
        self.stem = Conv2d(in_channels, width, 3, padding=1, rng=rng, bias=False)
        blocks = []
        transitions = []
        ch = width
        for i, n_layers in enumerate(block_layers):
            block = DenseBlock(ch, growth, n_layers, rng)
            blocks.append(block)
            ch = block.out_channels
            if i != len(block_layers) - 1:
                out_ch = max(1, int(ch * compression))
                transitions.append(Transition(ch, out_ch, rng))
                ch = out_ch
        self.blocks = ModuleList(blocks)
        self.transitions = ModuleList(transitions)
        self.final_bn = BatchNorm2d(ch)
        self.final_relu = ReLU()
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(ch, num_classes, rng=rng)
        self.feature_dim = ch

    def features(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        n_blocks = len(self.blocks)
        for i in range(n_blocks):
            out = self.blocks[i](out)
            if i < len(self.transitions):
                out = self.transitions[i](out)
        out = self.final_relu(self.final_bn(out))
        return self.pool(out)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(self.features(x))
