"""Parametric face dataset — the PubFig stand-in for the §6 case study.

PubFig is 11,640 images of 150 public figures.  Our substitute assigns
each identity a vector of facial-geometry and appearance parameters
(face-oval shape, skin tone, eye spacing/size, brow angle, mouth shape,
hair color/line) and renders each image with per-instance pose jitter,
lighting and noise.  What the case study needs is preserved: a
fine-grained many-identity task where the same trunk must separate many
visually-similar classes, with few samples per class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .datasets import ArrayDataset


@dataclass(frozen=True)
class SynthFacesConfig:
    num_identities: int = 40
    image_size: int = 32
    noise: float = 0.06
    pose_jitter: float = 0.035
    seed: int = 23


def _identity_params(ident: int, cfg: SynthFacesConfig) -> dict:
    rng = np.random.default_rng((cfg.seed, ident, 0xFACE))
    return {
        "skin": rng.uniform(0.45, 0.85) * np.array([1.0, 0.82, 0.70]) *
                rng.uniform(0.9, 1.1, size=3),
        "face_ax": rng.uniform(0.26, 0.34),       # semi-axis x
        "face_ay": rng.uniform(0.32, 0.42),       # semi-axis y
        "eye_y": rng.uniform(0.38, 0.46),
        "eye_dx": rng.uniform(0.10, 0.16),        # half eye separation
        "eye_r": rng.uniform(0.025, 0.045),
        "pupil_r": rng.uniform(0.010, 0.020),
        "brow_dy": rng.uniform(0.05, 0.09),
        "brow_tilt": rng.uniform(-0.35, 0.35),
        "brow_w": rng.uniform(0.05, 0.09),
        "nose_len": rng.uniform(0.08, 0.14),
        "nose_w": rng.uniform(0.015, 0.035),
        "mouth_y": rng.uniform(0.66, 0.74),
        "mouth_w": rng.uniform(0.07, 0.13),
        "mouth_curve": rng.uniform(-0.03, 0.05),
        "mouth_th": rng.uniform(0.012, 0.022),
        "hair_color": rng.uniform(0.05, 0.55, size=3) * np.array([1.0, 0.8, 0.6]),
        "hairline": rng.uniform(0.16, 0.26),
        "bg": rng.uniform(0.55, 0.95, size=3),
    }


def _soft(x: np.ndarray, sharp: float = 60.0) -> np.ndarray:
    """Smooth 0/1 step: sigmoid(sharp * x), overflow-safe."""
    return 1.0 / (1.0 + np.exp(np.clip(-sharp * x, -60.0, 60.0)))


def render_face(params: dict, rng: np.random.Generator,
                cfg: SynthFacesConfig) -> np.ndarray:
    """Render one face instance as (3, S, S) in [0, 1]."""
    s = cfg.image_size
    yy, xx = np.meshgrid(np.linspace(0, 1, s), np.linspace(0, 1, s), indexing="ij")
    j = lambda v: v + rng.normal(0, cfg.pose_jitter)          # pose jitter
    cx, cy = j(0.5), j(0.5)

    img = np.ones((3, s, s)) * params["bg"][:, None, None]
    img *= 1.0 + rng.normal(0, 0.05, size=(3, 1, 1))

    ax, ay = j(params["face_ax"]), j(params["face_ay"])
    face = _soft(1.0 - ((xx - cx) / max(ax, 1e-3)) ** 2
                 - ((yy - cy) / max(ay, 1e-3)) ** 2, 25.0)
    skin = params["skin"] * (1.0 + rng.normal(0, 0.04, size=3))
    img = img * (1 - face) + skin[:, None, None] * face

    hair_top = cy - ay + j(params["hairline"])
    hair = face * _soft(hair_top - yy, 40.0)
    img = img * (1 - hair) + params["hair_color"][:, None, None] * hair

    eye_y = cy - 0.5 + j(params["eye_y"])
    for side in (-1, 1):
        ex = cx + side * j(params["eye_dx"])
        ey = cy - 0.5 + params["eye_y"] + rng.normal(0, cfg.pose_jitter * 0.5)
        d2 = (xx - ex) ** 2 + (yy - ey) ** 2
        white = _soft(params["eye_r"] ** 2 - d2, 4000.0)
        img = img * (1 - white) + 0.95 * white
        pupil = _soft(params["pupil_r"] ** 2 - d2, 8000.0)
        img = img * (1 - pupil) + 0.05 * pupil
        # brow: tilted bar above the eye
        by = ey - params["brow_dy"]
        brow = (_soft(params["brow_w"] - np.abs(xx - ex), 300.0) *
                _soft(0.012 - np.abs((yy - by) - params["brow_tilt"] * side *
                                     (xx - ex)), 400.0))
        img = img * (1 - brow) + 0.1 * brow

    nose = (_soft(params["nose_w"] - np.abs(xx - cx), 400.0) *
            _soft(params["nose_len"] / 2 - np.abs(yy - cy), 200.0))
    img = img * (1 - 0.25 * nose) + 0.25 * nose * (skin * 0.7)[:, None, None]

    my = cy - 0.5 + j(params["mouth_y"])
    curve = params["mouth_curve"] * np.cos(np.pi * (xx - cx) / max(params["mouth_w"], 1e-3))
    mouth = (_soft(params["mouth_w"] - np.abs(xx - cx), 300.0) *
             _soft(params["mouth_th"] - np.abs(yy - my - curve), 500.0))
    mouth_color = np.array([0.55, 0.15, 0.15])
    img = img * (1 - mouth) + mouth_color[:, None, None] * mouth

    gdir = rng.uniform(0, 2 * np.pi)
    gstr = rng.uniform(0.0, 0.12)
    light = gstr * (np.cos(gdir) * (xx - 0.5) + np.sin(gdir) * (yy - 0.5))
    img += light[None, :, :]
    img += rng.normal(0, cfg.noise, size=img.shape)
    return np.clip(img, 0, 1)


def generate_synth_faces(n_per_identity: int,
                         cfg: Optional[SynthFacesConfig] = None,
                         split_seed: int = 0) -> ArrayDataset:
    """Balanced identity dataset (labels are identity indices)."""
    cfg = cfg if cfg is not None else SynthFacesConfig()
    xs, ys = [], []
    for ident in range(cfg.num_identities):
        params = _identity_params(ident, cfg)
        rng = np.random.default_rng((cfg.seed, ident, split_seed, 0xF0))
        for _ in range(n_per_identity):
            xs.append(render_face(params, rng, cfg))
        ys.append(np.full(n_per_identity, ident, dtype=np.int64))
    x = np.stack(xs).astype(np.float32)
    y = np.concatenate(ys)
    order = np.random.default_rng((cfg.seed, split_seed, 0xFA)).permutation(len(x))
    return ArrayDataset(x[order], y[order], cfg.num_identities)
