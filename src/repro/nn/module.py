"""Module system: parameter registration, train/eval mode, state dicts.

Mirrors the familiar torch.nn.Module contract at the scale this project
needs: attribute assignment auto-registers parameters, buffers and child
modules; ``state_dict``/``load_state_dict`` flatten the tree with
dot-separated keys.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a learnable parameter (requires_grad=True)."""

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._buffers.pop(name, None)
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        else:
            # plain attribute; drop any stale registration under this name
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-learnable state included in ``state_dict``."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place of registration."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            sub = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(sub)

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), p
        for name, child in self._modules.items():
            sub = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(sub)

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, b in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), b
        for name, child in self._modules.items():
            sub = f"{prefix}.{name}" if prefix else name
            yield from child.named_buffers(sub)

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # modes
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            object.__setattr__(m, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, p in self.named_parameters():
            state[name] = p.data.copy()
        for name, b in self.named_buffers():
            state[name] = np.asarray(b).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = {}
        # buffers need the owning module to rebind the attribute
        for mod_name, mod in self.named_modules():
            for bname in list(mod._buffers):
                key = f"{mod_name}.{bname}" if mod_name else bname
                own_buffers[key] = (mod, bname)
        missing = (set(own_params) | set(own_buffers)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffers))
        if strict and (missing or unexpected):
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for key, value in state.items():
            if key in own_params:
                p = own_params[key]
                if p.data.shape != value.shape:
                    raise ValueError(f"shape mismatch for {key}: "
                                     f"{p.data.shape} vs {value.shape}")
                p.data = value.astype(p.data.dtype).copy()
            elif key in own_buffers:
                mod, bname = own_buffers[key]
                mod.set_buffer(bname, value.copy())

    def copy_structure(self) -> "Module":
        """Deep-copy this module (new parameters with identical values)."""
        import copy as _copy
        clone = _copy.deepcopy(self)
        return clone

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child = ", ".join(self._modules)
        return f"{type(self).__name__}({child})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *mods: Module):
        super().__init__()
        self._order: List[str] = []
        for i, m in enumerate(mods):
            name = f"m{i}"
            setattr(self, name, m)
            self._order.append(name)

    def append(self, m: Module) -> "Sequential":
        name = f"m{len(self._order)}"
        setattr(self, name, m)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, n) for n in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, i: int) -> Module:
        return getattr(self, self._order[i])

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x


class ModuleList(Module):
    """Indexed container of submodules (registered, not auto-called)."""

    def __init__(self, mods=()):
        super().__init__()
        self._order: List[str] = []
        for m in mods:
            self.append(m)

    def append(self, m: Module) -> "ModuleList":
        name = f"m{len(self._order)}"
        setattr(self, name, m)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, n) for n in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, i: int) -> Module:
        return getattr(self, self._order[i])
