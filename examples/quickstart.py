"""Quickstart: train a model, adapt it to the edge, attack the gap.

Walks the paper's whole story end to end on a small synthetic dataset:

1. train an "original" full-precision ResNet (the server model);
2. adapt it with quantization-aware training (the edge model);
3. observe Table-1-style instability between the two;
4. attack with PGD (baseline) and DIVA, and compare outcomes;
5. dump a Fig-3-style image triple (original / noise / attacked).

Run:  python examples/quickstart.py
"""

import os

import numpy as np

from repro.attacks import DIVA, PGD
from repro.data import (SynthImageNetConfig, select_attack_set,
                        standard_splits)
from repro.metrics import batch_dssim, evaluate_attack, instability_report
from repro.models import build_model
from repro.nn import set_default_dtype
from repro.quantization import prepare_qat, qat_finetune
from repro.training import evaluate_accuracy, fit, predict_probs
from repro.utils import noise_to_image, write_ppm

OUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main() -> None:
    set_default_dtype("float32")

    print("== 1. data + original model (the server-side fp32 model) ==")
    cfg = SynthImageNetConfig(num_classes=20, image_size=16,
                              noise=0.40, jitter=0.20)
    train, val, _ = standard_splits(cfg, train_per_class=120,
                                    val_per_class=40, surrogate_per_class=10)
    original = build_model("resnet", num_classes=20, width=8, seed=0)
    fit(original, train.x, train.y, epochs=8, batch_size=64, lr=0.02,
        x_val=val.x, y_val=val.y, seed=1,
        log_fn=lambda s: print("  " + s))

    print("== 2. edge adaptation: quantization-aware training ==")
    adapted = prepare_qat(original, weight_bits=4, act_bits=8,
                          per_channel=False)
    qat_finetune(adapted, train.x, train.y, epochs=1, batch_size=64,
                 lr=0.002, log_fn=lambda s: print("  " + s))
    adapted.freeze()

    print("== 3. the gap the attack exploits (Table 1) ==")
    rep = instability_report(original, adapted, val.x, val.y)
    print(f"  original accuracy : {rep.original_accuracy:.1%}")
    print(f"  adapted accuracy  : {rep.adapted_accuracy:.1%}")
    print(f"  instability       : {rep.deviation_instability:.1%} "
          "(samples where exactly one model is right)")

    print("== 4. PGD vs DIVA (eps=32/255, 20 steps) ==")
    atk_set = select_attack_set(val, [original, adapted], per_class=6)
    eps, alpha, steps = 32 / 255, 4 / 255, 20
    x_pgd = PGD(adapted, eps=eps, alpha=alpha, steps=steps).generate(
        atk_set.x, atk_set.y)
    x_diva = DIVA(original, adapted, c=1.0, eps=eps, alpha=alpha,
                  steps=steps).generate(atk_set.x, atk_set.y)
    for name, x_adv in [("PGD ", x_pgd), ("DIVA", x_diva)]:
        r = evaluate_attack(original, adapted, x_adv, atk_set.y, topk=2)
        print(f"  {name}: evasive-success={r.top1_success_rate:6.1%}  "
              f"attack-only={r.attack_only_success_rate:6.1%}  "
              f"both-models-fooled={r.quadrant_both_incorrect:6.1%}  "
              f"conf-delta={r.confidence_delta:5.1%}")
    print("  (DIVA flips the edge model while the original stays correct;")
    print("   PGD transfers and trips validation on the original model.)")

    print("== 5. Fig-3-style image dump ==")
    # pick a successfully attacked sample
    probs_o = predict_probs(original, x_diva)
    probs_a = predict_probs(adapted, x_diva)
    pred_o = probs_o.argmax(1)
    pred_a = probs_a.argmax(1)
    ok = (pred_o == atk_set.y) & (pred_a != atk_set.y)
    if ok.any():
        i = int(np.flatnonzero(ok)[0])
        write_ppm(os.path.join(OUT_DIR, "original.ppm"), atk_set.x[i])
        write_ppm(os.path.join(OUT_DIR, "noise.ppm"),
                  noise_to_image(x_diva[i] - atk_set.x[i]))
        write_ppm(os.path.join(OUT_DIR, "attacked.ppm"), x_diva[i])
        d = batch_dssim(x_diva[i:i + 1], atk_set.x[i:i + 1])[0]
        print(f"  sample {i}: true class {atk_set.y[i]}")
        print(f"    original model: class {pred_o[i]} "
              f"(conf {probs_o[i, pred_o[i]]:.1%})  <- still correct")
        print(f"    adapted  model: class {pred_a[i]} "
              f"(conf {probs_a[i, pred_a[i]]:.1%})  <- fooled")
        print(f"    DSSIM(original, attacked) = {d:.4f}")
        print(f"  wrote {OUT_DIR}/{{original,noise,attacked}}.ppm")
    else:
        print("  (no evasive success in this tiny run; try more steps)")


if __name__ == "__main__":
    main()
