"""Experiment harness: config hashing, artifact cache, smoke runs of every
table/figure module (integration tests of the whole stack)."""

import dataclasses
import os

import numpy as np
import pytest

from repro.experiments import (ArtifactStore, ExperimentConfig, Pipeline,
                               format_table, save_results)


@pytest.fixture(scope="module")
def smoke(tmp_path_factory):
    """A smoke-scale pipeline with an isolated artifact store."""
    cfg = ExperimentConfig.smoke()
    store = ArtifactStore(str(tmp_path_factory.mktemp("artifacts")))
    return cfg, Pipeline(cfg, store=store)


class TestConfig:
    def test_cache_key_stable(self):
        cfg = ExperimentConfig.smoke()
        assert cfg.cache_key("a") == cfg.cache_key("a")

    def test_cache_key_varies_with_config(self):
        a = ExperimentConfig.smoke()
        b = dataclasses.replace(a, seed=99)
        assert a.cache_key("x") != b.cache_key("x")

    def test_cache_key_varies_with_path(self):
        cfg = ExperimentConfig.smoke()
        assert cfg.cache_key("a") != cfg.cache_key("b")


class TestArtifactStore:
    def test_builds_once(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        calls = []

        def build():
            calls.append(1)
            return {"v": 42}
        assert store.get_or_build("k", build)["v"] == 42
        assert store.get_or_build("k", build)["v"] == 42
        assert len(calls) == 1

    def test_survives_process_cache_clear(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.get_or_build("k", lambda: np.arange(3))
        store.clear_memory()
        again = store.get_or_build("k", lambda: pytest.fail("rebuilt!"))
        assert np.array_equal(again, np.arange(3))

    def test_invalidate(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.get_or_build("k", lambda: 1)
        store.invalidate("k")
        assert store.get_or_build("k", lambda: 2) == 2

    def test_model_round_trip(self, tmp_path, tiny_model, tiny_dataset):
        from repro.training import predict_logits
        _, val = tiny_dataset
        store = ArtifactStore(str(tmp_path))
        store.get_or_build("m", lambda: tiny_model)
        store.clear_memory()
        loaded = store.get_or_build("m", lambda: pytest.fail("rebuilt!"))
        assert np.allclose(predict_logits(loaded, val.x[:4]),
                           predict_logits(tiny_model, val.x[:4]))


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xx", 3]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_save_results_json(self, tmp_path):
        path = save_results("unit", {"x": np.float32(1.5),
                                     "arr": np.arange(3)},
                            results_dir=str(tmp_path))
        import json
        with open(path) as f:
            data = json.load(f)
        assert data["x"] == 1.5 and data["arr"] == [0, 1, 2]


class TestPipeline:
    def test_datasets_cached_in_memory(self, smoke):
        _, pipe = smoke
        a = pipe.datasets()
        b = pipe.datasets()
        assert a is b

    def test_original_model_cached(self, smoke):
        _, pipe = smoke
        m1 = pipe.original("resnet")
        m2 = pipe.original("resnet")
        assert m1 is m2

    def test_quantized_frozen(self, smoke):
        _, pipe = smoke
        q = pipe.quantized("resnet")
        assert all(fq.frozen for _, fq in q.fake_quant_modules()
                   if fq.observer.initialized)

    def test_attack_set_correctness_protocol(self, smoke):
        from repro.data import correctly_classified_mask
        _, pipe = smoke
        orig = pipe.original("resnet")
        quant = pipe.quantized("resnet")
        atk = pipe.attack_set([orig, quant], "unit")
        assert correctly_classified_mask([orig, quant], atk.x, atk.y).all()

    def test_pruned_is_sparse(self, smoke):
        from repro.pruning import model_sparsity
        cfg, pipe = smoke
        pruned = pipe.pruned("resnet")
        assert model_sparsity(pruned) >= cfg.sparsity - 0.1


class TestExperimentModules:
    """Each module runs end-to-end at smoke scale and emits sane payloads."""

    def test_table1(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_table1
        res = exp_table1.run(cfg, pipeline=pipe, verbose=False)
        for arch in ("resnet", "mobilenet", "densenet"):
            r = res["architectures"][arch]
            assert 0 <= r["original_accuracy"] <= 1
            assert 0 <= r["deviation_instability"] <= 1

    def test_fig1_quadrants_sum(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_fig1
        res = exp_fig1.run(cfg, pipeline=pipe, verbose=False)
        for attack in ("PGD", "DIVA"):
            q = res["quadrants"][attack]
            assert np.isclose(sum(q.values()), 1.0)

    def test_table2(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_table2
        res = exp_table2.run(cfg, pipeline=pipe, include_pruning=False,
                             verbose=False)
        for arch in res["quantized"]:
            assert 0 <= res["quantized"][arch]["diva_attack_only"] <= 1

    def test_fig7_c_zero_weakest_attack(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_fig7
        res = exp_fig7.run(cfg, pipeline=pipe, c_values=(0.0, 1.0),
                           verbose=False)
        for arch, r in res["per_arch"].items():
            assert r["diva_attack_only"][0] <= r["diva_attack_only"][1] + 0.15

    def test_fig2_boundary(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_fig2
        res = exp_fig2.run(cfg, pipeline=pipe, n_images=2, resolution=5,
                           verbose=False)
        assert 0 <= res["random_plane_disagreement"] <= 1

    def test_dssim(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_dssim
        res = exp_dssim.run(cfg, pipeline=pipe, verbose=False)
        for attack in ("PGD", "DIVA"):
            assert res["per_attack"][attack]["max_linf"] <= cfg.eps + 1e-6
            assert res["per_attack"][attack]["max_dssim"] < 0.5

    def test_fig10_face(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_fig10
        res = exp_fig10.run(cfg, pipeline=pipe, verbose=False)
        assert 0 <= res["edge_accuracy"] <= 1
        assert "top1" in res["diva"]

    def test_fig4_pca(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_fig4
        res = exp_fig4.run(cfg, pipeline=pipe, verbose=False)
        assert res["n_a"] > 0
        assert len(res["explained_variance_ratio"]) == 2

    def test_fig6_grid(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_fig6
        res = exp_fig6.run(cfg, pipeline=pipe, verbose=False)
        for arch, r in res["per_arch"].items():
            for attack in ("pgd", "diva", "semi_blackbox_diva",
                           "blackbox_diva"):
                assert 0 <= r[attack]["top1_success"] <= 1, (arch, attack)

    def test_fig6_steps_curves(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_fig6
        res = exp_fig6.run_steps(cfg, pipeline=pipe, verbose=False)
        assert len(res["curves"]["diva"]) == cfg.steps
        assert len(res["curves"]["pgd"]) == cfg.steps
        # keep-best curves are non-decreasing
        d = res["curves"]["diva"]
        assert all(b >= a - 1e-9 for a, b in zip(d, d[1:]))

    def test_sec54_baselines(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_sec54
        res = exp_sec54.run(cfg, pipeline=pipe, verbose=False)
        assert set(res["mean_top1"]) == {"pgd", "momentum_pgd", "cw"}

    def test_sec55_defense(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_sec55
        res = exp_sec55.run(cfg, pipeline=pipe, c_values=(1.0,),
                            verbose=False)
        assert "pgd" in res["attacks"] and "diva_c1.0" in res["attacks"]
        for v in res["attacks"].values():
            assert 0 <= v["robust_accuracy"] <= 1

    def test_fig8_pruning(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_fig8
        res = exp_fig8.run(cfg, pipeline=pipe, verbose=False)
        for track in ("pruned", "pruned_quantized"):
            for arch, r in res[track].items():
                assert 0 <= r["diva"]["top1"] <= 1, (track, arch)

    def test_targeted_face(self, smoke, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        cfg, pipe = smoke
        from repro.experiments import exp_targeted
        res = exp_targeted.run(cfg, pipeline=pipe, n_targets=3,
                               verbose=False)
        assert res["targets_probed"] == 3
        assert 0 <= res["mean_hit_rate"] <= 1
