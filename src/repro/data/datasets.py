"""Dataset containers and batching utilities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np


@dataclass
class ArrayDataset:
    """In-memory dataset of images and integer labels.

    Attributes
    ----------
    x: float array (N, C, H, W), pixel values in [0, 1].
    y: int array (N,).
    num_classes: label-space size (may exceed ``y.max()+1`` for subsets).
    """

    x: np.ndarray
    y: np.ndarray
    num_classes: int

    def __post_init__(self):
        self.x = np.asarray(self.x)
        self.y = np.asarray(self.y)
        if len(self.x) != len(self.y):
            raise ValueError(f"x/y length mismatch: {len(self.x)} vs {len(self.y)}")
        if self.x.ndim != 4:
            raise ValueError(f"x must be (N, C, H, W), got {self.x.shape}")

    def __len__(self) -> int:
        return len(self.x)

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        idx = np.asarray(indices)
        return ArrayDataset(self.x[idx], self.y[idx], self.num_classes)

    def split(self, fraction: float, rng: Optional[np.random.Generator] = None
              ) -> Tuple["ArrayDataset", "ArrayDataset"]:
        """Random split into (first, second) with ``fraction`` in the first."""
        rng = rng if rng is not None else np.random.default_rng(0)
        n = len(self)
        order = rng.permutation(n)
        k = int(round(n * fraction))
        return self.subset(order[:k]), self.subset(order[k:])

    def class_counts(self) -> np.ndarray:
        return np.bincount(self.y, minlength=self.num_classes)


def iterate_batches(x: np.ndarray, y: Optional[np.ndarray], batch_size: int,
                    shuffle: bool = False,
                    rng: Optional[np.random.Generator] = None
                    ) -> Iterator[Tuple[np.ndarray, Optional[np.ndarray]]]:
    """Yield (x_batch, y_batch) slices; deterministic under a given rng."""
    n = len(x)
    order = np.arange(n)
    if shuffle:
        rng = rng if rng is not None else np.random.default_rng(0)
        order = rng.permutation(n)
    for start in range(0, n, batch_size):
        idx = order[start:start + batch_size]
        yield x[idx], (None if y is None else y[idx])


def stratified_sample(y: np.ndarray, per_class: int,
                      rng: Optional[np.random.Generator] = None,
                      num_classes: Optional[int] = None) -> np.ndarray:
    """Indices of up to ``per_class`` samples from each class."""
    rng = rng if rng is not None else np.random.default_rng(0)
    y = np.asarray(y)
    classes = range(num_classes if num_classes is not None else int(y.max()) + 1)
    picks = []
    for c in classes:
        pool = np.flatnonzero(y == c)
        if len(pool) == 0:
            continue
        take = min(per_class, len(pool))
        picks.append(rng.choice(pool, size=take, replace=False))
    return np.sort(np.concatenate(picks)) if picks else np.array([], dtype=int)
