"""Integer-only inference engine — the reproduction's TFLite runtime.

The paper's face-recognition case study (§6) converts the QAT model with
TFLite and runs int8 inference on an ARM edge device; attacks are built
with QAT gradients but *evaluated* on the deployed integer artifact.
This engine reproduces that split: it executes feed-forward networks
using int8 weights/activations, int64 accumulation and TFLite-style
fixed-point requantization (multiplier + right shift), with no float
arithmetic anywhere on the data path.

Numerical relationship to the fake-quant (QAT) path: identical up to the
31-bit quantization of the requantization multiplier, i.e. results on the
integer grid match within 1 LSB (asserted by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..quantization.affine import QuantParams, quantize_multiplier


def _requantize_vec(acc: np.ndarray, m0: np.ndarray, shift: np.ndarray,
                    axis: Optional[int] = None) -> np.ndarray:
    """Fixed-point requantization, optionally per-channel along ``axis``."""
    m0 = np.asarray(m0, dtype=np.int64)
    shift = np.asarray(shift, dtype=np.int64)
    if axis is not None and m0.ndim == 1:
        shape = [1] * acc.ndim
        shape[axis] = m0.size
        m0 = m0.reshape(shape)
        shift = shift.reshape(shape)
    total = 31 + shift
    prod = acc.astype(np.int64) * m0
    rounding = np.int64(1) << (total - 1)
    rounding = np.where(prod >= 0, rounding, rounding - 1)
    return (prod + rounding) >> total


class EdgeOp:
    """Base class for integer ops; maps int tensors to int tensors."""

    def __call__(self, q: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


@dataclass
class QuantizeInput(EdgeOp):
    """Float pixels -> integer grid (the only non-integer boundary op)."""

    qp: QuantParams

    def __call__(self, x: np.ndarray) -> np.ndarray:
        s = float(self.qp.scale)
        z = float(self.qp.zero_point)
        q = np.round(x.astype(np.float64) / s) + z
        return np.clip(q, self.qp.qmin, self.qp.qmax).astype(np.int32)


class QConv2d(EdgeOp):
    """Integer convolution: int8 weights, int64 accumulate, requantize.

    The input zero-point is subtracted before the convolution (weights
    are symmetric, so no weight zero-point), making zero padding exact.
    """

    def __init__(self, q_weight: np.ndarray, bias_q: np.ndarray,
                 in_qp: QuantParams, w_qp: QuantParams, out_qp: QuantParams,
                 stride: int = 1, padding: int = 0, groups: int = 1):
        self.q_weight = q_weight.astype(np.int64)
        self.bias_q = bias_q.astype(np.int64)
        self.in_qp = in_qp
        self.w_qp = w_qp
        self.out_qp = out_qp
        self.stride = stride
        self.padding = padding
        self.groups = groups
        w_scales = np.atleast_1d(np.asarray(w_qp.scale, dtype=np.float64))
        real_mult = (float(in_qp.scale) * w_scales) / float(out_qp.scale)
        pairs = [quantize_multiplier(m) for m in real_mult]
        self.m0 = np.array([p[0] for p in pairs], dtype=np.int64)
        self.shift = np.array([p[1] for p in pairs], dtype=np.int64)
        self.per_channel = w_qp.axis is not None

    def __call__(self, q: np.ndarray) -> np.ndarray:
        from ..nn.functional import _im2col
        centered = q.astype(np.int64) - int(self.in_qp.zero_point)
        kh, kw = self.q_weight.shape[2], self.q_weight.shape[3]
        cols, (oh, ow) = _im2col(centered, kh, kw, self.stride, self.stride,
                                 self.padding, self.padding)
        N, C = q.shape[0], q.shape[1]
        F_out = self.q_weight.shape[0]
        if self.groups == 1:
            cols2 = np.ascontiguousarray(
                cols.transpose(0, 4, 5, 1, 2, 3)).reshape(N, oh, ow, C * kh * kw)
            wmat = self.q_weight.reshape(F_out, -1).T
            acc = cols2 @ wmat                      # int64 matmul
            acc = acc.transpose(0, 3, 1, 2)
        else:
            G = self.groups
            Cg = C // G
            Fg = F_out // G
            colsg = cols.reshape(N, G, Cg, kh, kw, oh, ow)
            cols2 = np.ascontiguousarray(
                colsg.transpose(0, 1, 5, 6, 2, 3, 4)).reshape(N, G, oh, ow, -1)
            wmat = self.q_weight.reshape(G, Fg, -1)
            acc = np.einsum("ngxyk,gfk->ngfxy", cols2, wmat)
            acc = acc.reshape(N, F_out, oh, ow)
        acc = acc + self.bias_q.reshape(1, F_out, 1, 1)
        out = _requantize_vec(acc, self.m0, self.shift,
                              axis=1 if self.per_channel else None)
        out = out + int(self.out_qp.zero_point)
        return np.clip(out, self.out_qp.qmin, self.out_qp.qmax).astype(np.int32)


class QLinear(EdgeOp):
    """Integer fully-connected layer (same scheme as QConv2d)."""

    def __init__(self, q_weight: np.ndarray, bias_q: np.ndarray,
                 in_qp: QuantParams, w_qp: QuantParams, out_qp: QuantParams):
        self.q_weight = q_weight.astype(np.int64)
        self.bias_q = bias_q.astype(np.int64)
        self.in_qp = in_qp
        self.w_qp = w_qp
        self.out_qp = out_qp
        w_scales = np.atleast_1d(np.asarray(w_qp.scale, dtype=np.float64))
        real_mult = (float(in_qp.scale) * w_scales) / float(out_qp.scale)
        pairs = [quantize_multiplier(m) for m in real_mult]
        self.m0 = np.array([p[0] for p in pairs], dtype=np.int64)
        self.shift = np.array([p[1] for p in pairs], dtype=np.int64)
        self.per_channel = w_qp.axis is not None

    def __call__(self, q: np.ndarray) -> np.ndarray:
        centered = q.astype(np.int64) - int(self.in_qp.zero_point)
        acc = centered @ self.q_weight.T + self.bias_q
        out = _requantize_vec(acc, self.m0, self.shift,
                              axis=1 if self.per_channel else None)
        out = out + int(self.out_qp.zero_point)
        return np.clip(out, self.out_qp.qmin, self.out_qp.qmax).astype(np.int32)


class QReLU(EdgeOp):
    """Integer ReLU with rescale between input and output grids."""

    def __init__(self, in_qp: QuantParams, out_qp: QuantParams):
        self.in_qp = in_qp
        self.out_qp = out_qp
        m0, shift = quantize_multiplier(float(in_qp.scale) / float(out_qp.scale))
        self.m0, self.shift = m0, shift

    def __call__(self, q: np.ndarray) -> np.ndarray:
        centered = np.maximum(q.astype(np.int64) - int(self.in_qp.zero_point), 0)
        out = _requantize_vec(centered, np.int64(self.m0), np.int64(self.shift))
        out = out + int(self.out_qp.zero_point)
        return np.clip(out, self.out_qp.qmin, self.out_qp.qmax).astype(np.int32)


@dataclass
class QMaxPool2d(EdgeOp):
    """Max pooling commutes with monotone quantization: pool the ints."""

    kernel: int
    stride: Optional[int] = None
    padding: int = 0

    def __call__(self, q: np.ndarray) -> np.ndarray:
        from ..nn.functional import _im2col
        stride = self.stride if self.stride is not None else self.kernel
        qq = q
        if self.padding:
            qq = np.pad(q, ((0, 0), (0, 0), (self.padding,) * 2,
                            (self.padding,) * 2),
                        constant_values=np.iinfo(np.int32).min)
        cols, (oh, ow) = _im2col(qq, self.kernel, self.kernel, stride, stride, 0, 0)
        return cols.max(axis=(2, 3)).astype(np.int32)


class QFlatten(EdgeOp):
    def __call__(self, q: np.ndarray) -> np.ndarray:
        return q.reshape(len(q), -1)


@dataclass
class Dequantize(EdgeOp):
    """Integer grid -> float (applied once, to the logits)."""

    qp: QuantParams

    def __call__(self, q: np.ndarray) -> np.ndarray:
        return (q.astype(np.float64) - float(self.qp.zero_point)) * float(self.qp.scale)


class EdgeModel:
    """A compiled, inference-only integer network.

    Behaves like a model for evaluation purposes (``__call__`` on float
    pixel arrays returning float logits) but executes entirely on the
    integer path in between.
    """

    def __init__(self, ops: Sequence[EdgeOp], num_classes: int):
        self.ops = list(ops)
        self.num_classes = num_classes
        self.training = False

    def eval(self) -> "EdgeModel":
        return self

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Float pixels in, float logits out (integer path inside)."""
        outs = []
        for start in range(0, len(x), batch_size):
            q = x[start:start + batch_size]
            for op in self.ops:
                q = op(q)
            outs.append(np.asarray(q))
        return np.concatenate(outs, axis=0)

    def __call__(self, x) -> "EdgeLogits":
        data = x.data if hasattr(x, "data") else np.asarray(x)
        return EdgeLogits(self.predict(data))

    def footprint_bytes(self) -> int:
        """int8-weight + int32-bias storage (the deployed artifact size)."""
        total = 0
        for op in self.ops:
            if isinstance(op, (QConv2d, QLinear)):
                total += op.q_weight.size            # 1 byte per int8 weight
                total += op.bias_q.size * 4
        return total


@dataclass
class EdgeLogits:
    """Minimal Tensor-like wrapper so evaluation helpers work unchanged."""

    data: np.ndarray
