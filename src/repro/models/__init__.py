"""``repro.models`` — the architectures evaluated in the paper, scaled to
this reproduction's CPU substrate (see DESIGN.md substitution table)."""

from .densenet import DenseBlock, DenseLayer, DenseNet, Transition
from .lenet import LeNet
from .mobilenet import DepthwiseSeparable, MobileNet
from .registry import available_models, build_model, register_model
from .resnet import BasicBlock, ResNet
from .vggface import VGGFaceNet

__all__ = [
    "ResNet", "BasicBlock",
    "MobileNet", "DepthwiseSeparable",
    "DenseNet", "DenseBlock", "DenseLayer", "Transition",
    "LeNet", "VGGFaceNet",
    "build_model", "register_model", "available_models",
]
