"""The paper's §6 case study: attacking a face-recognition edge model.

Pipeline (mirrors Fig 9 / Fig 10):

1. train a VGGFace-style identity classifier on the parametric face set;
2. QAT-adapt and *compile to the integer edge engine* (the TFLite
   stand-in) — attacks use QAT gradients, evaluation runs on the
   deployed integer artifact, exactly the paper's split;
3. run PGD and DIVA, compare on the edge model;
4. run the targeted variant: make the edge camera see a chosen person.

Run:  python examples/face_recognition_attack.py
"""

import os

import numpy as np

from repro.attacks import DIVA, PGD, TargetedDIVA
from repro.data import (SynthFacesConfig, generate_synth_faces,
                        select_attack_set)
from repro.edge import compile_edge
from repro.metrics import evaluate_attack
from repro.models import build_model
from repro.nn import set_default_dtype
from repro.quantization import model_size_bytes, prepare_qat, qat_finetune
from repro.training import evaluate_accuracy, fit, predict_labels
from repro.utils import noise_to_image, write_ppm

OUT_DIR = os.path.join(os.path.dirname(__file__), "output")
N_IDENTITIES = 40


def main() -> None:
    set_default_dtype("float32")

    print("== 1. train the identity classifier (server, fp32) ==")
    fc = SynthFacesConfig(num_identities=N_IDENTITIES, image_size=32)
    train = generate_synth_faces(25, fc, split_seed=1)
    val = generate_synth_faces(8, fc, split_seed=2)
    original = build_model("vggface", num_identities=N_IDENTITIES,
                           image_size=32, width=8, seed=0)
    fit(original, train.x, train.y, epochs=8, batch_size=64, lr=0.02,
        x_val=val.x, y_val=val.y, seed=1, log_fn=lambda s: print("  " + s))

    print("== 2. QAT + compile to the integer edge engine ==")
    qat = prepare_qat(original, weight_bits=4, act_bits=8, per_channel=False)
    qat_finetune(qat, train.x, train.y, epochs=1, batch_size=64, lr=0.002)
    qat.freeze()
    edge = compile_edge(qat, N_IDENTITIES)
    acc_o = evaluate_accuracy(original, val.x, val.y)
    acc_e = float((edge.predict(val.x).argmax(1) == val.y).mean())
    print(f"  fp32 accuracy {acc_o:.1%} | edge int8 accuracy {acc_e:.1%}")
    print(f"  fp32 weights {model_size_bytes(original):,} B -> "
          f"edge artifact {edge.footprint_bytes():,} B")

    print("== 3. PGD vs DIVA against the deployed artifact ==")
    atk_set = select_attack_set(val, [original, qat, edge], per_class=3)
    eps, alpha, steps = 32 / 255, 4 / 255, 20
    x_pgd = PGD(qat, eps=eps, alpha=alpha, steps=steps).generate(
        atk_set.x, atk_set.y)
    x_diva = DIVA(original, qat, c=1.0, eps=eps, alpha=alpha,
                  steps=steps).generate(atk_set.x, atk_set.y)
    for name, x_adv in [("PGD ", x_pgd), ("DIVA", x_diva)]:
        r = evaluate_attack(original, edge, x_adv, atk_set.y, topk=3)
        print(f"  {name}: evasive-success={r.top1_success_rate:6.1%}  "
              f"top-3={r.top5_success_rate:6.1%}  "
              f"conf-delta={r.confidence_delta:5.1%}")

    print("== 4. targeted: make the camera see identity 0 ==")
    target = 0
    keep = atk_set.y != target
    x, y = atk_set.x[keep], atk_set.y[keep]
    attack = TargetedDIVA(original, qat, target_class=target, c=1.0,
                          eps=eps, alpha=alpha, steps=steps)
    x_t = attack.generate(x, y)
    pred_edge = edge.predict(x_t).argmax(1)
    pred_orig = predict_labels(original, x_t)
    hits = (pred_edge == target) & (pred_orig == y)
    print(f"  {hits.sum()}/{len(y)} faces now identify as person {target} "
          "on the edge while the server model still sees the true person")

    if hits.any():
        i = int(np.flatnonzero(hits)[0])
        write_ppm(os.path.join(OUT_DIR, "face_original.ppm"), x[i])
        write_ppm(os.path.join(OUT_DIR, "face_noise.ppm"),
                  noise_to_image(x_t[i] - x[i]))
        write_ppm(os.path.join(OUT_DIR, "face_attacked.ppm"), x_t[i])
        print(f"  wrote {OUT_DIR}/face_{{original,noise,attacked}}.ppm "
              f"(person {y[i]} -> edge sees person {target})")


if __name__ == "__main__":
    main()
